//! The paper's evaluation application: IP packet forwarding with a scaled
//! number of egress consumers, compiled under both memory organizations,
//! then *executed* cycle-accurately against a seeded packet workload.
//!
//! Run with: `cargo run --example ip_forwarding [egress]`

use memsync::core::{Compiler, OrganizationKind};
use memsync::netapp::forwarding::app_source;
use memsync::netapp::Workload;
use memsync::sim::traffic::BernoulliSource;
use memsync::sim::System;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let egress: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(4);

    let src = app_source(egress);
    println!("== IP forwarding application, {egress} egress consumers ==\n");

    // Software reference over the same workload.
    let workload = Workload::generate(2026, 256, 32);
    let (fwd, dropped) = workload.reference_forward();
    println!("software reference: {fwd} forwarded, {dropped} dropped of 256 packets\n");

    for kind in [OrganizationKind::Arbitrated, OrganizationKind::EventDriven] {
        let mut compiler = Compiler::new(&src);
        compiler.organization(kind).skip_validation();
        let system = compiler.compile()?;
        let report = system.implement()?;
        println!("--- {kind} ---");
        println!(
            "area: {} core + {} sync = {} slices ({:.1}% overhead), {:.0} MHz",
            report.core_slices(),
            report.sync_slices(),
            report.total_slices(),
            report.overhead_fraction() * 100.0,
            report.fmax_mhz()
        );

        // Run the synthesized system against packet traffic.
        let mut sim = System::new(&system);
        sim.attach_source("rx", Box::new(BernoulliSource::new(7, 0.02)));
        for _ in 0..30_000 {
            sim.step();
        }
        let egress_outputs: usize = (0..egress)
            .map(|i| {
                sim.thread(&format!("e{i}"))
                    .map(|t| t.sent.len())
                    .unwrap_or(0)
            })
            .sum();
        println!(
            "simulated 30k cycles: rx iterations {}, egress frames sent {}",
            sim.thread("rx").map(|t| t.iterations).unwrap_or(0),
            egress_outputs
        );
        if let Some(stats) = sim.metrics.pooled_stats() {
            println!(
                "produce-to-consume latency: min {} mean {:.1} max {} (variance {:.2})\n",
                stats.min, stats.mean, stats.max, stats.variance
            );
        } else {
            println!();
        }
    }
    Ok(())
}
