//! Quickstart: compile the paper's Figure 1 and look at everything the
//! flow produces — the resolved dependency, the allocation, the generated
//! Verilog, and the implementation (area/timing) report for both memory
//! organizations.
//!
//! Run with: `cargo run --example quickstart`

use memsync::core::{Compiler, OrganizationKind};

const FIGURE1: &str = r#"
    thread t1 () {
        int x1, xtmp, x2;
        #consumer{mt1,[t2,y1],[t3,z1]}
        x1 = f(xtmp, x2);
    }
    thread t2 () {
        int y1, y2;
        #producer{mt1,[t1,x1]}
        y1 = g(x1, y2);
    }
    thread t3 () {
        int z1, z2;
        #producer{mt1,[t1,x1]}
        z1 = h(x1, z2);
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Figure 1 of the paper, compiled ==\n");

    for kind in [OrganizationKind::Arbitrated, OrganizationKind::EventDriven] {
        let system = Compiler::new(FIGURE1).organization(kind).compile()?;

        println!("--- {kind} organization ---");
        for dep in &system.analysis.dependencies {
            println!(
                "dependency `{}`: producer {} -> consumers {:?} (dep_number {})",
                dep.id,
                dep.producer,
                dep.consumers
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>(),
                dep.dep_number()
            );
        }
        for bank in &system.plan.sync_banks {
            println!(
                "sync bank `{}`: producers {:?}, consumers {:?}, service order {:?}",
                bank.name, bank.producers, bank.consumers, bank.service_order
            );
        }
        let report = system.implement()?;
        println!("{report}");

        // The generated HDL is ordinary text, ready for a vendor flow.
        let verilog = system.verilog();
        let first_module = verilog.lines().find(|l| l.starts_with("module"));
        println!(
            "generated {} lines of Verilog (first module: {})\n",
            verilog.lines().count(),
            first_module.unwrap_or("none")
        );
    }
    Ok(())
}
