
thread rx () {
    message pkt;
    int dstp, ttl, ver, flags, desc;
    #interface{eth0, "gige"}
    recv pkt;
    dstp = (pkt >> 8) & 16777215;
    ttl = pkt & 255;
    ver = (pkt >> 28) & 15;
    flags = (pkt >> 24) & 15;
    if (ttl > 1) {
        #consumer{m_rx,[lkp,key]}
        desc = (dstp << 8) | (ttl - 1);
    } else {
        desc = 0;
    }
}

thread lkp () {
    int key, idx0, idx1, node, hop, route;
    int tbl0[256], tbl1[256];
    #producer{m_rx,[rx,desc]}
    key = desc;
    idx0 = (key >> 24) & 255;
    node = tbl0[idx0];
    if ((node & 1) == 1) {
        idx1 = (key >> 16) & 255;
        hop = tbl1[idx1];
    } else {
        hop = node >> 1;
    }
    #consumer{m_lkp,[fwd,rinfo]}
    route = (hop << 16) | (key & 65535);
}

thread fwd () {
    int rinfo, hop, meta, sum, csum, outv;
    #producer{m_lkp,[lkp,route]}
    rinfo = route;
    hop = (rinfo >> 16) & 65535;
    meta = rinfo & 65535;
    sum = (meta & 255) + ((meta >> 8) & 255) + hop;
    sum = (sum & 65535) + (sum >> 16);
    sum = (sum & 65535) + (sum >> 16);
    csum = (~sum) & 65535;
    #consumer{m_fwd,[e0,od0],[e1,od1],[e2,od2],[e3,od3]}
    outv = (hop << 20) | (csum << 4) | 5;
}

thread e0 () {
    int od0, frame0, crc0;
    #producer{m_fwd,[fwd,outv]}
    od0 = outv;
    crc0 = g(od0, 17);
    frame0 = od0 ^ (crc0 << 1);
    send frame0;
}

thread e1 () {
    int od1, frame1, crc1;
    #producer{m_fwd,[fwd,outv]}
    od1 = outv;
    crc1 = g(od1, 18);
    frame1 = od1 ^ (crc1 << 1);
    send frame1;
}

thread e2 () {
    int od2, frame2, crc2;
    #producer{m_fwd,[fwd,outv]}
    od2 = outv;
    crc2 = g(od2, 19);
    frame2 = od2 ^ (crc2 << 1);
    send frame2;
}

thread e3 () {
    int od3, frame3, crc3;
    #producer{m_fwd,[fwd,outv]}
    od3 = outv;
    crc3 = g(od3, 20);
    frame3 = od3 ^ (crc3 << 1);
    send frame3;
}
