//! Cycle-level tracing demo: the same packet-paced Figure 1 program runs
//! under both memory organizations with a trace sink attached, making the
//! paper's §3.1-vs-§3.2 claim visible event by event — the arbitrated
//! organization jitters (ArbStall events, spread grant-wait percentiles)
//! while the event-driven organization delivers with zero variance.
//!
//! Run with: `cargo run --example trace_demo`
//!
//! Writes `trace_demo.vcd` (arbitrated run) for waveform viewers.

use memsync::core::{Compiler, OrganizationKind};
use memsync::sim::traffic::BernoulliSource;
use memsync::sim::System;
use memsync::trace::{vcd, SharedSink, VecSink};

const FIGURE1_PACED: &str = r#"
    thread t1 () {
        message pkt;
        int x1, x2;
        recv pkt;
        #consumer{mt1,[t2,y1],[t3,z1]}
        x1 = f(pkt, x2);
    }
    thread t2 () {
        int y1, y2;
        #producer{mt1,[t1,x1]}
        y1 = g(x1, y2);
    }
    thread t3 () {
        int z1, z2;
        #producer{mt1,[t1,x1]}
        z1 = h(x1, z2);
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for kind in [OrganizationKind::Arbitrated, OrganizationKind::EventDriven] {
        let mut compiler = Compiler::new(FIGURE1_PACED);
        compiler.organization(kind).skip_validation();
        let compiled = compiler.compile()?;

        let shared = SharedSink::new(VecSink::new());
        let mut sys = System::new(&compiled);
        sys.set_sink(Box::new(shared.clone()));
        sys.attach_source("t1", Box::new(BernoulliSource::new(11, 0.05)));
        for _ in 0..5_000 {
            sys.step();
        }

        println!("--- {kind} organization, 5000 cycles ---");
        let events = shared.with(|s| s.events.clone());
        println!("events emitted: {}", events.len());
        println!("first five (JSONL schema):");
        for ev in events.iter().take(5) {
            println!("  {}", ev.to_jsonl());
        }

        let stalls = sys.metrics.counter_sum("bank0.arb_stall.");
        let dep_waits = sys.metrics.counter_sum("bank0.dep_wait.");
        println!("arbitration stalls: {stalls}, dependency waits: {dep_waits}");
        if let Some(h) = sys.metrics.histogram("bank0.grant_wait.consumers") {
            if let Some(s) = h.summary() {
                println!(
                    "consumer grant-wait: p50 {} p90 {} p99 {} max {}",
                    s.p50, s.p90, s.p99, s.max
                );
            }
        }
        let pooled = sys.metrics.pooled_stats().expect("deliveries recorded");
        // The paper's determinism claim is per consumer: pooled numbers mix
        // the schedule slots, so judge each (addr, consumer) stream alone.
        let per_consumer_exact = sys.metrics.streams().iter().all(|&(addr, c)| {
            sys.metrics
                .stats(addr, c)
                .is_none_or(|s| s.is_deterministic())
        });
        println!(
            "produce-to-consume latency: min {} max {} pooled variance {:.3} ({})",
            pooled.min,
            pooled.max,
            pooled.variance,
            if per_consumer_exact {
                "exact per consumer, as §3.2 promises"
            } else {
                "jitters under contention, as §3.1 warns"
            }
        );
        for (bank, util) in sys.metrics.utilization() {
            println!("{bank} utilization: {:.2}%", util * 100.0);
        }

        if kind == OrganizationKind::Arbitrated {
            let mut out = Vec::new();
            vcd::export_vcd(&events, &mut out)?;
            std::fs::write("trace_demo.vcd", &out)?;
            println!("waveform written to trace_demo.vcd ({} bytes)", out.len());
        }
        println!();
    }
    Ok(())
}
