//! Sweep the consumer pseudo-port count 2..=8 for both memory
//! organizations: area, achieved clock, and the latency/determinism
//! trade-off §4 of the paper discusses ("for designs where there is enough
//! slack in timing and a need to scale up in the future, the arbitrated
//! memory organization is useful; for designs where timing is critical …
//! the event-driven memory organization is useful").
//!
//! Run with: `cargo run --example consumer_sweep`

use memsync::core::{arbitrated, event_driven, spec::WrapperSpec, OrganizationKind};
use memsync::fpga::report::implement;
use memsync_bench::latency_experiment;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("| n | org | LUT | FF | slices | Fmax (MHz) | latency mean | latency max | exact |");
    println!("|---|-----|-----|----|--------|------------|--------------|-------------|-------|");
    for n in 2..=8usize {
        for kind in [OrganizationKind::Arbitrated, OrganizationKind::EventDriven] {
            let spec = WrapperSpec::single_producer(n);
            let module = match kind {
                OrganizationKind::Arbitrated => arbitrated::generate(&spec),
                OrganizationKind::EventDriven => event_driven::generate(&spec),
            }
            .map_err(std::io::Error::other)?;
            let r = implement(&module)?;
            let lat = latency_experiment(kind, n, 100, 99);
            println!(
                "| {n} | {kind} | {} | {} | {} | {:.1} | {:.2} | {} | {} |",
                r.luts,
                r.ffs,
                r.slices,
                r.timing.fmax_mhz,
                lat.pooled.mean,
                lat.pooled.max,
                if lat.all_deterministic { "yes" } else { "no" }
            );
        }
    }
    println!();
    println!("The design-time trade-off the paper's flow exposes to the user:");
    println!("- arbitrated: fixed 66-FF base architecture, consumers add only muxing,");
    println!("  but read latency depends on arbitration (non-deterministic);");
    println!("- event-driven: faster clock and exact post-write latency, but adding");
    println!("  a consumer changes the schedule ROM and the thread state machines.");
    Ok(())
}
