//! Cross-validation of the two dependency-extraction paths: pragma
//! resolution (`sema::analyze`) and pragma-free use-def inference
//! (`usedef::infer_dependencies`) must describe the same producer and
//! consumer endpoints on every checked-in program that carries pragmas.
//!
//! Inferred consumer *order* follows thread declaration order while the
//! pragma form encodes the static service order, so consumers are
//! compared as sets of endpoints, not sequences.

use memsync_hic::{parser, sema, usedef, Endpoint};
use std::collections::BTreeSet;

const FIGURE1: &str = r#"
    thread t1 () { int x1, xtmp, x2; #consumer{mt1,[t2,y1],[t3,z1]} x1 = f(xtmp, x2); }
    thread t2 () { int y1, y2; #producer{mt1,[t1,x1]} y1 = g(x1, y2); }
    thread t3 () { int z1, z2; #producer{mt1,[t1,x1]} z1 = h(x1, z2); }
"#;

fn crosscheck(name: &str, source: &str) {
    let program = parser::parse(source).unwrap_or_else(|e| panic!("{name}: {e}"));
    let analysis = sema::analyze(&program).unwrap_or_else(|e| panic!("{name}: {e}"));
    let inferred = usedef::infer_dependencies(&program);
    for declared in &analysis.dependencies {
        let found = inferred
            .iter()
            .find(|i| i.producer == declared.producer)
            .unwrap_or_else(|| {
                panic!(
                    "{name}: pragma dependency `{}` ({}) not recovered by inference: {inferred:#?}",
                    declared.id, declared.producer
                )
            });
        let declared_consumers: BTreeSet<&Endpoint> = declared.consumers.iter().collect();
        let inferred_consumers: BTreeSet<&Endpoint> = found.consumers.iter().collect();
        assert_eq!(
            declared_consumers, inferred_consumers,
            "{name}: consumer endpoints diverge for `{}`",
            declared.id
        );
    }
    // The reverse direction: everything inference finds must be declared
    // (otherwise the hazard pass reports `unknown_dependency` — the clean
    // examples depend on this holding).
    let declared: BTreeSet<&Endpoint> = analysis.dependencies.iter().map(|d| &d.producer).collect();
    for i in &inferred {
        assert!(
            declared.contains(&i.producer),
            "{name}: inference found undeclared dependency {i:#?}"
        );
    }
}

#[test]
fn figure1_pragmas_and_inference_agree() {
    crosscheck("figure1", FIGURE1);
}

#[test]
fn forwarding_app_pragmas_and_inference_agree() {
    for egress in [2usize, 4, 8] {
        crosscheck(
            &format!("app_source({egress})"),
            &memsync_netapp::forwarding::app_source(egress),
        );
    }
}

#[test]
fn clean_corpus_programs_agree() {
    for file in [
        "clean_pair.hic",
        "free_run_rx.hic",
        "producer_free_runner.hic",
    ] {
        let path = format!("{}/tests/hazards/{file}", env!("CARGO_MANIFEST_DIR"));
        let source = std::fs::read_to_string(&path).unwrap();
        crosscheck(file, &source);
    }
}
