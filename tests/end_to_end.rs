//! Cross-crate end-to-end tests: the forwarding application through the
//! whole stack (front-end → synthesis → organization → implementation →
//! simulation), and cross-organization equivalence of computed values.

use memsync::core::{Compiler, OrganizationKind};
use memsync::netapp::forwarding::{app_source, core_source};
use memsync::sim::traffic::PeriodicSource;
use memsync::sim::System;

#[test]
fn forwarding_app_full_stack() {
    for kind in [OrganizationKind::Arbitrated, OrganizationKind::EventDriven] {
        let src = app_source(4);
        let mut c = Compiler::new(&src);
        c.organization(kind);
        let system = c.compile().unwrap_or_else(|e| panic!("{kind}: {e}"));
        let report = system.implement().expect("implementable");
        // The paper's overhead claim (5-20% of the core).
        let frac = report.overhead_fraction();
        assert!(
            (0.01..=0.25).contains(&frac),
            "{kind}: overhead {frac:.3} implausible"
        );
        // BRAMs: one per sync bank plus one per thread with private arrays.
        assert!(report.total_brams() >= 1);

        // Execute against periodic packet arrivals.
        let mut sim = System::new(&system);
        sim.attach_source("rx", Box::new(PeriodicSource::new(60, 0)));
        for _ in 0..20_000 {
            sim.step();
        }
        let rx_iters = sim.thread("rx").expect("rx exists").iterations;
        assert!(
            rx_iters >= 100,
            "{kind}: rx stalled at {rx_iters} iterations"
        );
        let frames: usize = (0..4)
            .map(|i| {
                sim.thread(&format!("e{i}"))
                    .map(|t| t.sent.len())
                    .unwrap_or(0)
            })
            .sum();
        assert!(frames > 0, "{kind}: no egress frames emitted");
    }
}

#[test]
fn organizations_compute_identical_values() {
    // Same program, same inputs: the two organizations must deliver the
    // same data (only timing differs).
    let src = app_source(2);
    let mut values = Vec::new();
    for kind in [OrganizationKind::Arbitrated, OrganizationKind::EventDriven] {
        let mut c = Compiler::new(&src);
        c.organization(kind).skip_validation();
        let system = c.compile().expect("compiles");
        let mut sim = System::new(&system);
        sim.push_message("rx", 0x0a0a_0a40);
        sim.push_message("rx", 0x0b0b_0b30);
        for _ in 0..5_000 {
            sim.step();
        }
        let sent: Vec<Vec<i64>> = (0..2)
            .map(|i| sim.thread(&format!("e{i}")).expect("egress").sent.clone())
            .collect();
        assert!(
            sent.iter().any(|s| !s.is_empty()),
            "{kind}: nothing reached the egress"
        );
        values.push(sent);
    }
    assert_eq!(values[0], values[1], "organizations disagree on data");
}

#[test]
fn core_thread_runs_to_completion_each_packet() {
    let src = core_source(4);
    let mut c = Compiler::new(&src);
    c.skip_validation();
    let system = c.compile().expect("compiles");
    let mut sim = System::new(&system);
    sim.attach_source("core", Box::new(PeriodicSource::new(200, 0)));
    for _ in 0..10_000 {
        sim.step();
    }
    let t = sim.thread("core").expect("core exists");
    assert!(
        t.iterations >= 40,
        "run-to-completion per message: {}",
        t.iterations
    );
    assert_eq!(t.sent.len() as u64, t.iterations, "one send per iteration");
}

#[test]
fn verilog_of_every_scenario_is_wellformed() {
    for egress in [2usize, 4, 8] {
        for kind in [OrganizationKind::Arbitrated, OrganizationKind::EventDriven] {
            let mut c = Compiler::new(app_source(egress));
            c.organization(kind);
            let system = c.compile().expect("compiles");
            let text = system.verilog();
            let opens = text.matches("\nmodule ").count() + usize::from(text.starts_with("module"));
            let closes = text.matches("endmodule").count();
            assert_eq!(opens, closes, "{kind}/{egress}: unbalanced modules");
            assert!(text.contains("always @(posedge clk)"));
        }
    }
}

#[test]
fn compiled_system_reports_are_stable() {
    // Determinism of the whole flow: two identical compilations produce
    // identical reports (no hidden randomness).
    let src = app_source(3);
    let build = || {
        let mut c = Compiler::new(&src);
        c.skip_validation();
        let s = c.compile().expect("compiles");
        s.implement().expect("implementable")
    };
    let a = build();
    let b = build();
    assert_eq!(a, b);
}
