//! E8 — §3.2's ordering example: "first the selection will enable access to
//! thread t1 only. Once the write related to x1 happens, then the
//! corresponding reads for y1 and z1 will happen, in that order."

use memsync::core::modulo::{ModuloSchedule, SelectionLogic, SelectionOutput};
use memsync::core::{Compiler, OrganizationKind};
use memsync::sim::System;

const FIGURE1: &str = r#"
    thread t1 () {
        int x1, xtmp, x2;
        #consumer{mt1,[t2,y1],[t3,z1]}
        x1 = f(xtmp, x2);
    }
    thread t2 () {
        int y1, y2;
        #producer{mt1,[t1,x1]}
        y1 = g(x1, y2);
    }
    thread t3 () {
        int z1, z2;
        #producer{mt1,[t1,x1]}
        z1 = h(x1, z2);
    }
"#;

#[test]
fn selection_logic_releases_y1_then_z1() {
    // The schedule derived from Figure 1's pragma order.
    let schedule = ModuloSchedule::new(vec![vec![0, 1]]).expect("valid");
    assert_eq!(schedule.latency_of(0, 0), Some(1), "y1 first");
    assert_eq!(schedule.latency_of(0, 1), Some(2), "z1 second");
    let mut sel = SelectionLogic::new(schedule);
    // Blocking until t1 writes.
    assert!(matches!(
        sel.step(false),
        SelectionOutput::AwaitingProducer { producer: 0 }
    ));
    assert!(matches!(
        sel.step(true),
        SelectionOutput::AwaitingProducer { producer: 0 }
    ));
    // Then y1 (consumer 0), then z1 (consumer 1), in that order.
    assert_eq!(
        sel.step(false),
        SelectionOutput::Serve {
            producer: 0,
            consumer: 0,
            slot: 0
        }
    );
    assert_eq!(
        sel.step(false),
        SelectionOutput::Serve {
            producer: 0,
            consumer: 1,
            slot: 1
        }
    );
}

#[test]
fn full_system_serves_t2_before_t3_every_round() {
    let system = {
        let mut c = Compiler::new(FIGURE1);
        c.organization(OrganizationKind::EventDriven)
            .skip_validation();
        c.compile().expect("compiles")
    };
    // The allocation must have put t2 at slot 0 and t3 at slot 1.
    let bank = &system.plan.sync_banks[0];
    assert_eq!(bank.consumers, vec!["t2".to_owned(), "t3".to_owned()]);
    assert_eq!(bank.service_order, vec![vec![0, 1]]);

    let mut sim = System::new(&system);
    assert!(
        sim.run_until_iterations(10, 20_000),
        "system makes progress"
    );
    // The recorded latencies must be exact and ordered: t2 (consumer 0)
    // strictly earlier than t3 (consumer 1), every single time.
    let streams = sim.metrics.streams();
    assert!(!streams.is_empty());
    let addr = streams[0].0;
    let s0 = sim.metrics.stats(addr, 0).expect("t2 stream");
    let s1 = sim.metrics.stats(addr, 1).expect("t3 stream");
    assert!(s0.is_deterministic(), "t2 latency exact: {s0:?}");
    assert!(s1.is_deterministic(), "t3 latency exact: {s1:?}");
    assert_eq!(s1.min, s0.min + 1, "z1 read exactly one slot after y1");
}

#[test]
fn reversed_pragma_order_reverses_service() {
    // The user-specified order in the #consumer pragma IS the service
    // order: name t3 first and it is served first.
    let reversed = r#"
        thread t1 () { int x1; #consumer{mt1,[t3,z1],[t2,y1]} x1 = 1; }
        thread t2 () { int y1; #producer{mt1,[t1,x1]} y1 = x1; }
        thread t3 () { int z1; #producer{mt1,[t1,x1]} z1 = x1; }
    "#;
    let mut c = Compiler::new(reversed);
    c.organization(OrganizationKind::EventDriven)
        .skip_validation();
    let system = c.compile().expect("compiles");
    let bank = &system.plan.sync_banks[0];
    assert_eq!(bank.consumers, vec!["t3".to_owned(), "t2".to_owned()]);

    let mut sim = System::new(&system);
    assert!(sim.run_until_iterations(5, 10_000));
    let addr = sim.metrics.streams()[0].0;
    let t3_stats = sim.metrics.stats(addr, 0).expect("t3 is pseudo-port 0");
    let t2_stats = sim.metrics.stats(addr, 1).expect("t2 is pseudo-port 1");
    assert!(
        t3_stats.min < t2_stats.min,
        "t3 served first under reversed order"
    );
}
