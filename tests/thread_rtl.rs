//! Generated thread-datapath RTL vs the FSM executor: the same hic thread,
//! synthesized to RTL and run in the netlist interpreter, must emit the
//! same `send` values as the cycle-accurate FSM executor — the end-to-end
//! check on the behavioral-synthesis code generator.

use memsync::rtl::interp::Interp;
use memsync::sim::ThreadExec;
use memsync::synth::{codegen, Synthesis};

fn build(src: &str) -> (Interp, ThreadExec) {
    let program = memsync::hic::parser::parse(src).expect("parses");
    let fsm = Synthesis::of(&program).run().expect("synthesizes").fsm;
    let module = codegen::generate(&fsm).expect("codegen");
    memsync::rtl::validate::validate(&module).expect("valid netlist");
    (
        Interp::new(&module).expect("interpretable"),
        ThreadExec::new(fsm),
    )
}

/// Runs both sides until each produced `count` sends; returns the value
/// streams.
fn collect_sends(src: &str, inputs: &[u32], count: usize) -> (Vec<u64>, Vec<i64>) {
    let (mut rtl, mut exec) = build(src);

    // --- RTL side ---
    let mut rtl_sent = Vec::new();
    let mut input_iter = inputs.iter().copied().cycle();
    let has_rx = src.contains("recv");
    let mut rx_cur: Option<u32> = None;
    for _ in 0..20_000 {
        if rtl_sent.len() >= count {
            break;
        }
        if has_rx {
            if rx_cur.is_none() {
                rx_cur = Some(input_iter.next().expect("cycle never ends"));
            }
            rtl.set("rx_valid", 1);
            rtl.set("rx_data", u64::from(rx_cur.expect("set above")));
        }
        rtl.set("tx_ready", 1);
        rtl.settle();
        if has_rx && rtl.get("rx_ready") != 0 {
            rx_cur = None; // message consumed at this edge
        }
        if rtl.get("tx_valid") != 0 {
            rtl_sent.push(rtl.get("tx_data"));
        }
        rtl.step();
    }

    // --- executor side ---
    let mut input_iter = inputs.iter().copied().cycle();
    let mut rx_cur: Option<i64> = None;
    for _ in 0..20_000 {
        if exec.sent.len() >= count {
            break;
        }
        if has_rx && rx_cur.is_none() {
            rx_cur = Some(i64::from(input_iter.next().expect("cycle never ends")));
        }
        let mut rx = rx_cur;
        exec.tick(&mut rx, true);
        if has_rx && rx.is_none() {
            rx_cur = None;
        }
    }
    (rtl_sent, exec.sent.clone())
}

fn check(src: &str, inputs: &[u32], count: usize) {
    let (rtl, exec) = collect_sends(src, inputs, count);
    assert!(rtl.len() >= count, "RTL produced only {} sends", rtl.len());
    assert!(
        exec.len() >= count,
        "executor produced only {} sends",
        exec.len()
    );
    for i in 0..count {
        assert_eq!(
            rtl[i],
            exec[i] as u64 & 0xffff_ffff,
            "send #{i} differs (rtl {:x?} vs exec {:x?})",
            &rtl[..count.min(rtl.len())],
            &exec[..count.min(exec.len())]
        );
    }
}

#[test]
fn arithmetic_pipeline_matches() {
    check(
        "thread t() { message m; int a, b; recv m; a = (m >> 3) + 7; b = (a * 5) ^ (m & 255); send b; }",
        &[0x1234_5678, 0xffff_ffff, 0, 42],
        8,
    );
}

#[test]
fn control_flow_matches() {
    check(
        "thread t() { message m; int acc, i; recv m;
          acc = 0;
          for (i = 0; i < 4; i = i + 1) { acc = acc + ((m >> i) & 15); }
          if (acc > 20) { acc = acc - 20; } else { acc = acc + 100; }
          send acc; }",
        &[0x0f0f_0f0f, 1, 0xdead_beef],
        6,
    );
}

#[test]
fn case_machine_matches() {
    check(
        "thread t() { message m; int s, r; recv m;
          s = m & 3;
          case (s) { when 0: r = m + 1; when 1: r = m ^ 21; when 2: r = m << 2; default: r = 9; }
          send r; }",
        &[0, 1, 2, 3, 100, 101, 102, 103],
        8,
    );
}

#[test]
fn call_network_matches() {
    check(
        "thread t() { message m; int y; recv m; y = f(m, m >> 5); send y; }",
        &[7, 0x8000_0000, 12345],
        6,
    );
}

#[test]
fn comparisons_and_logic_match() {
    check(
        "thread t() { message m; int a, b, c; recv m;
          a = (m < 100) | ((m > 1000) << 1);
          b = (m == 77) + (m != 78);
          c = (a && b) | ((a || b) << 4);
          send a + (b << 8) + (c << 16); }",
        &[50, 77, 78, 5000, 100],
        10,
    );
}
