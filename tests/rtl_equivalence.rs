//! RTL ↔ behavioral-model equivalence: the generated wrapper netlists,
//! executed directly by the netlist interpreter, must produce the same
//! grant/data sequences as the behavioral models the simulator uses —
//! cycle for cycle, under randomized stimulus.

use memsync::core::modulo::ModuloSchedule;
use memsync::core::spec::WrapperSpec;
use memsync::core::{arbitrated, event_driven};
use memsync::rtl::interp::Interp;
use memsync::sim::arb_model::{ArbInputs, ArbitratedModel};
use memsync::sim::event_model::{EventDrivenModel, EvtInputs};
use memsync::trace::Pcg32;

const ADDRS: [u32; 2] = [3, 9];

/// Drives the arbitrated wrapper RTL and the behavioral model with the same
/// randomized producer/consumer stimulus and compares grants and read data
/// cycle by cycle.
fn check_arbitrated(consumers: usize, seed: u64, cycles: usize) {
    let spec = WrapperSpec::single_producer(consumers);
    let module = arbitrated::generate(&spec).expect("generates");
    let mut rtl = Interp::new(&module).expect("interpretable");
    let mut model = ArbitratedModel::new(1, consumers, 4);

    // Configure the dependency list identically on both sides.
    for (i, &addr) in ADDRS.iter().enumerate() {
        model.configure(addr, consumers as u8).expect("fits");
        rtl.set("cfg_we", 1);
        rtl.set("cfg_index", i as u64);
        rtl.set("cfg_key", u64::from(addr));
        rtl.step();
    }
    rtl.set("cfg_we", 0);

    let mut rng = Pcg32::seed_from_u64(seed);
    // Consumer request state: Some(addr) while requesting.
    let mut c_req: Vec<Option<u32>> = vec![None; consumers];
    let mut pending_data: Option<(usize, u32)> = None; // model's data due

    for cycle in 0..cycles {
        // Random stimulus: producer fires sometimes; idle consumers start
        // requesting one of the guarded addresses sometimes.
        let fire = rng.gen_bool(0.2);
        let wdata = (cycle as u32).wrapping_mul(2654435761);
        for r in c_req.iter_mut() {
            if r.is_none() && rng.gen_bool(0.3) {
                *r = Some(ADDRS[rng.gen_range_usize(0..ADDRS.len())]);
            }
        }

        // --- behavioral model ---
        let out = model.step(&ArbInputs {
            c_req: c_req.clone(),
            d_req: vec![fire.then_some((ADDRS[0], wdata, consumers as u8))],
            a_req: None,
        });

        // --- RTL ---
        rtl.set("d0_req", u64::from(fire));
        rtl.set("d0_addr", u64::from(ADDRS[0]));
        rtl.set("d0_wdata", u64::from(wdata));
        rtl.set("d0_dep", consumers as u64);
        for (i, r) in c_req.iter().enumerate() {
            rtl.set(&format!("c{i}_req"), u64::from(r.is_some()));
            rtl.set(&format!("c{i}_addr"), u64::from(r.unwrap_or(0)));
        }
        rtl.settle();

        // Compare grant outputs this cycle.
        let rtl_d = rtl.get("d0_grant") != 0;
        assert_eq!(rtl_d, out.d_grant[0], "cycle {cycle}: d_grant mismatch");
        let mut rtl_c = vec![false; consumers];
        for (i, g) in rtl_c.iter_mut().enumerate() {
            *g = rtl.get(&format!("c{i}_grant")) != 0;
        }
        for i in 0..consumers {
            assert_eq!(
                rtl_c[i], out.c_grant[i],
                "cycle {cycle}: c{i}_grant mismatch (model {:?}, rtl {:?})",
                out.c_grant, rtl_c
            );
        }
        // Compare read data: the model reports last cycle's issue now; the
        // RTL presents it on c_rdata now (BRAM dout registered at the edge).
        if let Some((who, data)) = pending_data.take() {
            let bus = rtl.get("c_rdata") as u32;
            assert_eq!(
                bus, data,
                "cycle {cycle}: c_rdata mismatch for consumer {who}"
            );
            assert_eq!(out.c_data, Some((who, data)), "cycle {cycle}: model data");
        } else {
            assert_eq!(out.c_data, None, "cycle {cycle}: unexpected model data");
        }
        // Schedule next-cycle data check from this cycle's model grant.
        if let Some(winner) = out.c_grant.iter().position(|&g| g) {
            // The model will deliver next cycle; remember what it reads.
            let addr = c_req[winner].expect("granted consumer was requesting");
            pending_data = Some((winner, model_peek(&model, consumers, addr)));
            c_req[winner] = None; // consumer drops its request once granted
        }

        rtl.step();
    }
}

/// Reads the model's BRAM through port A (peek helper: the word the granted
/// consumer is about to receive), on a clone so the original is untouched.
fn model_peek(model: &ArbitratedModel, consumers: usize, addr: u32) -> u32 {
    let mut m = model.clone();
    let mut inp = ArbInputs {
        c_req: vec![None; consumers],
        d_req: vec![None; 1],
        a_req: Some((addr, 0, false)),
    };
    m.step(&inp);
    inp.a_req = None;
    let out = m.step(&inp);
    out.a_data.expect("port A read returns")
}

#[test]
fn arbitrated_rtl_matches_model_2_consumers() {
    check_arbitrated(2, 0xA5A5, 400);
}

#[test]
fn arbitrated_rtl_matches_model_4_consumers() {
    check_arbitrated(4, 0x1234, 400);
}

#[test]
fn arbitrated_rtl_matches_model_8_consumers() {
    check_arbitrated(8, 0xBEEF, 400);
}

/// Event-driven wrapper RTL vs behavioral model.
fn check_event_driven(consumers: usize, seed: u64, cycles: usize) {
    let spec = WrapperSpec::single_producer(consumers);
    let module = event_driven::generate(&spec).expect("generates");
    let mut rtl = Interp::new(&module).expect("interpretable");
    let schedule = ModuloSchedule::new(vec![(0..consumers).collect()]).expect("valid");
    let mut model = EventDrivenModel::new(1, consumers, schedule);

    let mut rng = Pcg32::seed_from_u64(seed);
    let addr = 5u32;
    for cycle in 0..cycles {
        let fire = rng.gen_bool(0.15);
        let wdata = (cycle as u32).wrapping_mul(0x9e3779b9);

        let out = model.step(&EvtInputs {
            p_req: vec![fire.then_some((addr, wdata))],
            c_addr: vec![Some(addr); consumers],
            a_req: None,
        });

        rtl.set("p0_req", u64::from(fire));
        rtl.set("p0_addr", u64::from(addr));
        rtl.set("p0_wdata", u64::from(wdata));
        for i in 0..consumers {
            rtl.set(&format!("c{i}_addr"), u64::from(addr));
            rtl.set(&format!("c{i}_ack"), 1); // consumers always waiting
        }
        rtl.settle();

        assert_eq!(
            rtl.get("p0_grant") != 0,
            out.p_grant[0],
            "cycle {cycle}: p_grant mismatch"
        );
        for i in 0..consumers {
            let rtl_ev = rtl.get(&format!("c{i}_event")) != 0;
            let model_ev = out.c_event[i];
            assert_eq!(rtl_ev, model_ev, "cycle {cycle}: c{i}_event mismatch");
            if model_ev {
                let (who, data) = out.c_data.expect("event carries data");
                assert_eq!(who, i);
                assert_eq!(rtl.get("c_rdata") as u32, data, "cycle {cycle}: data");
            }
        }
        rtl.step();
    }
}

#[test]
fn event_driven_rtl_matches_model_2_consumers() {
    check_event_driven(2, 0x77, 400);
}

#[test]
fn event_driven_rtl_matches_model_4_consumers() {
    check_event_driven(4, 0x88, 400);
}

#[test]
fn event_driven_rtl_matches_model_8_consumers() {
    check_event_driven(8, 0x99, 400);
}
