//! O0-vs-O1 semantics equivalence: the optimizing middle-end must be
//! invisible to everything observable — egress frame streams under both
//! wrapper organizations, lost-update counts, per-thread dependency
//! surfaces, and static hazard codes — across the shipped examples and a
//! seeded pragma-shaped fuzz corpus.

use memsync::core::{Compiler, OptLevel, OrganizationKind};
use memsync::hic::hazards::{self, PacingAssumption};
use memsync::hic::Severity;
use memsync::sim::System;
use memsync::synth::fsm::Fsm;
use memsync::synth::ir::OpKind;
use memsync::trace::Pcg32;

/// Every shipped hic example, as `(name, source)`.
fn example_sources() -> Vec<(String, String)> {
    let dir = format!("{}/examples/hic", env!("CARGO_MANIFEST_DIR"));
    let mut out: Vec<(String, String)> = std::fs::read_dir(&dir)
        .expect("examples/hic exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "hic"))
        .map(|p| {
            let name = p.file_stem().unwrap().to_string_lossy().into_owned();
            let src = std::fs::read_to_string(&p).expect("readable example");
            (name, src)
        })
        .collect();
    out.sort();
    assert!(!out.is_empty(), "no examples found in {dir}");
    out
}

/// Static guarded memory ops in an FSM (each is a sync event).
fn guarded_ops(fsm: &Fsm) -> usize {
    fsm.states
        .iter()
        .flat_map(|s| s.ops.iter())
        .filter(|o| o.kind.dep().is_some())
        .count()
}

/// Compiles `src` at `level` under `kind` and pushes a paced descriptor
/// batch through it, mirroring the serve SimBackend's injection. Returns
/// the per-egress frame streams and the lost-update count.
fn egress_frames(src: &str, kind: OrganizationKind, level: OptLevel) -> (Vec<Vec<i64>>, u64) {
    let compiled = Compiler::new(src)
        .organization(kind)
        .opt(level)
        .skip_validation()
        .compile()
        .expect("example compiles");
    let mut sys = System::new(&compiled);
    let mut egress = Vec::new();
    while let Some(id) = sys.thread_id(&format!("e{}", egress.len())) {
        egress.push(id);
    }
    assert!(!egress.is_empty(), "example has egress threads");
    let descs: Vec<i64> = memsync::netapp::Workload::generate(0x0E0E, 48, 64)
        .packets
        .iter()
        .map(|p| i64::from(p.descriptor()))
        .collect();
    assert!(
        sys.submit_paced("rx", &egress, &descs, 0, 2_000),
        "paced run stalled at {level}"
    );
    let frames = egress.iter().map(|&id| sys.drain_sent(id)).collect();
    (frames, sys.lost_updates())
}

#[test]
fn examples_egress_is_identical_at_both_levels_and_organizations() {
    for (name, src) in example_sources() {
        for kind in [OrganizationKind::Arbitrated, OrganizationKind::EventDriven] {
            let (f0, l0) = egress_frames(&src, kind, OptLevel::O0);
            let (f1, l1) = egress_frames(&src, kind, OptLevel::O1);
            assert_eq!(f0, f1, "{name} under {kind}: egress diverged O0 vs O1");
            assert_eq!(l0, l1, "{name} under {kind}: lost updates diverged");
            assert_eq!(l0, 0, "{name} under {kind}: paced run lost updates");
        }
    }
}

#[test]
fn examples_keep_dependency_surfaces_and_hazard_codes() {
    for (name, src) in example_sources() {
        let o0 = Compiler::new(&src).compile().expect("O0 compiles");
        let o1 = Compiler::new(&src)
            .opt(OptLevel::O1)
            .compile()
            .expect("O1 compiles");
        assert_eq!(o0.fsms.len(), o1.fsms.len());
        for (a, b) in o0.fsms.iter().zip(o1.fsms.iter()) {
            assert_eq!(
                a.dependencies(),
                b.dependencies(),
                "{name} thread {}: dependency surface changed",
                a.thread
            );
        }
        // Hazard analysis runs on source, upstream of the middle-end:
        // the codes an O1 build reports are the codes an O0 build reports.
        let (r0, _) = hazards::check_source(&src, PacingAssumption::PacedArrivals).unwrap();
        let (r1, _) = hazards::check_source(&src, PacingAssumption::PacedArrivals).unwrap();
        assert_eq!(r0.codes(), r1.codes(), "{name}: hazard codes unstable");
    }
}

/// The tentpole pins: on forwarding_4, O1 must shrink the total FSM and
/// delete guarded memory ops (sync events), never grow either.
#[test]
fn forwarding_4_shrinks_under_o1() {
    let src = std::fs::read_to_string(format!(
        "{}/examples/hic/forwarding_4.hic",
        env!("CARGO_MANIFEST_DIR")
    ))
    .expect("forwarding_4 example");
    let o0 = Compiler::new(&src).compile().unwrap();
    let o1 = Compiler::new(&src).opt(OptLevel::O1).compile().unwrap();
    let states = |c: &memsync::core::flow::CompiledSystem| -> usize {
        c.fsms.iter().map(|f| f.states.len()).sum()
    };
    let guarded =
        |c: &memsync::core::flow::CompiledSystem| -> usize { c.fsms.iter().map(guarded_ops).sum() };
    assert!(
        states(&o1) < states(&o0),
        "O1 total states {} !< O0 {}",
        states(&o1),
        states(&o0)
    );
    assert!(
        guarded(&o1) < guarded(&o0),
        "O1 guarded ops {} !< O0 {}",
        guarded(&o1),
        guarded(&o0)
    );
}

/// The robustness generator's pragma-shaped programs, with every thread
/// forced to `send` so optimization differences would be observable.
fn fuzz_pragma_program(rng: &mut Pcg32) -> String {
    let threads = rng.gen_range_usize(1..4);
    let deps = ["m0", "m1", "m2"];
    let vars = ["v", "w", "x"];
    let mut src = String::new();
    for t in 0..threads {
        src.push_str(&format!("thread t{t} () {{ int v, w, x; message m;\n"));
        if rng.gen_range_usize(0..2) == 0 {
            src.push_str("recv m;\n");
        }
        for _ in 0..rng.gen_range_usize(1..5) {
            let dep = deps[rng.gen_range_usize(0..deps.len())];
            let var = vars[rng.gen_range_usize(0..vars.len())];
            let peer = rng.gen_range_usize(0..threads);
            let pvar = vars[rng.gen_range_usize(0..vars.len())];
            match rng.gen_range_usize(0..6) {
                0 => src.push_str(&format!(
                    "#consumer{{{dep},[t{peer},{pvar}]}} {var} = {var} + 1;\n"
                )),
                1 => src.push_str(&format!(
                    "#producer{{{dep},[t{peer},{pvar}]}} {var} = {pvar};\n"
                )),
                2 => src.push_str(&format!(
                    "if ({var}) {{ {var} = {var} * 3; }} else {{ w = w + {peer}; }}\n"
                )),
                3 => src.push_str(&format!("#constant{{k{t}, {}}} x = k{t};\n", peer + 2)),
                4 => src.push_str(&format!("{var} = ({var} << 2) | {};\n", peer + 1)),
                _ => src.push_str(&format!("{var} = {var} * 2;\n")),
            }
        }
        src.push_str("send ((v + w) + x);\n}\n");
    }
    src
}

/// True when any FSM statically re-reads a guarded location — window
/// semantics for re-reads are only pinned under paced injection, so the
/// free-running fuzz harness excludes them.
fn has_repeated_guarded_read(fsm: &Fsm) -> bool {
    let mut counts = std::collections::BTreeMap::new();
    for op in fsm.states.iter().flat_map(|s| s.ops.iter()) {
        if let OpKind::MemRead { var, dep: Some(_) } = &op.kind {
            let c: &mut usize = counts.entry(var.0).or_default();
            *c += 1;
            if *c > 1 {
                return true;
            }
        }
    }
    false
}

/// Per-thread sent streams plus the lost-update counter after a
/// free-running bounded run at `level`.
fn fuzz_run(src: &str, level: OptLevel) -> (Vec<(String, Vec<i64>)>, u64) {
    let compiled = Compiler::new(src)
        .opt(level)
        .skip_validation()
        .compile()
        .expect("corpus member compiles");
    let mut sys = System::new(&compiled);
    for (thread, fsm) in compiled.program.threads.iter().zip(compiled.fsms.iter()) {
        let receives = fsm
            .states
            .iter()
            .flat_map(|s| s.ops.iter())
            .any(|o| matches!(o.kind, OpKind::Recv { .. }));
        if receives {
            sys.push_messages(&thread.name, (0..8).map(|i| 1_000 + i * 7));
        }
    }
    let _ = sys.run_until_iterations(4, 50_000);
    let sent = compiled
        .program
        .threads
        .iter()
        .map(|t| {
            let id = sys.thread_id(&t.name).expect("thread exists");
            (t.name.clone(), sys.drain_sent(id))
        })
        .collect();
    (sent, sys.lost_updates())
}

#[test]
fn fuzz_corpus_sent_streams_match_across_levels() {
    let mut rng = Pcg32::seed_from_u64(0x0077_E051);
    let mut corpus: Vec<String> = Vec::new();
    let mut tries = 0;
    while corpus.len() < 24 && tries < 4_000 {
        tries += 1;
        let src = fuzz_pragma_program(&mut rng);
        // Strict front-end + flow acceptance.
        let Ok(compiled) = Compiler::new(&src).skip_validation().compile() else {
            continue;
        };
        // Hazard-clean under free-running arrivals: the values every
        // consume samples are interleaving-independent, so O0 and O1
        // timing differences cannot change them.
        let Ok((report, diags)) = hazards::check_source(&src, PacingAssumption::FreeRunning) else {
            continue;
        };
        if !report.is_clean() || diags.iter().any(|d| d.severity == Severity::Error) {
            continue;
        }
        if compiled.fsms.iter().any(has_repeated_guarded_read) {
            continue;
        }
        corpus.push(src);
    }
    assert!(
        corpus.len() >= 12,
        "fuzz filter too strict: only {} members after {tries} tries",
        corpus.len()
    );

    let mut compared = 0usize;
    for src in &corpus {
        let (s0, l0) = fuzz_run(src, OptLevel::O0);
        let (s1, l1) = fuzz_run(src, OptLevel::O1);
        assert_eq!(l0, l1, "lost updates diverged for:\n{src}");
        assert_eq!(s0.len(), s1.len());
        for ((name0, f0), (name1, f1)) in s0.iter().zip(s1.iter()) {
            assert_eq!(name0, name1);
            // The faster FSM overshoots differently; the common prefix
            // must agree value for value.
            let n = f0.len().min(f1.len());
            assert_eq!(
                &f0[..n],
                &f1[..n],
                "thread {name0} sent stream diverged for:\n{src}"
            );
            compared += n;
        }
    }
    assert!(compared > 0, "corpus produced no comparable sends");
}
