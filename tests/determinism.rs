//! Determinism regression: simulating the same compiled system twice must
//! produce byte-identical cycle-event traces. Reproducibility is what makes
//! the trace subsystem usable as evidence for the paper's latency claims —
//! any nondeterministic iteration order or uninitialized state in the
//! engine would show up here first.

use memsync::core::{CompiledSystem, Compiler, OrganizationKind};
use memsync::sim::traffic::BernoulliSource;
use memsync::sim::System;
use memsync::trace::{SharedSink, VecSink};

const FIGURE1_PACED: &str = r#"
    thread t1 () {
        message pkt;
        int x1, x2;
        recv pkt;
        #consumer{mt1,[t2,y1],[t3,z1]}
        x1 = f(pkt, x2);
    }
    thread t2 () {
        int y1, y2;
        #producer{mt1,[t1,x1]}
        y1 = g(x1, y2);
    }
    thread t3 () {
        int z1, z2;
        #producer{mt1,[t1,x1]}
        z1 = h(x1, z2);
    }
"#;

fn compiled(kind: OrganizationKind) -> CompiledSystem {
    let mut c = Compiler::new(FIGURE1_PACED);
    c.organization(kind).skip_validation();
    c.compile().expect("figure 1 compiles")
}

/// One instrumented run: the full event stream rendered as JSONL bytes.
fn trace_bytes(compiled: &CompiledSystem, cycles: usize) -> String {
    let shared = SharedSink::new(VecSink::new());
    let mut sys = System::new(compiled);
    sys.set_sink(Box::new(shared.clone()));
    sys.attach_source("t1", Box::new(BernoulliSource::new(3, 0.1)));
    for _ in 0..cycles {
        sys.step();
    }
    shared.with(|s| {
        s.events
            .iter()
            .map(|e| e.to_jsonl())
            .collect::<Vec<_>>()
            .join("\n")
    })
}

#[test]
fn arbitrated_trace_is_byte_identical_across_runs() {
    let sys = compiled(OrganizationKind::Arbitrated);
    let a = trace_bytes(&sys, 4000);
    let b = trace_bytes(&sys, 4000);
    assert!(!a.is_empty(), "instrumented run must emit events");
    assert_eq!(a, b, "same compiled system, same seed, same trace");
}

#[test]
fn event_driven_trace_is_byte_identical_across_runs() {
    let sys = compiled(OrganizationKind::EventDriven);
    let a = trace_bytes(&sys, 4000);
    let b = trace_bytes(&sys, 4000);
    assert!(!a.is_empty(), "instrumented run must emit events");
    assert_eq!(a, b, "same compiled system, same seed, same trace");
}

#[test]
fn traces_distinguish_the_organizations() {
    // Not merely deterministic — the two organizations produce different
    // event streams for the same program (stalls vs window waits).
    let a = trace_bytes(&compiled(OrganizationKind::Arbitrated), 4000);
    let e = trace_bytes(&compiled(OrganizationKind::EventDriven), 4000);
    assert_ne!(a, e);
}
