//! Pretty-printer round-trip property over every checked-in hic program:
//! `parse ∘ pretty` must be the identity on the canonical rendering, and
//! semantic analysis must see the same program on both sides.

use memsync_hic::{parser, pretty, sema};
use std::path::{Path, PathBuf};

fn all_hic_sources() -> Vec<(String, String)> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut sources = Vec::new();
    for dir in ["tests/hazards", "examples/hic"] {
        let mut files: Vec<PathBuf> = std::fs::read_dir(root.join(dir))
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|x| x == "hic"))
            .collect();
        files.sort();
        for f in files {
            sources.push((
                f.display().to_string(),
                std::fs::read_to_string(&f).unwrap(),
            ));
        }
    }
    for egress in [2usize, 4, 8] {
        sources.push((
            format!("app_source({egress})"),
            memsync_netapp::forwarding::app_source(egress),
        ));
    }
    sources.push((
        "core_source(4)".to_owned(),
        memsync_netapp::forwarding::core_source(4),
    ));
    sources
}

#[test]
fn pretty_roundtrip_is_a_fixpoint() {
    for (name, source) in all_hic_sources() {
        let program = parser::parse(&source).unwrap_or_else(|e| panic!("{name}: {e}"));
        let printed = pretty::program_to_string(&program);
        let reparsed =
            parser::parse(&printed).unwrap_or_else(|e| panic!("{name}: reparse: {e}\n{printed}"));
        let reprinted = pretty::program_to_string(&reparsed);
        assert_eq!(printed, reprinted, "{name}: pretty is not a fixpoint");
    }
}

#[test]
fn pretty_roundtrip_preserves_semantics() {
    for (name, source) in all_hic_sources() {
        let program = parser::parse(&source).unwrap_or_else(|e| panic!("{name}: {e}"));
        let (analysis, diags) = sema::analyze_lossy(&program);
        let reparsed = parser::parse(&pretty::program_to_string(&program))
            .unwrap_or_else(|e| panic!("{name}: reparse: {e}"));
        let (analysis2, diags2) = sema::analyze_lossy(&reparsed);
        // Dependencies must match exactly (ids, endpoints, order); spans
        // shift with the rendering, so compare span-insensitively.
        let strip = |a: &memsync_hic::Analysis| {
            a.dependencies
                .iter()
                .map(|d| (d.id.clone(), d.producer.clone(), d.consumers.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(
            strip(&analysis),
            strip(&analysis2),
            "{name}: dependencies drifted"
        );
        assert_eq!(analysis.constants, analysis2.constants, "{name}");
        assert_eq!(analysis.interfaces, analysis2.interfaces, "{name}");
        let msgs =
            |d: &[memsync_hic::Diagnostic]| d.iter().map(|d| d.message.clone()).collect::<Vec<_>>();
        assert_eq!(msgs(&diags), msgs(&diags2), "{name}: diagnostics drifted");
    }
}
