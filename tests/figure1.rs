//! E7 — the paper's Figure 1, verbatim: the front-end must recover the
//! `mt1` dependency exactly as the paper describes, and the full flow must
//! produce implementable hardware under both organizations.

use memsync::core::{Compiler, OrganizationKind};
use memsync::hic::{compile, Endpoint};

/// Figure 1 of the paper, transcribed verbatim (modulo whitespace).
const FIGURE1: &str = r#"
    thread t1 () {
        int x1, xtmp, x2;
        #consumer{mt1,[t2,y1],[t3,z1]}
        x1 = f(xtmp, x2);
    }
    thread t2 () {
        int y1, y2;
        #producer{mt1,[t1,x1]}
        y1 = g(x1, y2);
    }
    thread t3 () {
        int z1, z2;
        #producer{mt1,[t1,x1]}
        z1 = h(x1, z2);
    }
"#;

#[test]
fn front_end_recovers_mt1() {
    let (program, analysis) = compile(FIGURE1).expect("figure 1 is valid hic");
    assert_eq!(program.threads.len(), 3);
    assert_eq!(analysis.dependencies.len(), 1);
    let dep = analysis.dependency("mt1").expect("mt1 resolved");
    assert_eq!(dep.producer, Endpoint::new("t1", "x1"));
    assert_eq!(
        dep.consumers,
        vec![Endpoint::new("t2", "y1"), Endpoint::new("t3", "z1")]
    );
    assert_eq!(dep.dep_number(), 2, "two threads depend on this producer");
}

#[test]
fn inference_matches_pragmas() {
    // §2: use-def analysis can extract the same producers/consumers the
    // pragmas declare.
    let program = memsync::hic::parser::parse(FIGURE1).expect("parses");
    let inferred = memsync::hic::usedef::infer_dependencies(&program);
    assert_eq!(inferred.len(), 1);
    assert_eq!(inferred[0].producer, Endpoint::new("t1", "x1"));
    assert_eq!(inferred[0].consumers.len(), 2);
}

#[test]
fn both_organizations_implement_figure1() {
    for kind in [OrganizationKind::Arbitrated, OrganizationKind::EventDriven] {
        let system = Compiler::new(FIGURE1)
            .organization(kind)
            .compile()
            .unwrap_or_else(|e| panic!("{kind}: {e}"));
        assert_eq!(system.fsms.len(), 3);
        assert_eq!(system.wrapper_modules.len(), 1);
        for module in system
            .thread_modules
            .iter()
            .chain(system.wrapper_modules.iter())
        {
            memsync::rtl::validate::validate(module)
                .unwrap_or_else(|e| panic!("{kind}/{}: {e:?}", module.name));
        }
        let report = system.implement().expect("implementable");
        assert!(report.total_brams() >= 1, "shared memory uses a BRAM");
        assert!(report.fmax_mhz() > 50.0);
    }
}

#[test]
fn hdl_emission_is_complete() {
    let system = Compiler::new(FIGURE1).compile().expect("compiles");
    let verilog = system.verilog();
    let vhdl = system.vhdl();
    for name in ["thread_t1", "thread_t2", "thread_t3", "memsync_arb_p1c2"] {
        assert!(
            verilog.contains(&format!("module {name}")),
            "verilog missing {name}"
        );
        assert!(
            vhdl.contains(&format!("entity {name}")),
            "vhdl missing {name}"
        );
    }
    // The wrapper instantiates the BRAM and the dependency-list registers.
    assert!(verilog.contains("bram_mem"));
    assert!(verilog.contains("dl0_key"));
}

#[test]
fn figure1_deadlock_free_but_reversed_is_not() {
    // Sanity: reversing one dependency direction creates a cycle the
    // static check must reject.
    let cyclic = r#"
        thread t1 () { int x1, q; #consumer{mt1,[t2,y1]} x1 = 1; #producer{mt2,[t2,w]} q = w; }
        thread t2 () { int y1, w; #producer{mt1,[t1,x1]} y1 = x1; #consumer{mt2,[t1,q]} w = 2; }
    "#;
    let err = compile(cyclic).expect_err("cycle must be rejected");
    assert!(err.to_string().contains("static deadlock"), "{err}");
}
