// expect: deadlock_cycle
// a waits on b's produce of m2 while b waits on a's produce of m1: a
// cycle in the thread-level producer/consumer graph. Strict analysis
// rejects this program; the lint still reports it with hazard structure.
thread a () { int v, x; #consumer{m1,[b,y]} v = 1; #producer{m2,[b,w]} x = w; }
thread b () { int w, y; #consumer{m2,[a,x]} w = 1; #producer{m1,[a,v]} y = v; }
