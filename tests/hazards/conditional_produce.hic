// expect: consume_before_produce
// The produce of `d` sits under a condition: an iteration taking the
// other arm completes without writing `v`, leaving the consumer blocked
// on a value that round never produced.
thread p () { message m; int v; recv m; if (m) { #consumer{d,[c,w]} v = m; } send m; }
thread c () { int w; #producer{d,[p,v]} w = v; }
