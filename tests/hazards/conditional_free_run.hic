// expect: consume_before_produce lost_update
// pacing: free-running
// Both bug classes at once: the produce is conditional (some iterations
// skip it) and, free-running, nothing separates two produces either.
thread p () { message m; int v; recv m; if (m) { #consumer{d,[c,w]} v = m; } }
thread c () { int w; #producer{d,[p,v]} w = v; send w; }
