// expect: lost_update
// Two writes to the guarded variable in one iteration with no consume in
// between: the second write overwrites the first before `c` can read it,
// pacing or not.
thread p () { message m; int v; recv m; #consumer{d,[c,w]} v = m; v = v + 1; }
thread c () { int w; #producer{d,[p,v]} w = v; send w; }
