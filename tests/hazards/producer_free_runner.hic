// expect: lost_update
// A producer with no recv and no guarded consume free-runs: it re-arms
// `d` every iteration, far faster than the consumer's guarded read can
// drain it. Hazardous under any arrival assumption; the differential
// test drives this program and watches the runtime counter climb.
thread p () { int v; #consumer{d,[c,w]} v = 1; }
thread c () { int w; #producer{d,[p,v]} w = v; send w; }
