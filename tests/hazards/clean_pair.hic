// expect: clean
// A recv-paced producer/consumer pair: under paced arrivals a new message
// only lands after the consumer drained the previous value, so successive
// produces of `d` are always separated by a consume.
thread p () { message m; int v; recv m; #consumer{d,[c,w]} v = m; }
thread c () { int w; #producer{d,[p,v]} w = v; send w; }
