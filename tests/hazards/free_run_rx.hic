// expect: lost_update
// pacing: free-running
// The same clean pair, analyzed as if arrivals were free-running (the
// memsync-serve pacing workaround removed): recv no longer separates
// produces of `d`, so back-to-back messages overwrite the guarded value.
thread p () { message m; int v; recv m; #consumer{d,[c,w]} v = m; }
thread c () { int w; #producer{d,[p,v]} w = v; send w; }
