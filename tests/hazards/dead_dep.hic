// expect: dead_dependency
// `d` is declared by the producer but no thread ever acknowledges it via
// #producer: every write arms a counter nobody drains.
thread p () { message m; int v; recv m; #consumer{d,[c,w]} v = m; }
thread c () { int w; w = 1; send w; }
