// expect: unknown_dependency
// `c` reads `v`, which only `p` defines, but no pragma declares the
// dependency: use-def inference exposes the unguarded shared access.
thread p () { message m; int v; recv m; v = m; }
thread c () { int w; w = v; send w; }
