//! Differential test between the two lost-update detectors: the static
//! hazard pass (`memsync_hic::hazards`) and the simulator's runtime
//! `lost_updates` counter must agree on a corpus of known-good and
//! known-bad programs.
//!
//! "Agree" means: a program the static pass calls clean under an arrival
//! assumption runs with a zero counter under the matching injection
//! regime, and a program it flags loses updates when actually driven that
//! way.

use memsync::core::{Compiler, OrganizationKind};
use memsync::netapp::forwarding::app_source;
use memsync::netapp::Workload;
use memsync::sim::System;
use memsync_hic::hazards::{self, HazardCode, PacingAssumption};

fn build(source: &str, kind: OrganizationKind) -> System {
    let mut c = Compiler::new(source);
    c.organization(kind).skip_validation();
    System::new(&c.compile().expect("program compiles"))
}

#[test]
fn paced_forwarding_is_clean_statically_and_dynamically() {
    let source = app_source(2);
    let (report, _) = hazards::check_source(&source, PacingAssumption::PacedArrivals).unwrap();
    assert!(report.is_clean(), "static: {:#?}", report.hazards);

    let w = Workload::generate(0xD1FF, 24, 16);
    for kind in [OrganizationKind::Arbitrated, OrganizationKind::EventDriven] {
        let mut sys = build(&source, kind);
        let ids: Vec<_> = (0..2)
            .map(|i| sys.thread_id(&format!("e{i}")).expect("egress thread"))
            .collect();
        for (k, desc) in w.descriptors().into_iter().enumerate() {
            sys.push_messages("rx", [desc]);
            assert!(
                sys.run_until_sent(&ids, k + 1, 5_000),
                "{kind}: packet {k} stalled"
            );
        }
        assert_eq!(sys.lost_updates(), 0, "dynamic counter under {kind}");
    }
}

#[test]
fn unpaced_forwarding_fires_both_detectors() {
    let source = app_source(2);
    let (report, _) = hazards::check_source(&source, PacingAssumption::FreeRunning).unwrap();
    assert!(
        report
            .hazards
            .iter()
            .any(|h| h.code == HazardCode::LostUpdate && h.dep.as_deref() == Some("m_rx")),
        "static: {:#?}",
        report.hazards
    );

    // Drive the same source with the burst the static pass assumed:
    // every descriptor enqueued at once, arbitrated organization (writes
    // always accepted, so overwrites are real losses).
    let w = Workload::generate(0xD1FF, 24, 16);
    let mut sys = build(&source, OrganizationKind::Arbitrated);
    sys.push_messages("rx", w.descriptors());
    for _ in 0..200_000 {
        sys.step();
    }
    assert!(
        sys.lost_updates() > 0,
        "dynamic counter must catch the unpaced overwrites"
    );
}

#[test]
fn free_running_producer_fires_both_detectors_even_paced() {
    // The corpus program `producer_free_runner.hic`: no recv, no guarded
    // consume — the producer re-arms `d` every iteration. The static pass
    // flags it under *paced* arrivals (pacing can't help a thread that
    // never receives), and actually running it loses most produces.
    let source = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/hazards/producer_free_runner.hic"
    ))
    .unwrap();
    let (report, _) = hazards::check_source(&source, PacingAssumption::PacedArrivals).unwrap();
    assert!(
        report.has(HazardCode::LostUpdate),
        "static: {:#?}",
        report.hazards
    );

    let mut sys = build(&source, OrganizationKind::Arbitrated);
    let c = sys.thread_id("c").expect("consumer thread");
    for _ in 0..20_000 {
        sys.step();
    }
    assert!(
        sys.sent_count(c) > 0,
        "consumer must still make progress (sampling, not blocking)"
    );
    assert!(
        sys.lost_updates() > 0,
        "a free-running producer must overwrite unconsumed values"
    );
}

#[test]
fn clean_pair_corpus_program_runs_lossless_when_paced() {
    let source = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/hazards/clean_pair.hic"
    ))
    .unwrap();
    let (report, _) = hazards::check_source(&source, PacingAssumption::PacedArrivals).unwrap();
    assert!(report.is_clean(), "static: {:#?}", report.hazards);

    for kind in [OrganizationKind::Arbitrated, OrganizationKind::EventDriven] {
        let mut sys = build(&source, kind);
        let c = sys.thread_id("c").expect("consumer thread");
        for k in 0..8usize {
            sys.push_messages("p", [i64::from(k as i32)]);
            assert!(
                sys.run_until_sent(&[c], k + 1, 5_000),
                "{kind}: message {k} stalled"
            );
        }
        assert_eq!(sys.lost_updates(), 0, "dynamic counter under {kind}");
    }
}
