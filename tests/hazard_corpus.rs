//! The hazard corpus: known-good and known-bad hic programs with pinned
//! hazard codes, plus the checked-in forwarding sources that must stay
//! clean and in sync with the generator.
//!
//! Corpus files live in `tests/hazards/*.hic`. The first comment line is
//! a header `// expect: <code...>` (or `// expect: clean`); an optional
//! `// pacing: free-running` line selects the arrival assumption
//! (default: paced, matching `memsync-lint` without `--unpaced`).
//!
//! Regenerate `examples/hic/*.hic` with
//! `MEMSYNC_REGEN=1 cargo test --test hazard_corpus`.

use memsync_hic::hazards::{self, PacingAssumption};
use std::path::{Path, PathBuf};

fn repo_path(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

fn hic_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("read {}: {e}", dir.display()))
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "hic"))
        .collect();
    files.sort();
    files
}

/// Parses the `// expect:` / `// pacing:` header of a corpus file.
fn parse_header(source: &str, path: &Path) -> (Vec<String>, PacingAssumption) {
    let mut expect = None;
    let mut pacing = PacingAssumption::PacedArrivals;
    for line in source.lines() {
        let Some(rest) = line.trim().strip_prefix("//") else {
            break;
        };
        let rest = rest.trim();
        if let Some(codes) = rest.strip_prefix("expect:") {
            let mut codes: Vec<String> = codes.split_whitespace().map(str::to_owned).collect();
            if codes == ["clean"] {
                codes.clear();
            }
            codes.sort();
            expect = Some(codes);
        } else if let Some(p) = rest.strip_prefix("pacing:") {
            pacing = match p.trim() {
                "free-running" => PacingAssumption::FreeRunning,
                "paced" => PacingAssumption::PacedArrivals,
                other => panic!("{}: unknown pacing `{other}`", path.display()),
            };
        }
    }
    (
        expect.unwrap_or_else(|| panic!("{}: missing `// expect:` header", path.display())),
        pacing,
    )
}

#[test]
fn corpus_hazard_codes_are_exact() {
    let dir = repo_path("tests/hazards");
    let files = hic_files(&dir);
    assert!(files.len() >= 8, "corpus unexpectedly small: {files:?}");
    for path in files {
        let source = std::fs::read_to_string(&path).unwrap();
        let (expect, pacing) = parse_header(&source, &path);
        let (report, _diags) = hazards::check_source(&source, pacing)
            .unwrap_or_else(|e| panic!("{}: parse failed: {e}", path.display()));
        assert_eq!(
            report.codes(),
            expect,
            "{} under {:?}: hazards {:#?}",
            path.display(),
            pacing,
            report.hazards
        );
    }
}

#[test]
fn checked_in_forwarding_sources_match_the_generator() {
    let regen = std::env::var_os("MEMSYNC_REGEN").is_some();
    for egress in [2usize, 4] {
        let want = memsync_netapp::forwarding::app_source(egress);
        let path = repo_path(&format!("examples/hic/forwarding_{egress}.hic"));
        if regen {
            std::fs::write(&path, &want).unwrap();
            continue;
        }
        let got = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{}: {e} (run MEMSYNC_REGEN=1)", path.display()));
        assert_eq!(
            got,
            want,
            "{} is stale; regenerate with MEMSYNC_REGEN=1 cargo test --test hazard_corpus",
            path.display()
        );
    }
}

#[test]
fn checked_in_examples_are_hazard_free_when_paced() {
    for path in hic_files(&repo_path("examples/hic")) {
        let source = std::fs::read_to_string(&path).unwrap();
        let (report, diags) = hazards::check_source(&source, PacingAssumption::PacedArrivals)
            .unwrap_or_else(|e| panic!("{}: parse failed: {e}", path.display()));
        assert!(
            report.is_clean(),
            "{}: unexpected hazards {:#?}",
            path.display(),
            report.hazards
        );
        assert!(
            !diags
                .iter()
                .any(|d| d.severity == memsync_hic::Severity::Error),
            "{}: compile errors {diags:?}",
            path.display()
        );
    }
}

#[test]
fn forwarding_app_fires_lost_update_when_pacing_is_removed() {
    // The acceptance criterion for the static side: the exact source the
    // serve shards run, analyzed as if the PR 3 pacing workaround were
    // removed, must flag the rx producer.
    let source = memsync_netapp::forwarding::app_source(2);
    let (report, _) = hazards::check_source(&source, PacingAssumption::FreeRunning).unwrap();
    assert!(
        report.has(memsync_hic::HazardCode::LostUpdate),
        "free-running forwarding app must lose updates: {:#?}",
        report.hazards
    );
    assert!(
        report
            .hazards
            .iter()
            .any(|h| h.code == memsync_hic::HazardCode::LostUpdate
                && h.dep.as_deref() == Some("m_rx")),
        "the recv-fed m_rx dependency is the one pacing protects: {:#?}",
        report.hazards
    );
}
