//! Property-based tests over the core data structures and invariants.

use memsync::core::arbiter::RoundRobin;
use memsync::core::deplist::{DependencyList, ReadOutcome};
use memsync::hic::{parser, pretty};
use memsync::netapp::fib::{Fib, Route};
use memsync::netapp::Ipv4Packet;
use proptest::prelude::*;

proptest! {
    /// Pretty-printed programs re-parse to a fixed point.
    #[test]
    fn pretty_print_round_trip(
        n_vars in 1usize..5,
        assigns in proptest::collection::vec((0usize..5, 0usize..5, -100i64..100), 1..10),
    ) {
        let mut src = String::from("thread t() {\n    int ");
        let names: Vec<String> = (0..n_vars).map(|i| format!("v{i}")).collect();
        src.push_str(&names.join(", "));
        src.push_str(";\n");
        for (a, b, k) in &assigns {
            let dst = &names[a % n_vars];
            let lhs = &names[b % n_vars];
            src.push_str(&format!("    {dst} = {lhs} + {k};\n"));
        }
        src.push_str("}\n");
        let first = parser::parse(&src).expect("generated source parses");
        let rendered = pretty::program_to_string(&first);
        let second = parser::parse(&rendered).expect("rendered source parses");
        prop_assert_eq!(rendered, pretty::program_to_string(&second));
    }

    /// The trie FIB agrees with a brute-force longest-prefix scan.
    #[test]
    fn fib_matches_linear_scan(
        routes in proptest::collection::vec((0u32..=0xffff_ffff, 0u8..=32, 0u32..1000), 1..40),
        probes in proptest::collection::vec(0u32..=0xffff_ffff, 1..40),
    ) {
        let mut fib = Fib::new();
        let mut table: Vec<Route> = Vec::new();
        for (addr, len, hop) in routes {
            let prefix = if len == 0 { 0 } else { addr & (u32::MAX << (32 - len)) };
            let route = Route { prefix, len, next_hop: hop };
            // Later inserts replace earlier ones with the same prefix/len.
            table.retain(|r| !(r.prefix == prefix && r.len == len));
            table.push(route);
            fib.insert(route);
        }
        for addr in probes {
            let expected = table
                .iter()
                .filter(|r| r.len == 0 || (addr ^ r.prefix) >> (32 - u32::from(r.len.max(1))) == 0)
                .filter(|r| {
                    if r.len == 0 { true } else { (addr >> (32 - u32::from(r.len))) == (r.prefix >> (32 - u32::from(r.len))) }
                })
                .max_by_key(|r| r.len)
                .map(|r| r.next_hop);
            prop_assert_eq!(fib.lookup(addr), expected, "addr {:#x}", addr);
        }
    }

    /// Checksums always verify after construction and after forwarding.
    #[test]
    fn checksum_invariants(src in any::<u32>(), dst in any::<u32>(), ttl in 2u8..255, len in 20u16..1500) {
        let mut p = Ipv4Packet::new(src, dst, ttl, 17, len);
        prop_assert!(p.checksum_ok());
        prop_assert!(p.forward());
        prop_assert!(p.checksum_ok());
        prop_assert_eq!(p.ttl, ttl - 1);
    }

    /// Round-robin: with all requesters active, n consecutive grants are a
    /// permutation covering everyone (strict fairness).
    #[test]
    fn round_robin_fairness(n in 1usize..=8) {
        let mut rr = RoundRobin::new(n);
        let all = vec![true; n];
        let mut seen = vec![0u32; n];
        for _ in 0..n {
            let g = rr.grant(&all).expect("always grants");
            seen[g] += 1;
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "{:?}", seen);
    }

    /// Dependency list: the counter never underflows and exactly
    /// dep_number reads are granted per write.
    #[test]
    fn deplist_counts_exact(dep_number in 1u8..=15, extra_reads in 0usize..5) {
        let mut dl = DependencyList::new(4);
        dl.configure(7, dep_number).expect("configures");
        prop_assert!(dl.producer_write(7));
        let mut granted = 0;
        for _ in 0..(usize::from(dep_number) + extra_reads) {
            if matches!(dl.consumer_read(7), ReadOutcome::Granted { .. }) {
                granted += 1;
            }
        }
        prop_assert_eq!(granted, usize::from(dep_number));
        prop_assert_eq!(dl.consumer_read(7), ReadOutcome::Blocked);
    }

    /// The arbitrated behavioral model never grants a consumer while a
    /// producer is writing in the same cycle (priority D > C).
    #[test]
    fn arb_model_priority(seed in any::<u64>()) {
        use memsync::sim::arb_model::{ArbInputs, ArbitratedModel};
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = ArbitratedModel::new(1, 2, 4);
        m.configure(3, 2).expect("fits");
        for step in 0..200u32 {
            let write = rng.gen_bool(0.3);
            let inp = ArbInputs {
                c_req: vec![
                    rng.gen_bool(0.7).then_some(3),
                    rng.gen_bool(0.7).then_some(3),
                ],
                d_req: vec![write.then_some((3, step, 2))],
                a_req: None,
            };
            let out = m.step(&inp);
            if write {
                prop_assert!(
                    out.c_grant.iter().all(|g| !g),
                    "consumer granted during a producer write"
                );
            }
        }
    }
}

#[test]
fn eval_semantics_match_between_sim_and_codegen_network() {
    // The call network evaluated by the simulator matches what the RTL
    // network computes structurally: spot-check the rotate identity used
    // by the generator (rotl(x, n) == shl | shr).
    for (x, n) in [(0x8000_0001u32, 5u32), (0x1234_5678, 13), (0xffff_0000, 1)] {
        let rtl_style = (x << n) | (x >> (32 - n));
        assert_eq!(x.rotate_left(n), rtl_style);
    }
}
