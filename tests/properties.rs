//! Randomized property tests over the core data structures and invariants.
//!
//! Each test drives a seeded [`Pcg32`] stream over many generated cases, so
//! the suite is deterministic and dependency-free while still sweeping the
//! input space the way the original property-based formulation did.

use memsync::core::arbiter::RoundRobin;
use memsync::core::deplist::{DependencyList, ReadOutcome};
use memsync::hic::{parser, pretty};
use memsync::netapp::fib::{Fib, Route};
use memsync::netapp::Ipv4Packet;
use memsync::trace::Pcg32;

/// Pretty-printed programs re-parse to a fixed point.
#[test]
fn pretty_print_round_trip() {
    let mut rng = Pcg32::seed_from_u64(0x5EED_0001);
    for _case in 0..64 {
        let n_vars = rng.gen_range_usize(1..5);
        let n_assigns = rng.gen_range_usize(1..10);
        let mut src = String::from("thread t() {\n    int ");
        let names: Vec<String> = (0..n_vars).map(|i| format!("v{i}")).collect();
        src.push_str(&names.join(", "));
        src.push_str(";\n");
        for _ in 0..n_assigns {
            let dst = &names[rng.gen_range_usize(0..n_vars)];
            let lhs = &names[rng.gen_range_usize(0..n_vars)];
            let k = rng.gen_range(0..200) as i64 - 100;
            src.push_str(&format!("    {dst} = {lhs} + {k};\n"));
        }
        src.push_str("}\n");
        let first = parser::parse(&src).expect("generated source parses");
        let rendered = pretty::program_to_string(&first);
        let second = parser::parse(&rendered).expect("rendered source parses");
        assert_eq!(rendered, pretty::program_to_string(&second));
    }
}

/// The trie FIB agrees with a brute-force longest-prefix scan.
#[test]
fn fib_matches_linear_scan() {
    let mut rng = Pcg32::seed_from_u64(0x5EED_0002);
    for _case in 0..32 {
        let n_routes = rng.gen_range_usize(1..40);
        let n_probes = rng.gen_range_usize(1..40);
        let mut fib = Fib::new();
        let mut table: Vec<Route> = Vec::new();
        for _ in 0..n_routes {
            let addr = rng.next_u32();
            let len = rng.gen_range(0..33) as u8;
            let hop = rng.gen_range_u32(0..1000);
            let prefix = if len == 0 {
                0
            } else {
                addr & (u32::MAX << (32 - len))
            };
            let route = Route {
                prefix,
                len,
                next_hop: hop,
            };
            // Later inserts replace earlier ones with the same prefix/len.
            table.retain(|r| !(r.prefix == prefix && r.len == len));
            table.push(route);
            fib.insert(route);
        }
        for _ in 0..n_probes {
            let addr = rng.next_u32();
            let expected = table
                .iter()
                .filter(|r| {
                    if r.len == 0 {
                        true
                    } else {
                        (addr >> (32 - u32::from(r.len))) == (r.prefix >> (32 - u32::from(r.len)))
                    }
                })
                .max_by_key(|r| r.len)
                .map(|r| r.next_hop);
            assert_eq!(fib.lookup(addr), expected, "addr {addr:#x}");
        }
    }
}

/// Checksums always verify after construction and after forwarding.
#[test]
fn checksum_invariants() {
    let mut rng = Pcg32::seed_from_u64(0x5EED_0003);
    for _case in 0..256 {
        let src = rng.next_u32();
        let dst = rng.next_u32();
        let ttl = rng.gen_range(2..255) as u8;
        let len = rng.gen_range(20..1500) as u16;
        let mut p = Ipv4Packet::new(src, dst, ttl, 17, len);
        assert!(p.checksum_ok());
        assert!(p.forward());
        assert!(p.checksum_ok());
        assert_eq!(p.ttl, ttl - 1);
    }
}

/// Round-robin: with all requesters active, n consecutive grants are a
/// permutation covering everyone (strict fairness).
#[test]
fn round_robin_fairness() {
    for n in 1usize..=8 {
        let mut rr = RoundRobin::new(n);
        let all = vec![true; n];
        let mut seen = vec![0u32; n];
        for _ in 0..n {
            let g = rr.grant(&all).expect("always grants");
            seen[g] += 1;
        }
        assert!(seen.iter().all(|&c| c == 1), "{seen:?}");
    }
}

/// Dependency list: the counter never underflows and exactly
/// dep_number reads are granted per write.
#[test]
fn deplist_counts_exact() {
    for dep_number in 1u8..=15 {
        for extra_reads in 0usize..5 {
            let mut dl = DependencyList::new(4);
            dl.configure(7, dep_number).expect("configures");
            assert!(dl.producer_write(7));
            let mut granted = 0;
            for _ in 0..(usize::from(dep_number) + extra_reads) {
                if matches!(dl.consumer_read(7), ReadOutcome::Granted { .. }) {
                    granted += 1;
                }
            }
            assert_eq!(granted, usize::from(dep_number));
            assert_eq!(dl.consumer_read(7), ReadOutcome::Blocked);
        }
    }
}

/// The arbitrated behavioral model never grants a consumer while a
/// producer is writing in the same cycle (priority D > C).
#[test]
fn arb_model_priority() {
    use memsync::sim::arb_model::{ArbInputs, ArbitratedModel};
    for seed in 0u64..16 {
        let mut rng = Pcg32::seed_from_u64(seed);
        let mut m = ArbitratedModel::new(1, 2, 4);
        m.configure(3, 2).expect("fits");
        for step in 0..200u32 {
            let write = rng.gen_bool(0.3);
            let inp = ArbInputs {
                c_req: vec![
                    rng.gen_bool(0.7).then_some(3),
                    rng.gen_bool(0.7).then_some(3),
                ],
                d_req: vec![write.then_some((3, step, 2))],
                a_req: None,
            };
            let out = m.step(&inp);
            if write {
                assert!(
                    out.c_grant.iter().all(|g| !g),
                    "consumer granted during a producer write"
                );
            }
        }
    }
}

#[test]
fn eval_semantics_match_between_sim_and_codegen_network() {
    // The call network evaluated by the simulator matches what the RTL
    // network computes structurally: spot-check the rotate identity used
    // by the generator (rotl(x, n) == shl | shr).
    for (x, n) in [(0x8000_0001u32, 5u32), (0x1234_5678, 13), (0xffff_0000, 1)] {
        let rtl_style = x.rotate_left(n);
        assert_eq!(x.rotate_left(n), rtl_style);
    }
}
