//! Robustness: the front-end must never panic, whatever the input — every
//! failure is a diagnostic.

use memsync_hic::{lexer, parser};
use proptest::prelude::*;

proptest! {
    #[test]
    fn lexer_never_panics(input in "[ -~\\n\\t]{0,200}") {
        let _ = lexer::lex(&input);
    }

    #[test]
    fn parser_never_panics(input in "[ -~\\n\\t]{0,200}") {
        let _ = parser::parse(&input);
    }

    /// Token streams from valid programs always end with Eof and carry
    /// monotonically non-decreasing spans.
    #[test]
    fn spans_are_ordered(n in 1usize..20) {
        let mut src = String::from("thread t() { int a; ");
        for i in 0..n {
            src.push_str(&format!("a = a + {i}; "));
        }
        src.push('}');
        let tokens = lexer::lex(&src).expect("valid source lexes");
        prop_assert!(matches!(tokens.last().map(|t| &t.kind),
            Some(memsync_hic::token::TokenKind::Eof)));
        for w in tokens.windows(2) {
            prop_assert!(w[0].span.start <= w[1].span.start);
        }
    }

    /// Deeply nested expressions parse without stack issues (bounded depth).
    #[test]
    fn nested_parens_parse(depth in 1usize..40) {
        let mut expr = String::from("1");
        for _ in 0..depth {
            expr = format!("({expr} + 1)");
        }
        let src = format!("thread t() {{ int a; a = {expr}; }}");
        let program = parser::parse(&src).expect("nested expression parses");
        assert_eq!(program.threads.len(), 1);
    }
}

#[test]
fn error_messages_carry_locations() {
    let err = parser::parse("thread t() {\n  int a;\n  a = ;\n}").unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("3:"), "line number present: {msg}");
}
