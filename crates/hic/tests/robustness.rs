//! Robustness: the front-end must never panic, whatever the input — every
//! failure is a diagnostic. Random inputs come from a seeded [`Pcg32`]
//! stream so failures replay exactly.

use memsync_hic::hazards::{self, PacingAssumption};
use memsync_hic::{lexer, parser, sema};
use memsync_trace::Pcg32;

/// A random string of printable ASCII, newlines, and tabs.
fn fuzz_string(rng: &mut Pcg32, max_len: usize) -> String {
    const ALPHABET: &[u8] = b" !\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ[\\]^_`\
          abcdefghijklmnopqrstuvwxyz{|}~\n\t";
    let len = rng.gen_range_usize(0..max_len + 1);
    (0..len)
        .map(|_| ALPHABET[rng.gen_range_usize(0..ALPHABET.len())] as char)
        .collect()
}

#[test]
fn lexer_never_panics() {
    let mut rng = Pcg32::seed_from_u64(0xF022_0001);
    for _ in 0..512 {
        let input = fuzz_string(&mut rng, 200);
        let _ = lexer::lex(&input);
    }
}

#[test]
fn parser_never_panics() {
    let mut rng = Pcg32::seed_from_u64(0xF022_0002);
    for _ in 0..512 {
        let input = fuzz_string(&mut rng, 200);
        let _ = parser::parse(&input);
    }
}

/// A random program shaped like real pragma-carrying code: a handful of
/// threads with declarations, statements, and `#consumer` / `#producer` /
/// `#constant` pragmas whose ids and endpoints are drawn (often
/// inconsistently) from small pools — exercising exactly the cross-
/// validation and hazard paths, not just the tokenizer.
fn fuzz_pragma_program(rng: &mut Pcg32) -> String {
    let threads = rng.gen_range_usize(1..4);
    let deps = ["m0", "m1", "m2"];
    let vars = ["v", "w", "x"];
    let mut src = String::new();
    for t in 0..threads {
        src.push_str(&format!("thread t{t} () {{ int v, w, x; message m;\n"));
        if rng.gen_range_usize(0..2) == 0 {
            src.push_str("recv m;\n");
        }
        for _ in 0..rng.gen_range_usize(1..5) {
            let dep = deps[rng.gen_range_usize(0..deps.len())];
            let var = vars[rng.gen_range_usize(0..vars.len())];
            let peer = rng.gen_range_usize(0..threads);
            let pvar = vars[rng.gen_range_usize(0..vars.len())];
            match rng.gen_range_usize(0..6) {
                0 => src.push_str(&format!(
                    "#consumer{{{dep},[t{peer},{pvar}]}} {var} = {var} + 1;\n"
                )),
                1 => src.push_str(&format!(
                    "#producer{{{dep},[t{peer},{pvar}]}} {var} = {pvar};\n"
                )),
                // Misplaced pragmas: on control flow, not a write.
                2 => src.push_str(&format!(
                    "#producer{{{dep},[t{peer},{pvar}]}} if ({var}) {{ {var} = 1; }}\n"
                )),
                3 => src.push_str(&format!("#constant{{k{t}, {}}} x = k{t};\n", peer)),
                4 => src.push_str(&format!("if ({var}) {{ {var} = 2; }} else {{ w = 3; }}\n")),
                _ => src.push_str(&format!("{var} = {var} * 2;\n")),
            }
        }
        if rng.gen_range_usize(0..2) == 0 {
            src.push_str("send w;\n");
        }
        src.push_str("}\n");
    }
    src
}

/// Semantic analysis and the hazard pass must never panic on any program
/// the parser accepts — malformed pragma pairings (dangling deps,
/// mismatched endpoints, self-dependencies, misplaced pragmas) all come
/// out as diagnostics or hazards.
#[test]
fn sema_and_hazards_never_panic_on_pragma_shaped_programs() {
    let mut rng = Pcg32::seed_from_u64(0xF022_0003);
    for _ in 0..512 {
        let src = fuzz_pragma_program(&mut rng);
        let Ok(program) = parser::parse(&src) else {
            panic!("generator produced unparseable source:\n{src}");
        };
        let (analysis, _diags) = sema::analyze_lossy(&program);
        for pacing in [
            PacingAssumption::PacedArrivals,
            PacingAssumption::FreeRunning,
        ] {
            let report = hazards::check(&program, &analysis, pacing);
            // JSON rendering must hold for arbitrary reports too.
            let _ = report.to_json().render();
        }
    }
}

/// Raw fuzz strings through the whole front-end: whatever parses must
/// also analyze and hazard-check without panicking.
#[test]
fn full_front_end_never_panics_on_fuzz_strings() {
    let mut rng = Pcg32::seed_from_u64(0xF022_0004);
    for _ in 0..512 {
        let input = fuzz_string(&mut rng, 200);
        let _ = hazards::check_source(&input, PacingAssumption::PacedArrivals);
    }
}

/// Token streams from valid programs always end with Eof and carry
/// monotonically non-decreasing spans.
#[test]
fn spans_are_ordered() {
    for n in 1usize..20 {
        let mut src = String::from("thread t() { int a; ");
        for i in 0..n {
            src.push_str(&format!("a = a + {i}; "));
        }
        src.push('}');
        let tokens = lexer::lex(&src).expect("valid source lexes");
        assert!(matches!(
            tokens.last().map(|t| &t.kind),
            Some(memsync_hic::token::TokenKind::Eof)
        ));
        for w in tokens.windows(2) {
            assert!(w[0].span.start <= w[1].span.start);
        }
    }
}

/// Deeply nested expressions parse without stack issues (bounded depth).
#[test]
fn nested_parens_parse() {
    for depth in 1usize..40 {
        let mut expr = String::from("1");
        for _ in 0..depth {
            expr = format!("({expr} + 1)");
        }
        let src = format!("thread t() {{ int a; a = {expr}; }}");
        let program = parser::parse(&src).expect("nested expression parses");
        assert_eq!(program.threads.len(), 1);
    }
}

#[test]
fn error_messages_carry_locations() {
    let err = parser::parse("thread t() {\n  int a;\n  a = ;\n}").unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("3:"), "line number present: {msg}");
}
