//! Robustness: the front-end must never panic, whatever the input — every
//! failure is a diagnostic. Random inputs come from a seeded [`Pcg32`]
//! stream so failures replay exactly.

use memsync_hic::{lexer, parser};
use memsync_trace::Pcg32;

/// A random string of printable ASCII, newlines, and tabs.
fn fuzz_string(rng: &mut Pcg32, max_len: usize) -> String {
    const ALPHABET: &[u8] = b" !\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ[\\]^_`\
          abcdefghijklmnopqrstuvwxyz{|}~\n\t";
    let len = rng.gen_range_usize(0..max_len + 1);
    (0..len)
        .map(|_| ALPHABET[rng.gen_range_usize(0..ALPHABET.len())] as char)
        .collect()
}

#[test]
fn lexer_never_panics() {
    let mut rng = Pcg32::seed_from_u64(0xF022_0001);
    for _ in 0..512 {
        let input = fuzz_string(&mut rng, 200);
        let _ = lexer::lex(&input);
    }
}

#[test]
fn parser_never_panics() {
    let mut rng = Pcg32::seed_from_u64(0xF022_0002);
    for _ in 0..512 {
        let input = fuzz_string(&mut rng, 200);
        let _ = parser::parse(&input);
    }
}

/// Token streams from valid programs always end with Eof and carry
/// monotonically non-decreasing spans.
#[test]
fn spans_are_ordered() {
    for n in 1usize..20 {
        let mut src = String::from("thread t() { int a; ");
        for i in 0..n {
            src.push_str(&format!("a = a + {i}; "));
        }
        src.push('}');
        let tokens = lexer::lex(&src).expect("valid source lexes");
        assert!(matches!(
            tokens.last().map(|t| &t.kind),
            Some(memsync_hic::token::TokenKind::Eof)
        ));
        for w in tokens.windows(2) {
            assert!(w[0].span.start <= w[1].span.start);
        }
    }
}

/// Deeply nested expressions parse without stack issues (bounded depth).
#[test]
fn nested_parens_parse() {
    for depth in 1usize..40 {
        let mut expr = String::from("1");
        for _ in 0..depth {
            expr = format!("({expr} + 1)");
        }
        let src = format!("thread t() {{ int a; a = {expr}; }}");
        let program = parser::parse(&src).expect("nested expression parses");
        assert_eq!(program.threads.len(), 1);
    }
}

#[test]
fn error_messages_carry_locations() {
    let err = parser::parse("thread t() {\n  int a;\n  a = ;\n}").unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("3:"), "line number present: {msg}");
}
