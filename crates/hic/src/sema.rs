//! Semantic analysis for hic.
//!
//! Performs name resolution, light type checking, pragma cross-validation
//! (every `#consumer` sink must be matched by a `#producer` source and vice
//! versa), and the static deadlock check the paper relies on ("deadlocks are
//! identified statically since the user explicitly specifies producer(s) and
//! consumer(s)").

use crate::ast::{
    EndpointRef, Expr, LValue, Pragma, Program, Stmt, StmtKind, Thread, Type, TypeDefKind,
};
use crate::error::{CompileError, Diagnostic, Result, Span};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A `(thread, variable)` endpoint of a resolved dependency.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Endpoint {
    /// Thread name.
    pub thread: String,
    /// Variable name within that thread.
    pub var: String,
}

impl Endpoint {
    /// Creates an endpoint.
    pub fn new(thread: impl Into<String>, var: impl Into<String>) -> Self {
        Endpoint {
            thread: thread.into(),
            var: var.into(),
        }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.thread, self.var)
    }
}

impl From<&EndpointRef> for Endpoint {
    fn from(r: &EndpointRef) -> Self {
        Endpoint {
            thread: r.thread.clone(),
            var: r.var.clone(),
        }
    }
}

/// One fully resolved inter-thread memory dependency (`mt1` in Figure 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dependency {
    /// Dependency identifier from the pragmas.
    pub id: String,
    /// The producing `(thread, var)` — the write guarded by the organization.
    pub producer: Endpoint,
    /// Consuming `(thread, var)` pairs, in the static service order given by
    /// the `#consumer` pragma (the event-driven organization releases reads
    /// in exactly this order).
    pub consumers: Vec<Endpoint>,
    /// Where the `#consumer` pragma appeared.
    pub span: Span,
}

impl Dependency {
    /// The dependency number of §3.1: the count of consumer reads that must
    /// follow each producer write before the guarded address is released.
    pub fn dep_number(&self) -> u32 {
        self.consumers.len() as u32
    }
}

/// Result of semantic analysis over a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Analysis {
    /// Resolved dependencies, sorted by id.
    pub dependencies: Vec<Dependency>,
    /// `#constant` values, per name.
    pub constants: BTreeMap<String, i64>,
    /// `#interface` declarations, `name -> kind`.
    pub interfaces: BTreeMap<String, String>,
    /// Non-fatal warnings produced during analysis.
    pub warnings: Vec<Diagnostic>,
}

impl Analysis {
    /// Looks up a dependency by id.
    pub fn dependency(&self, id: &str) -> Option<&Dependency> {
        self.dependencies.iter().find(|d| d.id == id)
    }

    /// All dependencies in which `thread` participates as producer.
    pub fn produced_by<'a>(&'a self, thread: &'a str) -> impl Iterator<Item = &'a Dependency> {
        self.dependencies
            .iter()
            .filter(move |d| d.producer.thread == thread)
    }

    /// All dependencies in which `thread` participates as a consumer.
    pub fn consumed_by<'a>(&'a self, thread: &'a str) -> impl Iterator<Item = &'a Dependency> {
        self.dependencies
            .iter()
            .filter(move |d| d.consumers.iter().any(|c| c.thread == thread))
    }
}

/// Runs semantic analysis on a parsed program.
///
/// # Errors
///
/// Returns every error found in one batch: duplicate/undefined names,
/// malformed pragma pairings, and statically detected deadlock cycles in the
/// producer→consumer graph.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), memsync_hic::error::CompileError> {
/// let program = memsync_hic::parser::parse(
///     "thread p() { int v; #consumer{m, [c, w]} v = 1; }
///      thread c() { int w; #producer{m, [p, v]} w = v; }",
/// )?;
/// let analysis = memsync_hic::sema::analyze(&program)?;
/// assert_eq!(analysis.dependencies[0].dep_number(), 1);
/// # Ok(())
/// # }
/// ```
pub fn analyze(program: &Program) -> Result<Analysis> {
    let (analysis, diagnostics) = analyze_lossy(program);
    if diagnostics
        .iter()
        .any(|d| d.severity == crate::error::Severity::Error)
    {
        Err(CompileError::new(diagnostics))
    } else {
        Ok(analysis)
    }
}

/// Best-effort semantic analysis that never fails: returns whatever could
/// be resolved plus every diagnostic found (errors first, then warnings).
///
/// [`analyze`] is this with a hard stop on errors. The lenient form exists
/// for the hazard pass and `memsync-lint`: a program strict analysis
/// rejects (a statically deadlocked corpus program, say) still carries
/// enough resolved structure to hazard-check, and the lint wants to report
/// the deadlock as a *hazard with a span*, not an opaque compile failure.
pub fn analyze_lossy(program: &Program) -> (Analysis, Vec<Diagnostic>) {
    let mut ctx = Context::default();
    ctx.check_type_defs(program);
    ctx.check_threads(program);
    ctx.collect_pragmas(program);
    ctx.resolve_dependencies(program);
    ctx.check_deadlock();
    let mut dependencies: Vec<Dependency> = ctx.dependencies.into_values().collect();
    dependencies.sort_by(|a, b| a.id.cmp(&b.id));
    let analysis = Analysis {
        dependencies,
        constants: ctx.constants,
        interfaces: ctx.interfaces,
        warnings: ctx.warnings.clone(),
    };
    let mut diagnostics = ctx.errors;
    diagnostics.extend(ctx.warnings);
    (analysis, diagnostics)
}

#[derive(Default)]
struct Context {
    errors: Vec<Diagnostic>,
    warnings: Vec<Diagnostic>,
    constants: BTreeMap<String, i64>,
    interfaces: BTreeMap<String, String>,
    /// dep id -> partially built dependency.
    dependencies: BTreeMap<String, Dependency>,
    /// (dep id, consumer endpoint) seen in `#producer` pragmas, with the
    /// claimed producer source.
    producer_claims: Vec<(String, Endpoint, Endpoint, Span)>,
}

impl Context {
    fn error(&mut self, message: impl Into<String>, span: Span) {
        self.errors.push(Diagnostic::error(message, span));
    }

    fn warn(&mut self, message: impl Into<String>, span: Span) {
        self.warnings.push(Diagnostic::warning(message, span));
    }

    fn check_type_defs(&mut self, program: &Program) {
        let mut seen = BTreeSet::new();
        for def in &program.types {
            if !seen.insert(def.name.clone()) {
                self.error(
                    format!("duplicate type definition `{}`", def.name),
                    def.span,
                );
            }
            match &def.kind {
                TypeDefKind::Alias(ty) => self.check_type(program, ty, def.span),
                TypeDefKind::Union(fields) => {
                    let mut fseen = BTreeSet::new();
                    for f in fields {
                        if !fseen.insert(f.name.clone()) {
                            self.error(
                                format!("duplicate union field `{}` in `{}`", f.name, def.name),
                                f.span,
                            );
                        }
                        self.check_type(program, &f.ty, f.span);
                    }
                    if fields.is_empty() {
                        self.error(format!("union `{}` has no fields", def.name), def.span);
                    }
                }
            }
        }
    }

    fn check_type(&mut self, program: &Program, ty: &Type, span: Span) {
        if let Type::Named(name) = ty {
            if program.type_def(name).is_none() {
                self.error(format!("unknown type `{name}`"), span);
            }
        }
    }

    fn check_threads(&mut self, program: &Program) {
        let mut names = BTreeSet::new();
        for thread in &program.threads {
            if !names.insert(thread.name.clone()) {
                self.error(format!("duplicate thread `{}`", thread.name), thread.span);
            }
            self.check_thread_body(program, thread);
        }
        if program.threads.is_empty() {
            self.error("program declares no threads", Span::dummy());
        }
    }

    fn check_thread_body(&mut self, program: &Program, thread: &Thread) {
        let mut vars: BTreeMap<String, &Type> = BTreeMap::new();
        for decl in thread.params.iter().chain(thread.decls.iter()) {
            self.check_type(program, &decl.ty, decl.span);
            if vars.insert(decl.name.clone(), &decl.ty).is_some() {
                self.error(
                    format!(
                        "duplicate variable `{}` in thread `{}`",
                        decl.name, thread.name
                    ),
                    decl.span,
                );
            }
        }
        // Constants declared by pragmas anywhere in this thread are usable
        // as read-only names; collect them first.
        let mut const_names = BTreeSet::new();
        crate::ast::walk_stmts(&thread.body, &mut |stmt: &Stmt| {
            for pragma in &stmt.pragmas {
                if let Pragma::Constant { name, .. } = pragma {
                    const_names.insert(name.clone());
                }
            }
        });
        self.check_stmts(thread, &vars, &const_names, &thread.body);
    }

    fn check_stmts(
        &mut self,
        thread: &Thread,
        vars: &BTreeMap<String, &Type>,
        consts: &BTreeSet<String>,
        stmts: &[Stmt],
    ) {
        for stmt in stmts {
            self.check_stmt(thread, vars, consts, stmt);
        }
    }

    fn check_stmt(
        &mut self,
        thread: &Thread,
        vars: &BTreeMap<String, &Type>,
        consts: &BTreeSet<String>,
        stmt: &Stmt,
    ) {
        match &stmt.kind {
            StmtKind::Assign { target, value } => {
                let base = target.base();
                if !vars.contains_key(base) {
                    self.error(
                        format!(
                            "assignment to undeclared variable `{base}` in `{}`",
                            thread.name
                        ),
                        stmt.span,
                    );
                } else if consts.contains(base) {
                    self.error(format!("cannot assign to constant `{base}`"), stmt.span);
                }
                if let LValue::Index { index, .. } = target {
                    self.check_expr(thread, vars, consts, index, stmt.span);
                }
                self.check_expr(thread, vars, consts, value, stmt.span);
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.check_expr(thread, vars, consts, cond, stmt.span);
                self.check_stmts(thread, vars, consts, then_branch);
                self.check_stmts(thread, vars, consts, else_branch);
            }
            StmtKind::While { cond, body } => {
                self.check_expr(thread, vars, consts, cond, stmt.span);
                self.check_stmts(thread, vars, consts, body);
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                self.check_stmt(thread, vars, consts, init);
                self.check_expr(thread, vars, consts, cond, stmt.span);
                self.check_stmt(thread, vars, consts, step);
                self.check_stmts(thread, vars, consts, body);
            }
            StmtKind::Case {
                selector,
                arms,
                default,
            } => {
                self.check_expr(thread, vars, consts, selector, stmt.span);
                let mut seen = BTreeSet::new();
                for arm in arms {
                    if !seen.insert(arm.value) {
                        self.error(format!("duplicate case arm `{}`", arm.value), arm.span);
                    }
                    self.check_stmts(thread, vars, consts, &arm.body);
                }
                self.check_stmts(thread, vars, consts, default);
            }
            StmtKind::Recv { var } => {
                if !vars.contains_key(var) {
                    self.error(format!("recv into undeclared variable `{var}`"), stmt.span);
                }
            }
            StmtKind::Send { value } => self.check_expr(thread, vars, consts, value, stmt.span),
            StmtKind::Expr(e) => self.check_expr(thread, vars, consts, e, stmt.span),
            StmtKind::Block(body) => self.check_stmts(thread, vars, consts, body),
        }
    }

    fn check_expr(
        &mut self,
        thread: &Thread,
        vars: &BTreeMap<String, &Type>,
        consts: &BTreeSet<String>,
        expr: &Expr,
        span: Span,
    ) {
        let mut reads = Vec::new();
        expr.collect_reads(&mut reads);
        for name in reads {
            // A read may name a local, a pragma constant, or (per Figure 1)
            // a variable of another thread connected through shared memory
            // when a `#producer` pragma on the enclosing statement names it.
            if !vars.contains_key(&name)
                && !consts.contains(&name)
                && !self.is_remote_read(thread, &name)
            {
                self.error(
                    format!("use of undeclared variable `{name}` in `{}`", thread.name),
                    span,
                );
            }
        }
    }

    /// Whether `name` is a producer-side variable referenced via a
    /// `#producer` pragma somewhere in `thread` (Figure 1 reads `x1` inside
    /// `t2` under `#producer{mt1,[t1,x1]}`).
    fn is_remote_read(&self, thread: &Thread, name: &str) -> bool {
        let mut found = false;
        crate::ast::walk_stmts(&thread.body, &mut |stmt: &Stmt| {
            for pragma in &stmt.pragmas {
                if let Pragma::Producer { sources, .. } = pragma {
                    if sources.iter().any(|s| s.var == name) {
                        found = true;
                    }
                }
            }
        });
        found
    }

    fn collect_pragmas(&mut self, program: &Program) {
        for thread in &program.threads {
            crate::ast::walk_stmts(&thread.body, &mut |stmt: &Stmt| {
                for pragma in &stmt.pragmas {
                    match pragma {
                        Pragma::Constant { name, value, span } => {
                            if let Some(prev) = self.constants.insert(name.clone(), *value) {
                                if prev != *value {
                                    self.errors.push(Diagnostic::error(
                                        format!(
                                            "constant `{name}` redefined with a different value"
                                        ),
                                        *span,
                                    ));
                                }
                            }
                        }
                        Pragma::Interface { name, kind, span } => {
                            if let Some(prev) = self.interfaces.insert(name.clone(), kind.clone()) {
                                if prev != *kind {
                                    self.errors.push(Diagnostic::error(
                                        format!(
                                            "interface `{name}` redeclared with a different kind"
                                        ),
                                        *span,
                                    ));
                                }
                            }
                        }
                        Pragma::Producer { .. } | Pragma::Consumer { .. } => {}
                    }
                }
            });
        }
    }

    fn resolve_dependencies(&mut self, program: &Program) {
        // Pass 1: `#consumer` pragmas define dependencies (producer side).
        for thread in &program.threads {
            let thread_name = thread.name.clone();
            let mut pending: Vec<(String, Vec<EndpointRef>, Span, Option<String>)> = Vec::new();
            crate::ast::walk_stmts(&thread.body, &mut |stmt: &Stmt| {
                for pragma in &stmt.pragmas {
                    if let Pragma::Consumer { dep, sinks, span } = pragma {
                        let produced_var = match &stmt.kind {
                            StmtKind::Assign { target, .. } => Some(target.base().to_owned()),
                            StmtKind::Recv { var } => Some(var.clone()),
                            _ => None,
                        };
                        pending.push((dep.clone(), sinks.clone(), *span, produced_var));
                    }
                }
            });
            for (dep, sinks, span, produced_var) in pending {
                let Some(var) = produced_var else {
                    self.error(
                        format!("`#consumer{{{dep}, ...}}` must annotate an assignment or recv"),
                        span,
                    );
                    continue;
                };
                let producer = Endpoint::new(thread_name.clone(), var);
                let consumers: Vec<Endpoint> = sinks.iter().map(Endpoint::from).collect();
                let mut unique = BTreeSet::new();
                for c in &consumers {
                    if !unique.insert(c.clone()) {
                        self.error(format!("duplicate consumer endpoint {c} in `{dep}`"), span);
                    }
                    if program.thread(&c.thread).is_none() {
                        self.error(
                            format!(
                                "consumer pragma `{dep}` names unknown thread `{}`",
                                c.thread
                            ),
                            span,
                        );
                    } else if program.thread(&c.thread).unwrap().var(&c.var).is_none() {
                        self.error(
                            format!(
                                "consumer pragma `{dep}` names unknown variable `{}` in `{}`",
                                c.var, c.thread
                            ),
                            span,
                        );
                    }
                }
                if self
                    .dependencies
                    .insert(
                        dep.clone(),
                        Dependency {
                            id: dep.clone(),
                            producer,
                            consumers,
                            span,
                        },
                    )
                    .is_some()
                {
                    self.error(
                        format!("dependency `{dep}` defined by multiple `#consumer` pragmas"),
                        span,
                    );
                }
            }
        }

        // Pass 2: `#producer` pragmas acknowledge dependencies (consumer side).
        for thread in &program.threads {
            let thread_name = thread.name.clone();
            let mut claims: Vec<(String, Endpoint, Endpoint, Span)> = Vec::new();
            let mut misplaced: Vec<(String, Span)> = Vec::new();
            crate::ast::walk_stmts(&thread.body, &mut |stmt: &Stmt| {
                for pragma in &stmt.pragmas {
                    if let Pragma::Producer { dep, sources, span } = pragma {
                        // The annotated statement's write target identifies
                        // which local variable receives the produced value;
                        // the pragma's endpoint names the producing
                        // (thread, var). Anything but an assignment or recv
                        // has no receiving variable and is rejected.
                        let consumed_into = match &stmt.kind {
                            StmtKind::Assign { target, .. } => target.base().to_owned(),
                            StmtKind::Recv { var } => var.clone(),
                            _ => {
                                misplaced.push((dep.clone(), *span));
                                continue;
                            }
                        };
                        for s in sources {
                            claims.push((
                                dep.clone(),
                                Endpoint::new(thread_name.clone(), consumed_into.clone()),
                                Endpoint::from(s),
                                *span,
                            ));
                        }
                    }
                }
            });
            for (dep, span) in misplaced {
                self.error(
                    format!("`#producer{{{dep}, ...}}` must annotate an assignment or recv"),
                    span,
                );
            }
            self.producer_claims.extend(claims);
        }

        // Cross-validate both directions.
        let claims = std::mem::take(&mut self.producer_claims);
        for (dep, consumer_ep, claimed_source, span) in &claims {
            match self.dependencies.get(dep).cloned() {
                None => self.error(
                    format!("`#producer{{{dep}, ...}}` refers to undefined dependency `{dep}`"),
                    *span,
                ),
                Some(d) => {
                    if d.producer != *claimed_source {
                        self.error(
                            format!(
                                "dependency `{dep}`: `#producer` names {claimed_source} but the \
                                 `#consumer` side is {}",
                                d.producer
                            ),
                            *span,
                        );
                    }
                    if !d.consumers.iter().any(|c| c.thread == consumer_ep.thread) {
                        self.error(
                            format!(
                                "thread `{}` declares `#producer{{{dep}}}` but is not listed as a \
                                 consumer of `{dep}`",
                                consumer_ep.thread
                            ),
                            *span,
                        );
                    }
                }
            }
        }
        // Every consumer listed in a `#consumer` pragma must acknowledge via
        // `#producer` in its own thread; missing acknowledgements are warnings
        // (the compiler can still enforce the dependency, but the thread's
        // schedule may not expect blocking).
        let deps: Vec<Dependency> = self.dependencies.values().cloned().collect();
        for d in &deps {
            for c in &d.consumers {
                let acknowledged = claims
                    .iter()
                    .any(|(dep, ep, _, _)| dep == &d.id && ep.thread == c.thread);
                if !acknowledged {
                    self.warn(
                        format!(
                            "consumer {} of dependency `{}` has no matching `#producer` pragma",
                            c, d.id
                        ),
                        d.span,
                    );
                }
            }
            if program.thread(&d.producer.thread).is_none() {
                self.error(
                    format!(
                        "dependency `{}` producer thread `{}` not found",
                        d.id, d.producer.thread
                    ),
                    d.span,
                );
            }
        }
    }

    /// Static deadlock detection: a cycle in the thread-level
    /// producer→consumer graph means a set of threads that can all block
    /// waiting on each other.
    fn check_deadlock(&mut self) {
        let mut edges: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for d in self.dependencies.values() {
            for c in &d.consumers {
                edges
                    .entry(d.producer.thread.as_str())
                    .or_default()
                    .insert(c.thread.as_str());
            }
        }
        // Iterative DFS cycle detection with colors.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let nodes: Vec<&str> = edges
            .iter()
            .flat_map(|(k, vs)| std::iter::once(*k).chain(vs.iter().copied()))
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        let mut color: BTreeMap<&str, Color> = nodes.iter().map(|n| (*n, Color::White)).collect();
        let mut cycle_nodes: BTreeSet<String> = BTreeSet::new();

        fn dfs<'a>(
            node: &'a str,
            edges: &BTreeMap<&'a str, BTreeSet<&'a str>>,
            color: &mut BTreeMap<&'a str, Color>,
            cycle: &mut BTreeSet<String>,
        ) {
            color.insert(node, Color::Gray);
            if let Some(next) = edges.get(node) {
                for &n in next {
                    match color.get(n).copied().unwrap_or(Color::White) {
                        Color::White => dfs(n, edges, color, cycle),
                        Color::Gray => {
                            cycle.insert(node.to_owned());
                            cycle.insert(n.to_owned());
                        }
                        Color::Black => {}
                    }
                }
            }
            color.insert(node, Color::Black);
        }

        for n in &nodes {
            if color[n] == Color::White {
                dfs(n, &edges, &mut color, &mut cycle_nodes);
            }
        }
        if !cycle_nodes.is_empty() {
            let involved: Vec<String> = cycle_nodes.into_iter().collect();
            let span = self
                .dependencies
                .values()
                .find(|d| involved.contains(&d.producer.thread))
                .map(|d| d.span)
                .unwrap_or_else(Span::dummy);
            self.error(
                format!(
                    "static deadlock: producer/consumer cycle through threads {}",
                    involved.join(", ")
                ),
                span,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    const FIGURE1: &str = r#"
        thread t1 () {
            int x1, xtmp, x2;
            #consumer{mt1,[t2,y1],[t3,z1]}
            x1 = f(xtmp, x2);
        }
        thread t2 () {
            int y1, y2;
            #producer{mt1,[t1,x1]}
            y1 = g(x1, y2);
        }
        thread t3 () {
            int z1, z2;
            #producer{mt1,[t1,x1]}
            z1 = h(x1, z2);
        }
    "#;

    #[test]
    fn figure1_resolves_mt1() {
        let program = parse(FIGURE1).unwrap();
        let analysis = analyze(&program).unwrap();
        assert_eq!(analysis.dependencies.len(), 1);
        let d = &analysis.dependencies[0];
        assert_eq!(d.id, "mt1");
        assert_eq!(d.producer, Endpoint::new("t1", "x1"));
        assert_eq!(
            d.consumers,
            vec![Endpoint::new("t2", "y1"), Endpoint::new("t3", "z1")]
        );
        assert_eq!(d.dep_number(), 2);
        assert!(analysis.warnings.is_empty());
    }

    #[test]
    fn consumer_order_is_static_service_order() {
        let src = r#"
            thread p () { int v; #consumer{m,[b,x],[a,y]} v = 1; }
            thread a () { int y; #producer{m,[p,v]} y = v; }
            thread b () { int x; #producer{m,[p,v]} x = v; }
        "#;
        let analysis = analyze(&parse(src).unwrap()).unwrap();
        let d = &analysis.dependencies[0];
        // Order preserved from the pragma, not alphabetical.
        assert_eq!(d.consumers[0].thread, "b");
        assert_eq!(d.consumers[1].thread, "a");
    }

    #[test]
    fn detects_undeclared_variable() {
        let err = analyze(&parse("thread t() { int a; a = b + 1; }").unwrap()).unwrap_err();
        assert!(err.to_string().contains("undeclared variable `b`"));
    }

    #[test]
    fn detects_duplicate_thread() {
        let err =
            analyze(&parse("thread t() { int a; a = 1; } thread t() { int b; b = 2; }").unwrap())
                .unwrap_err();
        assert!(err.to_string().contains("duplicate thread"));
    }

    #[test]
    fn detects_mismatched_producer_source() {
        let src = r#"
            thread p () { int v; #consumer{m,[c,x]} v = 1; }
            thread c () { int x, w; #producer{m,[p,w]} x = w; }
        "#;
        let err = analyze(&parse(src).unwrap()).unwrap_err();
        assert!(err.to_string().contains("dependency `m`"));
        assert!(err.to_string().contains("`#consumer` side is p.v"));
    }

    #[test]
    fn detects_unknown_consumer_thread() {
        let src = "thread p() { int v; #consumer{m,[ghost,x]} v = 1; }";
        let err = analyze(&parse(src).unwrap()).unwrap_err();
        assert!(err.to_string().contains("unknown thread `ghost`"));
    }

    #[test]
    fn warns_on_unacknowledged_consumer() {
        let src = r#"
            thread p () { int v; #consumer{m,[c,x]} v = 1; }
            thread c () { int x; x = 2; }
        "#;
        let analysis = analyze(&parse(src).unwrap()).unwrap();
        assert_eq!(analysis.warnings.len(), 1);
        assert!(analysis.warnings[0]
            .message
            .contains("no matching `#producer`"));
    }

    #[test]
    fn detects_static_deadlock_cycle() {
        let src = r#"
            thread a () { int v, x; #consumer{m1,[b,y]} v = 1; #producer{m2,[b,w]} x = w; }
            thread b () { int w, y; #consumer{m2,[a,x]} w = 1; #producer{m1,[a,v]} y = v; }
        "#;
        let err = analyze(&parse(src).unwrap()).unwrap_err();
        assert!(err.to_string().contains("static deadlock"), "got: {err}");
    }

    #[test]
    fn chain_is_not_a_deadlock() {
        let src = r#"
            thread a () { int v; #consumer{m1,[b,w]} v = 1; }
            thread b () { int w, x; #producer{m1,[a,v]} w = v; #consumer{m2,[c,y]} x = w; }
            thread c () { int y; #producer{m2,[b,x]} y = x; }
        "#;
        let analysis = analyze(&parse(src).unwrap()).unwrap();
        assert_eq!(analysis.dependencies.len(), 2);
    }

    #[test]
    fn collects_constants_and_interfaces() {
        let src = r#"
            thread t() {
                int a;
                message m;
                #constant{host, 7}
                a = host;
                #interface{eth0, "gige"}
                recv m;
            }
        "#;
        let analysis = analyze(&parse(src).unwrap()).unwrap();
        assert_eq!(analysis.constants["host"], 7);
        assert_eq!(analysis.interfaces["eth0"], "gige");
    }

    #[test]
    fn rejects_conflicting_constant() {
        let src = r#"
            thread t() { int a; #constant{k, 1} a = k; #constant{k, 2} a = k; }
        "#;
        let err = analyze(&parse(src).unwrap()).unwrap_err();
        assert!(err.to_string().contains("redefined"));
    }

    #[test]
    fn rejects_consumer_on_non_write() {
        let src = "thread t() { int a; #consumer{m,[t,a]} if (a) { a = 1; } }";
        let err = analyze(&parse(src).unwrap()).unwrap_err();
        assert!(err.to_string().contains("must annotate an assignment"));
    }

    #[test]
    fn rejects_producer_on_non_write() {
        let src = r#"
            thread p () { int v; #consumer{m,[c,x]} v = 1; }
            thread c () { int x; #producer{m,[p,v]} if (x) { x = v; } }
        "#;
        let err = analyze(&parse(src).unwrap()).unwrap_err();
        assert!(
            err.to_string()
                .contains("`#producer{m, ...}` must annotate an assignment or recv"),
            "got: {err}"
        );
    }

    #[test]
    fn lossy_analysis_resolves_dependencies_despite_deadlock() {
        let src = r#"
            thread a () { int v, x; #consumer{m1,[b,y]} v = 1; #producer{m2,[b,w]} x = w; }
            thread b () { int w, y; #consumer{m2,[a,x]} w = 1; #producer{m1,[a,v]} y = v; }
        "#;
        let (analysis, diags) = analyze_lossy(&parse(src).unwrap());
        assert_eq!(analysis.dependencies.len(), 2);
        assert!(diags.iter().any(|d| d.message.contains("static deadlock")));
    }

    #[test]
    fn duplicate_dep_id_rejected() {
        let src = r#"
            thread p () { int v, u; #consumer{m,[c,x]} v = 1; #consumer{m,[c,x]} u = 2; }
            thread c () { int x; #producer{m,[p,v]} x = v; }
        "#;
        let err = analyze(&parse(src).unwrap()).unwrap_err();
        assert!(err.to_string().contains("multiple `#consumer`"));
    }

    #[test]
    fn self_dependency_is_cycle() {
        let src = "thread t() { int a, b; #consumer{m,[t,b]} a = 1; #producer{m,[t,a]} b = a; }";
        let err = analyze(&parse(src).unwrap()).unwrap_err();
        assert!(err.to_string().contains("static deadlock"));
    }
}
