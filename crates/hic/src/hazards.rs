//! Static hazard analysis over compiled hic programs.
//!
//! The paper's guarded memory has *sampling* semantics: a producer write
//! re-arms the per-entry counter unconditionally, so a producer that
//! re-fires before every consumer has read silently overwrites the pending
//! value — the **lost-update** bug class. The dynamic side of this pass is
//! the simulator's `lost_updates` counter (see `memsync-sim`); this module
//! is the static side, catching the bug before anything runs:
//!
//! * [`HazardCode::LostUpdate`] — the producer thread has a control-flow
//!   path from one produce of a dependency back to a produce of the same
//!   dependency with no intervening synchronization point (a guarded
//!   consume, or a `recv` under [`PacingAssumption::PacedArrivals`]).
//!   Under the arbitrated organization the overwrite loses data; under the
//!   event-driven organization the same pattern shows up as producer
//!   stalls against the selection window.
//! * [`HazardCode::ConsumeBeforeProduce`] — some complete iteration of the
//!   producer thread can finish without writing the guarded variable, so a
//!   consumer round blocks (or, across iterations, reads a stale value).
//! * [`HazardCode::DeadlockCycle`] — a cycle in the thread-level
//!   producer→consumer graph (the static deadlock of §2, reported here
//!   with hazard structure rather than as a bare compile error).
//! * [`HazardCode::DeadDependency`] — a `#consumer` pragma declares a
//!   dependency no thread ever acknowledges with `#producer`: every write
//!   arms a counter nobody drains.
//! * [`HazardCode::UnknownDependency`] — use-def inference
//!   ([`crate::usedef::infer_dependencies`]) finds a cross-thread
//!   producer/consumer pair that no pragma declares, i.e. an *unguarded*
//!   shared access.
//!
//! The pass runs on the output of [`crate::sema::analyze_lossy`], so
//! programs strict analysis rejects (a deadlocked corpus program, say)
//! still get a structured report. The `memsync-lint` binary wraps
//! [`check_source`] and exits nonzero on any hazard.

use crate::ast::{Pragma, Program, Stmt};
use crate::error::{Diagnostic, Result, Span};
use crate::sema::{self, Analysis, Dependency};
use crate::usedef::{self, Cfg, CfgNode};
use memsync_trace::Json;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// What the analysis may assume about message arrivals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PacingAssumption {
    /// `recv` statements pace the thread: a new message only arrives after
    /// the downstream pipeline has drained the previous one (the paced
    /// injection regime of `memsync-serve`, which feeds one descriptor and
    /// runs the simulator until the corresponding frame egresses). This is
    /// the default for linting deployed pipelines.
    #[default]
    PacedArrivals,
    /// `recv` statements do not pace: messages may arrive back-to-back
    /// faster than consumers drain (free-running injection). Use this to
    /// ask "what breaks if the pacing workaround is removed?".
    FreeRunning,
}

impl PacingAssumption {
    /// Stable machine-readable name.
    pub fn as_str(self) -> &'static str {
        match self {
            PacingAssumption::PacedArrivals => "paced",
            PacingAssumption::FreeRunning => "free-running",
        }
    }
}

/// The class of a detected hazard. Variants are ordered by severity for
/// report sorting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HazardCode {
    /// Producer can re-fire before every consumer reads; the guarded value
    /// is overwritten under sampling semantics.
    LostUpdate,
    /// A producer-thread iteration can complete without producing.
    ConsumeBeforeProduce,
    /// Cycle in the thread-level producer→consumer graph.
    DeadlockCycle,
    /// Declared dependency that no `#producer` pragma ever reads.
    DeadDependency,
    /// Inferred cross-thread data flow that no pragma declares.
    UnknownDependency,
}

impl HazardCode {
    /// Stable machine-readable code, used in JSON output and the
    /// `// expect:` headers of the hazard corpus.
    pub fn as_str(self) -> &'static str {
        match self {
            HazardCode::LostUpdate => "lost_update",
            HazardCode::ConsumeBeforeProduce => "consume_before_produce",
            HazardCode::DeadlockCycle => "deadlock_cycle",
            HazardCode::DeadDependency => "dead_dependency",
            HazardCode::UnknownDependency => "unknown_dependency",
        }
    }
}

impl fmt::Display for HazardCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One detected hazard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hazard {
    /// Hazard class.
    pub code: HazardCode,
    /// The dependency involved, when the hazard concerns one.
    pub dep: Option<String>,
    /// Human-readable explanation.
    pub message: String,
    /// Anchor in the source (the offending produce, pragma, or read).
    pub span: Span,
}

impl fmt::Display for Hazard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: hazard[{}]: {}", self.span, self.code, self.message)
    }
}

/// Result of running [`check`] over a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HazardReport {
    /// The arrival assumption the analysis ran under.
    pub pacing: PacingAssumption,
    /// Detected hazards, sorted by (code, dependency, span).
    pub hazards: Vec<Hazard>,
}

impl HazardReport {
    /// True when no hazards were found.
    pub fn is_clean(&self) -> bool {
        self.hazards.is_empty()
    }

    /// Whether any hazard of the given class was found.
    pub fn has(&self, code: HazardCode) -> bool {
        self.hazards.iter().any(|h| h.code == code)
    }

    /// Sorted, deduplicated machine-readable codes of all hazards.
    pub fn codes(&self) -> Vec<&'static str> {
        let set: BTreeSet<&'static str> = self.hazards.iter().map(|h| h.code.as_str()).collect();
        set.into_iter().collect()
    }

    /// Machine-readable JSON document (stable field order).
    pub fn to_json(&self) -> Json {
        let items: Vec<Json> = self
            .hazards
            .iter()
            .map(|h| {
                Json::obj()
                    .with("code", h.code.as_str().into())
                    .with("dep", h.dep.as_deref().map_or(Json::Null, |d| d.into()))
                    .with("line", (h.span.line as u64).into())
                    .with("column", (h.span.column as u64).into())
                    .with("message", h.message.as_str().into())
            })
            .collect();
        Json::obj()
            .with("pacing", self.pacing.as_str().into())
            .with("clean", self.is_clean().into())
            .with("hazards", Json::Arr(items))
    }
}

/// Runs every hazard check over a parsed program and its (possibly lossy)
/// analysis.
///
/// # Examples
///
/// Figure 1 of the paper has no pacing point in `t1` at all — successive
/// activations of `t1` overwrite `x1` before both `t2` and `t3` read it:
///
/// ```
/// use memsync_hic::hazards::{self, HazardCode, PacingAssumption};
///
/// let src = "
///     thread t1 () { int x1, xtmp, x2; #consumer{mt1,[t2,y1],[t3,z1]} x1 = f(xtmp, x2); }
///     thread t2 () { int y1, y2; #producer{mt1,[t1,x1]} y1 = g(x1, y2); }
///     thread t3 () { int z1, z2; #producer{mt1,[t1,x1]} z1 = h(x1, z2); }";
/// let (report, _diags) =
///     hazards::check_source(src, PacingAssumption::PacedArrivals).unwrap();
/// assert!(report.has(HazardCode::LostUpdate));
/// ```
pub fn check(program: &Program, analysis: &Analysis, pacing: PacingAssumption) -> HazardReport {
    let mut hazards = Vec::new();
    check_lost_updates(program, analysis, pacing, &mut hazards);
    check_consume_before_produce(program, analysis, &mut hazards);
    check_deadlock_cycles(analysis, &mut hazards);
    check_dead_dependencies(program, analysis, &mut hazards);
    check_unknown_dependencies(program, analysis, &mut hazards);
    hazards.sort_by(|a, b| (a.code, &a.dep, a.span.start).cmp(&(b.code, &b.dep, b.span.start)));
    HazardReport { pacing, hazards }
}

/// Parses `source`, runs lossy semantic analysis, and hazard-checks the
/// result. Returns the report together with the compile diagnostics (which
/// may include errors — the report is still meaningful best-effort).
///
/// # Errors
///
/// Only lexical/syntactic failures abort; semantic errors are returned as
/// diagnostics alongside the report.
pub fn check_source(
    source: &str,
    pacing: PacingAssumption,
) -> Result<(HazardReport, Vec<Diagnostic>)> {
    let program = crate::parser::parse(source)?;
    let (analysis, diagnostics) = sema::analyze_lossy(&program);
    Ok((check(&program, &analysis, pacing), diagnostics))
}

/// Spans of statements carrying a `#producer` pragma — the guarded consume
/// points at which a thread blocks until the upstream value arrives.
fn consume_spans(thread: &crate::ast::Thread) -> BTreeSet<(usize, usize)> {
    let mut spans = BTreeSet::new();
    crate::ast::walk_stmts(&thread.body, &mut |stmt: &Stmt| {
        if stmt
            .pragmas
            .iter()
            .any(|p| matches!(p, Pragma::Producer { .. }))
        {
            spans.insert((stmt.span.start, stmt.span.end));
        }
    });
    spans
}

fn check_lost_updates(
    program: &Program,
    analysis: &Analysis,
    pacing: PacingAssumption,
    hazards: &mut Vec<Hazard>,
) {
    for thread in &program.threads {
        let deps: Vec<&Dependency> = analysis
            .dependencies
            .iter()
            .filter(|d| d.producer.thread == thread.name)
            .collect();
        if deps.is_empty() {
            continue;
        }
        let cfg = Cfg::build(thread);
        let consumes = consume_spans(thread);
        let is_pacing = |n: &CfgNode| {
            consumes.contains(&(n.span.start, n.span.end))
                || (pacing == PacingAssumption::PacedArrivals && n.is_recv)
        };
        for d in deps {
            let produce_set: BTreeSet<usize> = cfg
                .nodes
                .iter()
                .filter(|n| n.defs.contains(&d.producer.var))
                .map(|n| n.id)
                .collect();
            'produces: for &p in &produce_set {
                // DFS from the successors of a produce, stopping at
                // synchronization points. Reaching another produce (or the
                // same one again) means two produces can happen with no
                // consumer read forced in between.
                let mut stack: Vec<usize> = cfg.nodes[p].succs.clone();
                let mut seen = BTreeSet::new();
                while let Some(id) = stack.pop() {
                    if !seen.insert(id) {
                        continue;
                    }
                    let node = &cfg.nodes[id];
                    if is_pacing(node) {
                        continue;
                    }
                    if produce_set.contains(&id) {
                        hazards.push(Hazard {
                            code: HazardCode::LostUpdate,
                            dep: Some(d.id.clone()),
                            message: format!(
                                "dependency `{}`: producer {} can re-fire before its {} \
                                 consumer(s) read — no guarded consume{} separates successive \
                                 produces, and sampling semantics overwrite the pending value",
                                d.id,
                                d.producer,
                                d.dep_number(),
                                match pacing {
                                    PacingAssumption::PacedArrivals => " or paced recv",
                                    PacingAssumption::FreeRunning => "",
                                },
                            ),
                            span: cfg.nodes[p].span,
                        });
                        break 'produces;
                    }
                    stack.extend(node.succs.iter().copied());
                }
            }
        }
    }
}

fn check_consume_before_produce(program: &Program, analysis: &Analysis, hazards: &mut Vec<Hazard>) {
    for thread in &program.threads {
        let deps: Vec<&Dependency> = analysis
            .dependencies
            .iter()
            .filter(|d| d.producer.thread == thread.name)
            .collect();
        if deps.is_empty() {
            continue;
        }
        let cfg = Cfg::build(thread);
        if cfg.nodes.is_empty() {
            continue;
        }
        let exit_set: BTreeSet<usize> = cfg.exits.iter().copied().collect();
        for d in deps {
            // Single-iteration DFS from the entry, pruned at any node that
            // produces the variable; skip wrap-around restart edges. If an
            // exit is reachable, some iteration finishes without producing
            // and the consumers' guarded reads have nothing to drain.
            let mut stack = vec![0usize];
            let mut seen = BTreeSet::new();
            while let Some(id) = stack.pop() {
                if !seen.insert(id) {
                    continue;
                }
                let node = &cfg.nodes[id];
                if node.defs.contains(&d.producer.var) {
                    continue;
                }
                if exit_set.contains(&id) {
                    hazards.push(Hazard {
                        code: HazardCode::ConsumeBeforeProduce,
                        dep: Some(d.id.clone()),
                        message: format!(
                            "dependency `{}`: an iteration of producer thread `{}` can \
                             complete without writing `{}` — consumers block on a value \
                             that round never produces",
                            d.id, thread.name, d.producer.var,
                        ),
                        span: d.span,
                    });
                    break;
                }
                stack.extend(node.succs.iter().copied().filter(|&s| s != 0));
            }
        }
    }
}

fn check_deadlock_cycles(analysis: &Analysis, hazards: &mut Vec<Hazard>) {
    let mut edges: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for d in &analysis.dependencies {
        for c in &d.consumers {
            edges
                .entry(d.producer.thread.as_str())
                .or_default()
                .insert(c.thread.as_str());
        }
    }
    let nodes: BTreeSet<&str> = edges
        .iter()
        .flat_map(|(k, vs)| std::iter::once(*k).chain(vs.iter().copied()))
        .collect();
    // Iterative gray/black DFS; any back edge to a gray node marks both
    // ends as cycle participants.
    let mut state: BTreeMap<&str, u8> = BTreeMap::new(); // 0 white, 1 gray, 2 black
    let mut in_cycle: BTreeSet<&str> = BTreeSet::new();
    for &root in &nodes {
        if state.get(root).copied().unwrap_or(0) != 0 {
            continue;
        }
        // (node, next-successor-index) explicit stack.
        let mut stack: Vec<(&str, usize)> = vec![(root, 0)];
        state.insert(root, 1);
        while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
            let succs = edges.get(node);
            let next = succs.and_then(|s| s.iter().nth(*idx).copied());
            *idx += 1;
            match next {
                None => {
                    state.insert(node, 2);
                    stack.pop();
                }
                Some(s) => match state.get(s).copied().unwrap_or(0) {
                    0 => {
                        state.insert(s, 1);
                        stack.push((s, 0));
                    }
                    1 => {
                        in_cycle.insert(node);
                        in_cycle.insert(s);
                    }
                    _ => {}
                },
            }
        }
    }
    if !in_cycle.is_empty() {
        let involved: Vec<&str> = in_cycle.iter().copied().collect();
        let anchor = analysis
            .dependencies
            .iter()
            .find(|d| involved.contains(&d.producer.thread.as_str()));
        hazards.push(Hazard {
            code: HazardCode::DeadlockCycle,
            dep: anchor.map(|d| d.id.clone()),
            message: format!(
                "producer/consumer cycle through threads {} — every thread in the \
                 cycle blocks on a value another member has not yet produced",
                involved.join(", "),
            ),
            span: anchor.map_or_else(Span::dummy, |d| d.span),
        });
    }
}

fn check_dead_dependencies(program: &Program, analysis: &Analysis, hazards: &mut Vec<Hazard>) {
    let mut acknowledged: BTreeSet<String> = BTreeSet::new();
    for thread in &program.threads {
        crate::ast::walk_stmts(&thread.body, &mut |stmt: &Stmt| {
            for pragma in &stmt.pragmas {
                if let Pragma::Producer { dep, .. } = pragma {
                    acknowledged.insert(dep.clone());
                }
            }
        });
    }
    for d in &analysis.dependencies {
        if !acknowledged.contains(&d.id) {
            hazards.push(Hazard {
                code: HazardCode::DeadDependency,
                dep: Some(d.id.clone()),
                message: format!(
                    "dependency `{}` is declared by `#consumer` but no thread reads it \
                     via `#producer` — the guarded entry is armed and never drained",
                    d.id,
                ),
                span: d.span,
            });
        }
    }
}

fn check_unknown_dependencies(program: &Program, analysis: &Analysis, hazards: &mut Vec<Hazard>) {
    let declared: BTreeSet<(&str, &str)> = analysis
        .dependencies
        .iter()
        .map(|d| (d.producer.thread.as_str(), d.producer.var.as_str()))
        .collect();
    for inferred in usedef::infer_dependencies(program) {
        let var = inferred.producer.var.as_str();
        // Pragma constants and interface names read cross-thread are not
        // shared-memory traffic.
        if analysis.constants.contains_key(var) || analysis.interfaces.contains_key(var) {
            continue;
        }
        if declared.contains(&(inferred.producer.thread.as_str(), var)) {
            continue;
        }
        // Anchor the report at the first consuming read.
        let span = inferred
            .consumers
            .first()
            .and_then(|c| program.thread(&c.thread))
            .map(Cfg::build)
            .and_then(|cfg| {
                cfg.nodes
                    .iter()
                    .find(|n| n.uses.contains(var))
                    .map(|n| n.span)
            })
            .unwrap_or_else(Span::dummy);
        let consumers: Vec<String> = inferred.consumers.iter().map(|c| c.to_string()).collect();
        hazards.push(Hazard {
            code: HazardCode::UnknownDependency,
            dep: Some(inferred.id.clone()),
            message: format!(
                "use-def inference finds {} flowing to {} but no pragma declares the \
                 dependency — the shared access is unguarded",
                inferred.producer,
                consumers.join(", "),
            ),
            span,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(src: &str, pacing: PacingAssumption) -> HazardReport {
        let (report, _diags) = check_source(src, pacing).unwrap();
        report
    }

    const CLEAN_PAIR: &str = r#"
        thread p () { message m; int v; recv m; #consumer{d,[c,w]} v = m; }
        thread c () { int w; #producer{d,[p,v]} w = v; send w; }
    "#;

    #[test]
    fn recv_paced_pair_is_clean() {
        let r = report(CLEAN_PAIR, PacingAssumption::PacedArrivals);
        assert!(r.is_clean(), "unexpected hazards: {:?}", r.hazards);
    }

    #[test]
    fn same_pair_loses_updates_when_free_running() {
        let r = report(CLEAN_PAIR, PacingAssumption::FreeRunning);
        assert_eq!(r.codes(), vec!["lost_update"]);
    }

    #[test]
    fn figure1_free_runner_is_hazardous_even_paced() {
        let src = r#"
            thread t1 () { int x1, xtmp, x2; #consumer{mt1,[t2,y1],[t3,z1]} x1 = f(xtmp, x2); }
            thread t2 () { int y1, y2; #producer{mt1,[t1,x1]} y1 = g(x1, y2); }
            thread t3 () { int z1, z2; #producer{mt1,[t1,x1]} z1 = h(x1, z2); }
        "#;
        let r = report(src, PacingAssumption::PacedArrivals);
        assert!(r.has(HazardCode::LostUpdate));
    }

    #[test]
    fn own_consume_between_produces_paces_the_producer() {
        // b's produce of d2 is preceded (on the wrap path) by its guarded
        // consume of d1, so successive produces are separated.
        let src = r#"
            thread a () { message m; int v; recv m; #consumer{d1,[b,w]} v = m; }
            thread b () { int w, x; #producer{d1,[a,v]} w = v; #consumer{d2,[c,y]} x = w; }
            thread c () { int y; #producer{d2,[b,x]} y = x; send y; }
        "#;
        let r = report(src, PacingAssumption::FreeRunning);
        // d1 still loses updates free-running (recv no longer paces a),
        // but d2 must not be flagged.
        assert!(!r.hazards.iter().any(|h| h.dep.as_deref() == Some("d2")));
        assert!(r
            .hazards
            .iter()
            .any(|h| h.dep.as_deref() == Some("d1") && h.code == HazardCode::LostUpdate));
    }

    #[test]
    fn conditional_produce_is_consume_before_produce() {
        let src = r#"
            thread p () { message m; int v; recv m; if (m) { #consumer{d,[c,w]} v = m; } send m; }
            thread c () { int w; #producer{d,[p,v]} w = v; }
        "#;
        let r = report(src, PacingAssumption::PacedArrivals);
        assert!(r.has(HazardCode::ConsumeBeforeProduce), "{:?}", r.hazards);
    }

    #[test]
    fn produce_on_both_branches_is_not_flagged() {
        let src = r#"
            thread p () {
                message m; int v;
                recv m;
                if (m) { #consumer{d,[c,w]} v = m; } else { v = 0; }
            }
            thread c () { int w; #producer{d,[p,v]} w = v; send w; }
        "#;
        let r = report(src, PacingAssumption::PacedArrivals);
        assert!(!r.has(HazardCode::ConsumeBeforeProduce), "{:?}", r.hazards);
    }

    #[test]
    fn deadlock_cycle_reported_as_hazard() {
        let src = r#"
            thread a () { int v, x; #consumer{m1,[b,y]} v = 1; #producer{m2,[b,w]} x = w; }
            thread b () { int w, y; #consumer{m2,[a,x]} w = 1; #producer{m1,[a,v]} y = v; }
        "#;
        let r = report(src, PacingAssumption::PacedArrivals);
        assert!(r.has(HazardCode::DeadlockCycle));
        let h = r
            .hazards
            .iter()
            .find(|h| h.code == HazardCode::DeadlockCycle)
            .unwrap();
        assert!(h.message.contains("a, b"), "got: {}", h.message);
    }

    #[test]
    fn unread_dependency_is_dead() {
        let src = r#"
            thread p () { message m; int v; recv m; #consumer{d,[c,w]} v = m; }
            thread c () { int w; w = 1; send w; }
        "#;
        let r = report(src, PacingAssumption::PacedArrivals);
        assert!(r.has(HazardCode::DeadDependency));
    }

    #[test]
    fn undeclared_cross_thread_flow_is_unknown_dependency() {
        let src = r#"
            thread p () { message m; int v; recv m; v = m; }
            thread c () { int w; w = v; send w; }
        "#;
        let r = report(src, PacingAssumption::PacedArrivals);
        assert!(r.has(HazardCode::UnknownDependency));
        let h = &r.hazards[r
            .hazards
            .iter()
            .position(|h| h.code == HazardCode::UnknownDependency)
            .unwrap()];
        assert_eq!(h.dep.as_deref(), Some("auto_p_v"));
        assert!(h.span.line > 0, "span should anchor at the consuming read");
    }

    #[test]
    fn constants_are_not_unknown_dependencies() {
        let src = r#"
            thread a () { int k; #constant{lim, 9} k = lim; }
            thread b () { int j; j = lim; }
        "#;
        let r = report(src, PacingAssumption::PacedArrivals);
        assert!(!r.has(HazardCode::UnknownDependency), "{:?}", r.hazards);
    }

    #[test]
    fn json_report_is_stable_and_machine_readable() {
        let r = report(CLEAN_PAIR, PacingAssumption::FreeRunning);
        let doc = r.to_json().render();
        assert!(doc.starts_with("{\"pacing\":\"free-running\",\"clean\":false,"));
        assert!(doc.contains("\"code\":\"lost_update\""));
        assert!(doc.contains("\"dep\":\"d\""));
        let clean = report(CLEAN_PAIR, PacingAssumption::PacedArrivals);
        assert_eq!(
            clean.to_json().render(),
            "{\"pacing\":\"paced\",\"clean\":true,\"hazards\":[]}"
        );
    }
}
