//! # memsync-hic — the hic language front-end
//!
//! `hic` is the concurrent asynchronous language of Kulkarni & Brebner,
//! *Memory centric thread synchronization on platform FPGAs* (DATE 2006),
//! for describing networking applications as hardware threads cooperating
//! through a logical global shared memory ("a tub of packets").
//!
//! This crate provides the complete front-end:
//!
//! * [`lexer`] / [`parser`] — source text to [`ast::Program`];
//! * [`sema`] — name/type checking, producer/consumer pragma resolution into
//!   [`sema::Dependency`] records, and static deadlock detection;
//! * [`usedef`] — CFG construction, reaching definitions, def-use chains,
//!   lifetimes, and pragma-free dependency *inference*;
//! * [`depgraph`] — the memory-access graph and operation-order graph that
//!   drive BRAM allocation downstream;
//! * [`hazards`] — static hazard analysis over the compiled program: the
//!   lost-update bug class (a producer re-firing before every consumer has
//!   read, silently overwritten under the paper's sampling semantics),
//!   consume-before-produce, deadlock cycles, and dead/undeclared
//!   dependencies. Driven by the `memsync-lint` binary;
//! * [`pretty`] — canonical source rendering (round-trip tested).
//!
//! # Examples
//!
//! Compiling the paper's Figure 1 and recovering the `mt1` dependency:
//!
//! ```
//! # fn main() -> Result<(), memsync_hic::error::CompileError> {
//! use memsync_hic::{parser, sema};
//!
//! let program = parser::parse(
//!     "thread t1 () { int x1, xtmp, x2; #consumer{mt1,[t2,y1],[t3,z1]} x1 = f(xtmp, x2); }
//!      thread t2 () { int y1, y2; #producer{mt1,[t1,x1]} y1 = g(x1, y2); }
//!      thread t3 () { int z1, z2; #producer{mt1,[t1,x1]} z1 = h(x1, z2); }",
//! )?;
//! let analysis = sema::analyze(&program)?;
//! let dep = analysis.dependency("mt1").expect("mt1 resolved");
//! assert_eq!(dep.producer.to_string(), "t1.x1");
//! assert_eq!(dep.dep_number(), 2);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod depgraph;
pub mod error;
pub mod hazards;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod sema;
pub mod token;
pub mod usedef;

pub use ast::Program;
pub use error::{CompileError, Diagnostic, Severity, Span};
pub use hazards::{Hazard, HazardCode, HazardReport, PacingAssumption};
pub use sema::{Analysis, Dependency, Endpoint};

/// Parses and analyzes a hic source string in one step.
///
/// # Errors
///
/// Propagates lexical, syntactic, and semantic diagnostics.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), memsync_hic::CompileError> {
/// let (program, analysis) = memsync_hic::compile(
///     "thread p() { int v; #consumer{m,[c,w]} v = 1; }
///      thread c() { int w; #producer{m,[p,v]} w = v; }",
/// )?;
/// assert_eq!(program.threads.len(), 2);
/// assert_eq!(analysis.dependencies.len(), 1);
/// # Ok(())
/// # }
/// ```
pub fn compile(source: &str) -> error::Result<(Program, Analysis)> {
    let program = parser::parse(source)?;
    let analysis = sema::analyze(&program)?;
    Ok((program, analysis))
}

#[cfg(test)]
mod tests {
    #[test]
    fn compile_rejects_bad_source() {
        assert!(super::compile("thread t() {").is_err());
    }

    #[test]
    fn compile_accepts_minimal_program() {
        let (p, a) = super::compile("thread t() { int x; x = 1; }").unwrap();
        assert_eq!(p.threads.len(), 1);
        assert!(a.dependencies.is_empty());
    }
}
