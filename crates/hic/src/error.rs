//! Span-carrying diagnostics for the hic front-end.

use std::fmt;

/// A half-open byte range into the source text, plus 1-based line/column of
/// the start, used to anchor every diagnostic and AST node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line of `start`.
    pub line: u32,
    /// 1-based column of `start`.
    pub column: u32,
}

impl Span {
    /// Creates a span covering `start..end` at the given line/column.
    pub fn new(start: usize, end: usize, line: u32, column: u32) -> Self {
        Span {
            start,
            end,
            line,
            column,
        }
    }

    /// A zero-width span at the origin, for synthesized nodes.
    pub fn dummy() -> Self {
        Span {
            start: 0,
            end: 0,
            line: 1,
            column: 1,
        }
    }

    /// Smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        let (first, _) = if self.start <= other.start {
            (self, other)
        } else {
            (other, self)
        };
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line: first.line,
            column: first.column,
        }
    }

    /// Length of the span in bytes.
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// Whether the span covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// Severity of a [`Diagnostic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advice that does not affect compilation.
    Note,
    /// Suspicious construct; compilation continues.
    Warning,
    /// Compilation cannot produce a valid result.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Note => f.write_str("note"),
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// One compiler message anchored to a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// How serious the message is.
    pub severity: Severity,
    /// Human-readable description, lowercase, no trailing period.
    pub message: String,
    /// Source location the message refers to.
    pub span: Span,
}

impl Diagnostic {
    /// Creates an error diagnostic.
    pub fn error(message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            severity: Severity::Error,
            message: message.into(),
            span,
        }
    }

    /// Creates a warning diagnostic.
    pub fn warning(message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            message: message.into(),
            span,
        }
    }

    /// Creates a note diagnostic.
    pub fn note(message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            severity: Severity::Note,
            message: message.into(),
            span,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} at {}", self.severity, self.message, self.span)
    }
}

/// Error type returned by every fallible front-end entry point: a non-empty
/// batch of diagnostics, at least one of which is an error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    diagnostics: Vec<Diagnostic>,
}

impl CompileError {
    /// Wraps a batch of diagnostics.
    ///
    /// # Panics
    ///
    /// Panics if `diagnostics` is empty — an error with no explanation is a
    /// front-end bug.
    pub fn new(diagnostics: Vec<Diagnostic>) -> Self {
        assert!(
            !diagnostics.is_empty(),
            "CompileError requires at least one diagnostic"
        );
        CompileError { diagnostics }
    }

    /// Convenience constructor for a single error message.
    pub fn single(message: impl Into<String>, span: Span) -> Self {
        CompileError::new(vec![Diagnostic::error(message, span)])
    }

    /// All diagnostics in the batch.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Number of `Error`-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

impl std::error::Error for CompileError {}

/// Result alias used across the front-end.
pub type Result<T> = std::result::Result<T, CompileError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_merge_covers_both() {
        let a = Span::new(4, 8, 1, 5);
        let b = Span::new(10, 12, 2, 1);
        let m = a.merge(b);
        assert_eq!(m.start, 4);
        assert_eq!(m.end, 12);
        assert_eq!(m.line, 1);
        assert_eq!(m.column, 5);
    }

    #[test]
    fn span_merge_is_commutative_on_range() {
        let a = Span::new(4, 8, 1, 5);
        let b = Span::new(1, 2, 1, 2);
        assert_eq!(a.merge(b).start, b.merge(a).start);
        assert_eq!(a.merge(b).end, b.merge(a).end);
    }

    #[test]
    fn diagnostic_display_contains_location() {
        let d = Diagnostic::error("unexpected token", Span::new(0, 1, 3, 7));
        assert_eq!(d.to_string(), "error: unexpected token at 3:7");
    }

    #[test]
    #[should_panic(expected = "at least one diagnostic")]
    fn compile_error_rejects_empty() {
        let _ = CompileError::new(vec![]);
    }

    #[test]
    fn compile_error_counts_errors_only() {
        let e = CompileError::new(vec![
            Diagnostic::warning("w", Span::dummy()),
            Diagnostic::error("e", Span::dummy()),
        ]);
        assert_eq!(e.error_count(), 1);
        assert_eq!(e.diagnostics().len(), 2);
    }

    #[test]
    fn empty_span_reports_empty() {
        assert!(Span::dummy().is_empty());
        assert!(!Span::new(0, 3, 1, 1).is_empty());
    }
}
