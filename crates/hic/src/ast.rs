//! Abstract syntax tree for hic programs.
//!
//! A hic [`Program`] is a set of type definitions plus hardware threads.
//! Each thread declares variables, then executes statements; statements may
//! be annotated with the four pragmas the paper defines (`#interface`,
//! `#constant`, `#producer`, `#consumer`).

use crate::error::Span;
use std::fmt;

/// A complete hic translation unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// User type definitions (`type` aliases and `union`s).
    pub types: Vec<TypeDef>,
    /// Hardware threads, in source order.
    pub threads: Vec<Thread>,
}

impl Program {
    /// Looks up a thread by name.
    pub fn thread(&self, name: &str) -> Option<&Thread> {
        self.threads.iter().find(|t| t.name == name)
    }

    /// Looks up a user type definition by name.
    pub fn type_def(&self, name: &str) -> Option<&TypeDef> {
        self.types.iter().find(|t| t.name == name)
    }
}

/// A user-defined type: either a fixed-width alias or a union of types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeDef {
    /// Type name.
    pub name: String,
    /// The definition body.
    pub kind: TypeDefKind,
    /// Source location.
    pub span: Span,
}

/// Body of a [`TypeDef`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeDefKind {
    /// `type name = <ty>;` — a transparent alias (commonly `bits<N>`).
    Alias(Type),
    /// `union name { field: ty; ... }` — overlapping views of the same bits.
    Union(Vec<UnionField>),
}

/// One alternative view inside a union type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnionField {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: Type,
    /// Source location.
    pub span: Span,
}

/// A hic type expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// 32-bit signed integer.
    Int,
    /// 8-bit character.
    Char,
    /// The predefined shared-memory packet type ("tub of packets").
    Message,
    /// Fixed bit-width value, `bits<N>`.
    Bits(u32),
    /// Reference to a user-defined type.
    Named(String),
}

impl Type {
    /// Bit width of the type, resolving `Named` through `program` when given.
    ///
    /// Returns `None` for a `Named` type that cannot be resolved.
    pub fn bit_width(&self, program: Option<&Program>) -> Option<u32> {
        match self {
            Type::Int => Some(32),
            Type::Char => Some(8),
            // A message occupies one packet slot; the paper maps messages to
            // BRAM words, so we model the handle as one 32-bit word.
            Type::Message => Some(32),
            Type::Bits(n) => Some(*n),
            Type::Named(name) => {
                let program = program?;
                let def = program.type_def(name)?;
                match &def.kind {
                    TypeDefKind::Alias(ty) => ty.bit_width(Some(program)),
                    TypeDefKind::Union(fields) => fields
                        .iter()
                        .map(|f| f.ty.bit_width(Some(program)))
                        .collect::<Option<Vec<_>>>()
                        .map(|ws| ws.into_iter().max().unwrap_or(0)),
                }
            }
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => f.write_str("int"),
            Type::Char => f.write_str("char"),
            Type::Message => f.write_str("message"),
            Type::Bits(n) => write!(f, "bits<{n}>"),
            Type::Named(n) => f.write_str(n),
        }
    }
}

/// A hardware thread: synthesized into its own logic per the multi-threading
/// in logic model (Brebner, FPL 2002).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Thread {
    /// Thread name, e.g. `t1`.
    pub name: String,
    /// Formal parameters (rare; usually empty in the paper's examples).
    pub params: Vec<VarDecl>,
    /// Local variable declarations.
    pub decls: Vec<VarDecl>,
    /// Thread body.
    pub body: Vec<Stmt>,
    /// Source location of the `thread` keyword through the closing brace.
    pub span: Span,
}

impl Thread {
    /// Looks up a declared variable (parameter or local) by name.
    pub fn var(&self, name: &str) -> Option<&VarDecl> {
        self.params
            .iter()
            .chain(self.decls.iter())
            .find(|v| v.name == name)
    }
}

/// One declared variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarDecl {
    /// Variable name.
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Array length, if declared as `ty name[N]`.
    pub array_len: Option<u32>,
    /// Source location.
    pub span: Span,
}

/// A statement, optionally annotated with pragmas that apply to it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stmt {
    /// Pragmas immediately preceding the statement.
    pub pragmas: Vec<Pragma>,
    /// The statement proper.
    pub kind: StmtKind,
    /// Source location.
    pub span: Span,
}

/// Statement alternatives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StmtKind {
    /// `lvalue = expr;`
    Assign {
        /// Target of the assignment.
        target: LValue,
        /// Right-hand side.
        value: Expr,
    },
    /// `if (cond) then else otherwise`
    If {
        /// Branch condition.
        cond: Expr,
        /// Taken when `cond` is non-zero.
        then_branch: Vec<Stmt>,
        /// Taken when `cond` is zero (may be empty).
        else_branch: Vec<Stmt>,
    },
    /// `while (cond) body`
    While {
        /// Loop condition, evaluated before each iteration.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `for (init; cond; step) body`
    For {
        /// Initialization assignment.
        init: Box<Stmt>,
        /// Loop condition.
        cond: Expr,
        /// Per-iteration step assignment.
        step: Box<Stmt>,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `case (selector) { when k: ... default: ... }` — the paper's state
    /// machine construct.
    Case {
        /// Value being dispatched on.
        selector: Expr,
        /// `when` arms.
        arms: Vec<CaseArm>,
        /// `default` arm (may be empty).
        default: Vec<Stmt>,
    },
    /// `recv var;` — receive the next message from the network interface
    /// into `var`.
    Recv {
        /// Destination variable.
        var: String,
    },
    /// `send expr;` — transmit a message on the network interface.
    Send {
        /// The message expression.
        value: Expr,
    },
    /// A bare expression evaluated for effect, `expr;`.
    Expr(Expr),
    /// A nested block.
    Block(Vec<Stmt>),
}

/// One `when` arm of a `case` statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseArm {
    /// Literal matched against the selector.
    pub value: i64,
    /// Arm body.
    pub body: Vec<Stmt>,
    /// Source location.
    pub span: Span,
}

/// Assignment target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LValue {
    /// Plain variable.
    Var(String),
    /// Array element, `name[index]`.
    Index {
        /// Array variable name.
        name: String,
        /// Index expression.
        index: Box<Expr>,
    },
    /// Union field, `name.field`.
    Field {
        /// Union variable name.
        name: String,
        /// Field selected.
        field: String,
    },
}

impl LValue {
    /// The root variable the lvalue writes.
    pub fn base(&self) -> &str {
        match self {
            LValue::Var(n) | LValue::Index { name: n, .. } | LValue::Field { name: n, .. } => n,
        }
    }
}

/// Expression tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Int(i64, Span),
    /// Character literal.
    Char(u8, Span),
    /// Variable reference.
    Var(String, Span),
    /// Array element read.
    Index {
        /// Array variable name.
        name: String,
        /// Index expression.
        index: Box<Expr>,
        /// Source location.
        span: Span,
    },
    /// Union field read.
    Field {
        /// Union variable name.
        name: String,
        /// Field selected.
        field: String,
        /// Source location.
        span: Span,
    },
    /// Function (combinational operator) application, `f(a, b)`.
    Call {
        /// Callee name.
        callee: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Source location.
        span: Span,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        operand: Box<Expr>,
        /// Source location.
        span: Span,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source location.
        span: Span,
    },
}

impl Expr {
    /// Source location of the expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::Int(_, s) | Expr::Char(_, s) | Expr::Var(_, s) => *s,
            Expr::Index { span, .. }
            | Expr::Field { span, .. }
            | Expr::Call { span, .. }
            | Expr::Unary { span, .. }
            | Expr::Binary { span, .. } => *span,
        }
    }

    /// Collects every variable read by the expression into `out`
    /// (in evaluation order, duplicates preserved).
    pub fn collect_reads(&self, out: &mut Vec<String>) {
        match self {
            Expr::Int(..) | Expr::Char(..) => {}
            Expr::Var(name, _) => out.push(name.clone()),
            Expr::Index { name, index, .. } => {
                out.push(name.clone());
                index.collect_reads(out);
            }
            Expr::Field { name, .. } => out.push(name.clone()),
            Expr::Call { args, .. } => {
                for a in args {
                    a.collect_reads(out);
                }
            }
            Expr::Unary { operand, .. } => operand.collect_reads(out),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.collect_reads(out);
                rhs.collect_reads(out);
            }
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Arithmetic negation `-`.
    Neg,
    /// Logical not `!`.
    Not,
    /// Bitwise complement `~`.
    BitNot,
}

/// Binary operators, in hic precedence order (lowest first: `||`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// `||`
    Or,
    /// `&&`
    And,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `&`
    BitAnd,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
}

impl BinaryOp {
    /// Whether the operator yields a 1-bit boolean result.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::Ne
                | BinaryOp::Lt
                | BinaryOp::Le
                | BinaryOp::Gt
                | BinaryOp::Ge
                | BinaryOp::And
                | BinaryOp::Or
        )
    }
}

/// The four pragmas of §2 of the paper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pragma {
    /// `#interface{name, "kind"}` — e.g. Gigabit Ethernet.
    Interface {
        /// Interface variable name.
        name: String,
        /// Interface kind string, e.g. `"gige"`.
        kind: String,
        /// Source location.
        span: Span,
    },
    /// `#constant{name, value}` — e.g. host address.
    Constant {
        /// Constant name.
        name: String,
        /// Constant value.
        value: i64,
        /// Source location.
        span: Span,
    },
    /// `#producer{dep, [thread, var]}` — placed in a *consumer* thread; the
    /// following statement reads data produced by `[thread, var]`.
    Producer {
        /// Dependency identifier (`mt1` in Figure 1) used to correlate
        /// multiple dependencies on the same variable.
        dep: String,
        /// `(thread, variable)` pairs naming the producer(s).
        sources: Vec<EndpointRef>,
        /// Source location.
        span: Span,
    },
    /// `#consumer{dep, [thread, var], ...}` — placed in a *producer* thread;
    /// the following statement's written value is consumed by the listed
    /// `(thread, variable)` pairs.
    Consumer {
        /// Dependency identifier.
        dep: String,
        /// `(thread, variable)` pairs naming the consumer(s), in the static
        /// service order used by the event-driven organization.
        sinks: Vec<EndpointRef>,
        /// Source location.
        span: Span,
    },
}

impl Pragma {
    /// The dependency identifier for producer/consumer pragmas.
    pub fn dep_id(&self) -> Option<&str> {
        match self {
            Pragma::Producer { dep, .. } | Pragma::Consumer { dep, .. } => Some(dep),
            _ => None,
        }
    }

    /// Source location of the pragma.
    pub fn span(&self) -> Span {
        match self {
            Pragma::Interface { span, .. }
            | Pragma::Constant { span, .. }
            | Pragma::Producer { span, .. }
            | Pragma::Consumer { span, .. } => *span,
        }
    }
}

/// A `(thread, variable)` pair inside a producer/consumer pragma.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EndpointRef {
    /// Thread name.
    pub thread: String,
    /// Variable name within that thread.
    pub var: String,
    /// Source location.
    pub span: Span,
}

impl fmt::Display for EndpointRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{},{}]", self.thread, self.var)
    }
}

/// Walks all statements of a body depth-first, pre-order, applying `f`.
pub fn walk_stmts<'a, F: FnMut(&'a Stmt)>(stmts: &'a [Stmt], f: &mut F) {
    for stmt in stmts {
        f(stmt);
        match &stmt.kind {
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                walk_stmts(then_branch, f);
                walk_stmts(else_branch, f);
            }
            StmtKind::While { body, .. } => walk_stmts(body, f),
            StmtKind::For {
                init, step, body, ..
            } => {
                f(init);
                f(step);
                walk_stmts(body, f);
            }
            StmtKind::Case { arms, default, .. } => {
                for arm in arms {
                    walk_stmts(&arm.body, f);
                }
                walk_stmts(default, f);
            }
            StmtKind::Block(body) => walk_stmts(body, f),
            StmtKind::Assign { .. }
            | StmtKind::Recv { .. }
            | StmtKind::Send { .. }
            | StmtKind::Expr(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_widths() {
        assert_eq!(Type::Int.bit_width(None), Some(32));
        assert_eq!(Type::Char.bit_width(None), Some(8));
        assert_eq!(Type::Bits(11).bit_width(None), Some(11));
        assert_eq!(Type::Named("x".into()).bit_width(None), None);
    }

    #[test]
    fn named_type_resolves_through_program() {
        let program = Program {
            types: vec![
                TypeDef {
                    name: "addr".into(),
                    kind: TypeDefKind::Alias(Type::Bits(11)),
                    span: Span::dummy(),
                },
                TypeDef {
                    name: "u".into(),
                    kind: TypeDefKind::Union(vec![
                        UnionField {
                            name: "a".into(),
                            ty: Type::Char,
                            span: Span::dummy(),
                        },
                        UnionField {
                            name: "b".into(),
                            ty: Type::Int,
                            span: Span::dummy(),
                        },
                    ]),
                    span: Span::dummy(),
                },
            ],
            threads: vec![],
        };
        assert_eq!(
            Type::Named("addr".into()).bit_width(Some(&program)),
            Some(11)
        );
        // Union width is the max of its fields.
        assert_eq!(Type::Named("u".into()).bit_width(Some(&program)), Some(32));
    }

    #[test]
    fn expr_collect_reads_in_order() {
        let e = Expr::Binary {
            op: BinaryOp::Add,
            lhs: Box::new(Expr::Var("a".into(), Span::dummy())),
            rhs: Box::new(Expr::Call {
                callee: "f".into(),
                args: vec![Expr::Var("b".into(), Span::dummy())],
                span: Span::dummy(),
            }),
            span: Span::dummy(),
        };
        let mut reads = Vec::new();
        e.collect_reads(&mut reads);
        assert_eq!(reads, vec!["a".to_owned(), "b".to_owned()]);
    }

    #[test]
    fn lvalue_base_names() {
        assert_eq!(LValue::Var("x".into()).base(), "x");
        let idx = LValue::Index {
            name: "arr".into(),
            index: Box::new(Expr::Int(0, Span::dummy())),
        };
        assert_eq!(idx.base(), "arr");
    }

    #[test]
    fn comparison_classification() {
        assert!(BinaryOp::Eq.is_comparison());
        assert!(!BinaryOp::Add.is_comparison());
        assert!(BinaryOp::And.is_comparison());
    }
}
