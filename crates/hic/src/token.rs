//! Token definitions for the hic lexer.

use crate::error::Span;
use std::fmt;

/// The lexical categories of hic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    // Literals and identifiers
    /// Integer literal (decimal, `0x` hex, or `0b` binary).
    Int(i64),
    /// Character literal, e.g. `'a'`.
    Char(u8),
    /// String literal (used inside pragmas, e.g. interface names).
    Str(String),
    /// Identifier.
    Ident(String),

    // Keywords
    /// `thread`
    Thread,
    /// `int`
    KwInt,
    /// `char`
    KwChar,
    /// `message`
    KwMessage,
    /// `bits`
    KwBits,
    /// `union`
    KwUnion,
    /// `type`
    KwType,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `for`
    For,
    /// `case`
    Case,
    /// `when`
    When,
    /// `default`
    Default,
    /// `recv`
    Recv,
    /// `send`
    Send,

    // Pragma heads (after `#`)
    /// `#consumer`
    PragmaConsumer,
    /// `#producer`
    PragmaProducer,
    /// `#interface`
    PragmaInterface,
    /// `#constant`
    PragmaConstant,

    // Punctuation
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `.`
    Dot,

    // Operators
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `~`
    Tilde,
    /// `<<`
    Shl,
    /// `>>`
    Shr,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// Returns the keyword kind for `ident`, if it is a reserved word.
    pub fn keyword(ident: &str) -> Option<TokenKind> {
        Some(match ident {
            "thread" => TokenKind::Thread,
            "int" => TokenKind::KwInt,
            "char" => TokenKind::KwChar,
            "message" => TokenKind::KwMessage,
            "bits" => TokenKind::KwBits,
            "union" => TokenKind::KwUnion,
            "type" => TokenKind::KwType,
            "if" => TokenKind::If,
            "else" => TokenKind::Else,
            "while" => TokenKind::While,
            "for" => TokenKind::For,
            "case" => TokenKind::Case,
            "when" => TokenKind::When,
            "default" => TokenKind::Default,
            "recv" => TokenKind::Recv,
            "send" => TokenKind::Send,
            _ => return None,
        })
    }

    /// Short human-readable description for diagnostics.
    pub fn describe(&self) -> &'static str {
        match self {
            TokenKind::Int(_) => "integer literal",
            TokenKind::Char(_) => "character literal",
            TokenKind::Str(_) => "string literal",
            TokenKind::Ident(_) => "identifier",
            TokenKind::Thread => "`thread`",
            TokenKind::KwInt => "`int`",
            TokenKind::KwChar => "`char`",
            TokenKind::KwMessage => "`message`",
            TokenKind::KwBits => "`bits`",
            TokenKind::KwUnion => "`union`",
            TokenKind::KwType => "`type`",
            TokenKind::If => "`if`",
            TokenKind::Else => "`else`",
            TokenKind::While => "`while`",
            TokenKind::For => "`for`",
            TokenKind::Case => "`case`",
            TokenKind::When => "`when`",
            TokenKind::Default => "`default`",
            TokenKind::Recv => "`recv`",
            TokenKind::Send => "`send`",
            TokenKind::PragmaConsumer => "`#consumer`",
            TokenKind::PragmaProducer => "`#producer`",
            TokenKind::PragmaInterface => "`#interface`",
            TokenKind::PragmaConstant => "`#constant`",
            TokenKind::LParen => "`(`",
            TokenKind::RParen => "`)`",
            TokenKind::LBrace => "`{`",
            TokenKind::RBrace => "`}`",
            TokenKind::LBracket => "`[`",
            TokenKind::RBracket => "`]`",
            TokenKind::Comma => "`,`",
            TokenKind::Semi => "`;`",
            TokenKind::Colon => "`:`",
            TokenKind::Dot => "`.`",
            TokenKind::Assign => "`=`",
            TokenKind::Plus => "`+`",
            TokenKind::Minus => "`-`",
            TokenKind::Star => "`*`",
            TokenKind::Slash => "`/`",
            TokenKind::Percent => "`%`",
            TokenKind::EqEq => "`==`",
            TokenKind::NotEq => "`!=`",
            TokenKind::Lt => "`<`",
            TokenKind::Le => "`<=`",
            TokenKind::Gt => "`>`",
            TokenKind::Ge => "`>=`",
            TokenKind::AndAnd => "`&&`",
            TokenKind::OrOr => "`||`",
            TokenKind::Bang => "`!`",
            TokenKind::Amp => "`&`",
            TokenKind::Pipe => "`|`",
            TokenKind::Caret => "`^`",
            TokenKind::Tilde => "`~`",
            TokenKind::Shl => "`<<`",
            TokenKind::Shr => "`>>`",
            TokenKind::Eof => "end of input",
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Int(v) => write!(f, "{v}"),
            TokenKind::Char(c) => write!(f, "'{}'", *c as char),
            TokenKind::Str(s) => write!(f, "\"{s}\""),
            TokenKind::Ident(s) => f.write_str(s),
            other => f.write_str(other.describe()),
        }
    }
}

/// A lexed token with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Lexical category and payload.
    pub kind: TokenKind,
    /// Where the token came from.
    pub span: Span,
}

impl Token {
    /// Creates a token.
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_resolve() {
        assert_eq!(TokenKind::keyword("thread"), Some(TokenKind::Thread));
        assert_eq!(TokenKind::keyword("while"), Some(TokenKind::While));
        assert_eq!(TokenKind::keyword("widget"), None);
    }

    #[test]
    fn display_round_trips_simple_tokens() {
        assert_eq!(TokenKind::Int(42).to_string(), "42");
        assert_eq!(TokenKind::Ident("x1".into()).to_string(), "x1");
        assert_eq!(TokenKind::Shl.to_string(), "`<<`");
    }
}
