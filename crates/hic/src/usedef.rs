//! Use-def analysis over hic threads.
//!
//! The paper notes (§2) that the pragma syntax "is not central to our
//! techniques … in practice, one can use standard compiler use-def analysis
//! and other lifetime analysis methods to extract producers and consumers".
//! This module provides that alternative path: a statement-level control-flow
//! graph, iterative reaching-definitions dataflow, def-use chains, lifetime
//! intervals, and inter-thread producer/consumer inference for programs
//! without pragmas.

use crate::ast::{Expr, LValue, Program, Stmt, StmtKind, Thread};
use crate::error::Span;
use crate::sema::{Dependency, Endpoint};
use std::collections::{BTreeMap, BTreeSet};

/// A node in the statement-level control-flow graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CfgNode {
    /// Index of the node within its thread's CFG.
    pub id: usize,
    /// Variables written by this node.
    pub defs: BTreeSet<String>,
    /// Variables read by this node.
    pub uses: BTreeSet<String>,
    /// Successor node ids.
    pub succs: Vec<usize>,
    /// Source span of the originating statement.
    pub span: Span,
    /// Whether the node is a `recv` (network arrival — a definition from
    /// outside the thread).
    pub is_recv: bool,
    /// Whether the node is a `send`.
    pub is_send: bool,
}

/// Statement-level CFG for one thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cfg {
    /// Thread name.
    pub thread: String,
    /// Nodes, indexed by id; node 0 is the entry.
    pub nodes: Vec<CfgNode>,
    /// Ids of the nodes at which one run-to-completion iteration ends.
    /// Their edges back to node 0 (if any) are the wrap-around restart
    /// edges added by [`Cfg::build`], not intra-iteration control flow;
    /// analyses over a single iteration stop here.
    pub exits: Vec<usize>,
}

impl Cfg {
    /// Builds the CFG of a thread.
    pub fn build(thread: &Thread) -> Cfg {
        let mut builder = CfgBuilder { nodes: Vec::new() };
        let exits = builder.lower_stmts(&thread.body, Vec::new());
        // Threads run to completion per message and restart; model the
        // wrap-around so liveness across iterations is visible.
        if let Some(first) = builder.nodes.first().map(|n| n.id) {
            for &e in &exits {
                if !builder.nodes[e].succs.contains(&first) {
                    builder.nodes[e].succs.push(first);
                }
            }
        }
        Cfg {
            thread: thread.name.clone(),
            nodes: builder.nodes,
            exits,
        }
    }

    /// Runs reaching-definitions dataflow and returns, for every node, the
    /// set of `(def_node, var)` pairs reaching its entry.
    pub fn reaching_definitions(&self) -> Vec<BTreeSet<(usize, String)>> {
        let n = self.nodes.len();
        let mut in_sets: Vec<BTreeSet<(usize, String)>> = vec![BTreeSet::new(); n];
        let mut out_sets: Vec<BTreeSet<(usize, String)>> = vec![BTreeSet::new(); n];
        let preds = self.predecessors();
        let mut changed = true;
        while changed {
            changed = false;
            for id in 0..n {
                let mut new_in = BTreeSet::new();
                for &p in &preds[id] {
                    new_in.extend(out_sets[p].iter().cloned());
                }
                let node = &self.nodes[id];
                let mut new_out: BTreeSet<(usize, String)> = new_in
                    .iter()
                    .filter(|(_, v)| !node.defs.contains(v))
                    .cloned()
                    .collect();
                for d in &node.defs {
                    new_out.insert((id, d.clone()));
                }
                if new_in != in_sets[id] || new_out != out_sets[id] {
                    in_sets[id] = new_in;
                    out_sets[id] = new_out;
                    changed = true;
                }
            }
        }
        in_sets
    }

    /// Def-use chains: for every defining node, which nodes use the value.
    pub fn def_use_chains(&self) -> BTreeMap<(usize, String), BTreeSet<usize>> {
        let reaching = self.reaching_definitions();
        let mut chains: BTreeMap<(usize, String), BTreeSet<usize>> = BTreeMap::new();
        for node in &self.nodes {
            for var in &node.uses {
                for (def_node, def_var) in &reaching[node.id] {
                    if def_var == var {
                        chains
                            .entry((*def_node, var.clone()))
                            .or_default()
                            .insert(node.id);
                    }
                }
            }
        }
        chains
    }

    /// Lifetime interval of every variable: `(first node touching it, last
    /// node touching it)` in node-id order — the paper's memory-size
    /// analysis uses these to overlap storage.
    pub fn lifetimes(&self) -> BTreeMap<String, (usize, usize)> {
        let mut intervals: BTreeMap<String, (usize, usize)> = BTreeMap::new();
        for node in &self.nodes {
            for var in node.defs.iter().chain(node.uses.iter()) {
                intervals
                    .entry(var.clone())
                    .and_modify(|(lo, hi)| {
                        *lo = (*lo).min(node.id);
                        *hi = (*hi).max(node.id);
                    })
                    .or_insert((node.id, node.id));
            }
        }
        intervals
    }

    /// Variables read somewhere in the thread but never defined in it —
    /// candidates for inter-thread consumption.
    pub fn external_reads(&self) -> BTreeSet<String> {
        let mut all_defs = BTreeSet::new();
        let mut all_uses = BTreeSet::new();
        for node in &self.nodes {
            all_defs.extend(node.defs.iter().cloned());
            all_uses.extend(node.uses.iter().cloned());
        }
        all_uses.difference(&all_defs).cloned().collect()
    }

    fn predecessors(&self) -> Vec<Vec<usize>> {
        let mut preds = vec![Vec::new(); self.nodes.len()];
        for node in &self.nodes {
            for &s in &node.succs {
                preds[s].push(node.id);
            }
        }
        preds
    }
}

struct CfgBuilder {
    nodes: Vec<CfgNode>,
}

impl CfgBuilder {
    fn add(&mut self, stmt: &Stmt, defs: BTreeSet<String>, uses: BTreeSet<String>) -> usize {
        let id = self.nodes.len();
        self.nodes.push(CfgNode {
            id,
            defs,
            uses,
            succs: Vec::new(),
            span: stmt.span,
            is_recv: matches!(stmt.kind, StmtKind::Recv { .. }),
            is_send: matches!(stmt.kind, StmtKind::Send { .. }),
        });
        id
    }

    fn connect(&mut self, froms: &[usize], to: usize) {
        for &f in froms {
            if !self.nodes[f].succs.contains(&to) {
                self.nodes[f].succs.push(to);
            }
        }
    }

    /// Lowers statements in order; `incoming` is the set of open exits that
    /// should flow into the next node. Returns the open exits after the list.
    fn lower_stmts(&mut self, stmts: &[Stmt], mut incoming: Vec<usize>) -> Vec<usize> {
        for stmt in stmts {
            incoming = self.lower_stmt(stmt, incoming);
        }
        incoming
    }

    fn lower_stmt(&mut self, stmt: &Stmt, incoming: Vec<usize>) -> Vec<usize> {
        match &stmt.kind {
            StmtKind::Assign { target, value } => {
                let mut uses = BTreeSet::new();
                let mut reads = Vec::new();
                value.collect_reads(&mut reads);
                uses.extend(reads);
                if let LValue::Index { index, .. } = target {
                    let mut idx_reads = Vec::new();
                    index.collect_reads(&mut idx_reads);
                    uses.extend(idx_reads);
                }
                let defs = BTreeSet::from([target.base().to_owned()]);
                let id = self.add(stmt, defs, uses);
                self.connect(&incoming, id);
                vec![id]
            }
            StmtKind::Recv { var } => {
                let id = self.add(stmt, BTreeSet::from([var.clone()]), BTreeSet::new());
                self.connect(&incoming, id);
                vec![id]
            }
            StmtKind::Send { value } => {
                let id = self.add(stmt, BTreeSet::new(), expr_reads(value));
                self.connect(&incoming, id);
                vec![id]
            }
            StmtKind::Expr(value) => {
                let id = self.add(stmt, BTreeSet::new(), expr_reads(value));
                self.connect(&incoming, id);
                vec![id]
            }
            StmtKind::Block(body) => self.lower_stmts(body, incoming),
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let cond_id = self.add(stmt, BTreeSet::new(), expr_reads(cond));
                self.connect(&incoming, cond_id);
                let then_exits = self.lower_stmts(then_branch, vec![cond_id]);
                let else_exits = self.lower_stmts(else_branch, vec![cond_id]);
                let mut exits = then_exits;
                if else_branch.is_empty() {
                    exits.push(cond_id);
                } else {
                    exits.extend(else_exits);
                }
                exits
            }
            StmtKind::While { cond, body } => {
                let cond_id = self.add(stmt, BTreeSet::new(), expr_reads(cond));
                self.connect(&incoming, cond_id);
                let body_exits = self.lower_stmts(body, vec![cond_id]);
                self.connect(&body_exits, cond_id);
                vec![cond_id]
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                let init_exits = self.lower_stmt(init, incoming);
                let cond_id = self.add(stmt, BTreeSet::new(), expr_reads(cond));
                self.connect(&init_exits, cond_id);
                let body_exits = self.lower_stmts(body, vec![cond_id]);
                let step_exits = self.lower_stmt(step, body_exits);
                self.connect(&step_exits, cond_id);
                vec![cond_id]
            }
            StmtKind::Case {
                selector,
                arms,
                default,
            } => {
                let sel_id = self.add(stmt, BTreeSet::new(), expr_reads(selector));
                self.connect(&incoming, sel_id);
                let mut exits = Vec::new();
                for arm in arms {
                    exits.extend(self.lower_stmts(&arm.body, vec![sel_id]));
                }
                if default.is_empty() {
                    exits.push(sel_id);
                } else {
                    exits.extend(self.lower_stmts(default, vec![sel_id]));
                }
                exits
            }
        }
    }
}

/// The local variable into which `var` (produced elsewhere) is first read:
/// the single definition of the earliest node reading `var`. This matches
/// the pragma convention, where the `#consumer` sink names the *receiving*
/// variable (`[t2, y1]` for `y1 = g(x1, ...)`), not the producer's name.
/// Falls back to `var` itself when no reading node defines exactly one
/// local (e.g. the value is only forwarded into a `send`).
fn receiving_var(cfg: &Cfg, var: &str) -> String {
    cfg.nodes
        .iter()
        .find(|n| n.uses.contains(var) && n.defs.len() == 1)
        .and_then(|n| n.defs.iter().next().cloned())
        .unwrap_or_else(|| var.to_owned())
}

fn expr_reads(expr: &Expr) -> BTreeSet<String> {
    let mut reads = Vec::new();
    expr.collect_reads(&mut reads);
    reads.into_iter().collect()
}

/// Infers inter-thread dependencies from use-def information alone, without
/// pragmas: a variable read by thread `C` but never defined in `C`, and
/// defined in exactly one other thread `P`, is a producer/consumer pair.
///
/// Inferred consumer order follows thread declaration order (the pragma form
/// is required when the user wants a specific static service order).
pub fn infer_dependencies(program: &Program) -> Vec<Dependency> {
    let cfgs: Vec<(String, Cfg)> = program
        .threads
        .iter()
        .map(|t| (t.name.clone(), Cfg::build(t)))
        .collect();
    let mut definers: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for (name, cfg) in &cfgs {
        let mut defs = BTreeSet::new();
        for node in &cfg.nodes {
            defs.extend(node.defs.iter().cloned());
        }
        for d in defs {
            definers.entry(d).or_default().push(name.clone());
        }
    }
    let mut deps: BTreeMap<String, Dependency> = BTreeMap::new();
    for (name, cfg) in &cfgs {
        for var in cfg.external_reads() {
            let Some(owners) = definers.get(&var) else {
                continue;
            };
            if owners.len() != 1 || owners[0] == *name {
                continue;
            }
            let producer_thread = owners[0].clone();
            let id = format!("auto_{producer_thread}_{var}");
            let entry = deps.entry(id.clone()).or_insert_with(|| Dependency {
                id,
                producer: Endpoint::new(producer_thread.clone(), var.clone()),
                consumers: Vec::new(),
                span: Span::dummy(),
            });
            entry
                .consumers
                .push(Endpoint::new(name.clone(), receiving_var(cfg, &var)));
        }
    }
    // Order consumers by thread declaration order.
    let order: BTreeMap<&str, usize> = program
        .threads
        .iter()
        .enumerate()
        .map(|(i, t)| (t.name.as_str(), i))
        .collect();
    let mut result: Vec<Dependency> = deps.into_values().collect();
    for d in &mut result {
        d.consumers
            .sort_by_key(|c| order.get(c.thread.as_str()).copied().unwrap_or(usize::MAX));
    }
    result.sort_by(|a, b| a.id.cmp(&b.id));
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn cfg_of(src: &str) -> Cfg {
        let program = parse(src).unwrap();
        Cfg::build(&program.threads[0])
    }

    #[test]
    fn straight_line_cfg() {
        let cfg = cfg_of("thread t() { int a, b; a = 1; b = a + 1; }");
        assert_eq!(cfg.nodes.len(), 2);
        assert!(cfg.nodes[0].succs.contains(&1));
        assert_eq!(cfg.nodes[1].uses, BTreeSet::from(["a".to_owned()]));
        assert_eq!(cfg.nodes[1].defs, BTreeSet::from(["b".to_owned()]));
    }

    #[test]
    fn if_without_else_falls_through() {
        let cfg = cfg_of("thread t() { int a, b; a = 1; if (a) { b = 2; } b = 3; }");
        // nodes: a=1, cond, b=2, b=3
        assert_eq!(cfg.nodes.len(), 4);
        let cond = &cfg.nodes[1];
        assert!(cond.succs.contains(&2));
        assert!(
            cond.succs.contains(&3),
            "fall-through edge expected: {:?}",
            cond.succs
        );
    }

    #[test]
    fn while_loops_back() {
        let cfg = cfg_of("thread t() { int a; while (a) { a = a - 1; } }");
        let cond = &cfg.nodes[0];
        assert!(cond.succs.contains(&1));
        assert!(cfg.nodes[1].succs.contains(&0), "back edge expected");
    }

    #[test]
    fn reaching_definitions_flow_through_branches() {
        let cfg = cfg_of("thread t() { int a, b; a = 1; if (a) { a = 2; } b = a; }");
        let reaching = cfg.reaching_definitions();
        let use_node = cfg.nodes.iter().find(|n| n.defs.contains("b")).unwrap();
        let defs_of_a: Vec<usize> = reaching[use_node.id]
            .iter()
            .filter(|(_, v)| v == "a")
            .map(|(n, _)| *n)
            .collect();
        assert_eq!(defs_of_a.len(), 2, "both a=1 and a=2 must reach the read");
    }

    #[test]
    fn def_use_chains_connect_writer_to_reader() {
        let cfg = cfg_of("thread t() { int a, b; a = 1; b = a; }");
        let chains = cfg.def_use_chains();
        assert_eq!(chains[&(0, "a".to_owned())], BTreeSet::from([1usize]));
    }

    #[test]
    fn lifetimes_span_first_to_last_touch() {
        let cfg = cfg_of("thread t() { int a, b, c; a = 1; b = a; c = b; c = a; }");
        let lifetimes = cfg.lifetimes();
        assert_eq!(lifetimes["a"], (0, 3));
        assert_eq!(lifetimes["b"], (1, 2));
    }

    #[test]
    fn external_reads_found() {
        let cfg = cfg_of("thread t() { int y; y = x1 + 1; }");
        assert_eq!(cfg.external_reads(), BTreeSet::from(["x1".to_owned()]));
    }

    #[test]
    fn infers_figure1_dependency_without_pragmas() {
        let src = r#"
            thread t1 () { int x1, xtmp, x2; x1 = f(xtmp, x2); }
            thread t2 () { int y1, y2; y1 = g(x1, y2); }
            thread t3 () { int z1, z2; z1 = h(x1, z2); }
        "#;
        let program = parse(src).unwrap();
        // Note: undeclared `x1` in t2/t3 would fail sema without pragmas;
        // inference operates on the raw AST.
        let deps = infer_dependencies(&program);
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].producer, Endpoint::new("t1", "x1"));
        // Consumer endpoints carry the *receiving* variable, exactly as
        // the pragma form `#consumer{mt1,[t2,y1],[t3,z1]}` would name them.
        assert_eq!(
            deps[0].consumers,
            vec![Endpoint::new("t2", "y1"), Endpoint::new("t3", "z1")]
        );
    }

    #[test]
    fn exits_mark_iteration_boundaries() {
        let cfg = cfg_of("thread t() { int a, b; a = 1; if (a) { b = 2; } b = 3; }");
        // Only the final statement ends an iteration; its wrap edge
        // returns to the entry.
        assert_eq!(cfg.exits, vec![3]);
        assert!(cfg.nodes[3].succs.contains(&0));
    }

    #[test]
    fn inference_ignores_ambiguous_definers() {
        let src = r#"
            thread a () { int v; v = 1; }
            thread b () { int v; v = 2; }
            thread c () { int w; w = v; }
        "#;
        let deps = infer_dependencies(&parse(src).unwrap());
        assert!(
            deps.is_empty(),
            "two candidate producers must not be guessed"
        );
    }

    #[test]
    fn recv_counts_as_definition() {
        let cfg = cfg_of("thread t() { message m; recv m; send m; }");
        assert!(cfg.nodes[0].is_recv);
        assert!(cfg.nodes[0].defs.contains("m"));
        assert!(cfg.nodes[1].is_send);
        assert!(cfg.nodes[1].uses.contains("m"));
        assert!(cfg.external_reads().is_empty());
    }

    #[test]
    fn case_arms_all_reachable() {
        let cfg = cfg_of(
            "thread t() { int s, a; case (s) { when 1: a = 1; when 2: a = 2; default: a = 0; } }",
        );
        let sel = &cfg.nodes[0];
        assert_eq!(sel.succs.len(), 3);
    }
}
