//! Pretty-printer for hic ASTs.
//!
//! Produces canonical source that re-parses to an equivalent AST, which the
//! property tests use as a round-trip oracle.

use crate::ast::{
    BinaryOp, Expr, LValue, Pragma, Program, Stmt, StmtKind, Thread, TypeDefKind, UnaryOp,
};
use std::fmt::Write as _;

/// Renders a whole program as canonical hic source.
pub fn program_to_string(program: &Program) -> String {
    let mut out = String::new();
    for def in &program.types {
        match &def.kind {
            TypeDefKind::Alias(ty) => {
                let _ = writeln!(out, "type {} = {};", def.name, ty);
            }
            TypeDefKind::Union(fields) => {
                let _ = writeln!(out, "union {} {{", def.name);
                for f in fields {
                    let _ = writeln!(out, "    {}: {};", f.name, f.ty);
                }
                let _ = writeln!(out, "}}");
            }
        }
    }
    for thread in &program.threads {
        out.push_str(&thread_to_string(thread));
    }
    out
}

/// Renders one thread.
pub fn thread_to_string(thread: &Thread) -> String {
    let mut out = String::new();
    let params: Vec<String> = thread
        .params
        .iter()
        .map(|p| format!("{} {}", p.ty, p.name))
        .collect();
    let _ = writeln!(out, "thread {}({}) {{", thread.name, params.join(", "));
    for d in &thread.decls {
        match d.array_len {
            Some(n) => {
                let _ = writeln!(out, "    {} {}[{}];", d.ty, d.name, n);
            }
            None => {
                let _ = writeln!(out, "    {} {};", d.ty, d.name);
            }
        }
    }
    for stmt in &thread.body {
        write_stmt(&mut out, stmt, 1);
    }
    let _ = writeln!(out, "}}");
    out
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn write_pragmas(out: &mut String, pragmas: &[Pragma], level: usize) {
    for p in pragmas {
        indent(out, level);
        match p {
            Pragma::Interface { name, kind, .. } => {
                let _ = writeln!(out, "#interface{{{name}, \"{kind}\"}}");
            }
            Pragma::Constant { name, value, .. } => {
                let _ = writeln!(out, "#constant{{{name}, {value}}}");
            }
            Pragma::Producer { dep, sources, .. } => {
                let eps: Vec<String> = sources.iter().map(|e| e.to_string()).collect();
                let _ = writeln!(out, "#producer{{{dep},{}}}", eps.join(","));
            }
            Pragma::Consumer { dep, sinks, .. } => {
                let eps: Vec<String> = sinks.iter().map(|e| e.to_string()).collect();
                let _ = writeln!(out, "#consumer{{{dep},{}}}", eps.join(","));
            }
        }
    }
}

fn write_stmt(out: &mut String, stmt: &Stmt, level: usize) {
    write_pragmas(out, &stmt.pragmas, level);
    indent(out, level);
    match &stmt.kind {
        StmtKind::Assign { target, value } => {
            let _ = writeln!(
                out,
                "{} = {};",
                lvalue_to_string(target),
                expr_to_string(value)
            );
        }
        StmtKind::If {
            cond,
            then_branch,
            else_branch,
        } => {
            let _ = writeln!(out, "if ({}) {{", expr_to_string(cond));
            for s in then_branch {
                write_stmt(out, s, level + 1);
            }
            if else_branch.is_empty() {
                indent(out, level);
                let _ = writeln!(out, "}}");
            } else {
                indent(out, level);
                let _ = writeln!(out, "}} else {{");
                for s in else_branch {
                    write_stmt(out, s, level + 1);
                }
                indent(out, level);
                let _ = writeln!(out, "}}");
            }
        }
        StmtKind::While { cond, body } => {
            let _ = writeln!(out, "while ({}) {{", expr_to_string(cond));
            for s in body {
                write_stmt(out, s, level + 1);
            }
            indent(out, level);
            let _ = writeln!(out, "}}");
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            let init_s = stmt_inline(init);
            let step_s = stmt_inline(step);
            let _ = writeln!(out, "for ({init_s}; {}; {step_s}) {{", expr_to_string(cond));
            for s in body {
                write_stmt(out, s, level + 1);
            }
            indent(out, level);
            let _ = writeln!(out, "}}");
        }
        StmtKind::Case {
            selector,
            arms,
            default,
        } => {
            let _ = writeln!(out, "case ({}) {{", expr_to_string(selector));
            for arm in arms {
                indent(out, level + 1);
                let _ = writeln!(out, "when {}:", arm.value);
                for s in &arm.body {
                    write_stmt(out, s, level + 2);
                }
            }
            if !default.is_empty() {
                indent(out, level + 1);
                let _ = writeln!(out, "default:");
                for s in default {
                    write_stmt(out, s, level + 2);
                }
            }
            indent(out, level);
            let _ = writeln!(out, "}}");
        }
        StmtKind::Recv { var } => {
            let _ = writeln!(out, "recv {var};");
        }
        StmtKind::Send { value } => {
            let _ = writeln!(out, "send {};", expr_to_string(value));
        }
        StmtKind::Expr(e) => {
            let _ = writeln!(out, "{};", expr_to_string(e));
        }
        StmtKind::Block(body) => {
            let _ = writeln!(out, "{{");
            for s in body {
                write_stmt(out, s, level + 1);
            }
            indent(out, level);
            let _ = writeln!(out, "}}");
        }
    }
}

fn stmt_inline(stmt: &Stmt) -> String {
    match &stmt.kind {
        StmtKind::Assign { target, value } => {
            format!("{} = {}", lvalue_to_string(target), expr_to_string(value))
        }
        other => format!("/* non-assign: {other:?} */"),
    }
}

fn lvalue_to_string(lv: &LValue) -> String {
    match lv {
        LValue::Var(n) => n.clone(),
        LValue::Index { name, index } => format!("{name}[{}]", expr_to_string(index)),
        LValue::Field { name, field } => format!("{name}.{field}"),
    }
}

/// Renders an expression with full parenthesization (safe for re-parsing).
pub fn expr_to_string(expr: &Expr) -> String {
    match expr {
        Expr::Int(v, _) => v.to_string(),
        Expr::Char(c, _) => match *c {
            b'\n' => "'\\n'".to_owned(),
            b'\t' => "'\\t'".to_owned(),
            b'\\' => "'\\\\'".to_owned(),
            b'\'' => "'\\''".to_owned(),
            0 => "'\\0'".to_owned(),
            other => format!("'{}'", other as char),
        },
        Expr::Var(n, _) => n.clone(),
        Expr::Index { name, index, .. } => format!("{name}[{}]", expr_to_string(index)),
        Expr::Field { name, field, .. } => format!("{name}.{field}"),
        Expr::Call { callee, args, .. } => {
            let rendered: Vec<String> = args.iter().map(expr_to_string).collect();
            format!("{callee}({})", rendered.join(", "))
        }
        Expr::Unary { op, operand, .. } => {
            let sym = match op {
                UnaryOp::Neg => "-",
                UnaryOp::Not => "!",
                UnaryOp::BitNot => "~",
            };
            format!("{sym}({})", expr_to_string(operand))
        }
        Expr::Binary { op, lhs, rhs, .. } => {
            let sym = binop_symbol(*op);
            format!("({} {sym} {})", expr_to_string(lhs), expr_to_string(rhs))
        }
    }
}

fn binop_symbol(op: BinaryOp) -> &'static str {
    match op {
        BinaryOp::Or => "||",
        BinaryOp::And => "&&",
        BinaryOp::BitOr => "|",
        BinaryOp::BitXor => "^",
        BinaryOp::BitAnd => "&",
        BinaryOp::Eq => "==",
        BinaryOp::Ne => "!=",
        BinaryOp::Lt => "<",
        BinaryOp::Le => "<=",
        BinaryOp::Gt => ">",
        BinaryOp::Ge => ">=",
        BinaryOp::Shl => "<<",
        BinaryOp::Shr => ">>",
        BinaryOp::Add => "+",
        BinaryOp::Sub => "-",
        BinaryOp::Mul => "*",
        BinaryOp::Div => "/",
        BinaryOp::Rem => "%",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn strip_spans(p: &mut Program) {
        // Round-trip comparisons ignore spans; easiest is to compare the
        // re-rendered text instead of the AST, which this helper sidesteps.
        let _ = p;
    }

    #[test]
    fn round_trips_figure1() {
        let src = r#"
            thread t1 () {
                int x1, xtmp, x2;
                #consumer{mt1,[t2,y1],[t3,z1]}
                x1 = f(xtmp, x2);
            }
            thread t2 () {
                int y1, y2;
                #producer{mt1,[t1,x1]}
                y1 = g(x1, y2);
            }
        "#;
        let mut first = parse(src).unwrap();
        strip_spans(&mut first);
        let rendered = program_to_string(&first);
        let mut second = parse(&rendered).unwrap();
        strip_spans(&mut second);
        // Fixed point: rendering the reparse must match the first rendering.
        assert_eq!(rendered, program_to_string(&second));
    }

    #[test]
    fn round_trips_control_flow() {
        let src = r#"
            thread t() {
                int i, acc, s;
                for (i = 0; i < 8; i = i + 1) { acc = acc + i; }
                while (acc > 0) { acc = acc - 1; }
                if (acc == 0) { s = 1; } else { s = 2; }
                case (s) { when 1: acc = 1; default: acc = 0; }
            }
        "#;
        let first = parse(src).unwrap();
        let rendered = program_to_string(&first);
        let second = parse(&rendered).unwrap();
        assert_eq!(rendered, program_to_string(&second));
    }

    #[test]
    fn renders_char_escapes() {
        let e = Expr::Char(b'\n', crate::error::Span::dummy());
        assert_eq!(expr_to_string(&e), "'\\n'");
    }

    #[test]
    fn round_trips_types_and_unions() {
        let src = "type a = bits<7>;\nunion u { x: char; y: int; }\nthread t() { u w; w.x = 'q'; }";
        let first = parse(src).unwrap();
        let rendered = program_to_string(&first);
        let second = parse(&rendered).unwrap();
        assert_eq!(rendered, program_to_string(&second));
    }
}
