//! Recursive-descent parser for hic.
//!
//! The grammar follows §2 of the paper: threads with local declarations,
//! assignments, `if`/`while`/`for`/`case` control flow, `recv`/`send`
//! interface operations, and the four pragmas attached to the statement that
//! follows them.

use crate::ast::{
    BinaryOp, CaseArm, EndpointRef, Expr, LValue, Pragma, Program, Stmt, StmtKind, Thread, Type,
    TypeDef, TypeDefKind, UnaryOp, UnionField, VarDecl,
};
use crate::error::{CompileError, Diagnostic, Result, Span};
use crate::lexer::lex;
use crate::token::{Token, TokenKind};

/// Parses a complete hic program.
///
/// # Errors
///
/// Returns a [`CompileError`] containing lexer diagnostics or the first
/// syntax error encountered.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), memsync_hic::error::CompileError> {
/// let program = memsync_hic::parser::parse(
///     "thread t1() { int x1; x1 = x1 + 1; }",
/// )?;
/// assert_eq!(program.threads.len(), 1);
/// assert_eq!(program.threads[0].decls[0].name, "x1");
/// # Ok(())
/// # }
/// ```
pub fn parse(source: &str) -> Result<Program> {
    let tokens = lex(source)?;
    let mut parser = Parser { tokens, pos: 0 };
    parser.program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn peek_span(&self) -> Span {
        self.tokens[self.pos.min(self.tokens.len() - 1)].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token> {
        if self.peek() == kind {
            Ok(self.bump())
        } else {
            Err(self.unexpected(kind.describe()))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span)> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                let span = self.peek_span();
                self.bump();
                Ok((name, span))
            }
            _ => Err(self.unexpected("identifier")),
        }
    }

    fn expect_int(&mut self) -> Result<(i64, Span)> {
        match *self.peek() {
            TokenKind::Int(v) => {
                let span = self.peek_span();
                self.bump();
                Ok((v, span))
            }
            _ => Err(self.unexpected("integer literal")),
        }
    }

    fn unexpected(&self, expected: &str) -> CompileError {
        CompileError::new(vec![Diagnostic::error(
            format!("expected {expected}, found {}", self.peek().describe()),
            self.peek_span(),
        )])
    }

    fn program(&mut self) -> Result<Program> {
        let mut types = Vec::new();
        let mut threads = Vec::new();
        loop {
            match self.peek() {
                TokenKind::Eof => break,
                TokenKind::KwType => types.push(self.type_alias()?),
                TokenKind::KwUnion => types.push(self.union_def()?),
                TokenKind::Thread => threads.push(self.thread()?),
                _ => return Err(self.unexpected("`thread`, `type`, or `union`")),
            }
        }
        Ok(Program { types, threads })
    }

    fn type_alias(&mut self) -> Result<TypeDef> {
        let start = self.peek_span();
        self.expect(&TokenKind::KwType)?;
        let (name, _) = self.expect_ident()?;
        self.expect(&TokenKind::Assign)?;
        let ty = self.parse_type()?;
        let end = self.expect(&TokenKind::Semi)?.span;
        Ok(TypeDef {
            name,
            kind: TypeDefKind::Alias(ty),
            span: start.merge(end),
        })
    }

    fn union_def(&mut self) -> Result<TypeDef> {
        let start = self.peek_span();
        self.expect(&TokenKind::KwUnion)?;
        let (name, _) = self.expect_ident()?;
        self.expect(&TokenKind::LBrace)?;
        let mut fields = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            let (fname, fspan) = self.expect_ident()?;
            self.expect(&TokenKind::Colon)?;
            let ty = self.parse_type()?;
            self.expect(&TokenKind::Semi)?;
            fields.push(UnionField {
                name: fname,
                ty,
                span: fspan,
            });
        }
        let end = self.tokens[self.pos - 1].span;
        Ok(TypeDef {
            name,
            kind: TypeDefKind::Union(fields),
            span: start.merge(end),
        })
    }

    fn parse_type(&mut self) -> Result<Type> {
        match self.peek().clone() {
            TokenKind::KwInt => {
                self.bump();
                Ok(Type::Int)
            }
            TokenKind::KwChar => {
                self.bump();
                Ok(Type::Char)
            }
            TokenKind::KwMessage => {
                self.bump();
                Ok(Type::Message)
            }
            TokenKind::KwBits => {
                self.bump();
                self.expect(&TokenKind::Lt)?;
                let (w, span) = self.expect_int()?;
                if !(1..=4096).contains(&w) {
                    return Err(CompileError::single(
                        format!("bit width {w} out of range 1..=4096"),
                        span,
                    ));
                }
                self.expect(&TokenKind::Gt)?;
                Ok(Type::Bits(w as u32))
            }
            TokenKind::Ident(name) => {
                self.bump();
                Ok(Type::Named(name))
            }
            _ => Err(self.unexpected("type")),
        }
    }

    fn is_type_start(&self) -> bool {
        matches!(
            self.peek(),
            TokenKind::KwInt | TokenKind::KwChar | TokenKind::KwMessage | TokenKind::KwBits
        )
    }

    fn thread(&mut self) -> Result<Thread> {
        let start = self.peek_span();
        self.expect(&TokenKind::Thread)?;
        let (name, _) = self.expect_ident()?;
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.eat(&TokenKind::RParen) {
            loop {
                let ty = self.parse_type()?;
                let (pname, pspan) = self.expect_ident()?;
                params.push(VarDecl {
                    name: pname,
                    ty,
                    array_len: None,
                    span: pspan,
                });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        self.expect(&TokenKind::LBrace)?;

        // Leading declarations: `type name (, name)* ;` possibly with `[N]`.
        let mut decls = Vec::new();
        while self.is_type_start() || self.starts_named_decl() {
            let ty = self.parse_type()?;
            loop {
                let (vname, vspan) = self.expect_ident()?;
                let array_len = if self.eat(&TokenKind::LBracket) {
                    let (n, nspan) = self.expect_int()?;
                    if n <= 0 {
                        return Err(CompileError::single("array length must be positive", nspan));
                    }
                    self.expect(&TokenKind::RBracket)?;
                    Some(n as u32)
                } else {
                    None
                };
                decls.push(VarDecl {
                    name: vname,
                    ty: ty.clone(),
                    array_len,
                    span: vspan,
                });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::Semi)?;
        }

        let mut body = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            body.push(self.stmt()?);
        }
        let end = self.tokens[self.pos - 1].span;
        Ok(Thread {
            name,
            params,
            decls,
            body,
            span: start.merge(end),
        })
    }

    /// A declaration with a user-defined type looks like `ident ident`,
    /// which is ambiguous with an expression statement. Peek two tokens.
    fn starts_named_decl(&self) -> bool {
        if let TokenKind::Ident(_) = self.peek() {
            matches!(
                self.tokens.get(self.pos + 1).map(|t| &t.kind),
                Some(TokenKind::Ident(_))
            )
        } else {
            false
        }
    }

    fn stmt(&mut self) -> Result<Stmt> {
        let mut pragmas = Vec::new();
        while matches!(
            self.peek(),
            TokenKind::PragmaConsumer
                | TokenKind::PragmaProducer
                | TokenKind::PragmaInterface
                | TokenKind::PragmaConstant
        ) {
            pragmas.push(self.pragma()?);
        }
        let start = self.peek_span();
        let kind = self.stmt_kind()?;
        let end = self.tokens[self.pos - 1].span;
        Ok(Stmt {
            pragmas,
            kind,
            span: start.merge(end),
        })
    }

    fn stmt_kind(&mut self) -> Result<StmtKind> {
        match self.peek().clone() {
            TokenKind::If => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                let then_branch = self.stmt_or_block()?;
                let else_branch = if self.eat(&TokenKind::Else) {
                    self.stmt_or_block()?
                } else {
                    Vec::new()
                };
                Ok(StmtKind::If {
                    cond,
                    then_branch,
                    else_branch,
                })
            }
            TokenKind::While => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                let body = self.stmt_or_block()?;
                Ok(StmtKind::While { cond, body })
            }
            TokenKind::For => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let init = Box::new(self.simple_assign()?);
                self.expect(&TokenKind::Semi)?;
                let cond = self.expr()?;
                self.expect(&TokenKind::Semi)?;
                let step = Box::new(self.simple_assign()?);
                self.expect(&TokenKind::RParen)?;
                let body = self.stmt_or_block()?;
                Ok(StmtKind::For {
                    init,
                    cond,
                    step,
                    body,
                })
            }
            TokenKind::Case => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let selector = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                self.expect(&TokenKind::LBrace)?;
                let mut arms = Vec::new();
                let mut default = Vec::new();
                while !self.eat(&TokenKind::RBrace) {
                    if self.eat(&TokenKind::When) {
                        let arm_start = self.peek_span();
                        let (value, _) = self.signed_int()?;
                        self.expect(&TokenKind::Colon)?;
                        let mut body = Vec::new();
                        while !matches!(
                            self.peek(),
                            TokenKind::When | TokenKind::Default | TokenKind::RBrace
                        ) {
                            body.push(self.stmt()?);
                        }
                        let arm_end = self.tokens[self.pos - 1].span;
                        arms.push(CaseArm {
                            value,
                            body,
                            span: arm_start.merge(arm_end),
                        });
                    } else if self.eat(&TokenKind::Default) {
                        self.expect(&TokenKind::Colon)?;
                        while !matches!(self.peek(), TokenKind::When | TokenKind::RBrace) {
                            default.push(self.stmt()?);
                        }
                    } else {
                        return Err(self.unexpected("`when`, `default`, or `}`"));
                    }
                }
                Ok(StmtKind::Case {
                    selector,
                    arms,
                    default,
                })
            }
            TokenKind::Recv => {
                self.bump();
                let (var, _) = self.expect_ident()?;
                self.expect(&TokenKind::Semi)?;
                Ok(StmtKind::Recv { var })
            }
            TokenKind::Send => {
                self.bump();
                let value = self.expr()?;
                self.expect(&TokenKind::Semi)?;
                Ok(StmtKind::Send { value })
            }
            TokenKind::LBrace => {
                self.bump();
                let mut body = Vec::new();
                while !self.eat(&TokenKind::RBrace) {
                    body.push(self.stmt()?);
                }
                Ok(StmtKind::Block(body))
            }
            TokenKind::Ident(_) => {
                let stmt = self.simple_assign_or_expr()?;
                self.expect(&TokenKind::Semi)?;
                Ok(stmt)
            }
            _ => Err(self.unexpected("statement")),
        }
    }

    fn signed_int(&mut self) -> Result<(i64, Span)> {
        if self.eat(&TokenKind::Minus) {
            let (v, s) = self.expect_int()?;
            Ok((-v, s))
        } else {
            self.expect_int()
        }
    }

    fn stmt_or_block(&mut self) -> Result<Vec<Stmt>> {
        if self.eat(&TokenKind::LBrace) {
            let mut body = Vec::new();
            while !self.eat(&TokenKind::RBrace) {
                body.push(self.stmt()?);
            }
            Ok(body)
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    /// An assignment without the trailing semicolon, for `for` headers.
    fn simple_assign(&mut self) -> Result<Stmt> {
        let start = self.peek_span();
        let kind = self.simple_assign_or_expr()?;
        if !matches!(kind, StmtKind::Assign { .. }) {
            return Err(CompileError::single("expected assignment", start));
        }
        let end = self.tokens[self.pos - 1].span;
        Ok(Stmt {
            pragmas: Vec::new(),
            kind,
            span: start.merge(end),
        })
    }

    fn simple_assign_or_expr(&mut self) -> Result<StmtKind> {
        let checkpoint = self.pos;
        let (name, span) = self.expect_ident()?;
        // Try lvalue forms followed by `=`.
        let lvalue = if self.eat(&TokenKind::LBracket) {
            let index = self.expr()?;
            self.expect(&TokenKind::RBracket)?;
            Some(LValue::Index {
                name: name.clone(),
                index: Box::new(index),
            })
        } else if *self.peek() == TokenKind::Dot {
            self.bump();
            let (field, _) = self.expect_ident()?;
            Some(LValue::Field {
                name: name.clone(),
                field,
            })
        } else {
            Some(LValue::Var(name.clone()))
        };
        if let Some(target) = lvalue {
            if self.eat(&TokenKind::Assign) {
                let value = self.expr()?;
                return Ok(StmtKind::Assign { target, value });
            }
        }
        // Not an assignment: rewind and parse a full expression statement.
        self.pos = checkpoint;
        let _ = span;
        let expr = self.expr()?;
        Ok(StmtKind::Expr(expr))
    }

    fn pragma(&mut self) -> Result<Pragma> {
        let head = self.bump();
        let start = head.span;
        self.expect(&TokenKind::LBrace)?;
        let pragma = match head.kind {
            TokenKind::PragmaInterface => {
                let (name, _) = self.expect_ident()?;
                self.expect(&TokenKind::Comma)?;
                let kind = match self.peek().clone() {
                    TokenKind::Str(s) => {
                        self.bump();
                        s
                    }
                    TokenKind::Ident(s) => {
                        self.bump();
                        s
                    }
                    _ => return Err(self.unexpected("interface kind")),
                };
                Pragma::Interface {
                    name,
                    kind,
                    span: start,
                }
            }
            TokenKind::PragmaConstant => {
                let (name, _) = self.expect_ident()?;
                self.expect(&TokenKind::Comma)?;
                let (value, _) = self.signed_int()?;
                Pragma::Constant {
                    name,
                    value,
                    span: start,
                }
            }
            TokenKind::PragmaProducer => {
                let (dep, _) = self.expect_ident()?;
                let sources = self.endpoint_list()?;
                Pragma::Producer {
                    dep,
                    sources,
                    span: start,
                }
            }
            TokenKind::PragmaConsumer => {
                let (dep, _) = self.expect_ident()?;
                let sinks = self.endpoint_list()?;
                Pragma::Consumer {
                    dep,
                    sinks,
                    span: start,
                }
            }
            _ => unreachable!("pragma() called on non-pragma token"),
        };
        self.expect(&TokenKind::RBrace)?;
        Ok(pragma)
    }

    fn endpoint_list(&mut self) -> Result<Vec<EndpointRef>> {
        let mut endpoints = Vec::new();
        while self.eat(&TokenKind::Comma) {
            let span = self.peek_span();
            self.expect(&TokenKind::LBracket)?;
            let (thread, _) = self.expect_ident()?;
            self.expect(&TokenKind::Comma)?;
            let (var, _) = self.expect_ident()?;
            self.expect(&TokenKind::RBracket)?;
            endpoints.push(EndpointRef { thread, var, span });
        }
        if endpoints.is_empty() {
            return Err(self.unexpected("at least one `[thread,var]` endpoint"));
        }
        Ok(endpoints)
    }

    // ---- expressions: precedence climbing ----

    fn expr(&mut self) -> Result<Expr> {
        self.binary_expr(0)
    }

    fn binary_expr(&mut self, min_prec: u8) -> Result<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let (op, prec) = match self.peek() {
                TokenKind::OrOr => (BinaryOp::Or, 1),
                TokenKind::AndAnd => (BinaryOp::And, 2),
                TokenKind::Pipe => (BinaryOp::BitOr, 3),
                TokenKind::Caret => (BinaryOp::BitXor, 4),
                TokenKind::Amp => (BinaryOp::BitAnd, 5),
                TokenKind::EqEq => (BinaryOp::Eq, 6),
                TokenKind::NotEq => (BinaryOp::Ne, 6),
                TokenKind::Lt => (BinaryOp::Lt, 7),
                TokenKind::Le => (BinaryOp::Le, 7),
                TokenKind::Gt => (BinaryOp::Gt, 7),
                TokenKind::Ge => (BinaryOp::Ge, 7),
                TokenKind::Shl => (BinaryOp::Shl, 8),
                TokenKind::Shr => (BinaryOp::Shr, 8),
                TokenKind::Plus => (BinaryOp::Add, 9),
                TokenKind::Minus => (BinaryOp::Sub, 9),
                TokenKind::Star => (BinaryOp::Mul, 10),
                TokenKind::Slash => (BinaryOp::Div, 10),
                TokenKind::Percent => (BinaryOp::Rem, 10),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.binary_expr(prec + 1)?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        let span = self.peek_span();
        let op = match self.peek() {
            TokenKind::Minus => Some(UnaryOp::Neg),
            TokenKind::Bang => Some(UnaryOp::Not),
            TokenKind::Tilde => Some(UnaryOp::BitNot),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let operand = self.unary_expr()?;
            let span = span.merge(operand.span());
            return Ok(Expr::Unary {
                op,
                operand: Box::new(operand),
                span,
            });
        }
        self.primary_expr()
    }

    fn primary_expr(&mut self) -> Result<Expr> {
        let span = self.peek_span();
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::Int(v, span))
            }
            TokenKind::Char(c) => {
                self.bump();
                Ok(Expr::Char(c, span))
            }
            TokenKind::LParen => {
                self.bump();
                let inner = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(inner)
            }
            TokenKind::Ident(name) => {
                self.bump();
                match self.peek() {
                    TokenKind::LParen => {
                        self.bump();
                        let mut args = Vec::new();
                        if !self.eat(&TokenKind::RParen) {
                            loop {
                                args.push(self.expr()?);
                                if !self.eat(&TokenKind::Comma) {
                                    break;
                                }
                            }
                            self.expect(&TokenKind::RParen)?;
                        }
                        let end = self.tokens[self.pos - 1].span;
                        Ok(Expr::Call {
                            callee: name,
                            args,
                            span: span.merge(end),
                        })
                    }
                    TokenKind::LBracket => {
                        self.bump();
                        let index = self.expr()?;
                        self.expect(&TokenKind::RBracket)?;
                        let end = self.tokens[self.pos - 1].span;
                        Ok(Expr::Index {
                            name,
                            index: Box::new(index),
                            span: span.merge(end),
                        })
                    }
                    TokenKind::Dot => {
                        self.bump();
                        let (field, fspan) = self.expect_ident()?;
                        Ok(Expr::Field {
                            name,
                            field,
                            span: span.merge(fspan),
                        })
                    }
                    _ => Ok(Expr::Var(name, span)),
                }
            }
            _ => Err(self.unexpected("expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 1, verbatim modulo whitespace.
    pub const FIGURE1: &str = r#"
        thread t1 () {
            int x1, xtmp, x2;
            #consumer{mt1,[t2,y1],[t3,z1]}
            x1 = f(xtmp, x2);
        }
        thread t2 () {
            int y1, y2;
            #producer{mt1,[t1,x1]}
            y1 = g(x1, y2);
        }
        thread t3 () {
            int z1, z2;
            #producer{mt1,[t1,x1]}
            z1 = h(x1, z2);
        }
    "#;

    #[test]
    fn parses_figure1() {
        let program = parse(FIGURE1).expect("figure 1 parses");
        assert_eq!(program.threads.len(), 3);
        let t1 = program.thread("t1").unwrap();
        assert_eq!(t1.decls.len(), 3);
        assert_eq!(t1.body.len(), 1);
        match &t1.body[0].pragmas[0] {
            Pragma::Consumer { dep, sinks, .. } => {
                assert_eq!(dep, "mt1");
                assert_eq!(sinks.len(), 2);
                assert_eq!(sinks[0].thread, "t2");
                assert_eq!(sinks[0].var, "y1");
                assert_eq!(sinks[1].thread, "t3");
                assert_eq!(sinks[1].var, "z1");
            }
            other => panic!("expected consumer pragma, got {other:?}"),
        }
        let t2 = program.thread("t2").unwrap();
        match &t2.body[0].pragmas[0] {
            Pragma::Producer { dep, sources, .. } => {
                assert_eq!(dep, "mt1");
                assert_eq!(sources[0].thread, "t1");
                assert_eq!(sources[0].var, "x1");
            }
            other => panic!("expected producer pragma, got {other:?}"),
        }
    }

    #[test]
    fn parses_control_flow() {
        let src = r#"
            thread t() {
                int i, acc, state;
                for (i = 0; i < 8; i = i + 1) { acc = acc + i; }
                while (acc > 0) acc = acc - 1;
                if (acc == 0) { state = 1; } else { state = 2; }
                case (state) {
                    when 1: acc = 10;
                    when 2: acc = 20;
                    default: acc = 0;
                }
            }
        "#;
        let program = parse(src).unwrap();
        let t = &program.threads[0];
        assert_eq!(t.body.len(), 4);
        assert!(matches!(t.body[0].kind, StmtKind::For { .. }));
        assert!(matches!(t.body[1].kind, StmtKind::While { .. }));
        assert!(matches!(t.body[2].kind, StmtKind::If { .. }));
        match &t.body[3].kind {
            StmtKind::Case { arms, default, .. } => {
                assert_eq!(arms.len(), 2);
                assert_eq!(arms[0].value, 1);
                assert_eq!(default.len(), 1);
            }
            other => panic!("expected case, got {other:?}"),
        }
    }

    #[test]
    fn parses_recv_send_and_interface_pragma() {
        let src = r#"
            thread rx() {
                message m;
                #interface{eth0, "gige"}
                recv m;
                send m;
            }
        "#;
        let program = parse(src).unwrap();
        let body = &program.threads[0].body;
        assert!(matches!(body[0].kind, StmtKind::Recv { .. }));
        assert!(matches!(
            body[0].pragmas[0],
            Pragma::Interface { ref kind, .. } if kind == "gige"
        ));
        assert!(matches!(body[1].kind, StmtKind::Send { .. }));
    }

    #[test]
    fn parses_constant_pragma_and_negative_value() {
        let src = "thread t() { int a; #constant{host, -42} a = host; }";
        let program = parse(src).unwrap();
        match &program.threads[0].body[0].pragmas[0] {
            Pragma::Constant { name, value, .. } => {
                assert_eq!(name, "host");
                assert_eq!(*value, -42);
            }
            other => panic!("expected constant, got {other:?}"),
        }
    }

    #[test]
    fn precedence_mul_binds_tighter_than_add() {
        let program = parse("thread t() { int a, b, c; a = a + b * c; }").unwrap();
        match &program.threads[0].body[0].kind {
            StmtKind::Assign {
                value:
                    Expr::Binary {
                        op: BinaryOp::Add,
                        rhs,
                        ..
                    },
                ..
            } => {
                assert!(matches!(
                    **rhs,
                    Expr::Binary {
                        op: BinaryOp::Mul,
                        ..
                    }
                ));
            }
            other => panic!("unexpected parse: {other:?}"),
        }
    }

    #[test]
    fn parses_arrays_unions_and_typedefs() {
        let src = r#"
            type addr = bits<11>;
            union word { lo: char; full: int; }
            thread t() {
                addr a;
                int tbl[16];
                word w;
                tbl[a] = w.full;
                w.lo = 'x';
            }
        "#;
        let program = parse(src).unwrap();
        assert_eq!(program.types.len(), 2);
        let t = &program.threads[0];
        assert_eq!(t.decls[1].array_len, Some(16));
        assert!(matches!(
            t.body[0].kind,
            StmtKind::Assign {
                target: LValue::Index { .. },
                ..
            }
        ));
        assert!(matches!(
            t.body[1].kind,
            StmtKind::Assign {
                target: LValue::Field { .. },
                ..
            }
        ));
    }

    #[test]
    fn rejects_missing_semicolon() {
        assert!(parse("thread t() { int a; a = 1 }").is_err());
    }

    #[test]
    fn rejects_pragma_without_endpoints() {
        assert!(parse("thread t() { int a; #producer{m1} a = 1; }").is_err());
    }

    #[test]
    fn rejects_zero_bit_width() {
        assert!(parse("thread t() { bits<0> a; a = 1; }").is_err());
    }

    #[test]
    fn parentheses_override_precedence() {
        let program = parse("thread t() { int a, b, c; a = (a + b) * c; }").unwrap();
        match &program.threads[0].body[0].kind {
            StmtKind::Assign {
                value: Expr::Binary { op, lhs, .. },
                ..
            } => {
                assert_eq!(*op, BinaryOp::Mul);
                assert!(matches!(
                    **lhs,
                    Expr::Binary {
                        op: BinaryOp::Add,
                        ..
                    }
                ));
            }
            other => panic!("unexpected parse: {other:?}"),
        }
    }
}
