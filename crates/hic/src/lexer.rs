//! Hand-written lexer for hic.
//!
//! The lexer is a one-pass byte scanner producing [`Token`]s with byte-exact
//! [`Span`]s. Comments (`//` line and `/* */` block) and whitespace are
//! skipped. Pragma heads (`#consumer` etc.) are lexed as single tokens so the
//! parser never has to re-tokenize after `#`.

use crate::error::{CompileError, Diagnostic, Result, Span};
use crate::token::{Token, TokenKind};

/// Lexes a full source string into tokens, ending with [`TokenKind::Eof`].
///
/// # Errors
///
/// Returns a [`CompileError`] carrying one diagnostic per lexical error
/// (unknown character, unterminated literal/comment, malformed number or
/// pragma head). Lexing continues past recoverable errors so all problems
/// are reported in one pass.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), memsync_hic::error::CompileError> {
/// use memsync_hic::lexer::lex;
/// let tokens = lex("thread t1() { int x1; }")?;
/// assert_eq!(tokens.len(), 10); // 9 tokens + Eof
/// # Ok(())
/// # }
/// ```
pub fn lex(source: &str) -> Result<Vec<Token>> {
    let mut lexer = Lexer::new(source);
    lexer.run();
    if lexer.diagnostics.is_empty() {
        Ok(lexer.tokens)
    } else {
        Err(CompileError::new(lexer.diagnostics))
    }
}

struct Lexer<'src> {
    src: &'src [u8],
    pos: usize,
    line: u32,
    column: u32,
    tokens: Vec<Token>,
    diagnostics: Vec<Diagnostic>,
}

impl<'src> Lexer<'src> {
    fn new(source: &'src str) -> Self {
        Lexer {
            src: source.as_bytes(),
            pos: 0,
            line: 1,
            column: 1,
            tokens: Vec::new(),
            diagnostics: Vec::new(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(b)
    }

    fn here(&self) -> (usize, u32, u32) {
        (self.pos, self.line, self.column)
    }

    fn span_from(&self, start: (usize, u32, u32)) -> Span {
        Span::new(start.0, self.pos, start.1, start.2)
    }

    fn push(&mut self, kind: TokenKind, start: (usize, u32, u32)) {
        let span = self.span_from(start);
        self.tokens.push(Token::new(kind, span));
    }

    fn error(&mut self, message: impl Into<String>, start: (usize, u32, u32)) {
        let span = self.span_from(start);
        self.diagnostics.push(Diagnostic::error(message, span));
    }

    fn run(&mut self) {
        while let Some(b) = self.peek() {
            let start = self.here();
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                b'/' if self.peek2() == Some(b'*') => {
                    self.bump();
                    self.bump();
                    let mut closed = false;
                    while let Some(c) = self.bump() {
                        if c == b'*' && self.peek() == Some(b'/') {
                            self.bump();
                            closed = true;
                            break;
                        }
                    }
                    if !closed {
                        self.error("unterminated block comment", start);
                    }
                }
                b'#' => self.lex_pragma_head(start),
                b'0'..=b'9' => self.lex_number(start),
                b'\'' => self.lex_char(start),
                b'"' => self.lex_string(start),
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.lex_ident(start),
                _ => self.lex_operator(start),
            }
        }
        let start = self.here();
        self.push(TokenKind::Eof, start);
    }

    fn lex_pragma_head(&mut self, start: (usize, u32, u32)) {
        self.bump(); // '#'
        let word_start = self.pos;
        while matches!(self.peek(), Some(b'a'..=b'z' | b'A'..=b'Z' | b'_')) {
            self.bump();
        }
        let word = std::str::from_utf8(&self.src[word_start..self.pos]).unwrap_or("");
        let kind = match word {
            "consumer" => TokenKind::PragmaConsumer,
            "producer" => TokenKind::PragmaProducer,
            "interface" => TokenKind::PragmaInterface,
            "constant" => TokenKind::PragmaConstant,
            other => {
                self.error(format!("unknown pragma `#{other}`"), start);
                return;
            }
        };
        self.push(kind, start);
    }

    fn lex_number(&mut self, start: (usize, u32, u32)) {
        let (radix, digits_start) =
            if self.peek() == Some(b'0') && matches!(self.peek2(), Some(b'x' | b'X')) {
                self.bump();
                self.bump();
                (16u32, self.pos)
            } else if self.peek() == Some(b'0') && matches!(self.peek2(), Some(b'b' | b'B')) {
                self.bump();
                self.bump();
                (2u32, self.pos)
            } else {
                (10u32, self.pos)
            };
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        let text: String = std::str::from_utf8(&self.src[digits_start..self.pos])
            .unwrap_or("")
            .chars()
            .filter(|&c| c != '_')
            .collect();
        match i64::from_str_radix(&text, radix) {
            Ok(v) => self.push(TokenKind::Int(v), start),
            Err(_) => self.error(format!("invalid integer literal `{text}`"), start),
        }
    }

    fn lex_char(&mut self, start: (usize, u32, u32)) {
        self.bump(); // opening quote
        let value = match self.bump() {
            Some(b'\\') => match self.bump() {
                Some(b'n') => b'\n',
                Some(b't') => b'\t',
                Some(b'0') => 0,
                Some(b'\\') => b'\\',
                Some(b'\'') => b'\'',
                _ => {
                    self.error("invalid escape in character literal", start);
                    return;
                }
            },
            Some(c) if c != b'\'' && c != b'\n' => c,
            _ => {
                self.error("empty or unterminated character literal", start);
                return;
            }
        };
        if self.peek() == Some(b'\'') {
            self.bump();
            self.push(TokenKind::Char(value), start);
        } else {
            self.error("unterminated character literal", start);
        }
    }

    fn lex_string(&mut self, start: (usize, u32, u32)) {
        self.bump(); // opening quote
        let mut value = String::new();
        loop {
            match self.bump() {
                Some(b'"') => {
                    self.push(TokenKind::Str(value), start);
                    return;
                }
                Some(b'\n') | None => {
                    self.error("unterminated string literal", start);
                    return;
                }
                Some(c) => value.push(c as char),
            }
        }
    }

    fn lex_ident(&mut self, start: (usize, u32, u32)) {
        while matches!(
            self.peek(),
            Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_')
        ) {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start.0..self.pos]).unwrap_or("");
        let kind = TokenKind::keyword(text).unwrap_or_else(|| TokenKind::Ident(text.to_owned()));
        self.push(kind, start);
    }

    fn lex_operator(&mut self, start: (usize, u32, u32)) {
        let b = self.bump().expect("lex_operator called at end of input");
        let two = |lexer: &mut Lexer<'_>, next: u8, long: TokenKind, short: TokenKind| {
            if lexer.peek() == Some(next) {
                lexer.bump();
                long
            } else {
                short
            }
        };
        let kind = match b {
            b'(' => TokenKind::LParen,
            b')' => TokenKind::RParen,
            b'{' => TokenKind::LBrace,
            b'}' => TokenKind::RBrace,
            b'[' => TokenKind::LBracket,
            b']' => TokenKind::RBracket,
            b',' => TokenKind::Comma,
            b';' => TokenKind::Semi,
            b':' => TokenKind::Colon,
            b'.' => TokenKind::Dot,
            b'+' => TokenKind::Plus,
            b'-' => TokenKind::Minus,
            b'*' => TokenKind::Star,
            b'/' => TokenKind::Slash,
            b'%' => TokenKind::Percent,
            b'^' => TokenKind::Caret,
            b'~' => TokenKind::Tilde,
            b'=' => two(self, b'=', TokenKind::EqEq, TokenKind::Assign),
            b'!' => two(self, b'=', TokenKind::NotEq, TokenKind::Bang),
            b'&' => two(self, b'&', TokenKind::AndAnd, TokenKind::Amp),
            b'|' => two(self, b'|', TokenKind::OrOr, TokenKind::Pipe),
            b'<' => {
                if self.peek() == Some(b'<') {
                    self.bump();
                    TokenKind::Shl
                } else {
                    two(self, b'=', TokenKind::Le, TokenKind::Lt)
                }
            }
            b'>' => {
                if self.peek() == Some(b'>') {
                    self.bump();
                    TokenKind::Shr
                } else {
                    two(self, b'=', TokenKind::Ge, TokenKind::Gt)
                }
            }
            other => {
                self.error(format!("unexpected character `{}`", other as char), start);
                return;
            }
        };
        self.push(kind, start);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src)
            .expect("lex ok")
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_figure1_fragment() {
        let ks = kinds("#consumer{mt1,[t2,y1],[t3,z1]}\nx1 = f(xtmp, x2);");
        assert_eq!(ks[0], TokenKind::PragmaConsumer);
        assert_eq!(ks[1], TokenKind::LBrace);
        assert_eq!(ks[2], TokenKind::Ident("mt1".into()));
        assert!(ks.contains(&TokenKind::Ident("x1".into())));
        assert_eq!(*ks.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn lexes_numbers_in_all_radixes() {
        assert_eq!(
            kinds("10 0x1F 0b101 1_000"),
            vec![
                TokenKind::Int(10),
                TokenKind::Int(0x1f),
                TokenKind::Int(0b101),
                TokenKind::Int(1000),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_char_and_string_literals() {
        assert_eq!(
            kinds(r#"'a' '\n' "gige""#),
            vec![
                TokenKind::Char(b'a'),
                TokenKind::Char(b'\n'),
                TokenKind::Str("gige".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_multichar_operators() {
        assert_eq!(
            kinds("== != <= >= && || << >> < >"),
            vec![
                TokenKind::EqEq,
                TokenKind::NotEq,
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::Shl,
                TokenKind::Shr,
                TokenKind::Lt,
                TokenKind::Gt,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn skips_comments() {
        assert_eq!(
            kinds("a // comment\n/* block\n comment */ b"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn spans_track_lines_and_columns() {
        let tokens = lex("ab\n  cd").unwrap();
        assert_eq!(tokens[0].span.line, 1);
        assert_eq!(tokens[0].span.column, 1);
        assert_eq!(tokens[1].span.line, 2);
        assert_eq!(tokens[1].span.column, 3);
    }

    #[test]
    fn rejects_unknown_character() {
        let err = lex("a $ b").unwrap_err();
        assert_eq!(err.error_count(), 1);
        assert!(err.to_string().contains("unexpected character"));
    }

    #[test]
    fn rejects_unknown_pragma() {
        let err = lex("#frobnicate{}").unwrap_err();
        assert!(err.to_string().contains("unknown pragma"));
    }

    #[test]
    fn rejects_unterminated_block_comment() {
        assert!(lex("/* never closed").is_err());
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(lex("\"oops").is_err());
    }

    #[test]
    fn reports_multiple_errors_in_one_pass() {
        let err = lex("$ ? @").unwrap_err();
        assert_eq!(err.error_count(), 3);
    }

    #[test]
    fn keywords_are_not_identifiers() {
        assert_eq!(kinds("while")[0], TokenKind::While);
        assert_eq!(kinds("while_x")[0], TokenKind::Ident("while_x".into()));
    }
}
