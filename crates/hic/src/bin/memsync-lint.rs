//! memsync-lint — static hazard analysis for hic programs.
//!
//! Usage: `memsync-lint [--json] [--unpaced] FILE...`
//!
//! Runs the `memsync_hic::hazards` pass over each file and prints one
//! report per file (human-readable, or one JSON document per line with
//! `--json`). By default `recv` statements are assumed paced (the
//! memsync-serve injection regime); `--unpaced` analyzes under
//! free-running arrivals instead — "what breaks if pacing is removed?".
//!
//! Exit status: 0 when every file is hazard-free, 1 when any hazard was
//! found, 2 on usage, I/O, or compile errors.

use memsync_hic::hazards::{self, PacingAssumption};
use memsync_hic::Severity;
use std::process::ExitCode;

const USAGE: &str = "usage: memsync-lint [--json] [--unpaced] FILE...";

fn main() -> ExitCode {
    let mut json = false;
    let mut pacing = PacingAssumption::PacedArrivals;
    let mut files = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--unpaced" => pacing = PacingAssumption::FreeRunning,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("memsync-lint: unknown flag `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
            path => files.push(path.to_owned()),
        }
    }
    if files.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }

    let mut worst: u8 = 0;
    for path in &files {
        let status = lint_file(path, pacing, json);
        worst = worst.max(status);
    }
    ExitCode::from(worst)
}

/// Lints one file; returns the exit status it alone would produce.
fn lint_file(path: &str, pacing: PacingAssumption, json: bool) -> u8 {
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("memsync-lint: {path}: {e}");
            return 2;
        }
    };
    match hazards::check_source(&source, pacing) {
        Err(e) => {
            if json {
                let doc = memsync_trace::Json::obj()
                    .with("file", memsync_trace::Json::Str(path.to_owned()))
                    .with("error", memsync_trace::Json::Str(e.to_string()));
                println!("{}", doc.render());
            } else {
                for d in e.diagnostics() {
                    eprintln!("{path}:{d}");
                }
            }
            2
        }
        Ok((report, diagnostics)) => {
            let errors = diagnostics
                .iter()
                .filter(|d| d.severity == Severity::Error)
                .count();
            if json {
                let doc = report
                    .to_json()
                    .with("file", memsync_trace::Json::Str(path.to_owned()))
                    .with("compile_errors", errors.into());
                println!("{}", doc.render());
            } else {
                for d in diagnostics {
                    eprintln!("{path}:{d}");
                }
                for h in &report.hazards {
                    println!("{path}:{h}");
                }
                if report.is_clean() {
                    println!("{path}: clean ({} assumed)", report.pacing.as_str());
                }
            }
            if !report.is_clean() {
                1
            } else if errors > 0 {
                2
            } else {
                0
            }
        }
    }
}
