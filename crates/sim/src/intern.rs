//! Dense integer IDs for thread and bank names.
//!
//! The engine's hot loop must not touch `String`s: at [`crate::System`]
//! construction time every thread and sync-bank name is interned into a
//! [`ThreadId`] / [`BankId`], and all per-cycle state (private banks, rx
//! queues, arrival sources, last-issue attribution) lives in flat `Vec`s
//! indexed by those IDs. Names are only materialized again at the edges —
//! public lookups like [`crate::System::thread`] and trace sinks that want
//! to render an event's thread index lazily resolve through the
//! [`Interner`].

/// Dense index of a thread within a [`crate::System`] (order of
/// `CompiledSystem::fsms`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub u32);

/// Dense index of a sync bank within a [`crate::System`] (order of
/// `AllocationPlan::sync_banks`; private port-A banks follow at
/// `n_sync + thread`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BankId(pub u32);

impl ThreadId {
    /// The id as a `usize` index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl BankId {
    /// The id as a `usize` index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Bidirectional name table built once at `System::new` time.
///
/// Forward lookups (`name -> id`) are linear scans over the interned
/// tables — they only run on cold, user-facing paths (`System::thread`,
/// `System::attach_source`). Reverse lookups (`id -> name`) are direct
/// indexing and are what trace consumers use to render names lazily.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    threads: Vec<String>,
    banks: Vec<String>,
}

impl Interner {
    /// Builds the table from thread and bank names, in engine order.
    pub fn new(threads: Vec<String>, banks: Vec<String>) -> Self {
        Interner { threads, banks }
    }

    /// Number of interned threads.
    pub fn n_threads(&self) -> usize {
        self.threads.len()
    }

    /// Number of interned sync banks.
    pub fn n_banks(&self) -> usize {
        self.banks.len()
    }

    /// Id of a thread name, if interned.
    pub fn thread_id(&self, name: &str) -> Option<ThreadId> {
        self.threads
            .iter()
            .position(|t| t == name)
            .map(|i| ThreadId(i as u32))
    }

    /// Id of a bank name, if interned.
    pub fn bank_id(&self, name: &str) -> Option<BankId> {
        self.banks
            .iter()
            .position(|b| b == name)
            .map(|i| BankId(i as u32))
    }

    /// Name of a thread id.
    pub fn thread_name(&self, id: ThreadId) -> &str {
        &self.threads[id.idx()]
    }

    /// Name of a bank id.
    pub fn bank_name(&self, id: BankId) -> &str {
        &self.banks[id.idx()]
    }

    /// All thread names in id order.
    pub fn thread_names(&self) -> &[String] {
        &self.threads
    }

    /// All bank names in id order.
    pub fn bank_names(&self) -> &[String] {
        &self.banks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Interner {
        Interner::new(
            vec!["t1".into(), "t2".into(), "t3".into()],
            vec!["mt1".into()],
        )
    }

    #[test]
    fn round_trips_thread_names() {
        let i = table();
        assert_eq!(i.n_threads(), 3);
        let id = i.thread_id("t2").unwrap();
        assert_eq!(id, ThreadId(1));
        assert_eq!(i.thread_name(id), "t2");
        assert_eq!(i.thread_id("nope"), None);
    }

    #[test]
    fn round_trips_bank_names() {
        let i = table();
        assert_eq!(i.n_banks(), 1);
        let id = i.bank_id("mt1").unwrap();
        assert_eq!(id, BankId(0));
        assert_eq!(i.bank_name(id), "mt1");
        assert_eq!(i.bank_id("mt2"), None);
    }

    #[test]
    fn exposes_tables_in_id_order() {
        let i = table();
        assert_eq!(i.thread_names(), &["t1", "t2", "t3"]);
        assert_eq!(i.bank_names(), &["mt1"]);
    }
}
