//! Latency metrics, folded into the `memsync-trace` registry.
//!
//! The produce-to-consume [`LatencyRecorder`] used to live here; it moved
//! to [`memsync_trace::latency`] when the cycle-level trace subsystem was
//! introduced, and the engine now exposes it through a full
//! [`MetricsRegistry`] (counters, histograms, high-water marks) instead of
//! a bare recorder. This module re-exports the types so existing
//! `memsync_sim::metrics::…` paths keep working.

pub use memsync_trace::{HistSummary, Histogram, LatencyRecorder, LatencyStats, MetricsRegistry};
