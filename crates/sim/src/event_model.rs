//! Cycle-accurate behavioral model of the event-driven statically scheduled
//! organization, mirroring `memsync_core::event_driven`: the selection logic
//! blocks until the window producer writes; consumers are then released one
//! slot at a time in compile-time order, each read issuing at its ack and
//! delivering data (with the event pulse) one cycle later.

use crate::bram_model::BramModel;
use memsync_core::modulo::{ModuloSchedule, SelectionLogic, SelectionOutput};
use memsync_trace::{EventKind, NullSink, Port, Role, TraceEvent, TraceSink};

/// Per-cycle inputs.
#[derive(Debug, Clone, Default)]
pub struct EvtInputs {
    /// Producer requests: `Some((addr, data))` while the producer holds its
    /// blocking write.
    pub p_req: Vec<Option<(u32, u32)>>,
    /// Consumer read addresses: `Some(addr)` while the consumer is waiting
    /// at its guarded read (serves as the ack when its slot arrives).
    pub c_addr: Vec<Option<u32>>,
    /// Port A access: `Some((addr, data, we))`.
    pub a_req: Option<(u32, u32, bool)>,
}

/// Per-cycle outputs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EvtOutputs {
    /// Grant pulse per producer (write accepted this cycle).
    pub p_grant: Vec<bool>,
    /// Event pulse per consumer, aligned with its read data.
    pub c_event: Vec<bool>,
    /// Read data delivered this cycle: `(consumer, data)`.
    pub c_data: Option<(usize, u32)>,
    /// Port A read data (for the address presented last cycle).
    pub a_data: Option<u32>,
}

/// The behavioral wrapper.
#[derive(Debug, Clone)]
pub struct EventDrivenModel {
    producers: usize,
    consumers: usize,
    selection: SelectionLogic,
    /// Read issued last cycle: (consumer, addr, data arriving now).
    inflight: Option<(usize, u32, u32)>,
    a_inflight: Option<u32>,
    bram: BramModel,
    cycle: u64,
    /// Consumers of the last accepted write still owed their slot. The
    /// selection logic only admits a write when the previous burst is
    /// fully served, so this organization converts would-be overwrites
    /// into [`memsync_trace::EventKind::WindowStall`] backpressure — but
    /// the invariant is asserted by counting, not assumed: guarded-write
    /// audit for the lost-update detector.
    outstanding: usize,
    /// Per-producer service-burst length (schedule row length), fixed at
    /// construction so the counted write path allocates nothing.
    burst_len: Vec<usize>,
    /// Writes accepted while the previous value had unserved consumers —
    /// structurally impossible here (see `outstanding`), counted anyway so
    /// both organizations expose the same detector.
    lost_updates: u64,
}

impl EventDrivenModel {
    /// Creates the model from the static service schedule.
    ///
    /// # Panics
    ///
    /// Panics if the schedule names more producers/consumers than given.
    pub fn new(producers: usize, consumers: usize, schedule: ModuloSchedule) -> Self {
        assert_eq!(
            schedule.producers(),
            producers,
            "schedule rows == producers"
        );
        for p in 0..producers {
            for &c in schedule.order_of(p) {
                assert!(c < consumers, "schedule names consumer {c} of {consumers}");
            }
        }
        let burst_len = (0..producers).map(|p| schedule.order_of(p).len()).collect();
        EventDrivenModel {
            producers,
            consumers,
            selection: SelectionLogic::new(schedule),
            inflight: None,
            a_inflight: None,
            bram: BramModel::new(),
            cycle: 0,
            outstanding: 0,
            burst_len,
            lost_updates: 0,
        }
    }

    /// Current cycle number.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Which producer currently holds the selection window.
    pub fn window_producer(&self) -> usize {
        self.selection.window_producer()
    }

    /// Writes accepted while a previous value still had unserved
    /// consumers. The selection window makes this structurally impossible
    /// (§3.2 blocks the producer instead), so this stays 0 — it exists so
    /// the guarded-write audit covers both organizations with one counter.
    pub fn lost_updates(&self) -> u64 {
        self.lost_updates
    }

    /// Advances one clock cycle.
    ///
    /// # Panics
    ///
    /// Panics if the request vectors do not match the pseudo-port counts.
    pub fn step(&mut self, inputs: &EvtInputs) -> EvtOutputs {
        self.step_traced(inputs, 0, &mut NullSink)
    }

    /// Advances one clock cycle, emitting cycle events to `sink` with
    /// `bank` attribution. [`EventDrivenModel::step`] is this with a
    /// [`NullSink`], which optimizes instrumentation away.
    ///
    /// # Panics
    ///
    /// Panics if the request vectors do not match the pseudo-port counts.
    pub fn step_traced(
        &mut self,
        inputs: &EvtInputs,
        bank: u16,
        sink: &mut dyn TraceSink,
    ) -> EvtOutputs {
        let mut out = EvtOutputs::default();
        self.step_traced_into(inputs, bank, sink, &mut out);
        out
    }

    /// [`EventDrivenModel::step_traced`] into a caller-owned output buffer.
    ///
    /// The pulse vectors are resized once and then reused cycle after
    /// cycle, so a steady-state step performs no heap allocation. The
    /// engine keeps one buffer per bank.
    ///
    /// # Panics
    ///
    /// Panics if the request vectors do not match the pseudo-port counts.
    pub fn step_traced_into(
        &mut self,
        inputs: &EvtInputs,
        bank: u16,
        sink: &mut dyn TraceSink,
        out: &mut EvtOutputs,
    ) {
        assert_eq!(inputs.p_req.len(), self.producers, "p_req length");
        assert_eq!(inputs.c_addr.len(), self.consumers, "c_addr length");
        let cycle = self.cycle;
        let ev = |port: Port, addr: u32, kind: EventKind| TraceEvent {
            cycle,
            bank,
            port,
            addr,
            kind,
        };
        out.p_grant.clear();
        out.p_grant.resize(self.producers, false);
        out.c_event.clear();
        out.c_event.resize(self.consumers, false);
        out.c_data = None;
        out.a_data = self.a_inflight.take();
        // Deliver last cycle's read with its event pulse.
        if let Some((i, addr, d)) = self.inflight.take() {
            out.c_event[i] = true;
            out.c_data = Some((i, d));
            sink.emit(&ev(
                Port::B,
                addr,
                EventKind::Deliver {
                    consumer: i,
                    data: d,
                },
            ));
        }

        // Port A.
        if let Some((addr, data, we)) = inputs.a_req {
            if we {
                self.bram.write(addr, data);
            } else {
                self.a_inflight = Some(self.bram.read(addr));
            }
        }

        // Selection logic: only the window producer's write is accepted
        // (blocking for all others).
        let wp = self.selection.window_producer();
        let serving = self.selection.is_serving();
        let producer_writes = !serving && inputs.p_req[wp].is_some();
        if producer_writes {
            let (addr, data) = inputs.p_req[wp].expect("checked above");
            // Counted guarded-write path: a write admitted while the
            // previous burst had unserved consumers would overwrite an
            // unconsumed value. The window blocks exactly that, so the
            // counter stays 0 — but it is counted, not assumed.
            if self.outstanding > 0 {
                self.lost_updates += 1;
            }
            self.outstanding = self.burst_len[wp];
            self.bram.write(addr, data);
            out.p_grant[wp] = true;
            if sink.enabled() {
                sink.emit(&ev(Port::D, addr, EventKind::Write { producer: wp, data }));
                sink.emit(&ev(
                    Port::D,
                    addr,
                    EventKind::Grant {
                        role: Role::Producer,
                        index: wp,
                    },
                ));
            }
        }
        if sink.enabled() {
            // Every other producer holding a write is blocked by the window
            // (or by the ongoing service burst).
            for (p, r) in inputs.p_req.iter().enumerate() {
                if let Some((paddr, _)) = r {
                    if !out.p_grant[p] {
                        sink.emit(&ev(Port::D, *paddr, EventKind::WindowStall { producer: p }));
                    }
                }
            }
        }
        let mut served: Option<usize> = None;
        match self.selection.step(producer_writes) {
            SelectionOutput::AwaitingProducer { .. } => {}
            SelectionOutput::Serve { consumer, .. } => {
                // The served consumer initiates its read (presents its
                // address); if it is not waiting yet, the slot holds — but
                // the SelectionLogic already advanced, so consumers must be
                // waiting, which the engine guarantees by only letting
                // producers write when all consumers of the window are
                // blocked. For robustness, an absent address reads 0.
                let addr = inputs.c_addr[consumer].unwrap_or(0);
                self.inflight = Some((consumer, addr, self.bram.read(addr)));
                self.outstanding = self.outstanding.saturating_sub(1);
                served = Some(consumer);
                if sink.enabled() {
                    sink.emit(&ev(Port::B, addr, EventKind::ReadIssue { consumer }));
                    sink.emit(&ev(
                        Port::B,
                        addr,
                        EventKind::Grant {
                            role: Role::Consumer,
                            index: consumer,
                        },
                    ));
                }
            }
        }
        if sink.enabled() {
            // Consumers holding reads outside their slot wait on the event.
            for (c, r) in inputs.c_addr.iter().enumerate() {
                if let Some(addr) = r {
                    if served != Some(c) {
                        sink.emit(&ev(Port::B, *addr, EventKind::DepWait { consumer: c }));
                    }
                }
            }
        }

        self.cycle += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idle(producers: usize, consumers: usize) -> EvtInputs {
        EvtInputs {
            p_req: vec![None; producers],
            c_addr: vec![None; consumers],
            a_req: None,
        }
    }

    fn figure1_model() -> EventDrivenModel {
        EventDrivenModel::new(1, 2, ModuloSchedule::new(vec![vec![0, 1]]).unwrap())
    }

    #[test]
    fn consumers_served_in_static_order() {
        let mut m = figure1_model();
        // Producer writes 99 at address 4; both consumers waiting.
        let mut inp = idle(1, 2);
        inp.p_req[0] = Some((4, 99));
        inp.c_addr = vec![Some(4), Some(4)];
        let out = m.step(&inp);
        assert!(out.p_grant[0]);

        // Slots fire in order 0 then 1, each with data the cycle after.
        let mut wait = idle(1, 2);
        wait.c_addr = vec![Some(4), Some(4)];
        let o1 = m.step(&wait); // slot 0 read issues
        assert_eq!(o1.c_data, None);
        let o2 = m.step(&wait); // slot 1 read issues; slot 0 data delivered
        assert_eq!(o2.c_data, Some((0, 99)));
        assert!(o2.c_event[0]);
        let o3 = m.step(&idle(1, 2));
        assert_eq!(o3.c_data, Some((1, 99)));
        assert!(o3.c_event[1]);
    }

    #[test]
    fn latency_is_exact_and_repeatable() {
        // The §3.2 claim: post-write latency per consumer is a constant.
        let mut m = figure1_model();
        let mut latencies: Vec<Vec<u64>> = vec![Vec::new(); 2];
        for round in 0..5u32 {
            let mut inp = idle(1, 2);
            inp.p_req[0] = Some((4, round));
            inp.c_addr = vec![Some(4), Some(4)];
            let write_cycle = m.cycle();
            let out = m.step(&inp);
            assert!(out.p_grant[0]);
            let mut wait = idle(1, 2);
            wait.c_addr = vec![Some(4), Some(4)];
            let mut pending = 2;
            while pending > 0 {
                let out = m.step(&wait);
                if let Some((i, d)) = out.c_data {
                    assert_eq!(d, round);
                    latencies[i].push(m.cycle() - 1 - write_cycle);
                    pending -= 1;
                }
            }
        }
        // Every round produced the same latency per consumer.
        for (i, l) in latencies.iter().enumerate() {
            assert!(
                l.windows(2).all(|w| w[0] == w[1]),
                "consumer {i} latencies vary: {l:?}"
            );
        }
        // And consumer 1 (slot 1) is exactly one slot later than consumer 0.
        assert_eq!(latencies[1][0], latencies[0][0] + 1);
    }

    #[test]
    fn non_window_producer_blocks() {
        let schedule = ModuloSchedule::new(vec![vec![0], vec![1]]).unwrap();
        let mut m = EventDrivenModel::new(2, 2, schedule);
        assert_eq!(m.window_producer(), 0);
        // Producer 1 tries to write while producer 0 holds the window.
        let mut inp = idle(2, 2);
        inp.p_req[1] = Some((2, 5));
        let out = m.step(&inp);
        assert!(!out.p_grant[1], "blocked until the window rotates");
        // Producer 0 writes; its single consumer is served; window rotates.
        let mut inp = idle(2, 2);
        inp.p_req[0] = Some((1, 4));
        inp.c_addr[0] = Some(1);
        assert!(m.step(&inp).p_grant[0]);
        let mut wait = idle(2, 2);
        wait.c_addr[0] = Some(1);
        m.step(&wait);
        m.step(&idle(2, 2));
        assert_eq!(m.window_producer(), 1);
        // Now producer 1's write is accepted.
        let mut inp = idle(2, 2);
        inp.p_req[1] = Some((2, 5));
        assert!(m.step(&inp).p_grant[1]);
    }

    #[test]
    fn event_driven_never_loses_updates() {
        // Audit pin: the window converts would-be overwrites into
        // backpressure, so the lost-update counter must stay 0 even under
        // a producer hammering writes every cycle.
        let mut m = figure1_model();
        for round in 0..20u32 {
            let mut inp = idle(1, 2);
            inp.p_req[0] = Some((4, round));
            inp.c_addr = vec![Some(4), Some(4)];
            m.step(&inp);
        }
        assert_eq!(m.lost_updates(), 0);
    }

    #[test]
    fn custom_order_respected() {
        let schedule = ModuloSchedule::new(vec![vec![2, 0, 1]]).unwrap();
        let mut m = EventDrivenModel::new(1, 3, schedule);
        let mut inp = idle(1, 3);
        inp.p_req[0] = Some((0, 1));
        inp.c_addr = vec![Some(0); 3];
        m.step(&inp);
        let mut wait = idle(1, 3);
        wait.c_addr = vec![Some(0); 3];
        let mut served = Vec::new();
        for _ in 0..6 {
            let out = m.step(&wait);
            if let Some((i, _)) = out.c_data {
                served.push(i);
            }
        }
        assert_eq!(served, vec![2, 0, 1]);
    }

    #[test]
    fn port_a_unaffected_by_events() {
        let mut m = figure1_model();
        let mut inp = idle(1, 2);
        inp.a_req = Some((9, 33, true));
        m.step(&inp);
        let mut inp = idle(1, 2);
        inp.a_req = Some((9, 0, false));
        m.step(&inp);
        let out = m.step(&idle(1, 2));
        assert_eq!(out.a_data, Some(33));
    }
}
