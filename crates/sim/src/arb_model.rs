//! Cycle-accurate behavioral model of the arbitrated memory organization,
//! mirroring the pipelined RTL of `memsync_core::arbitrated` cycle for
//! cycle: decision (compare + round-robin) in one cycle, BRAM issue in the
//! next, read data one cycle after that; producer writes pre-empt the port
//! and pipelined reads replay.

use crate::bram_model::BramModel;
use memsync_core::arbiter::RoundRobin;
use memsync_core::deplist::DependencyList;
use memsync_trace::{EventKind, NullSink, Port, Role, TraceEvent, TraceSink};

/// Per-cycle inputs of the wrapper.
#[derive(Debug, Clone, Default)]
pub struct ArbInputs {
    /// Consumer pseudo-port requests: `Some(addr)` while the consumer holds
    /// its blocking read.
    pub c_req: Vec<Option<u32>>,
    /// Producer pseudo-port requests: `Some((addr, data, dep_number))`.
    pub d_req: Vec<Option<(u32, u32, u8)>>,
    /// Port A access: `Some((addr, data, we))`.
    pub a_req: Option<(u32, u32, bool)>,
}

/// Per-cycle outputs of the wrapper.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ArbOutputs {
    /// Grant pulse per consumer (the read was issued this cycle; data is on
    /// the bus next cycle).
    pub c_grant: Vec<bool>,
    /// Grant pulse per producer (the write happened this cycle).
    pub d_grant: Vec<bool>,
    /// Read data delivered this cycle to the consumer granted last cycle.
    pub c_data: Option<(usize, u32)>,
    /// Port A read data (for the address presented last cycle).
    pub a_data: Option<u32>,
}

/// The behavioral wrapper.
#[derive(Debug, Clone)]
pub struct ArbitratedModel {
    consumers: usize,
    producers: usize,
    deplist: DependencyList,
    rr: RoundRobin,
    /// Registered decision: consumer index waiting to issue.
    pipe: Option<usize>,
    /// Read issued last cycle: (consumer, addr, data arriving now).
    inflight: Option<(usize, u32, u32)>,
    /// Port A read issued last cycle.
    a_inflight: Option<u32>,
    bram: BramModel,
    cycle: u64,
    /// Scratch eligibility mask for the decision stage (reused every cycle
    /// so stepping allocates nothing).
    eligible: Vec<bool>,
    /// Producer writes that overwrote a guarded value with unconsumed
    /// reads outstanding (the sampling-semantics lost-update detector).
    lost_updates: u64,
}

impl ArbitratedModel {
    /// Creates the model; the dependency list is configured via
    /// [`ArbitratedModel::configure`].
    ///
    /// # Panics
    ///
    /// Panics if pseudo-port counts exceed the base architecture (8).
    pub fn new(producers: usize, consumers: usize, deplist_entries: usize) -> Self {
        assert!((1..=8).contains(&producers) && (1..=8).contains(&consumers));
        ArbitratedModel {
            consumers,
            producers,
            deplist: DependencyList::new(deplist_entries),
            rr: RoundRobin::new(consumers),
            pipe: None,
            inflight: None,
            a_inflight: None,
            bram: BramModel::new(),
            cycle: 0,
            eligible: vec![false; consumers],
            lost_updates: 0,
        }
    }

    /// Configuration-time population of the dependency list.
    ///
    /// # Errors
    ///
    /// Propagates [`DependencyList::configure`] failures.
    pub fn configure(&mut self, base_addr: u32, dep_number: u8) -> Result<(), String> {
        self.deplist.configure(base_addr, dep_number)
    }

    /// Current cycle number.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Direct view of the dependency list (tests, metrics).
    pub fn deplist(&self) -> &DependencyList {
        &self.deplist
    }

    /// Producer writes so far that overwrote a guarded value before every
    /// consumer read it — the dynamic lost-update detector. Always 0 for
    /// programs whose producers are correctly paced; `> 0` means data was
    /// silently dropped by the sampling semantics of §3.1.
    pub fn lost_updates(&self) -> u64 {
        self.lost_updates
    }

    /// Advances one clock cycle.
    ///
    /// # Panics
    ///
    /// Panics if the request vectors do not match the pseudo-port counts.
    pub fn step(&mut self, inputs: &ArbInputs) -> ArbOutputs {
        self.step_traced(inputs, 0, &mut NullSink)
    }

    /// Advances one clock cycle, emitting cycle events to `sink` with
    /// `bank` attribution. [`ArbitratedModel::step`] is this with a
    /// [`NullSink`], which optimizes instrumentation away.
    ///
    /// # Panics
    ///
    /// Panics if the request vectors do not match the pseudo-port counts.
    pub fn step_traced(
        &mut self,
        inputs: &ArbInputs,
        bank: u16,
        sink: &mut dyn TraceSink,
    ) -> ArbOutputs {
        let mut out = ArbOutputs::default();
        self.step_traced_into(inputs, bank, sink, &mut out);
        out
    }

    /// [`ArbitratedModel::step_traced`] into a caller-owned output buffer.
    ///
    /// The grant vectors are resized once (to the pseudo-port counts) and
    /// then reused cycle after cycle, so a steady-state step performs no
    /// heap allocation. The engine keeps one buffer per bank.
    ///
    /// # Panics
    ///
    /// Panics if the request vectors do not match the pseudo-port counts.
    pub fn step_traced_into(
        &mut self,
        inputs: &ArbInputs,
        bank: u16,
        sink: &mut dyn TraceSink,
        out: &mut ArbOutputs,
    ) {
        assert_eq!(inputs.c_req.len(), self.consumers, "c_req length");
        assert_eq!(inputs.d_req.len(), self.producers, "d_req length");
        let cycle = self.cycle;
        let ev = |port: Port, addr: u32, kind: EventKind| TraceEvent {
            cycle,
            bank,
            port,
            addr,
            kind,
        };
        out.c_grant.clear();
        out.c_grant.resize(self.consumers, false);
        out.d_grant.clear();
        out.d_grant.resize(self.producers, false);
        out.c_data = self.inflight.take().map(|(i, addr, d)| {
            sink.emit(&ev(
                Port::C,
                addr,
                EventKind::Deliver {
                    consumer: i,
                    data: d,
                },
            ));
            (i, d)
        });
        out.a_data = self.a_inflight.take();

        // Port A: direct, always served, one-cycle read latency.
        if let Some((addr, data, we)) = inputs.a_req {
            if we {
                self.bram.write(addr, data);
            } else {
                self.a_inflight = Some(self.bram.read(addr));
            }
        }

        // Port D: fixed priority among producers, highest overall priority.
        let any_d = inputs.d_req.iter().any(Option::is_some);
        if let Some((j, &Some((addr, data, dep)))) =
            inputs.d_req.iter().enumerate().find(|(_, r)| r.is_some())
        {
            // A write needs a matching entry (§3.1); the dependency number
            // is supplied by the producer and re-arms the counter. The
            // checked write is the single counted overwrite path: a re-arm
            // while reads are outstanding destroys the pending value.
            let matched = self.deplist.lookup(addr).is_some();
            if matched {
                let outcome = self.deplist.producer_write_checked(addr);
                debug_assert!(outcome.accepted());
                if outcome.lost_update() {
                    self.lost_updates += 1;
                }
                let _ = dep; // dep_number is fixed at configuration time
                self.bram.write(addr, data);
                out.d_grant[j] = true;
                if sink.enabled() {
                    sink.emit(&ev(Port::D, addr, EventKind::DepListHit { producer: j }));
                    sink.emit(&ev(Port::D, addr, EventKind::Write { producer: j, data }));
                    sink.emit(&ev(
                        Port::D,
                        addr,
                        EventKind::Grant {
                            role: Role::Producer,
                            index: j,
                        },
                    ));
                }
            } else if sink.enabled() {
                sink.emit(&ev(Port::D, addr, EventKind::DepListMiss { producer: j }));
            }
            if sink.enabled() {
                // Lower-priority producers holding requests wait for the port.
                for (p, r) in inputs.d_req.iter().enumerate().skip(j + 1) {
                    if let Some((paddr, _, _)) = r {
                        sink.emit(&ev(Port::D, *paddr, EventKind::WindowStall { producer: p }));
                    }
                }
            }
        }

        // Port C issue stage: the registered winner reads the BRAM unless a
        // producer pre-empted the port this cycle (replay).
        if !any_d {
            if let Some(i) = self.pipe.take() {
                if let Some(addr) = inputs.c_req[i] {
                    let outcome = self.deplist.consumer_read(addr);
                    debug_assert!(
                        matches!(outcome, memsync_core::deplist::ReadOutcome::Granted { .. }),
                        "issue stage found a drained entry: decision raced"
                    );
                    out.c_grant[i] = true;
                    self.inflight = Some((i, addr, self.bram.read(addr)));
                    if sink.enabled() {
                        sink.emit(&ev(Port::C, addr, EventKind::ReadIssue { consumer: i }));
                        sink.emit(&ev(
                            Port::C,
                            addr,
                            EventKind::Grant {
                                role: Role::Consumer,
                                index: i,
                            },
                        ));
                    }
                } // else: the consumer withdrew; drop the grant.
            }
        } else if self.pipe.is_some() && sink.enabled() {
            // A producer pre-empted the port: the piped read replays.
            let i = self.pipe.expect("checked above");
            if let Some(addr) = inputs.c_req[i] {
                sink.emit(&ev(Port::C, addr, EventKind::ArbStall { consumer: i }));
            }
        }

        // Port C decision stage: when the pipe is free and no producer is
        // writing, round-robin among eligible consumers.
        if !any_d && self.pipe.is_none() && out.c_grant.iter().all(|g| !g) {
            let Self {
                eligible,
                deplist,
                rr,
                pipe,
                ..
            } = &mut *self;
            eligible.clear();
            eligible.extend(
                inputs
                    .c_req
                    .iter()
                    .map(|r| r.is_some_and(|addr| deplist.is_pending(addr))),
            );
            if let Some(winner) = rr.grant(eligible) {
                *pipe = Some(winner);
            }
        }

        // Stall attribution for every consumer still holding an unserved
        // request: eligible ones lost arbitration (or sit in the decision
        // pipe); the rest wait on their dependency.
        if sink.enabled() {
            for (i, r) in inputs.c_req.iter().enumerate() {
                let Some(addr) = r else { continue };
                if out.c_grant[i] {
                    continue;
                }
                let kind = if self.deplist.is_pending(*addr) || self.pipe == Some(i) {
                    EventKind::ArbStall { consumer: i }
                } else {
                    EventKind::DepWait { consumer: i }
                };
                sink.emit(&ev(Port::C, *addr, kind));
            }
        }

        self.cycle += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idle(consumers: usize, producers: usize) -> ArbInputs {
        ArbInputs {
            c_req: vec![None; consumers],
            d_req: vec![None; producers],
            a_req: None,
        }
    }

    #[test]
    fn produce_then_consume_two_consumers() {
        let mut m = ArbitratedModel::new(1, 2, 4);
        m.configure(0x10, 2).unwrap();

        // Consumers wait before the producer writes: no grants.
        let mut inp = idle(2, 1);
        inp.c_req = vec![Some(0x10), Some(0x10)];
        let out = m.step(&inp);
        assert_eq!(out.c_grant, vec![false, false]);

        // Producer writes 42.
        let mut wr = idle(2, 1);
        wr.d_req[0] = Some((0x10, 42, 2));
        let out = m.step(&wr);
        assert!(out.d_grant[0]);

        // Both consumers keep requesting; each needs decision+issue cycles.
        let mut got: Vec<(usize, u32)> = Vec::new();
        let mut reqs = vec![Some(0x10), Some(0x10)];
        for _ in 0..10 {
            let mut inp = idle(2, 1);
            inp.c_req = reqs.clone();
            let out = m.step(&inp);
            for (i, g) in out.c_grant.iter().enumerate() {
                if *g {
                    reqs[i] = None; // consumer saw its grant, drops request
                }
            }
            if let Some((i, d)) = out.c_data {
                got.push((i, d));
            }
        }
        assert_eq!(got.len(), 2, "both consumers served exactly once");
        assert!(got.iter().all(|&(_, d)| d == 42));
        let served: Vec<usize> = got.iter().map(|&(i, _)| i).collect();
        assert!(served.contains(&0) && served.contains(&1));
        // The produce-consume cycle is closed: further reads block.
        let mut inp = idle(2, 1);
        inp.c_req[0] = Some(0x10);
        let out = m.step(&inp);
        assert!(!out.c_grant[0]);
        assert!(!m.deplist().is_pending(0x10));
    }

    #[test]
    fn producer_preempts_pipelined_read() {
        let mut m = ArbitratedModel::new(1, 1, 4);
        m.configure(0x20, 1).unwrap();
        let mut wr = idle(1, 1);
        wr.d_req[0] = Some((0x20, 7, 1));
        m.step(&wr); // write 7, arm

        // Cycle 1: consumer requests -> decision lands in pipe.
        let mut rd = idle(1, 1);
        rd.c_req[0] = Some(0x20);
        let out = m.step(&rd);
        assert!(!out.c_grant[0], "decision cycle only");

        // Cycle 2: a producer write arrives simultaneously -> read replays.
        let mut both = idle(1, 1);
        both.c_req[0] = Some(0x20);
        both.d_req[0] = Some((0x20, 8, 1));
        let out = m.step(&both);
        assert!(out.d_grant[0], "write has priority");
        assert!(!out.c_grant[0], "read replayed");

        // Cycle 3: read issues, sees the NEW value 8 next cycle.
        let out = m.step(&rd);
        assert!(out.c_grant[0]);
        let out = m.step(&idle(1, 1));
        assert_eq!(out.c_data, Some((0, 8)));
    }

    #[test]
    fn round_robin_alternates_under_contention() {
        let mut m = ArbitratedModel::new(1, 2, 4);
        m.configure(0x1, 2).unwrap();
        m.configure(0x2, 2).unwrap();
        let mut order = Vec::new();
        for round in 0..4 {
            // Re-arm both addresses each round.
            let mut wr = idle(2, 1);
            wr.d_req[0] = Some((0x1, round, 2));
            m.step(&wr);
            let mut wr = idle(2, 1);
            wr.d_req[0] = Some((0x2, round, 2));
            m.step(&wr);
            // Both consumers contend for different addresses.
            let mut reqs = vec![Some(0x1), Some(0x2)];
            for _ in 0..8 {
                let mut inp = idle(2, 1);
                inp.c_req = reqs.clone();
                let out = m.step(&inp);
                for (i, g) in out.c_grant.iter().enumerate() {
                    if *g {
                        order.push(i);
                        reqs[i] = None;
                    }
                }
                if reqs.iter().all(Option::is_none) {
                    break;
                }
            }
        }
        // Fairness: both consumers appear equally often.
        let count0 = order.iter().filter(|&&i| i == 0).count();
        let count1 = order.iter().filter(|&&i| i == 1).count();
        assert_eq!(count0, count1, "order: {order:?}");
    }

    #[test]
    fn port_a_is_single_cycle_and_independent() {
        let mut m = ArbitratedModel::new(1, 1, 4);
        let mut inp = idle(1, 1);
        inp.a_req = Some((100, 55, true));
        m.step(&inp); // write via port A
        let mut inp = idle(1, 1);
        inp.a_req = Some((100, 0, false));
        m.step(&inp); // read issued
        let out = m.step(&idle(1, 1));
        assert_eq!(out.a_data, Some(55));
    }

    #[test]
    fn lost_updates_count_overwrites_of_unconsumed_values() {
        let mut m = ArbitratedModel::new(1, 1, 4);
        m.configure(0x8, 1).unwrap();
        assert_eq!(m.lost_updates(), 0);
        // First write: clean.
        let mut wr = idle(1, 1);
        wr.d_req[0] = Some((0x8, 1, 1));
        m.step(&wr);
        assert_eq!(m.lost_updates(), 0);
        // Second write before the consumer reads: the value is lost.
        let mut wr = idle(1, 1);
        wr.d_req[0] = Some((0x8, 2, 1));
        m.step(&wr);
        assert_eq!(m.lost_updates(), 1);
        // Consumer drains; the next write is clean again.
        let mut rd = idle(1, 1);
        rd.c_req[0] = Some(0x8);
        m.step(&rd); // decision
        m.step(&rd); // issue (read granted, counter drained)
        let mut wr = idle(1, 1);
        wr.d_req[0] = Some((0x8, 3, 1));
        m.step(&wr);
        assert_eq!(m.lost_updates(), 1);
    }

    #[test]
    fn write_without_entry_is_rejected() {
        let mut m = ArbitratedModel::new(1, 1, 4);
        let mut wr = idle(1, 1);
        wr.d_req[0] = Some((0x99, 1, 1));
        let out = m.step(&wr);
        assert!(!out.d_grant[0]);
    }

    #[test]
    fn grant_to_data_latency_is_one_cycle() {
        let mut m = ArbitratedModel::new(1, 1, 4);
        m.configure(0x5, 1).unwrap();
        let mut wr = idle(1, 1);
        wr.d_req[0] = Some((0x5, 77, 1));
        m.step(&wr);
        let mut rd = idle(1, 1);
        rd.c_req[0] = Some(0x5);
        let o1 = m.step(&rd); // decision
        assert!(!o1.c_grant[0]);
        let o2 = m.step(&rd); // issue
        assert!(o2.c_grant[0]);
        assert_eq!(o2.c_data, None);
        let o3 = m.step(&idle(1, 1)); // data
        assert_eq!(o3.c_data, Some((0, 77)));
    }
}
