//! The simulation engine: wires synthesized thread FSMs to behavioral
//! memory-organization models and steps the whole system cycle by cycle.

use crate::arb_model::{ArbInputs, ArbitratedModel};
use crate::bram_model::BramModel;
use crate::event_model::{EventDrivenModel, EvtInputs};
use crate::metrics::MetricsRegistry;
use crate::thread_model::{MemResponse, ThreadExec};
use crate::traffic::ArrivalProcess;
use memsync_core::alloc::SyncBank;
use memsync_core::modulo::ModuloSchedule;
use memsync_core::{CompiledSystem, OrganizationKind};
use memsync_synth::ir::PortClass;
use memsync_trace::{EventKind, NullSink, Port, RecordingSink, TraceEvent, TraceSink};
use std::collections::{BTreeMap, VecDeque};

/// One synchronization bank under simulation.
#[derive(Debug, Clone)]
enum BankModel {
    Arbitrated(ArbitratedModel),
    EventDriven(EventDrivenModel),
}

/// Per-thread private port-A bank with the one-cycle read latency.
#[derive(Debug, Clone, Default)]
struct PrivateBank {
    bram: BramModel,
    /// Read issued this cycle: `(addr, data)` delivered next cycle.
    inflight: Option<(u32, u32)>,
    /// Read data due this cycle: `(addr, data)`.
    pending_delivery: Option<(u32, u32)>,
}

/// A full system simulation.
#[derive(Debug)]
pub struct System {
    threads: Vec<ThreadExec>,
    banks: Vec<(SyncBank, BankModel)>,
    private: BTreeMap<String, PrivateBank>,
    rx_queues: BTreeMap<String, VecDeque<i64>>,
    sources: BTreeMap<String, Box<dyn ArrivalProcess>>,
    /// Address of the last issued read per (bank, consumer pseudo-port),
    /// for latency attribution when the data arrives a cycle later.
    last_issue: BTreeMap<(String, usize), u32>,
    cycle: u64,
    /// Counters, histograms, and produce-to-consume latency measurements.
    pub metrics: MetricsRegistry,
    /// Downstream event sink ([`NullSink`] until [`System::set_sink`]).
    sink: Box<dyn TraceSink>,
    /// Whether stepping goes through the instrumented model paths.
    instrumented: bool,
}

impl System {
    /// Builds a simulation from a compiled system, instantiating the
    /// behavioral model matching its organization.
    pub fn new(compiled: &CompiledSystem) -> Self {
        Self::with_organization(compiled, compiled.organization)
    }

    /// Builds a simulation with an explicit organization (to compare both
    /// on the same compiled program).
    pub fn with_organization(compiled: &CompiledSystem, kind: OrganizationKind) -> Self {
        let threads: Vec<ThreadExec> = compiled.fsms.iter().cloned().map(ThreadExec::new).collect();
        let mut banks = Vec::new();
        for bank in &compiled.plan.sync_banks {
            let model = match kind {
                OrganizationKind::Arbitrated => {
                    let mut m = ArbitratedModel::new(
                        bank.producers.len(),
                        bank.consumers.len(),
                        bank.wrapper_spec().deplist_entries as usize,
                    );
                    for g in &bank.guarded {
                        m.configure(g.base_addr, g.dep_number)
                            .expect("allocation fits the dependency list");
                    }
                    BankModel::Arbitrated(m)
                }
                OrganizationKind::EventDriven => {
                    let schedule = ModuloSchedule::new(bank.service_order.clone())
                        .expect("allocation produced a valid schedule");
                    BankModel::EventDriven(EventDrivenModel::new(
                        bank.producers.len(),
                        bank.consumers.len(),
                        schedule,
                    ))
                }
            };
            banks.push((bank.clone(), model));
        }
        let private = compiled
            .fsms
            .iter()
            .map(|f| (f.thread.clone(), PrivateBank::default()))
            .collect();
        let rx_queues = compiled
            .fsms
            .iter()
            .map(|f| (f.thread.clone(), VecDeque::new()))
            .collect();
        System {
            threads,
            banks,
            private,
            rx_queues,
            sources: BTreeMap::new(),
            last_issue: BTreeMap::new(),
            cycle: 0,
            metrics: MetricsRegistry::new(),
            sink: Box::new(NullSink),
            instrumented: false,
        }
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Routes cycle events to `sink` and turns on instrumented stepping
    /// (models emit events, the registry counts them). Use a
    /// [`memsync_trace::SharedSink`] to keep a handle for inspection.
    pub fn set_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.sink = sink;
        self.instrumented = true;
    }

    /// Turns on instrumented stepping without an event stream: the
    /// [`MetricsRegistry`] still sees every event (counters, grant-wait
    /// histograms, occupancy marks), but nothing is buffered or written.
    pub fn enable_metrics(&mut self) {
        self.instrumented = true;
    }

    /// Flushes the attached sink (JSONL writers buffer).
    pub fn flush_trace(&mut self) {
        self.sink.flush();
    }

    /// Access a thread by name.
    pub fn thread(&self, name: &str) -> Option<&ThreadExec> {
        self.threads.iter().find(|t| t.name() == name)
    }

    /// Queues a message for a thread's `recv` interface.
    pub fn push_message(&mut self, thread: &str, value: i64) {
        if let Some(q) = self.rx_queues.get_mut(thread) {
            q.push_back(value);
        }
    }

    /// Attaches an arrival process to a thread's network interface.
    pub fn attach_source(&mut self, thread: &str, source: Box<dyn ArrivalProcess>) {
        self.sources.insert(thread.to_owned(), source);
    }

    /// Advances the system one clock cycle.
    pub fn step(&mut self) {
        let instrumented = self.instrumented;
        // Sync banks come first in the trace's bank numbering; private
        // per-thread port-A banks follow at `n_sync + thread_index`.
        let n_sync = self.banks.len() as u16;

        // Traffic arrivals.
        for (thread, src) in self.sources.iter_mut() {
            if let Some(v) = src.poll(self.cycle) {
                let q = self
                    .rx_queues
                    .get_mut(thread)
                    .expect("rx queue exists for every thread");
                q.push_back(v);
                if instrumented {
                    let ti = self
                        .threads
                        .iter()
                        .position(|t| t.name() == thread)
                        .expect("source attached to a known thread");
                    let mut tee = RecordingSink {
                        sink: &mut *self.sink,
                        registry: &mut self.metrics,
                    };
                    tee.emit(&TraceEvent {
                        cycle: self.cycle,
                        bank: 0,
                        port: Port::Rx,
                        addr: 0,
                        kind: EventKind::QueuePush {
                            thread: ti,
                            depth: q.len(),
                        },
                    });
                }
            }
        }

        // 1. Tick threads; collect held memory requests.
        let mut requests = Vec::with_capacity(self.threads.len());
        for (ti, t) in self.threads.iter_mut().enumerate() {
            let name = t.name().to_owned();
            let q = self.rx_queues.get_mut(&name).expect("rx queue");
            let mut rx = q.front().copied();
            let had = rx.is_some();
            let req = t.tick(&mut rx, true);
            if had && rx.is_none() {
                q.pop_front();
                if instrumented {
                    let mut tee = RecordingSink {
                        sink: &mut *self.sink,
                        registry: &mut self.metrics,
                    };
                    tee.emit(&TraceEvent {
                        cycle: self.cycle,
                        bank: 0,
                        port: Port::Rx,
                        addr: 0,
                        kind: EventKind::QueuePop {
                            thread: ti,
                            depth: q.len(),
                        },
                    });
                }
            }
            requests.push(req);
        }

        // 2. Private port-A banks: resolve immediately (never arbitrated).
        for (ti, req) in requests.iter().enumerate() {
            let Some(r) = req else { continue };
            if r.port != PortClass::A {
                continue;
            }
            let name = self.threads[ti].name().to_owned();
            let bank = self.private.get_mut(&name).expect("private bank");
            let kind = match r.write {
                Some(data) => {
                    bank.bram.write(r.addr, data);
                    self.threads[ti].deliver(MemResponse::Granted);
                    EventKind::Write { producer: ti, data }
                }
                None => {
                    bank.inflight = Some((r.addr, bank.bram.read(r.addr)));
                    self.threads[ti].deliver(MemResponse::Granted);
                    EventKind::ReadIssue { consumer: ti }
                }
            };
            if instrumented {
                let mut tee = RecordingSink {
                    sink: &mut *self.sink,
                    registry: &mut self.metrics,
                };
                tee.emit(&TraceEvent {
                    cycle: self.cycle,
                    bank: n_sync + ti as u16,
                    port: Port::A,
                    addr: r.addr,
                    kind,
                });
            }
        }
        // Deliver last-cycle private reads (before this cycle's reads land).
        // NOTE: inflight was set this cycle for new reads; the delivery pass
        // below uses a snapshot taken before, handled by delivering first.

        // 3. Sync banks.
        for (bi, (bank, model)) in self.banks.iter_mut().enumerate() {
            let bid = bi as u16;
            match model {
                BankModel::Arbitrated(m) => {
                    let mut inputs = ArbInputs {
                        c_req: vec![None; bank.consumers.len()],
                        d_req: vec![None; bank.producers.len()],
                        a_req: None,
                    };
                    for (ti, req) in requests.iter().enumerate() {
                        let Some(r) = req else { continue };
                        let name = self.threads[ti].name();
                        if !bank.owns_addr(r.addr) {
                            continue;
                        }
                        match r.port {
                            PortClass::C | PortClass::B => {
                                if let Some(p) = bank.consumer_port(name) {
                                    inputs.c_req[p] = Some(r.addr);
                                }
                            }
                            PortClass::D => {
                                if let Some(p) = bank.producer_port(name) {
                                    inputs.d_req[p] =
                                        Some((r.addr, r.write.unwrap_or(0), r.dep_number));
                                }
                            }
                            PortClass::A => {}
                        }
                    }
                    let out = if instrumented {
                        let mut tee = RecordingSink {
                            sink: &mut *self.sink,
                            registry: &mut self.metrics,
                        };
                        m.step_traced(&inputs, bid, &mut tee)
                    } else {
                        m.step(&inputs)
                    };
                    if instrumented {
                        self.metrics.observe_gauge(
                            &format!("bank{bid}.deplist_occupancy"),
                            m.deplist().occupancy() as u64,
                        );
                    }
                    // Data delivery for last cycle's issue first: a
                    // same-cycle producer write belongs to the *next*
                    // produce-consume round, so deliveries must be
                    // attributed before the new write is recorded.
                    // (When instrumented, the model's Deliver/Write events
                    // already fed the latency recorder via the registry.)
                    if let Some((c, data)) = out.c_data {
                        let cname = bank.consumers[c].clone();
                        if let Some(ti) = self.threads.iter().position(|t| t.name() == cname) {
                            self.threads[ti].deliver(MemResponse::Data(data));
                        }
                        if !instrumented {
                            if let Some(addr) = self.last_issue.get(&(bank.name.clone(), c)) {
                                self.metrics.record_delivery(*addr, c, self.cycle);
                            }
                        }
                    }
                    // Producer grants.
                    for (p, granted) in out.d_grant.iter().enumerate() {
                        if !granted {
                            continue;
                        }
                        let pname = bank.producers[p].clone();
                        if let Some(ti) = self.threads.iter().position(|t| t.name() == pname) {
                            if !instrumented {
                                if let Some(r) = requests[ti] {
                                    self.metrics.record_write(r.addr, self.cycle);
                                }
                            }
                            self.threads[ti].deliver(MemResponse::Granted);
                        }
                    }
                    // Consumer grants (read issued).
                    for (c, granted) in out.c_grant.iter().enumerate() {
                        if !granted {
                            continue;
                        }
                        let cname = bank.consumers[c].clone();
                        if let Some(ti) = self.threads.iter().position(|t| t.name() == cname) {
                            self.threads[ti].deliver(MemResponse::Granted);
                        }
                    }
                    // Remember addresses at issue for delivery attribution.
                    for (c, granted) in out.c_grant.iter().enumerate() {
                        if *granted {
                            if let Some(addr) = inputs.c_req[c] {
                                self.last_issue.insert((bank.name.clone(), c), addr);
                            }
                        }
                    }
                }
                BankModel::EventDriven(m) => {
                    let mut inputs = EvtInputs {
                        p_req: vec![None; bank.producers.len()],
                        c_addr: vec![None; bank.consumers.len()],
                        a_req: None,
                    };
                    for (ti, req) in requests.iter().enumerate() {
                        let Some(r) = req else { continue };
                        let name = self.threads[ti].name();
                        if !bank.owns_addr(r.addr) {
                            continue;
                        }
                        match r.port {
                            PortClass::C | PortClass::B => {
                                if let Some(p) = bank.consumer_port(name) {
                                    inputs.c_addr[p] = Some(r.addr);
                                }
                            }
                            PortClass::D => {
                                if let Some(p) = bank.producer_port(name) {
                                    inputs.p_req[p] = Some((r.addr, r.write.unwrap_or(0)));
                                }
                            }
                            PortClass::A => {}
                        }
                    }
                    let out = if instrumented {
                        let mut tee = RecordingSink {
                            sink: &mut *self.sink,
                            registry: &mut self.metrics,
                        };
                        m.step_traced(&inputs, bid, &mut tee)
                    } else {
                        m.step(&inputs)
                    };
                    // Deliveries before new writes (same-cycle attribution).
                    if let Some((c, data)) = out.c_data {
                        let cname = bank.consumers[c].clone();
                        if let Some(ti) = self.threads.iter().position(|t| t.name() == cname) {
                            // The consumer is mid-read: grant + data in one
                            // delivery (the event releases the blocked read).
                            self.threads[ti].deliver(MemResponse::Granted);
                            self.threads[ti].deliver(MemResponse::Data(data));
                        }
                        if !instrumented {
                            if let Some(addr) = inputs.c_addr[c] {
                                self.metrics.record_delivery(addr, c, self.cycle);
                            }
                        }
                    }
                    for (p, granted) in out.p_grant.iter().enumerate() {
                        if !granted {
                            continue;
                        }
                        let pname = bank.producers[p].clone();
                        if let Some(ti) = self.threads.iter().position(|t| t.name() == pname) {
                            if !instrumented {
                                if let Some(r) = requests[ti] {
                                    self.metrics.record_write(r.addr, self.cycle);
                                }
                            }
                            self.threads[ti].deliver(MemResponse::Granted);
                        }
                    }
                }
            }
        }

        // 4. Deliver private-bank read data scheduled last cycle.
        for (ti, t) in self.threads.iter_mut().enumerate() {
            let name = t.name().to_owned();
            let bank = self.private.get_mut(&name).expect("private bank");
            if let Some((addr, data)) = bank.pending_delivery.take() {
                t.deliver(MemResponse::Data(data));
                if instrumented {
                    let mut tee = RecordingSink {
                        sink: &mut *self.sink,
                        registry: &mut self.metrics,
                    };
                    tee.emit(&TraceEvent {
                        cycle: self.cycle,
                        bank: n_sync + ti as u16,
                        port: Port::A,
                        addr,
                        kind: EventKind::Deliver { consumer: ti, data },
                    });
                }
            }
            // Promote this cycle's issue to next cycle's delivery.
            bank.pending_delivery = bank.inflight.take();
        }

        self.cycle += 1;
    }

    /// Runs until every thread has completed at least `iterations`
    /// run-to-completion iterations, or `max_cycles` elapse.
    ///
    /// Returns whether the iteration target was reached.
    pub fn run_until_iterations(&mut self, iterations: u64, max_cycles: u64) -> bool {
        for _ in 0..max_cycles {
            if self.threads.iter().all(|t| t.iterations >= iterations) {
                return true;
            }
            self.step();
        }
        self.threads.iter().all(|t| t.iterations >= iterations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::PeriodicSource;
    use memsync_core::Compiler;
    use memsync_synth::eval::call_function;

    const FIGURE1: &str = r#"
        thread t1 () {
            int x1, xtmp, x2;
            #consumer{mt1,[t2,y1],[t3,z1]}
            x1 = f(xtmp, x2);
        }
        thread t2 () {
            int y1, y2;
            #producer{mt1,[t1,x1]}
            y1 = g(x1, y2);
        }
        thread t3 () {
            int z1, z2;
            #producer{mt1,[t1,x1]}
            z1 = h(x1, z2);
        }
    "#;

    fn compiled(kind: OrganizationKind) -> CompiledSystem {
        let mut c = Compiler::new(FIGURE1);
        c.organization(kind);
        c.skip_validation();
        c.compile().expect("figure 1 compiles")
    }

    #[test]
    fn figure1_values_flow_under_arbitration() {
        let sys_desc = compiled(OrganizationKind::Arbitrated);
        let mut sys = System::new(&sys_desc);
        assert!(sys.run_until_iterations(2, 2000), "threads make progress");
        // x1 itself is memory-resident (port D); the consumers' registers
        // prove the value crossed the shared memory.
        let x1 = call_function("f", &[0, 0]);
        assert_eq!(
            sys.thread("t2").unwrap().var("y1"),
            Some(call_function("g", &[x1, 0]))
        );
        assert_eq!(
            sys.thread("t3").unwrap().var("z1"),
            Some(call_function("h", &[x1, 0]))
        );
    }

    #[test]
    fn figure1_values_flow_under_event_driven() {
        let sys_desc = compiled(OrganizationKind::EventDriven);
        let mut sys = System::new(&sys_desc);
        assert!(sys.run_until_iterations(2, 2000), "threads make progress");
        let x1 = call_function("f", &[0, 0]);
        assert_eq!(
            sys.thread("t2").unwrap().var("y1"),
            Some(call_function("g", &[x1, 0]))
        );
        assert_eq!(
            sys.thread("t3").unwrap().var("z1"),
            Some(call_function("h", &[x1, 0]))
        );
    }

    #[test]
    fn event_driven_latencies_are_deterministic_figure1() {
        let sys_desc = compiled(OrganizationKind::EventDriven);
        let mut sys = System::new(&sys_desc);
        assert!(sys.run_until_iterations(20, 20_000));
        for (addr, consumer) in sys.metrics.streams() {
            let stats = sys.metrics.stats(addr, consumer).expect("samples exist");
            assert!(stats.count >= 10, "enough samples");
            assert!(
                stats.is_deterministic(),
                "event-driven latency must be exact; got {stats:?}"
            );
        }
    }

    /// Figure 1 with the producer paced by packet arrivals — §3.1's
    /// "writes happen when packets arrive from a network and are
    /// probabilistic in nature".
    const FIGURE1_PACED: &str = r#"
        thread t1 () {
            message pkt;
            int x1, x2;
            recv pkt;
            #consumer{mt1,[t2,y1],[t3,z1]}
            x1 = f(pkt, x2);
        }
        thread t2 () {
            int y1, y2;
            #producer{mt1,[t1,x1]}
            y1 = g(x1, y2);
        }
        thread t3 () {
            int z1, z2;
            #producer{mt1,[t1,x1]}
            z1 = h(x1, z2);
        }
    "#;

    #[test]
    fn arbitrated_consumers_see_variable_latency_under_contention() {
        // Two consumers contending on one bus: arbitration order makes the
        // second consumer's latency differ from the first's.
        let mut c = Compiler::new(FIGURE1_PACED);
        c.organization(OrganizationKind::Arbitrated)
            .skip_validation();
        let compiled = c.compile().unwrap();
        let mut sys = System::new(&compiled);
        sys.attach_source(
            "t1",
            Box::new(crate::traffic::BernoulliSource::new(11, 0.05)),
        );
        for _ in 0..20_000 {
            sys.step();
        }
        let pooled = sys.metrics.pooled_stats().expect("samples recorded");
        assert!(pooled.count >= 20, "{pooled:?}");
        assert!(
            pooled.max > pooled.min,
            "contended arbitration should spread latencies: {pooled:?}"
        );
    }

    #[test]
    fn recv_driven_thread_consumes_traffic() {
        let src = r#"
            thread rx () {
                message m;
                int seen;
                recv m;
                seen = seen + 1;
                send m;
            }
        "#;
        let mut c = Compiler::new(src);
        c.skip_validation();
        let compiled = c.compile().unwrap();
        let mut sys = System::new(&compiled);
        sys.attach_source("rx", Box::new(PeriodicSource::new(10, 0)));
        for _ in 0..200 {
            sys.step();
        }
        let t = sys.thread("rx").unwrap();
        assert!(
            t.iterations >= 10,
            "one message per period: {}",
            t.iterations
        );
        assert!(t.sent.len() >= 10);
        // Payloads pass through in order.
        assert_eq!(&t.sent[0..3], &[1, 2, 3]);
    }
}
