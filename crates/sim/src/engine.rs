//! The simulation engine: wires synthesized thread FSMs to behavioral
//! memory-organization models and steps the whole system cycle by cycle.
//!
//! The hot path is fully interned (see [`crate::intern`]): thread and bank
//! names are resolved to dense [`ThreadId`]/[`BankId`] indices once at
//! [`System::new`] time, per-bank routing tables map pseudo-port slots to
//! thread ids and back, and every per-cycle buffer (requests, wrapper
//! inputs/outputs) is preallocated — an uninstrumented [`System::step`]
//! performs no `String` clones, no map lookups, and no heap allocation.

use crate::arb_model::{ArbInputs, ArbOutputs, ArbitratedModel};
use crate::bram_model::BramModel;
use crate::event_model::{EventDrivenModel, EvtInputs, EvtOutputs};
use crate::intern::{BankId, Interner, ThreadId};
use crate::metrics::MetricsRegistry;
use crate::thread_model::{MemRequest, MemResponse, ThreadExec};
use crate::traffic::ArrivalProcess;
use memsync_core::alloc::SyncBank;
use memsync_core::modulo::ModuloSchedule;
use memsync_core::{CompiledSystem, OrganizationKind};
use memsync_synth::ir::PortClass;
use memsync_trace::{EventKind, NullSink, Port, RecordingSink, TraceEvent, TraceSink};
use std::collections::VecDeque;

/// One synchronization bank under simulation, with its per-cycle input and
/// output buffers (reused every cycle — stepping allocates nothing).
#[derive(Debug, Clone)]
enum BankModel {
    Arbitrated {
        model: ArbitratedModel,
        inp: ArbInputs,
        out: ArbOutputs,
    },
    EventDriven {
        model: EventDrivenModel,
        inp: EvtInputs,
        out: EvtOutputs,
    },
}

/// Per-thread private port-A bank with the one-cycle read latency.
#[derive(Debug, Clone, Default)]
struct PrivateBank {
    bram: BramModel,
    /// Read issued this cycle: `(addr, data)` delivered next cycle.
    inflight: Option<(u32, u32)>,
    /// Read data due this cycle: `(addr, data)`.
    pending_delivery: Option<(u32, u32)>,
}

/// A sync bank plus the interned routing tables the per-cycle loop uses in
/// place of name lookups.
#[derive(Debug)]
struct SimBank {
    spec: SyncBank,
    model: BankModel,
    /// Consumer pseudo-port slot -> executing thread (None when the named
    /// consumer did not compile to a thread).
    consumer_thread: Vec<Option<ThreadId>>,
    /// Producer pseudo-port slot -> executing thread.
    producer_thread: Vec<Option<ThreadId>>,
    /// Thread -> consumer pseudo-port slot in this bank.
    consumer_slot: Vec<Option<u16>>,
    /// Thread -> producer pseudo-port slot in this bank.
    producer_slot: Vec<Option<u16>>,
    /// Address of the last issued read per consumer slot, for latency
    /// attribution when the data arrives a cycle later.
    last_issue: Vec<Option<u32>>,
    /// Precomputed `bank{b}.deplist_occupancy` gauge name (instrumented
    /// stepping must not format strings per cycle either).
    gauge_name: String,
}

/// A full system simulation.
#[derive(Debug)]
pub struct System {
    threads: Vec<ThreadExec>,
    banks: Vec<SimBank>,
    /// Private port-A banks, indexed by [`ThreadId`].
    private: Vec<PrivateBank>,
    /// Rx message queues, indexed by [`ThreadId`].
    rx_queues: Vec<VecDeque<i64>>,
    /// Arrival processes, indexed by [`ThreadId`].
    sources: Vec<Option<Box<dyn ArrivalProcess>>>,
    /// `(guarded base addr, bank index)` sorted by address: requests route
    /// by binary search instead of scanning every bank's guarded list.
    addr_route: Vec<(u32, u32)>,
    /// Reusable per-cycle request buffer, indexed by [`ThreadId`].
    requests: Vec<Option<MemRequest>>,
    /// Name tables for threads and banks (IDs are dense indices).
    interner: Interner,
    cycle: u64,
    /// Counters, histograms, and produce-to-consume latency measurements.
    pub metrics: MetricsRegistry,
    /// Downstream event sink ([`NullSink`] until [`System::set_sink`]).
    sink: Box<dyn TraceSink>,
    /// Whether stepping goes through the instrumented model paths.
    instrumented: bool,
}

impl System {
    /// Builds a simulation from a compiled system, instantiating the
    /// behavioral model matching its organization.
    pub fn new(compiled: &CompiledSystem) -> Self {
        Self::with_organization(compiled, compiled.organization)
    }

    /// Builds a simulation with an explicit organization (to compare both
    /// on the same compiled program).
    pub fn with_organization(compiled: &CompiledSystem, kind: OrganizationKind) -> Self {
        let threads: Vec<ThreadExec> = compiled.fsms.iter().cloned().map(ThreadExec::new).collect();
        let interner = Interner::new(
            compiled.fsms.iter().map(|f| f.thread.clone()).collect(),
            compiled
                .plan
                .sync_banks
                .iter()
                .map(|b| b.name.clone())
                .collect(),
        );
        let n_threads = threads.len();
        let mut banks = Vec::new();
        let mut addr_route: Vec<(u32, u32)> = Vec::new();
        for (bi, bank) in compiled.plan.sync_banks.iter().enumerate() {
            let model = match kind {
                OrganizationKind::Arbitrated => {
                    let mut m = ArbitratedModel::new(
                        bank.producers.len(),
                        bank.consumers.len(),
                        bank.wrapper_spec().deplist_entries as usize,
                    );
                    for g in &bank.guarded {
                        m.configure(g.base_addr, g.dep_number)
                            .expect("allocation fits the dependency list");
                    }
                    BankModel::Arbitrated {
                        model: m,
                        inp: ArbInputs {
                            c_req: vec![None; bank.consumers.len()],
                            d_req: vec![None; bank.producers.len()],
                            a_req: None,
                        },
                        out: ArbOutputs::default(),
                    }
                }
                OrganizationKind::EventDriven => {
                    let schedule = ModuloSchedule::new(bank.service_order.clone())
                        .expect("allocation produced a valid schedule");
                    BankModel::EventDriven {
                        model: EventDrivenModel::new(
                            bank.producers.len(),
                            bank.consumers.len(),
                            schedule,
                        ),
                        inp: EvtInputs {
                            p_req: vec![None; bank.producers.len()],
                            c_addr: vec![None; bank.consumers.len()],
                            a_req: None,
                        },
                        out: EvtOutputs::default(),
                    }
                }
            };
            // Slot <-> thread routing tables, interned once.
            let mut consumer_thread = Vec::with_capacity(bank.consumers.len());
            let mut producer_thread = Vec::with_capacity(bank.producers.len());
            let mut consumer_slot = vec![None; n_threads];
            let mut producer_slot = vec![None; n_threads];
            for (slot, name) in bank.consumers.iter().enumerate() {
                let tid = interner.thread_id(name);
                consumer_thread.push(tid);
                if let Some(t) = tid {
                    consumer_slot[t.idx()] = Some(slot as u16);
                }
            }
            for (slot, name) in bank.producers.iter().enumerate() {
                let tid = interner.thread_id(name);
                producer_thread.push(tid);
                if let Some(t) = tid {
                    producer_slot[t.idx()] = Some(slot as u16);
                }
            }
            for g in &bank.guarded {
                addr_route.push((g.base_addr, bi as u32));
            }
            let last_issue = vec![None; bank.consumers.len()];
            banks.push(SimBank {
                spec: bank.clone(),
                model,
                consumer_thread,
                producer_thread,
                consumer_slot,
                producer_slot,
                last_issue,
                gauge_name: format!("bank{bi}.deplist_occupancy"),
            });
        }
        addr_route.sort_unstable();
        System {
            private: vec![PrivateBank::default(); n_threads],
            rx_queues: vec![VecDeque::new(); n_threads],
            sources: (0..n_threads).map(|_| None).collect(),
            requests: Vec::with_capacity(n_threads),
            threads,
            banks,
            addr_route,
            interner,
            cycle: 0,
            metrics: MetricsRegistry::new(),
            sink: Box::new(NullSink),
            instrumented: false,
        }
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The thread/bank name tables. Trace consumers use this to render an
    /// event's thread or bank index as a name lazily — the engine itself
    /// never touches names after construction.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Id of a thread by name (cold-path lookup).
    pub fn thread_id(&self, name: &str) -> Option<ThreadId> {
        self.interner.thread_id(name)
    }

    /// Id of a sync bank by name (cold-path lookup).
    pub fn bank_id(&self, name: &str) -> Option<BankId> {
        self.interner.bank_id(name)
    }

    /// Routes cycle events to `sink` and turns on instrumented stepping
    /// (models emit events, the registry counts them). Use a
    /// [`memsync_trace::SharedSink`] to keep a handle for inspection.
    pub fn set_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.sink = sink;
        self.instrumented = true;
    }

    /// Turns on instrumented stepping without an event stream: the
    /// [`MetricsRegistry`] still sees every event (counters, grant-wait
    /// histograms, occupancy marks), but nothing is buffered or written.
    pub fn enable_metrics(&mut self) {
        self.instrumented = true;
    }

    /// Flushes the attached sink (JSONL writers buffer).
    pub fn flush_trace(&mut self) {
        self.sink.flush();
    }

    /// Access a thread by name.
    pub fn thread(&self, name: &str) -> Option<&ThreadExec> {
        self.interner
            .thread_id(name)
            .map(|id| &self.threads[id.idx()])
    }

    /// Access a thread by id.
    pub fn thread_by_id(&self, id: ThreadId) -> &ThreadExec {
        &self.threads[id.idx()]
    }

    /// The allocation-time spec of a sync bank.
    pub fn bank_spec(&self, id: BankId) -> &SyncBank {
        &self.banks[id.idx()].spec
    }

    /// Queues a message for a thread's `recv` interface.
    pub fn push_message(&mut self, thread: &str, value: i64) {
        if let Some(id) = self.interner.thread_id(thread) {
            self.rx_queues[id.idx()].push_back(value);
        }
    }

    /// Queues a batch of messages for a thread's `recv` interface — the
    /// shard-facing submit path of `memsync-serve`: one lock of the system
    /// per batch instead of one call per packet.
    pub fn push_messages<I>(&mut self, thread: &str, values: I)
    where
        I: IntoIterator<Item = i64>,
    {
        if let Some(id) = self.interner.thread_id(thread) {
            self.rx_queues[id.idx()].extend(values);
        }
    }

    /// Messages currently queued on a thread's `recv` interface.
    pub fn rx_queue_len(&self, thread: &str) -> usize {
        self.interner
            .thread_id(thread)
            .map(|id| self.rx_queues[id.idx()].len())
            .unwrap_or(0)
    }

    /// Messages a thread has sent on its tx interface so far.
    pub fn sent_count(&self, id: ThreadId) -> usize {
        self.threads[id.idx()].sent.len()
    }

    /// Takes (and clears) everything a thread has sent on its tx
    /// interface. Long-running drivers (the serve shards) drain egress
    /// output batch by batch so `sent` never grows without bound.
    pub fn drain_sent(&mut self, id: ThreadId) -> Vec<i64> {
        std::mem::take(&mut self.threads[id.idx()].sent)
    }

    /// Steps until every thread in `ids` has sent at least `target`
    /// messages in total (since construction or the last drain plus what
    /// `sent_count` showed), or `max_cycles` elapse. Returns whether the
    /// target was reached — the batch-activation primitive the serve
    /// shards use: submit K descriptors, run until K egress frames emerge.
    pub fn run_until_sent(&mut self, ids: &[ThreadId], target: usize, max_cycles: u64) -> bool {
        let done =
            |threads: &[ThreadExec]| ids.iter().all(|id| threads[id.idx()].sent.len() >= target);
        for _ in 0..max_cycles {
            if done(&self.threads) {
                return true;
            }
            self.step();
        }
        done(&self.threads)
    }

    /// Paced batch submission: pushes `values` onto `thread`'s rx queue
    /// one at a time, running the system after each push until every
    /// thread in `egress` has sent `base + k + 1` messages (`base` is the
    /// undrained sent count before this batch). Pacing matters: guarded
    /// locations have sampling semantics, so an unpaced burst would
    /// overwrite unconsumed values and silently lose messages. Returns
    /// `false` if any value fails to emerge within `budget_per_value`
    /// cycles (a stalled pipeline).
    pub fn submit_paced(
        &mut self,
        thread: &str,
        egress: &[ThreadId],
        values: &[i64],
        base: usize,
        budget_per_value: u64,
    ) -> bool {
        for (k, &v) in values.iter().enumerate() {
            self.push_message(thread, v);
            if !self.run_until_sent(egress, base + k + 1, budget_per_value) {
                return false;
            }
        }
        true
    }

    /// Total guarded-location overwrites of unconsumed values across every
    /// sync bank — the dynamic lost-update detector. A correctly paced
    /// program keeps this at 0; any increment means a producer re-fired
    /// before all consumers in its dependency list read, and the sampling
    /// semantics of §3.1 silently dropped the pending value. The static
    /// counterpart is `memsync_hic::hazards` (the `lost_update` hazard).
    pub fn lost_updates(&self) -> u64 {
        self.banks
            .iter()
            .map(|b| match &b.model {
                BankModel::Arbitrated { model, .. } => model.lost_updates(),
                BankModel::EventDriven { model, .. } => model.lost_updates(),
            })
            .sum()
    }

    /// Attaches an arrival process to a thread's network interface.
    ///
    /// # Panics
    ///
    /// Panics if `thread` names no compiled thread.
    pub fn attach_source(&mut self, thread: &str, source: Box<dyn ArrivalProcess>) {
        let id = self
            .interner
            .thread_id(thread)
            .expect("source attached to a known thread");
        self.sources[id.idx()] = Some(source);
    }

    /// Advances the system one clock cycle.
    pub fn step(&mut self) {
        // Disjoint field borrows for the whole cycle: thread state, bank
        // state, queues, and metrics are updated side by side.
        let Self {
            threads,
            banks,
            private,
            rx_queues,
            sources,
            addr_route,
            requests,
            cycle,
            metrics,
            sink,
            instrumented,
            ..
        } = self;
        let instrumented = *instrumented;
        let now = *cycle;
        // Sync banks come first in the trace's bank numbering; private
        // per-thread port-A banks follow at `n_sync + thread_index`.
        let n_sync = banks.len() as u16;

        // Traffic arrivals.
        for (ti, src) in sources.iter_mut().enumerate() {
            let Some(src) = src.as_mut() else { continue };
            if let Some(v) = src.poll(now) {
                let q = &mut rx_queues[ti];
                q.push_back(v);
                if instrumented {
                    let mut tee = RecordingSink {
                        sink: &mut **sink,
                        registry: metrics,
                    };
                    tee.emit(&TraceEvent {
                        cycle: now,
                        bank: 0,
                        port: Port::Rx,
                        addr: 0,
                        kind: EventKind::QueuePush {
                            thread: ti,
                            depth: q.len(),
                        },
                    });
                }
            }
        }

        // 1. Tick threads; collect held memory requests.
        requests.clear();
        for (ti, (t, q)) in threads.iter_mut().zip(rx_queues.iter_mut()).enumerate() {
            let mut rx = q.front().copied();
            let had = rx.is_some();
            let req = t.tick(&mut rx, true);
            if had && rx.is_none() {
                q.pop_front();
                if instrumented {
                    let mut tee = RecordingSink {
                        sink: &mut **sink,
                        registry: metrics,
                    };
                    tee.emit(&TraceEvent {
                        cycle: now,
                        bank: 0,
                        port: Port::Rx,
                        addr: 0,
                        kind: EventKind::QueuePop {
                            thread: ti,
                            depth: q.len(),
                        },
                    });
                }
            }
            requests.push(req);
        }

        // 2. Private port-A banks: resolve immediately (never arbitrated).
        for (ti, req) in requests.iter().enumerate() {
            let Some(r) = req else { continue };
            if r.port != PortClass::A {
                continue;
            }
            let bank = &mut private[ti];
            let kind = match r.write {
                Some(data) => {
                    bank.bram.write(r.addr, data);
                    threads[ti].deliver(MemResponse::Granted);
                    EventKind::Write { producer: ti, data }
                }
                None => {
                    bank.inflight = Some((r.addr, bank.bram.read(r.addr)));
                    threads[ti].deliver(MemResponse::Granted);
                    EventKind::ReadIssue { consumer: ti }
                }
            };
            if instrumented {
                let mut tee = RecordingSink {
                    sink: &mut **sink,
                    registry: metrics,
                };
                tee.emit(&TraceEvent {
                    cycle: now,
                    bank: n_sync + ti as u16,
                    port: Port::A,
                    addr: r.addr,
                    kind,
                });
            }
        }
        // Deliver last-cycle private reads (before this cycle's reads land).
        // NOTE: inflight was set this cycle for new reads; the delivery pass
        // below uses a snapshot taken before, handled by delivering first.

        // 3a. Route sync requests into the per-bank input buffers.
        for bank in banks.iter_mut() {
            match &mut bank.model {
                BankModel::Arbitrated { inp, .. } => {
                    inp.c_req.fill(None);
                    inp.d_req.fill(None);
                    inp.a_req = None;
                }
                BankModel::EventDriven { inp, .. } => {
                    inp.p_req.fill(None);
                    inp.c_addr.fill(None);
                    inp.a_req = None;
                }
            }
        }
        for (ti, req) in requests.iter().enumerate() {
            let Some(r) = req else { continue };
            if r.port == PortClass::A {
                continue;
            }
            // Guarded addresses are globally unique (see alloc): binary
            // search finds the owning bank without scanning guarded lists.
            let Ok(pos) = addr_route.binary_search_by_key(&r.addr, |&(a, _)| a) else {
                continue;
            };
            let bank = &mut banks[addr_route[pos].1 as usize];
            match r.port {
                PortClass::C | PortClass::B => {
                    if let Some(slot) = bank.consumer_slot[ti] {
                        match &mut bank.model {
                            BankModel::Arbitrated { inp, .. } => {
                                inp.c_req[slot as usize] = Some(r.addr);
                            }
                            BankModel::EventDriven { inp, .. } => {
                                inp.c_addr[slot as usize] = Some(r.addr);
                            }
                        }
                    }
                }
                PortClass::D => {
                    if let Some(slot) = bank.producer_slot[ti] {
                        match &mut bank.model {
                            BankModel::Arbitrated { inp, .. } => {
                                inp.d_req[slot as usize] =
                                    Some((r.addr, r.write.unwrap_or(0), r.dep_number));
                            }
                            BankModel::EventDriven { inp, .. } => {
                                inp.p_req[slot as usize] = Some((r.addr, r.write.unwrap_or(0)));
                            }
                        }
                    }
                }
                PortClass::A => {}
            }
        }

        // 3b. Step each sync bank and feed grants/data back to threads.
        for (bi, bank) in banks.iter_mut().enumerate() {
            let bid = bi as u16;
            let SimBank {
                model,
                consumer_thread,
                producer_thread,
                last_issue,
                gauge_name,
                ..
            } = bank;
            match model {
                BankModel::Arbitrated { model: m, inp, out } => {
                    if instrumented {
                        let mut tee = RecordingSink {
                            sink: &mut **sink,
                            registry: metrics,
                        };
                        m.step_traced_into(inp, bid, &mut tee, out);
                        metrics.observe_gauge(gauge_name, m.deplist().occupancy() as u64);
                    } else {
                        m.step_traced_into(inp, bid, &mut NullSink, out);
                    }
                    // Data delivery for last cycle's issue first: a
                    // same-cycle producer write belongs to the *next*
                    // produce-consume round, so deliveries must be
                    // attributed before the new write is recorded.
                    // (When instrumented, the model's Deliver/Write events
                    // already fed the latency recorder via the registry.)
                    if let Some((c, data)) = out.c_data {
                        if let Some(tid) = consumer_thread[c] {
                            threads[tid.idx()].deliver(MemResponse::Data(data));
                        }
                        if !instrumented {
                            if let Some(addr) = last_issue[c] {
                                metrics.record_delivery(addr, c, now);
                            }
                        }
                    }
                    // Producer grants.
                    for (p, granted) in out.d_grant.iter().enumerate() {
                        if !granted {
                            continue;
                        }
                        if let Some(tid) = producer_thread[p] {
                            if !instrumented {
                                if let Some(r) = requests[tid.idx()] {
                                    metrics.record_write(r.addr, now);
                                }
                            }
                            threads[tid.idx()].deliver(MemResponse::Granted);
                        }
                    }
                    // Consumer grants (read issued).
                    for (c, granted) in out.c_grant.iter().enumerate() {
                        if !granted {
                            continue;
                        }
                        if let Some(tid) = consumer_thread[c] {
                            threads[tid.idx()].deliver(MemResponse::Granted);
                        }
                    }
                    // Remember addresses at issue for delivery attribution.
                    for (c, granted) in out.c_grant.iter().enumerate() {
                        if *granted {
                            if let Some(addr) = inp.c_req[c] {
                                last_issue[c] = Some(addr);
                            }
                        }
                    }
                }
                BankModel::EventDriven { model: m, inp, out } => {
                    if instrumented {
                        let mut tee = RecordingSink {
                            sink: &mut **sink,
                            registry: metrics,
                        };
                        m.step_traced_into(inp, bid, &mut tee, out);
                    } else {
                        m.step_traced_into(inp, bid, &mut NullSink, out);
                    }
                    // Deliveries before new writes (same-cycle attribution).
                    if let Some((c, data)) = out.c_data {
                        if let Some(tid) = consumer_thread[c] {
                            // The consumer is mid-read: grant + data in one
                            // delivery (the event releases the blocked read).
                            threads[tid.idx()].deliver(MemResponse::Granted);
                            threads[tid.idx()].deliver(MemResponse::Data(data));
                        }
                        if !instrumented {
                            if let Some(addr) = inp.c_addr[c] {
                                metrics.record_delivery(addr, c, now);
                            }
                        }
                    }
                    for (p, granted) in out.p_grant.iter().enumerate() {
                        if !granted {
                            continue;
                        }
                        if let Some(tid) = producer_thread[p] {
                            if !instrumented {
                                if let Some(r) = requests[tid.idx()] {
                                    metrics.record_write(r.addr, now);
                                }
                            }
                            threads[tid.idx()].deliver(MemResponse::Granted);
                        }
                    }
                }
            }
        }

        // 4. Deliver private-bank read data scheduled last cycle.
        for (ti, (t, bank)) in threads.iter_mut().zip(private.iter_mut()).enumerate() {
            if let Some((addr, data)) = bank.pending_delivery.take() {
                t.deliver(MemResponse::Data(data));
                if instrumented {
                    let mut tee = RecordingSink {
                        sink: &mut **sink,
                        registry: metrics,
                    };
                    tee.emit(&TraceEvent {
                        cycle: now,
                        bank: n_sync + ti as u16,
                        port: Port::A,
                        addr,
                        kind: EventKind::Deliver { consumer: ti, data },
                    });
                }
            }
            // Promote this cycle's issue to next cycle's delivery.
            bank.pending_delivery = bank.inflight.take();
        }

        *cycle += 1;
    }

    /// Runs until every thread has completed at least `iterations`
    /// run-to-completion iterations, or `max_cycles` elapse.
    ///
    /// Returns whether the iteration target was reached.
    pub fn run_until_iterations(&mut self, iterations: u64, max_cycles: u64) -> bool {
        for _ in 0..max_cycles {
            if self.threads.iter().all(|t| t.iterations >= iterations) {
                return true;
            }
            self.step();
        }
        self.threads.iter().all(|t| t.iterations >= iterations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::PeriodicSource;
    use memsync_core::Compiler;
    use memsync_synth::eval::call_function;

    const FIGURE1: &str = r#"
        thread t1 () {
            int x1, xtmp, x2;
            #consumer{mt1,[t2,y1],[t3,z1]}
            x1 = f(xtmp, x2);
        }
        thread t2 () {
            int y1, y2;
            #producer{mt1,[t1,x1]}
            y1 = g(x1, y2);
        }
        thread t3 () {
            int z1, z2;
            #producer{mt1,[t1,x1]}
            z1 = h(x1, z2);
        }
    "#;

    fn compiled(kind: OrganizationKind) -> CompiledSystem {
        let mut c = Compiler::new(FIGURE1);
        c.organization(kind);
        c.skip_validation();
        c.compile().expect("figure 1 compiles")
    }

    #[test]
    fn figure1_values_flow_under_arbitration() {
        let sys_desc = compiled(OrganizationKind::Arbitrated);
        let mut sys = System::new(&sys_desc);
        assert!(sys.run_until_iterations(2, 2000), "threads make progress");
        // x1 itself is memory-resident (port D); the consumers' registers
        // prove the value crossed the shared memory.
        let x1 = call_function("f", &[0, 0]);
        assert_eq!(
            sys.thread("t2").unwrap().var("y1"),
            Some(call_function("g", &[x1, 0]))
        );
        assert_eq!(
            sys.thread("t3").unwrap().var("z1"),
            Some(call_function("h", &[x1, 0]))
        );
    }

    #[test]
    fn figure1_values_flow_under_event_driven() {
        let sys_desc = compiled(OrganizationKind::EventDriven);
        let mut sys = System::new(&sys_desc);
        assert!(sys.run_until_iterations(2, 2000), "threads make progress");
        let x1 = call_function("f", &[0, 0]);
        assert_eq!(
            sys.thread("t2").unwrap().var("y1"),
            Some(call_function("g", &[x1, 0]))
        );
        assert_eq!(
            sys.thread("t3").unwrap().var("z1"),
            Some(call_function("h", &[x1, 0]))
        );
    }

    #[test]
    fn event_driven_latencies_are_deterministic_figure1() {
        let sys_desc = compiled(OrganizationKind::EventDriven);
        let mut sys = System::new(&sys_desc);
        assert!(sys.run_until_iterations(20, 20_000));
        for (addr, consumer) in sys.metrics.streams() {
            let stats = sys.metrics.stats(addr, consumer).expect("samples exist");
            assert!(stats.count >= 10, "enough samples");
            assert!(
                stats.is_deterministic(),
                "event-driven latency must be exact; got {stats:?}"
            );
        }
    }

    #[test]
    fn interner_round_trips_thread_and_bank_names() {
        let sys_desc = compiled(OrganizationKind::Arbitrated);
        let sys = System::new(&sys_desc);
        for name in ["t1", "t2", "t3"] {
            let id = sys.thread_id(name).expect("thread interned");
            assert_eq!(sys.interner().thread_name(id), name);
            assert_eq!(sys.thread_by_id(id).name(), name);
        }
        assert_eq!(sys.thread_id("nope"), None);
        // Allocation names banks sync0, sync1, ...; mt1 is the pragma label.
        let bid = sys.bank_id("sync0").expect("bank interned");
        assert_eq!(sys.interner().bank_name(bid), "sync0");
        assert_eq!(sys.bank_spec(bid).name, "sync0");
        assert_eq!(sys.bank_spec(bid).producers, vec!["t1".to_owned()]);
        assert_eq!(
            sys.bank_spec(bid).consumers,
            vec!["t2".to_owned(), "t3".to_owned()]
        );
    }

    /// Figure 1 with the producer paced by packet arrivals — §3.1's
    /// "writes happen when packets arrive from a network and are
    /// probabilistic in nature".
    const FIGURE1_PACED: &str = r#"
        thread t1 () {
            message pkt;
            int x1, x2;
            recv pkt;
            #consumer{mt1,[t2,y1],[t3,z1]}
            x1 = f(pkt, x2);
        }
        thread t2 () {
            int y1, y2;
            #producer{mt1,[t1,x1]}
            y1 = g(x1, y2);
        }
        thread t3 () {
            int z1, z2;
            #producer{mt1,[t1,x1]}
            z1 = h(x1, z2);
        }
    "#;

    #[test]
    fn arbitrated_consumers_see_variable_latency_under_contention() {
        // Two consumers contending on one bus: arbitration order makes the
        // second consumer's latency differ from the first's.
        let mut c = Compiler::new(FIGURE1_PACED);
        c.organization(OrganizationKind::Arbitrated)
            .skip_validation();
        let compiled = c.compile().unwrap();
        let mut sys = System::new(&compiled);
        sys.attach_source(
            "t1",
            Box::new(crate::traffic::BernoulliSource::new(11, 0.05)),
        );
        for _ in 0..20_000 {
            sys.step();
        }
        let pooled = sys.metrics.pooled_stats().expect("samples recorded");
        assert!(pooled.count >= 20, "{pooled:?}");
        assert!(
            pooled.max > pooled.min,
            "contended arbitration should spread latencies: {pooled:?}"
        );
    }

    #[test]
    fn batch_submit_runs_until_sent_and_drains() {
        let src = r#"
            thread rx () {
                message m;
                int v;
                recv m;
                v = m + 1;
                send v;
            }
        "#;
        let mut c = Compiler::new(src);
        c.skip_validation();
        let compiled = c.compile().unwrap();
        let mut sys = System::new(&compiled);
        let rx = sys.thread_id("rx").unwrap();
        sys.push_messages("rx", [10i64, 20, 30]);
        assert_eq!(sys.rx_queue_len("rx"), 3);
        assert!(sys.run_until_sent(&[rx], 3, 10_000), "batch completes");
        assert_eq!(sys.rx_queue_len("rx"), 0);
        assert_eq!(sys.drain_sent(rx), vec![11, 21, 31]);
        assert_eq!(sys.sent_count(rx), 0, "drained");
        // A second batch starts from a clean sent buffer.
        sys.push_messages("rx", [40i64]);
        assert!(sys.run_until_sent(&[rx], 1, 10_000));
        assert_eq!(sys.drain_sent(rx), vec![41]);
        // Unknown thread names are ignored / empty, matching push_message.
        sys.push_messages("nope", [1i64]);
        assert_eq!(sys.rx_queue_len("nope"), 0);
    }

    #[test]
    fn recv_driven_thread_consumes_traffic() {
        let src = r#"
            thread rx () {
                message m;
                int seen;
                recv m;
                seen = seen + 1;
                send m;
            }
        "#;
        let mut c = Compiler::new(src);
        c.skip_validation();
        let compiled = c.compile().unwrap();
        let mut sys = System::new(&compiled);
        sys.attach_source("rx", Box::new(PeriodicSource::new(10, 0)));
        for _ in 0..200 {
            sys.step();
        }
        let t = sys.thread("rx").unwrap();
        assert!(
            t.iterations >= 10,
            "one message per period: {}",
            t.iterations
        );
        assert!(t.sent.len() >= 10);
        // Payloads pass through in order.
        assert_eq!(&t.sent[0..3], &[1, 2, 3]);
    }
}
