//! Behavioral model of one 18 Kb BRAM bank (512×36 view, 32-bit payload),
//! with the synchronous one-cycle read latency of the real block.
//!
//! The raw bank knows nothing about guarding: `write` unconditionally
//! overwrites. That is correct because every *guarded* write in the
//! system reaches a bank only through a wrapper's counted path — the
//! arbitrated model's `DependencyList::producer_write_checked` or the
//! event-driven model's window admission — both of which account for
//! overwrites of unconsumed values in their `lost_updates` counters.
//! Port A traffic (private per-thread state, lookup tables) is unguarded
//! by construction and overwrites freely.

/// Words in the bank.
pub const BANK_WORDS: usize = 512;

/// One true-dual-port BRAM (only the payload bits are modeled).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BramModel {
    words: Vec<u32>,
}

impl Default for BramModel {
    fn default() -> Self {
        Self::new()
    }
}

impl BramModel {
    /// A zero-initialized bank.
    pub fn new() -> Self {
        BramModel {
            words: vec![0; BANK_WORDS],
        }
    }

    /// Synchronous read: the value that will appear on the output register
    /// in the next cycle.
    ///
    /// # Panics
    ///
    /// Panics if `addr` exceeds the bank (a routing bug upstream).
    pub fn read(&self, addr: u32) -> u32 {
        self.words[addr as usize % BANK_WORDS]
    }

    /// Write a word.
    pub fn write(&mut self, addr: u32, data: u32) {
        self.words[addr as usize % BANK_WORDS] = data;
    }

    /// Read-first simultaneous read+write on one port (Virtex-II Pro
    /// read-first behaviour): returns the old value.
    pub fn read_write(&mut self, addr: u32, data: u32) -> u32 {
        let old = self.read(addr);
        self.write(addr, data);
        old
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read() {
        let mut b = BramModel::new();
        b.write(7, 0xdead_beef);
        assert_eq!(b.read(7), 0xdead_beef);
        assert_eq!(b.read(8), 0);
    }

    #[test]
    fn read_first_semantics() {
        let mut b = BramModel::new();
        b.write(3, 111);
        let old = b.read_write(3, 222);
        assert_eq!(old, 111);
        assert_eq!(b.read(3), 222);
    }

    #[test]
    fn addresses_wrap_at_bank_size() {
        let mut b = BramModel::new();
        b.write(BANK_WORDS as u32 + 1, 9);
        assert_eq!(b.read(1), 9);
    }
}
