//! Stochastic packet arrival processes.
//!
//! §3.1: "For our application domain of packet processing, the writes happen
//! when packets arrive from a network and are probabilistic in nature."
//! These sources model that arrival process for the simulator's network
//! interfaces — Bernoulli per-cycle arrivals (the discrete-time analogue of
//! Poisson traffic) and fixed-period arrivals for deterministic baselines.

use memsync_trace::Pcg32;

/// A source of message arrivals, polled once per cycle.
///
/// `Send` so a [`crate::System`] owning attached sources can move onto a
/// worker thread (the serve crate builds backends per shard thread).
pub trait ArrivalProcess: Send {
    /// Returns the message payload if one arrives this cycle.
    fn poll(&mut self, cycle: u64) -> Option<i64>;
}

impl std::fmt::Debug for dyn ArrivalProcess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ArrivalProcess")
    }
}

/// Bernoulli arrivals: each cycle a packet arrives with probability `p`.
#[derive(Debug, Clone)]
pub struct BernoulliSource {
    rng: Pcg32,
    p: f64,
    next_payload: i64,
}

impl BernoulliSource {
    /// Creates a seeded source with per-cycle arrival probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn new(seed: u64, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        BernoulliSource {
            rng: Pcg32::seed_from_u64(seed),
            p,
            next_payload: 1,
        }
    }
}

impl ArrivalProcess for BernoulliSource {
    fn poll(&mut self, _cycle: u64) -> Option<i64> {
        if self.rng.gen_bool(self.p) {
            let v = self.next_payload;
            self.next_payload = self.next_payload.wrapping_add(1);
            Some(v)
        } else {
            None
        }
    }
}

/// Deterministic arrivals every `period` cycles (first at `phase`).
#[derive(Debug, Clone)]
pub struct PeriodicSource {
    period: u64,
    phase: u64,
    next_payload: i64,
}

impl PeriodicSource {
    /// Creates a periodic source.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(period: u64, phase: u64) -> Self {
        assert!(period > 0, "period must be positive");
        PeriodicSource {
            period,
            phase,
            next_payload: 1,
        }
    }
}

impl ArrivalProcess for PeriodicSource {
    fn poll(&mut self, cycle: u64) -> Option<i64> {
        if cycle >= self.phase && (cycle - self.phase).is_multiple_of(self.period) {
            let v = self.next_payload;
            self.next_payload = self.next_payload.wrapping_add(1);
            Some(v)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bernoulli_is_seed_deterministic() {
        let mut a = BernoulliSource::new(7, 0.5);
        let mut b = BernoulliSource::new(7, 0.5);
        for cycle in 0..200 {
            assert_eq!(a.poll(cycle), b.poll(cycle));
        }
    }

    #[test]
    fn bernoulli_rate_approximates_p() {
        let mut s = BernoulliSource::new(42, 0.3);
        let arrivals = (0..10_000).filter(|&c| s.poll(c).is_some()).count();
        let rate = arrivals as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.03, "rate {rate}");
    }

    #[test]
    fn bernoulli_payloads_increment() {
        let mut s = BernoulliSource::new(1, 1.0);
        assert_eq!(s.poll(0), Some(1));
        assert_eq!(s.poll(1), Some(2));
    }

    #[test]
    fn periodic_fires_on_schedule() {
        let mut s = PeriodicSource::new(5, 2);
        let fired: Vec<u64> = (0..20).filter(|&c| s.poll(c).is_some()).collect();
        assert_eq!(fired, vec![2, 7, 12, 17]);
    }

    #[test]
    fn zero_probability_never_fires() {
        let mut s = BernoulliSource::new(3, 0.0);
        assert!((0..100).all(|c| s.poll(c).is_none()));
    }
}
