//! # memsync-sim — cycle-accurate simulation substrate
//!
//! Substitute for the physical FPGA running the generated designs (see
//! DESIGN.md §3): behavioral models of both memory organizations that
//! mirror the generated RTL cycle for cycle, an executor for synthesized
//! thread FSMs, stochastic packet traffic, and produce-to-consume latency
//! metrics — the apparatus behind the paper's determinism comparison.
//!
//! * [`bram_model`] — the 18 Kb BRAM with synchronous read latency;
//! * [`arb_model`] — §3.1 arbitrated wrapper (pipelined decision/issue,
//!   producer pre-emption, round-robin, dependency counters);
//! * [`event_model`] — §3.2 event-driven wrapper (modulo-scheduled windows,
//!   static consumer order, exact post-write latency);
//! * [`thread_model`] — runs [`memsync_synth::fsm::Fsm`]s against the
//!   wrappers with blocking semantics;
//! * [`engine`] — wires a [`memsync_core::CompiledSystem`] into a steppable
//!   [`engine::System`];
//! * [`traffic`] — Bernoulli/periodic arrival processes;
//! * [`metrics`] — latency distributions, counters, and determinism checks
//!   (re-exported from [`memsync_trace`], where the apparatus now lives).
//!
//! Cycle-level observability: both wrapper models expose `step_traced`,
//! and [`engine::System::set_sink`] routes every grant, stall, and
//! delivery into a [`memsync_trace::TraceSink`] while the
//! [`memsync_trace::MetricsRegistry`] counts them.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arb_model;
pub mod bram_model;
pub mod engine;
pub mod event_model;
pub mod intern;
pub mod metrics;
pub mod thread_model;
pub mod traffic;

pub use engine::System;
pub use intern::{BankId, Interner, ThreadId};
pub use metrics::{LatencyRecorder, LatencyStats, MetricsRegistry};
pub use thread_model::{MemRequest, MemResponse, ThreadExec};
