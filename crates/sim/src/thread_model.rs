//! Cycle-accurate execution of synthesized thread FSMs.
//!
//! A [`ThreadExec`] runs one [`Fsm`] exactly as the generated hardware
//! would: one state per cycle, pure (chained) operations free within their
//! state, memory operations issuing requests that may block the state until
//! the memory organization grants them, `recv`/`send` blocking on the
//! network interface. The engine drives `tick` once per cycle and feeds
//! back grants/data through [`ThreadExec::deliver`].

use memsync_synth::eval::{
    call_function, eval_binary_datapath, eval_unary_datapath, mask_to_width,
};
use memsync_synth::fsm::{Fsm, StateNext};
use memsync_synth::ir::{OpKind, PortClass, Residency, Temp, Value};

/// Stack buffer size for datapath call arguments; calls with more spill to
/// a (cold) heap path.
const MAX_CALL_ARGS: usize = 8;

/// A memory request a thread holds while blocked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// Wrapper port class.
    pub port: PortClass,
    /// Address within the bank.
    pub addr: u32,
    /// Write data (None = read).
    pub write: Option<u32>,
    /// Dependency number presented on writes through port D.
    pub dep_number: u8,
}

/// Response events fed back by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemResponse {
    /// The held request was granted this cycle (write done / read issued).
    Granted,
    /// Read data arrived.
    Data(u32),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Waiting {
    /// Executing freely.
    None,
    /// Holding a memory request; `result` is the temp receiving read data.
    Mem {
        req: MemRequest,
        result: Option<u32>, // temp id
        granted: bool,
    },
    /// Blocked on `recv`.
    Recv { var: u32 },
    /// Blocked on `send`.
    Send { value: i64 },
}

/// Executes one thread FSM cycle by cycle.
#[derive(Debug, Clone)]
pub struct ThreadExec {
    fsm: Fsm,
    regs: Vec<i64>,
    /// Temp values, indexed densely by [`Temp`] id (sized at construction
    /// by scanning the FSM so the per-cycle path never reallocates).
    temps: Vec<i64>,
    /// Per-variable `(port, base_addr)`, resolved once at construction:
    /// `MemBinding::residency_of` clones the dependency-name strings on
    /// every call, which would put an allocation on every memory op.
    residency: Vec<(PortClass, u32)>,
    state: usize,
    op_pos: usize,
    waiting: Waiting,
    /// Completed run-to-completion iterations.
    pub iterations: u64,
    /// Cycles executed.
    pub cycles: u64,
    /// Cycles that ended with the thread blocked on memory or I/O — the
    /// per-thread stall attribution the trace layer reports.
    pub blocked_cycles: u64,
    /// Messages sent on the tx interface.
    pub sent: Vec<i64>,
    halted: bool,
}

impl ThreadExec {
    /// Creates an executor over a synthesized FSM.
    pub fn new(fsm: Fsm) -> Self {
        let regs = vec![0; fsm.vars.len()];
        // Size the dense temp table up front: the hot loop indexes it
        // without ever growing.
        let mut n_temps = 0usize;
        for st in &fsm.states {
            for op in &st.ops {
                if let Some(t) = op.result {
                    n_temps = n_temps.max(t.0 as usize + 1);
                }
                for a in &op.args {
                    if let Value::Temp(t) = a {
                        n_temps = n_temps.max(t.0 as usize + 1);
                    }
                }
            }
        }
        let residency = fsm
            .vars
            .iter()
            .map(|v| match fsm.binding.residency_of(v) {
                Residency::Memory {
                    port, base_addr, ..
                } => (port, base_addr),
                Residency::Register => (PortClass::A, 0),
            })
            .collect();
        ThreadExec {
            fsm,
            regs,
            temps: vec![0; n_temps],
            residency,
            state: 0,
            op_pos: 0,
            waiting: Waiting::None,
            iterations: 0,
            cycles: 0,
            blocked_cycles: 0,
            sent: Vec::new(),
            halted: false,
        }
    }

    /// Thread name.
    pub fn name(&self) -> &str {
        &self.fsm.thread
    }

    /// Current register value of a variable.
    pub fn var(&self, name: &str) -> Option<i64> {
        self.fsm.var_id(name).map(|id| self.regs[id.0 as usize])
    }

    /// Whether the thread is stalled on a memory request or I/O.
    pub fn is_blocked(&self) -> bool {
        !matches!(self.waiting, Waiting::None)
    }

    /// Stops the thread at the end of the current iteration (used to bound
    /// simulations).
    pub fn halt_after_iteration(&mut self) {
        self.halted = true;
    }

    fn store_var(&mut self, id: u32, value: i64) {
        store_var_masked(&self.fsm.widths, &mut self.regs, id, value);
    }

    /// Advances one cycle. `rx` offers an incoming message (taken if the
    /// thread is at a `recv`); `tx_ready` gates `send`. Returns the memory
    /// request the thread is holding at the end of the cycle, if any.
    pub fn tick(&mut self, rx: &mut Option<i64>, tx_ready: bool) -> Option<MemRequest> {
        let req = self.tick_inner(rx, tx_ready);
        if self.is_blocked() {
            self.blocked_cycles += 1;
        }
        req
    }

    fn tick_inner(&mut self, rx: &mut Option<i64>, tx_ready: bool) -> Option<MemRequest> {
        self.cycles += 1;
        // Resolve blocking I/O first.
        match self.waiting {
            Waiting::Recv { var } => {
                if let Some(msg) = rx.take() {
                    self.store_var(var, msg);
                    self.waiting = Waiting::None;
                    self.op_pos += 1;
                    self.run_state();
                }
                return self.held_request();
            }
            Waiting::Send { value } => {
                if tx_ready {
                    self.sent.push(value);
                    self.waiting = Waiting::None;
                    self.op_pos += 1;
                    self.run_state();
                }
                return self.held_request();
            }
            Waiting::Mem { .. } => {
                // Still blocked; the request stays posted.
                return self.held_request();
            }
            Waiting::None => {}
        }
        self.run_state();
        self.held_request()
    }

    /// Feeds back a grant or read data for the held request.
    pub fn deliver(&mut self, resp: MemResponse) {
        let Waiting::Mem {
            req,
            result,
            granted: _,
        } = self.waiting
        else {
            return;
        };
        match resp {
            MemResponse::Granted => {
                if req.write.is_some() {
                    // Write complete.
                    self.waiting = Waiting::None;
                    self.op_pos += 1;
                } else {
                    // Read issued; data comes later.
                    self.waiting = Waiting::Mem {
                        req,
                        result,
                        granted: true,
                    };
                }
            }
            MemResponse::Data(d) => {
                if let Some(t) = result {
                    set_temp(&mut self.temps, Some(Temp(t)), i64::from(d));
                }
                self.waiting = Waiting::None;
                self.op_pos += 1;
            }
        }
    }

    fn held_request(&self) -> Option<MemRequest> {
        match &self.waiting {
            Waiting::Mem { req, granted, .. } if !*granted => Some(*req),
            _ => None,
        }
    }

    /// Executes ops of the current state until a blocking op or the state
    /// completes (then takes the transition). At most one state per cycle.
    ///
    /// This is the simulator's innermost loop: ops are executed by
    /// reference (no clones) and results land in the dense temp table, so
    /// a cycle with no `send`/`recv` performs no heap allocation.
    fn run_state(&mut self) {
        let ThreadExec {
            fsm,
            regs,
            temps,
            residency,
            state,
            op_pos,
            waiting,
            iterations,
            ..
        } = self;
        if fsm.states.is_empty() {
            return;
        }
        loop {
            let st = &fsm.states[*state];
            if *op_pos >= st.ops.len() {
                break;
            }
            let op = &st.ops[*op_pos];
            match &op.kind {
                OpKind::Copy => {
                    let v = value_of(regs, temps, op.args[0]);
                    set_temp(temps, op.result, v);
                }
                OpKind::Unary(u) => {
                    let v = eval_unary_datapath(*u, value_of(regs, temps, op.args[0]));
                    set_temp(temps, op.result, v);
                }
                OpKind::Binary(bop) => {
                    let v = eval_binary_datapath(
                        *bop,
                        value_of(regs, temps, op.args[0]),
                        value_of(regs, temps, op.args[1]),
                    );
                    set_temp(temps, op.result, v);
                }
                OpKind::Call(name) => {
                    // Datapath networks take a handful of inputs: evaluate
                    // into a stack buffer, spilling to the heap only for
                    // pathological arities.
                    let v = if op.args.len() <= MAX_CALL_ARGS {
                        let mut buf = [0i64; MAX_CALL_ARGS];
                        for (slot, a) in buf.iter_mut().zip(op.args.iter()) {
                            *slot = value_of(regs, temps, *a);
                        }
                        call_function(name, &buf[..op.args.len()])
                    } else {
                        let args: Vec<i64> =
                            op.args.iter().map(|a| value_of(regs, temps, *a)).collect();
                        call_function(name, &args)
                    };
                    set_temp(temps, op.result, v);
                }
                OpKind::Select => {
                    let v = if value_of(regs, temps, op.args[0]) != 0 {
                        value_of(regs, temps, op.args[1])
                    } else {
                        value_of(regs, temps, op.args[2])
                    };
                    set_temp(temps, op.result, v);
                }
                OpKind::StoreVar { var } => {
                    let v = value_of(regs, temps, op.args[0]);
                    store_var_masked(&fsm.widths, regs, var.0, v);
                }
                OpKind::MemRead { var, .. } => {
                    let (port, base) = residency[var.0 as usize];
                    let idx = value_of(regs, temps, op.args[0]) as u32;
                    *waiting = Waiting::Mem {
                        req: MemRequest {
                            port,
                            addr: base.wrapping_add(idx),
                            write: None,
                            dep_number: 0,
                        },
                        result: op.result.map(|t| t.0),
                        granted: false,
                    };
                    return;
                }
                OpKind::MemWrite { var, dep } => {
                    let (port, base) = residency[var.0 as usize];
                    let idx = value_of(regs, temps, op.args[0]) as u32;
                    let data = value_of(regs, temps, op.args[1]) as u32;
                    let dep_number = dep.as_ref().map(|_| 1).unwrap_or(0);
                    *waiting = Waiting::Mem {
                        req: MemRequest {
                            port,
                            addr: base.wrapping_add(idx),
                            write: Some(data),
                            dep_number,
                        },
                        result: None,
                        granted: false,
                    };
                    return;
                }
                OpKind::Recv { var } => {
                    *waiting = Waiting::Recv { var: var.0 };
                    return;
                }
                OpKind::Send => {
                    let v = value_of(regs, temps, op.args[0]);
                    *waiting = Waiting::Send { value: v };
                    return;
                }
            }
            *op_pos += 1;
        }
        // State complete: take the transition (consumes the cycle).
        let st = &fsm.states[*state];
        *op_pos = 0;
        *state = match &st.next {
            StateNext::Goto(t) => *t,
            StateNext::Branch {
                cond,
                then_state,
                else_state,
            } => {
                if value_of(regs, temps, *cond) != 0 {
                    *then_state
                } else {
                    *else_state
                }
            }
            StateNext::Switch {
                selector,
                arms,
                default,
            } => {
                let sel = value_of(regs, temps, *selector);
                arms.iter()
                    .find(|(k, _)| i64::from(*k as u32) == sel || *k == sel)
                    .map(|(_, t)| *t)
                    .unwrap_or(*default)
            }
            StateNext::Restart => {
                *iterations += 1;
                0
            }
        };
    }

    /// Whether the thread has been asked to halt and is at an iteration
    /// boundary.
    pub fn is_done(&self) -> bool {
        self.halted && self.state == 0 && self.op_pos == 0 && !self.is_blocked()
    }
}

// Free helpers over disjoint `ThreadExec` fields, so `run_state` can read
// ops by reference while writing registers and temps.

#[inline]
fn value_of(regs: &[i64], temps: &[i64], v: Value) -> i64 {
    match v {
        Value::Const(c) => i64::from(c as u32),
        Value::Var(id) => regs[id.0 as usize],
        Value::Temp(t) => temps.get(t.0 as usize).copied().unwrap_or(0),
    }
}

#[inline]
fn set_temp(temps: &mut Vec<i64>, t: Option<Temp>, v: i64) {
    if let Some(t) = t {
        let i = t.0 as usize;
        if i >= temps.len() {
            // Cold: the table is pre-sized from the FSM at construction.
            temps.resize(i + 1, 0);
        }
        temps[i] = v;
    }
}

#[inline]
fn store_var_masked(widths: &[u32], regs: &mut [i64], id: u32, value: i64) {
    let width = widths[id as usize].min(32);
    regs[id as usize] = mask_to_width(value, width);
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsync_synth::ir::MemBinding;
    use memsync_synth::Synthesis;

    fn exec_of(src: &str, binding: MemBinding) -> ThreadExec {
        let program = memsync_hic::parser::parse(src).unwrap();
        let fsm = Synthesis::of(&program).binding(binding).run().unwrap().fsm;
        ThreadExec::new(fsm)
    }

    fn run_free(t: &mut ThreadExec, cycles: usize) {
        for _ in 0..cycles {
            let mut rx = None;
            let req = t.tick(&mut rx, true);
            assert!(req.is_none(), "unexpected memory request");
        }
    }

    #[test]
    fn straight_line_computes() {
        let mut t = exec_of(
            "thread t() { int a, b; a = 5; b = a * 3 + 1; }",
            MemBinding::new(),
        );
        run_free(&mut t, 20);
        assert_eq!(t.var("a"), Some(5));
        assert_eq!(t.var("b"), Some(16));
        assert!(t.iterations >= 1);
    }

    #[test]
    fn loop_counts_correctly() {
        let mut t = exec_of(
            "thread t() { int i, acc; acc = 0; for (i = 0; i < 5; i = i + 1) { acc = acc + i; } }",
            MemBinding::new(),
        );
        // Run until one iteration completes.
        let mut guard = 0;
        while t.iterations == 0 {
            let mut rx = None;
            t.tick(&mut rx, true);
            guard += 1;
            assert!(guard < 1000, "runaway loop");
        }
        assert_eq!(t.var("acc"), Some(10));
    }

    #[test]
    fn case_dispatch() {
        let mut t = exec_of(
            "thread t() { int s, r; s = 2; case (s) { when 1: r = 10; when 2: r = 20; default: r = 0; } }",
            MemBinding::new(),
        );
        let mut guard = 0;
        while t.iterations == 0 {
            let mut rx = None;
            t.tick(&mut rx, true);
            guard += 1;
            assert!(guard < 1000);
        }
        assert_eq!(t.var("r"), Some(20));
    }

    #[test]
    fn recv_blocks_until_message() {
        let mut t = exec_of(
            "thread t() { message m; int x; recv m; x = m + 1; }",
            MemBinding::new(),
        );
        for _ in 0..5 {
            let mut rx = None;
            t.tick(&mut rx, true);
        }
        assert!(t.is_blocked(), "blocked at recv");
        let mut rx = Some(41);
        t.tick(&mut rx, true);
        assert_eq!(rx, None, "message consumed");
        for _ in 0..10 {
            let mut rx = None;
            t.tick(&mut rx, true);
        }
        assert_eq!(t.var("x"), Some(42));
    }

    #[test]
    fn send_blocks_until_ready() {
        let mut t = exec_of("thread t() { int a; a = 7; send a; }", MemBinding::new());
        for _ in 0..10 {
            let mut rx = None;
            t.tick(&mut rx, false);
        }
        assert!(t.sent.is_empty(), "tx not ready yet");
        let mut rx = None;
        t.tick(&mut rx, true);
        assert_eq!(t.sent, vec![7]);
    }

    #[test]
    fn guarded_read_posts_port_c_request() {
        let mut binding = MemBinding::new();
        binding.place_guarded("v", PortClass::C, 5, Some("m".into()), None);
        let mut t = exec_of("thread c() { int w, v; w = v + 1; }", binding);
        let mut rx = None;
        let req = t.tick(&mut rx, true);
        let req = req.expect("request posted");
        assert_eq!(req.port, PortClass::C);
        assert_eq!(req.addr, 5);
        assert_eq!(req.write, None);
        // Request held until granted.
        let mut rx = None;
        assert!(t.tick(&mut rx, true).is_some());
        t.deliver(MemResponse::Granted);
        let mut rx = None;
        assert!(
            t.tick(&mut rx, true).is_none(),
            "read issued, awaiting data"
        );
        t.deliver(MemResponse::Data(9));
        for _ in 0..10 {
            let mut rx = None;
            t.tick(&mut rx, true);
        }
        assert_eq!(t.var("w"), Some(10));
    }

    #[test]
    fn guarded_write_posts_port_d_request() {
        let mut binding = MemBinding::new();
        binding.place_guarded("v", PortClass::D, 3, None, Some("m".into()));
        let mut t = exec_of("thread p() { int v; v = 9; }", binding);
        let mut rx = None;
        let req = t.tick(&mut rx, true).expect("request posted");
        assert_eq!(req.port, PortClass::D);
        assert_eq!(req.addr, 3);
        assert_eq!(req.write, Some(9));
        t.deliver(MemResponse::Granted);
        let mut rx = None;
        assert!(t.tick(&mut rx, true).is_none(), "write complete");
    }

    #[test]
    fn call_matches_rtl_network_semantics() {
        let mut t = exec_of(
            "thread t() { int a, b, c; a = 1; b = 2; c = f(a, b); }",
            MemBinding::new(),
        );
        run_free(&mut t, 20);
        assert_eq!(t.var("c"), Some(call_function("f", &[1, 2])));
    }

    #[test]
    fn char_variables_are_masked() {
        let mut t = exec_of("thread t() { char c; c = 300; }", MemBinding::new());
        run_free(&mut t, 10);
        assert_eq!(t.var("c"), Some(300 & 0xff));
    }
}
