//! Golden-value equivalence: the interned engine must reproduce — exactly —
//! the metrics the string-keyed seed engine produced on a fixed-seed
//! workload. The constants below were captured from the pre-interning
//! engine (BTreeMap-keyed banks/queues/sources) on this same program, seed,
//! and cycle count; any divergence means the refactor changed simulated
//! behavior, not just its speed.

use memsync_core::{Compiler, OrganizationKind};
use memsync_sim::traffic::BernoulliSource;
use memsync_sim::System;

/// Figure 1's three-thread dependency with Bernoulli-paced arrivals on the
/// consumer's rx port (t1 consumes x1; t2/t3 produce it).
const FIGURE1_PACED: &str = r#"
    thread t1 () {
        message pkt;
        int x1, x2;
        recv pkt;
        #consumer{mt1,[t2,y1],[t3,z1]}
        x1 = f(pkt, x2);
    }
    thread t2 () {
        int y1, y2;
        #producer{mt1,[t1,x1]}
        y1 = g(x1, y2);
    }
    thread t3 () {
        int z1, z2;
        #producer{mt1,[t1,x1]}
        z1 = h(x1, z2);
    }
"#;

fn run(kind: OrganizationKind, instrumented: bool) -> System {
    let mut c = Compiler::new(FIGURE1_PACED);
    c.organization(kind).skip_validation();
    let compiled = c.compile().expect("figure 1 compiles");
    let mut sys = System::new(&compiled);
    sys.attach_source("t1", Box::new(BernoulliSource::new(11, 0.05)));
    if instrumented {
        sys.enable_metrics();
    }
    for _ in 0..20_000 {
        sys.step();
    }
    sys
}

#[test]
fn arbitrated_uninstrumented_matches_seed_engine() {
    let sys = run(OrganizationKind::Arbitrated, false);
    let pooled = sys.metrics.pooled_stats().expect("samples recorded");
    assert_eq!(pooled.count, 1792);
    assert_eq!(pooled.min, 2);
    assert_eq!(pooled.max, 5);
    assert!(
        (pooled.mean - 3.863281).abs() < 1e-6,
        "mean {}",
        pooled.mean
    );
    assert!(
        (pooled.variance - 1.028741).abs() < 1e-6,
        "variance {}",
        pooled.variance
    );
    let s0 = sys.metrics.stats(0, 0).expect("stream (0,0)");
    assert_eq!(s0.count, 896);
    assert!((s0.mean - 3.983259).abs() < 1e-6);
    let s1 = sys.metrics.stats(0, 1).expect("stream (0,1)");
    assert_eq!(s1.count, 896);
    assert!((s1.mean - 3.743304).abs() < 1e-6);
    assert_eq!(sys.thread("t2").unwrap().var("y1"), Some(1529321783));
    assert_eq!(sys.thread("t3").unwrap().var("z1"), Some(1525503287));
    assert_eq!(sys.cycle(), 20_000);
}

#[test]
fn arbitrated_instrumented_matches_seed_engine() {
    let sys = run(OrganizationKind::Arbitrated, true);
    for (name, want) in [
        ("bank0.writes", 985),
        ("bank0.reads", 1792),
        ("bank0.grant.c0", 896),
        ("bank0.grant.c1", 896),
        ("bank0.grant.p0", 985),
        ("bank0.grant.p1", 0),
        ("bank0.deplist_hit", 985),
        ("bank0.deplist_miss", 0),
        ("queue0.push", 985),
        ("queue0.pop", 985),
    ] {
        assert_eq!(sys.metrics.counter(name), want, "{name}");
    }
    // The instrumented latency path (trace events through the registry)
    // agrees with the uninstrumented direct-recording path.
    let pooled = sys.metrics.pooled_stats().expect("samples recorded");
    assert_eq!((pooled.count, pooled.min, pooled.max), (1792, 2, 5));
    assert!((pooled.mean - 3.863281).abs() < 1e-6);
}

#[test]
fn event_driven_uninstrumented_matches_seed_engine() {
    let sys = run(OrganizationKind::EventDriven, false);
    let pooled = sys.metrics.pooled_stats().expect("samples recorded");
    assert_eq!((pooled.count, pooled.min, pooled.max), (1970, 2, 3));
    assert!((pooled.mean - 2.5).abs() < 1e-9);
    assert!((pooled.variance - 0.25).abs() < 1e-9);
    // §3.2 determinism: each consumer's latency is exact.
    let s0 = sys.metrics.stats(0, 0).expect("stream (0,0)");
    assert_eq!((s0.count, s0.min, s0.max), (985, 2, 2));
    let s1 = sys.metrics.stats(0, 1).expect("stream (0,1)");
    assert_eq!((s1.count, s1.min, s1.max), (985, 3, 3));
    assert_eq!(sys.thread("t2").unwrap().var("y1"), Some(1529321783));
    assert_eq!(sys.thread("t3").unwrap().var("z1"), Some(1525503287));
}

#[test]
fn event_driven_instrumented_matches_seed_engine() {
    let sys = run(OrganizationKind::EventDriven, true);
    for (name, want) in [
        ("bank0.writes", 985),
        ("bank0.reads", 1970),
        ("bank0.grant.c0", 985),
        ("bank0.grant.c1", 985),
        ("bank0.grant.p0", 985),
        ("bank0.deplist_hit", 0),
    ] {
        assert_eq!(sys.metrics.counter(name), want, "{name}");
    }
    let pooled = sys.metrics.pooled_stats().expect("samples recorded");
    assert_eq!((pooled.count, pooled.min, pooled.max), (1970, 2, 3));
}

#[test]
fn instrumented_and_uninstrumented_latency_paths_agree() {
    for kind in [OrganizationKind::Arbitrated, OrganizationKind::EventDriven] {
        let a = run(kind, false);
        let b = run(kind, true);
        let pa = a.metrics.pooled_stats().expect("uninstrumented samples");
        let pb = b.metrics.pooled_stats().expect("instrumented samples");
        assert_eq!(pa, pb, "{kind}: the two recording paths must agree");
    }
}
