//! Structural well-formedness checks for netlists.
//!
//! Rules enforced:
//! 1. every net is driven exactly once (by an instance output or an input
//!    port), and never both;
//! 2. instance input/output arities and widths match the [`PrimOp`] rules;
//! 3. all port nets exist and output ports reference driven nets.

use crate::netlist::{addr_width, Module, NetId, PortDir, PrimOp};
use std::fmt;

/// A validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateError {
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "netlist validation failed: {}", self.message)
    }
}

impl std::error::Error for ValidateError {}

/// Validates a module, returning all violations found.
///
/// # Errors
///
/// Returns the list of violations if any rule is broken.
pub fn validate(module: &Module) -> Result<(), Vec<ValidateError>> {
    let mut errors = Vec::new();
    let mut driver_count = vec![0u32; module.nets.len()];

    for port in &module.ports {
        if port.net.0 >= module.nets.len() {
            errors.push(ValidateError {
                message: format!("port `{}` references missing net {}", port.name, port.net),
            });
            continue;
        }
        if port.dir == PortDir::Input {
            driver_count[port.net.0] += 1;
        }
    }

    for inst in &module.instances {
        for &o in &inst.outputs {
            if o.0 >= module.nets.len() {
                errors.push(ValidateError {
                    message: format!("instance `{}` drives missing net {o}", inst.name),
                });
            } else {
                driver_count[o.0] += 1;
            }
        }
        for &i in &inst.inputs {
            if i.0 >= module.nets.len() {
                errors.push(ValidateError {
                    message: format!("instance `{}` reads missing net {i}", inst.name),
                });
            }
        }
        check_instance(module, inst, &mut errors);
    }

    for (idx, count) in driver_count.iter().enumerate() {
        let used = module
            .instances
            .iter()
            .any(|i| i.inputs.contains(&NetId(idx)))
            || module.ports.iter().any(|p| p.net == NetId(idx));
        match count {
            0 if used => {
                // Undriven nets that feed logic are always an error; unused
                // undriven nets are tolerated (builder scratch).
                if module
                    .instances
                    .iter()
                    .any(|i| i.inputs.contains(&NetId(idx)))
                    || module
                        .ports
                        .iter()
                        .any(|p| p.net == NetId(idx) && p.dir == PortDir::Output)
                {
                    errors.push(ValidateError {
                        message: format!(
                            "net `{}` ({}) is used but has no driver",
                            module.nets[idx].name,
                            NetId(idx)
                        ),
                    });
                }
            }
            0 | 1 => {}
            n => errors.push(ValidateError {
                message: format!(
                    "net `{}` ({}) has {n} drivers",
                    module.nets[idx].name,
                    NetId(idx)
                ),
            }),
        }
    }

    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

fn check_instance(
    module: &Module,
    inst: &crate::netlist::Instance,
    errors: &mut Vec<ValidateError>,
) {
    let w = |id: NetId| module.width(id);
    let mut err = |message: String| {
        errors.push(ValidateError {
            message: format!("instance `{}`: {message}", inst.name),
        })
    };
    let ins = &inst.inputs;
    let outs = &inst.outputs;
    let arity = |err: &mut dyn FnMut(String), n_in: usize, n_out: usize| -> bool {
        if ins.len() != n_in || outs.len() != n_out {
            err(format!(
                "expected {n_in} inputs/{n_out} outputs, found {}/{}",
                ins.len(),
                outs.len()
            ));
            false
        } else {
            true
        }
    };

    match &inst.op {
        PrimOp::Const { .. } => {
            let _ = arity(&mut err, 0, 1);
        }
        PrimOp::Not => {
            if arity(&mut err, 1, 1) && w(ins[0]) != w(outs[0]) {
                err("not width mismatch".into());
            }
        }
        PrimOp::And | PrimOp::Or | PrimOp::Xor => {
            if ins.len() < 2 || outs.len() != 1 {
                err("gate requires >=2 inputs and 1 output".into());
            } else if ins.iter().any(|&i| w(i) != w(outs[0])) {
                err("gate width mismatch".into());
            }
        }
        PrimOp::Mux => {
            if ins.len() < 2 || outs.len() != 1 {
                err("mux requires select plus >=1 data input".into());
                return;
            }
            let data = &ins[1..];
            if data.iter().any(|&d| w(d) != w(outs[0])) {
                err("mux data width mismatch".into());
            }
            let need = crate::netlist::clog2(data.len() as u32).max(1);
            if data.len() > 1 && w(ins[0]) < need {
                err(format!(
                    "mux select width {} too narrow for {} data inputs",
                    w(ins[0]),
                    data.len()
                ));
            }
        }
        PrimOp::Add | PrimOp::Sub | PrimOp::Mul => {
            if arity(&mut err, 2, 1) && (w(ins[0]) != w(ins[1]) || w(ins[0]) != w(outs[0])) {
                err("arith width mismatch".into());
            }
        }
        PrimOp::Eq | PrimOp::Ne | PrimOp::Lt => {
            if arity(&mut err, 2, 1) {
                if w(ins[0]) != w(ins[1]) {
                    err("compare input width mismatch".into());
                }
                if w(outs[0]) != 1 {
                    err("compare output must be 1 bit".into());
                }
            }
        }
        PrimOp::Shl { .. } | PrimOp::Shr { .. } => {
            if arity(&mut err, 1, 1) && w(ins[0]) != w(outs[0]) {
                err("shift width mismatch".into());
            }
        }
        PrimOp::ReduceOr | PrimOp::ReduceAnd => {
            if arity(&mut err, 1, 1) && w(outs[0]) != 1 {
                err("reduction output must be 1 bit".into());
            }
        }
        PrimOp::Concat => {
            if outs.len() != 1 || ins.is_empty() {
                err("concat requires >=1 input and 1 output".into());
            } else {
                let sum: u32 = ins.iter().map(|&i| w(i)).sum();
                if sum != w(outs[0]) {
                    err(format!(
                        "concat output width {} != field sum {sum}",
                        w(outs[0])
                    ));
                }
            }
        }
        PrimOp::Slice { hi, lo } => {
            if arity(&mut err, 1, 1) {
                if hi < lo {
                    err("slice hi < lo".into());
                } else if *hi >= w(ins[0]) {
                    err("slice exceeds input width".into());
                } else if w(outs[0]) != hi - lo + 1 {
                    err("slice output width mismatch".into());
                }
            }
        }
        PrimOp::Register {
            has_enable,
            has_reset,
            ..
        } => {
            let expected = 1 + usize::from(*has_enable) + usize::from(*has_reset);
            if ins.len() != expected || outs.len() != 1 {
                err(format!(
                    "register expects {expected} inputs, found {}",
                    ins.len()
                ));
                return;
            }
            if w(ins[0]) != w(outs[0]) {
                err("register width mismatch".into());
            }
            for &ctl in &ins[1..] {
                if w(ctl) != 1 {
                    err("register control inputs must be 1 bit".into());
                }
            }
        }
        PrimOp::Bram { depth, width } => {
            if !arity(&mut err, 8, 2) {
                return;
            }
            let aw = addr_width(*depth);
            for (label, net, want) in [
                ("addr_a", ins[0], aw),
                ("din_a", ins[1], *width),
                ("we_a", ins[2], 1),
                ("en_a", ins[3], 1),
                ("addr_b", ins[4], aw),
                ("din_b", ins[5], *width),
                ("we_b", ins[6], 1),
                ("en_b", ins[7], 1),
                ("dout_a", outs[0], *width),
                ("dout_b", outs[1], *width),
            ] {
                if w(net) != want {
                    err(format!("bram {label} width {} != {want}", w(net)));
                }
            }
        }
        PrimOp::Cam {
            entries,
            key_width,
            data_width,
        } => {
            if !arity(&mut err, 5, 3) {
                return;
            }
            let iw = addr_width(*entries);
            for (label, net, want) in [
                ("search_key", ins[0], *key_width),
                ("write_key", ins[1], *key_width),
                ("write_data", ins[2], *data_width),
                ("write_index", ins[3], iw),
                ("write_en", ins[4], 1),
                ("match", outs[0], 1),
                ("match_index", outs[1], iw),
                ("match_data", outs[2], *data_width),
            ] {
                if w(net) != want {
                    err(format!("cam {label} width {} != {want}", w(net)));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::netlist::{Instance, Net, NetId, PrimOp};

    #[test]
    fn valid_module_passes() {
        let mut b = ModuleBuilder::new("ok");
        let a = b.input("a", 4);
        let c = b.input("b", 4);
        let s = b.add(a, c, "s");
        b.output("y", s);
        assert!(validate(&b.finish()).is_ok());
    }

    #[test]
    fn double_driver_detected() {
        let mut b = ModuleBuilder::new("bad");
        let a = b.input("a", 4);
        let s1 = b.add(a, a, "s");
        b.output("y", s1);
        let mut m = b.finish();
        // Drive s1 a second time.
        m.instances.push(Instance {
            name: "dup".into(),
            op: PrimOp::Add,
            inputs: vec![a, a],
            outputs: vec![s1],
        });
        let errors = validate(&m).unwrap_err();
        assert!(errors.iter().any(|e| e.message.contains("2 drivers")));
    }

    #[test]
    fn undriven_used_net_detected() {
        let mut b = ModuleBuilder::new("bad");
        let a = b.input("a", 4);
        let _ = a;
        let mut m = b.finish();
        m.nets.push(Net {
            name: "floating".into(),
            width: 4,
        });
        let floating = NetId(m.nets.len() - 1);
        let out = {
            m.nets.push(Net {
                name: "y".into(),
                width: 4,
            });
            NetId(m.nets.len() - 1)
        };
        m.instances.push(Instance {
            name: "use_floating".into(),
            op: PrimOp::Not,
            inputs: vec![floating],
            outputs: vec![out],
        });
        let errors = validate(&m).unwrap_err();
        assert!(errors.iter().any(|e| e.message.contains("no driver")));
    }

    #[test]
    fn width_mismatch_detected() {
        let mut b = ModuleBuilder::new("bad");
        let a = b.input("a", 4);
        let c = b.input("b", 8);
        // Bypass builder checks by pushing a raw instance.
        let mut m = b.finish();
        m.nets.push(Net {
            name: "s".into(),
            width: 4,
        });
        let out = NetId(m.nets.len() - 1);
        m.instances.push(Instance {
            name: "bad_add".into(),
            op: PrimOp::Add,
            inputs: vec![a, c],
            outputs: vec![out],
        });
        let errors = validate(&m).unwrap_err();
        assert!(errors
            .iter()
            .any(|e| e.message.contains("arith width mismatch")));
    }

    #[test]
    fn mux_narrow_select_detected() {
        let mut b = ModuleBuilder::new("bad");
        let sel = b.input("sel", 1);
        let d: Vec<_> = (0..4).map(|i| b.input(&format!("d{i}"), 8)).collect();
        let y = b.mux(sel, &d, "y");
        b.output("y", y);
        let errors = validate(&b.finish()).unwrap_err();
        assert!(errors.iter().any(|e| e.message.contains("too narrow")));
    }

    #[test]
    fn register_control_width_checked() {
        let mut b = ModuleBuilder::new("bad");
        let d = b.input("d", 8);
        let en = b.input("en", 2); // wrong: must be 1 bit
        let q = b.register_en(d, en, 0, "q");
        b.output("q", q);
        let errors = validate(&b.finish()).unwrap_err();
        assert!(errors
            .iter()
            .any(|e| e.message.contains("control inputs must be 1 bit")));
    }

    #[test]
    fn bram_and_cam_shapes_validate() {
        let mut b = ModuleBuilder::new("mem");
        let addr = b.input("addr", 9);
        let din = b.input("din", 36);
        let we = b.input("we", 1);
        let en = b.input("en", 1);
        let (da, _) = b.bram(512, 36, addr, din, we, en, addr, din, we, en, "ram");
        b.output("q", da);
        let key = b.input("key", 11);
        let wdata = b.input("wdata", 4);
        let widx = b.input("widx", 3);
        let (m, _, _) = b.cam(8, 11, 4, key, key, wdata, widx, we, "deplist");
        b.output("hit", m);
        assert!(validate(&b.finish()).is_ok());
    }
}
