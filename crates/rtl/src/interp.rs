//! Cycle-accurate netlist interpreter.
//!
//! Executes a [`Module`] directly: combinational primitives are evaluated
//! in topological order each cycle, registers/BRAMs/CAMs update on the
//! clock edge. This is the oracle that lets the test suite check generated
//! RTL against the behavioral models *bit for bit* (the equivalent of
//! running the HDL through a simulator).
//!
//! Values are carried as `u64` masked to their net width; nets wider than
//! 64 bits are rejected at construction.

use crate::netlist::{addr_width, Module, NetId, PortDir, PrimOp};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// Interpreter construction/execution failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterpError {
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "netlist interpreter: {}", self.message)
    }
}

impl std::error::Error for InterpError {}

#[derive(Debug, Clone)]
struct MemState {
    words: Vec<u64>,
    dout: [u64; 2],
}

#[derive(Debug, Clone)]
struct CamState {
    keys: Vec<u64>,
    datas: Vec<u64>,
    valid: Vec<bool>,
}

/// A stepping interpreter over one module.
#[derive(Debug, Clone)]
pub struct Interp {
    module: Module,
    values: Vec<u64>,
    regs: BTreeMap<usize, u64>,
    mems: BTreeMap<usize, MemState>,
    cams: BTreeMap<usize, CamState>,
    order: Vec<usize>,
    inputs: BTreeMap<String, u64>,
}

impl Interp {
    /// Builds an interpreter.
    ///
    /// # Errors
    ///
    /// Rejects nets wider than 64 bits and combinational loops.
    pub fn new(module: &Module) -> Result<Self, InterpError> {
        for net in &module.nets {
            if net.width > 64 {
                return Err(InterpError {
                    message: format!("net `{}` wider than 64 bits", net.name),
                });
            }
        }
        let order = topo_order(module)?;
        let mut regs = BTreeMap::new();
        let mut mems = BTreeMap::new();
        let mut cams = BTreeMap::new();
        for (idx, inst) in module.instances.iter().enumerate() {
            match &inst.op {
                PrimOp::Register { init, .. } => {
                    regs.insert(idx, *init);
                }
                PrimOp::Bram { depth, .. } => {
                    mems.insert(
                        idx,
                        MemState {
                            words: vec![0; *depth as usize],
                            dout: [0, 0],
                        },
                    );
                }
                PrimOp::Cam { entries, .. } => {
                    cams.insert(
                        idx,
                        CamState {
                            keys: vec![0; *entries as usize],
                            datas: vec![0; *entries as usize],
                            valid: vec![false; *entries as usize],
                        },
                    );
                }
                _ => {}
            }
        }
        Ok(Interp {
            module: module.clone(),
            values: vec![0; module.nets.len()],
            regs,
            mems,
            cams,
            order,
            inputs: BTreeMap::new(),
        })
    }

    /// Sets an input port for subsequent cycles.
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist or is not an input.
    pub fn set(&mut self, port: &str, value: u64) {
        let p = self
            .module
            .port(port)
            .unwrap_or_else(|| panic!("no port `{port}`"));
        assert_eq!(p.dir, PortDir::Input, "`{port}` is not an input");
        self.inputs.insert(port.to_owned(), value);
    }

    /// Reads an output (or any) port's current settled value.
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist.
    pub fn get(&self, port: &str) -> u64 {
        let p = self
            .module
            .port(port)
            .unwrap_or_else(|| panic!("no port `{port}`"));
        self.values[p.net.0]
    }

    /// Settles combinational logic for the current inputs and state,
    /// without advancing the clock (inspect Mealy outputs).
    pub fn settle(&mut self) {
        // Input ports and sequential outputs first.
        for p in self.module.ports.clone() {
            if p.dir == PortDir::Input {
                let v = self.inputs.get(&p.name).copied().unwrap_or(0);
                self.values[p.net.0] = mask(v, self.module.width(p.net));
            }
        }
        for (&idx, reg) in &self.regs {
            let out = self.module.instances[idx].outputs[0];
            self.values[out.0] = mask(*reg, self.module.width(out));
        }
        for (&idx, mem) in &self.mems {
            let outs = &self.module.instances[idx].outputs;
            self.values[outs[0].0] = mem.dout[0];
            self.values[outs[1].0] = mem.dout[1];
        }
        for &idx in &self.order.clone() {
            self.eval_comb(idx);
        }
    }

    /// Settles and advances one clock edge.
    pub fn step(&mut self) {
        self.settle();
        // Clock edge: compute next state from settled values.
        let mut next_regs = self.regs.clone();
        for &idx in self.regs.keys() {
            let inst = &self.module.instances[idx];
            if let PrimOp::Register {
                init,
                has_enable,
                has_reset,
            } = inst.op
            {
                let d = self.values[inst.inputs[0].0];
                let en = if has_enable {
                    self.values[inst.inputs[1].0] != 0
                } else {
                    true
                };
                let rst = if has_reset {
                    self.values[inst.inputs[inst.inputs.len() - 1].0] != 0
                } else {
                    false
                };
                let cur = self.regs[&idx];
                let next = if rst {
                    init
                } else if en {
                    d
                } else {
                    cur
                };
                next_regs.insert(idx, next);
            }
        }
        let mut next_mems = self.mems.clone();
        for (&idx, mem) in &self.mems {
            let inst = &self.module.instances[idx];
            if let PrimOp::Bram { depth, width } = inst.op {
                let mut m = mem.clone();
                for (port, base) in [(0usize, 0usize), (1usize, 4usize)] {
                    let addr = (self.values[inst.inputs[base].0] as usize) % depth as usize;
                    let din = self.values[inst.inputs[base + 1].0];
                    let we = self.values[inst.inputs[base + 2].0] != 0;
                    let en = self.values[inst.inputs[base + 3].0] != 0;
                    if en {
                        // Read-first.
                        m.dout[port] = mask(m.words[addr], width);
                        if we {
                            m.words[addr] = mask(din, width);
                        }
                    }
                }
                next_mems.insert(idx, m);
            }
        }
        let mut next_cams = self.cams.clone();
        for (&idx, cam) in &self.cams {
            let inst = &self.module.instances[idx];
            if let PrimOp::Cam {
                entries,
                key_width,
                data_width,
            } = inst.op
            {
                let we = self.values[inst.inputs[4].0] != 0;
                if we {
                    let mut c = cam.clone();
                    let widx = (self.values[inst.inputs[3].0] as usize) % entries as usize;
                    c.keys[widx] = mask(self.values[inst.inputs[1].0], key_width);
                    c.datas[widx] = mask(self.values[inst.inputs[2].0], data_width);
                    c.valid[widx] = true;
                    next_cams.insert(idx, c);
                }
            }
        }
        self.regs = next_regs;
        self.mems = next_mems;
        self.cams = next_cams;
    }

    fn eval_comb(&mut self, idx: usize) {
        let inst = self.module.instances[idx].clone();
        let v = |net: NetId| self.values[net.0];
        let w_out = inst
            .outputs
            .first()
            .map(|&o| self.module.width(o))
            .unwrap_or(1);
        let result: Option<u64> = match &inst.op {
            PrimOp::Const { value } => Some(*value),
            PrimOp::Not => Some(!v(inst.inputs[0])),
            PrimOp::And => Some(
                inst.inputs
                    .iter()
                    .map(|&i| v(i))
                    .fold(u64::MAX, |a, b| a & b),
            ),
            PrimOp::Or => Some(inst.inputs.iter().map(|&i| v(i)).fold(0, |a, b| a | b)),
            PrimOp::Xor => Some(inst.inputs.iter().map(|&i| v(i)).fold(0, |a, b| a ^ b)),
            PrimOp::Mux => {
                let sel = v(inst.inputs[0]) as usize;
                let data = &inst.inputs[1..];
                let pick = data.get(sel).or_else(|| data.last()).expect("mux has data");
                Some(v(*pick))
            }
            PrimOp::Add => Some(v(inst.inputs[0]).wrapping_add(v(inst.inputs[1]))),
            PrimOp::Sub => Some(v(inst.inputs[0]).wrapping_sub(v(inst.inputs[1]))),
            PrimOp::Mul => Some(v(inst.inputs[0]).wrapping_mul(v(inst.inputs[1]))),
            PrimOp::Eq => Some(u64::from(v(inst.inputs[0]) == v(inst.inputs[1]))),
            PrimOp::Ne => Some(u64::from(v(inst.inputs[0]) != v(inst.inputs[1]))),
            PrimOp::Lt => Some(u64::from(v(inst.inputs[0]) < v(inst.inputs[1]))),
            PrimOp::Shl { amount } => Some(v(inst.inputs[0]) << (amount % 64)),
            PrimOp::Shr { amount } => Some(v(inst.inputs[0]) >> (amount % 64)),
            PrimOp::ReduceOr => Some(u64::from(v(inst.inputs[0]) != 0)),
            PrimOp::ReduceAnd => {
                let w = self.module.width(inst.inputs[0]);
                Some(u64::from(v(inst.inputs[0]) == mask(u64::MAX, w)))
            }
            PrimOp::Concat => {
                let mut acc = 0u64;
                for &i in &inst.inputs {
                    let w = self.module.width(i);
                    acc = (acc << w) | mask(v(i), w);
                }
                Some(acc)
            }
            PrimOp::Slice { hi, lo } => Some(mask(v(inst.inputs[0]) >> lo, hi - lo + 1)),
            PrimOp::Register { .. } | PrimOp::Bram { .. } => None,
            PrimOp::Cam {
                entries,
                key_width,
                data_width,
            } => {
                // Combinational search (write handled at the edge).
                let cam = &self.cams[&idx];
                let key = mask(v(inst.inputs[0]), *key_width);
                let mut hit = 0u64;
                let mut index = 0u64;
                let mut data = 0u64;
                for e in 0..*entries as usize {
                    if cam.valid[e] && cam.keys[e] == key {
                        hit = 1;
                        index = e as u64;
                        data = cam.datas[e];
                    }
                }
                self.values[inst.outputs[0].0] = hit;
                self.values[inst.outputs[1].0] = mask(index, addr_width(*entries));
                self.values[inst.outputs[2].0] = mask(data, *data_width);
                let _ = w_out;
                None
            }
        };
        if let Some(r) = result {
            let out = inst.outputs[0];
            self.values[out.0] = mask(r, self.module.width(out));
        }
    }
}

fn mask(v: u64, width: u32) -> u64 {
    if width >= 64 {
        v
    } else {
        v & ((1u64 << width) - 1)
    }
}

/// Topological order over combinational evaluation (registers/BRAMs break
/// cycles; the CAM's search path is combinational in its key input).
fn topo_order(module: &Module) -> Result<Vec<usize>, InterpError> {
    let n_inst = module.instances.len();
    let mut driver: Vec<Option<usize>> = vec![None; module.nets.len()];
    for (idx, inst) in module.instances.iter().enumerate() {
        for &o in &inst.outputs {
            driver[o.0] = Some(idx);
        }
    }
    let comb_inputs = |op: &PrimOp, n: usize| -> Vec<usize> {
        match op {
            PrimOp::Register { .. } | PrimOp::Bram { .. } => Vec::new(),
            PrimOp::Cam { .. } => vec![0],
            _ => (0..n).collect(),
        }
    };
    let mut indegree = vec![0u32; n_inst];
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n_inst];
    for (idx, inst) in module.instances.iter().enumerate() {
        for &pi in &comb_inputs(&inst.op, inst.inputs.len()) {
            if let Some(d) = driver[inst.inputs[pi].0] {
                if !matches!(
                    module.instances[d].op,
                    PrimOp::Register { .. } | PrimOp::Bram { .. }
                ) {
                    indegree[idx] += 1;
                    dependents[d].push(idx);
                }
            }
        }
    }
    let mut queue: VecDeque<usize> = (0..n_inst).filter(|&i| indegree[i] == 0).collect();
    let mut order = Vec::with_capacity(n_inst);
    while let Some(i) = queue.pop_front() {
        order.push(i);
        for &d in &dependents[i] {
            indegree[d] -= 1;
            if indegree[d] == 0 {
                queue.push_back(d);
            }
        }
    }
    if order.len() != n_inst {
        return Err(InterpError {
            message: "combinational loop".into(),
        });
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;

    #[test]
    fn counter_counts() {
        let mut b = ModuleBuilder::new("ctr");
        let q = b.net("q", 8);
        let one = b.constant(1, 8, "one");
        let next = b.add(q, one, "next");
        b.register_into(next, q, 0);
        b.output("count", q);
        let mut sim = Interp::new(&b.finish()).unwrap();
        for expected in 0..300u64 {
            sim.settle();
            assert_eq!(sim.get("count"), expected & 0xff);
            sim.step();
        }
    }

    #[test]
    fn mux_and_compare() {
        let mut b = ModuleBuilder::new("m");
        let sel = b.input("sel", 2);
        let d: Vec<_> = (0..3).map(|i| b.constant(10 + i, 8, "d")).collect();
        let y = b.mux(sel, &d, "y");
        b.output("y", y);
        let mut sim = Interp::new(&b.finish()).unwrap();
        for (s, want) in [(0u64, 10u64), (1, 11), (2, 12), (3, 12)] {
            sim.set("sel", s);
            sim.settle();
            assert_eq!(sim.get("y"), want, "sel={s}");
        }
    }

    #[test]
    fn bram_read_after_write() {
        let mut b = ModuleBuilder::new("m");
        let addr = b.input("addr", 9);
        let din = b.input("din", 36);
        let we = b.input("we", 1);
        let en = b.input("en", 1);
        let zero9 = b.constant(0, 9, "z9");
        let zero36 = b.constant(0, 36, "z36");
        let zero1 = b.constant(0, 1, "z1");
        let one1 = b.constant(1, 1, "o1");
        let (_, db) = b.bram(
            512, 36, addr, din, we, en, zero9, zero36, zero1, one1, "ram",
        );
        let _ = db;
        let (da, _) = {
            // reuse port A dout via output
            (b.net("unused", 1), ())
        };
        let _ = da;
        let m = b.finish();
        // port A dout is net named ram_dout_a; find via instance outputs.
        let ram = m
            .instances
            .iter()
            .find(|i| matches!(i.op, PrimOp::Bram { .. }))
            .unwrap();
        let dout_a = ram.outputs[0];
        let mut m2 = m.clone();
        m2.ports.push(crate::netlist::Port {
            name: "douta".into(),
            dir: PortDir::Output,
            net: dout_a,
        });
        let mut sim = Interp::new(&m2).unwrap();
        sim.set("addr", 7);
        sim.set("din", 0xabcd);
        sim.set("we", 1);
        sim.set("en", 1);
        sim.step(); // write at 7
        sim.set("we", 0);
        sim.step(); // read at 7 (data appears after the edge)
        sim.settle();
        assert_eq!(sim.get("douta"), 0xabcd);
    }

    #[test]
    fn concat_slice_round_trip() {
        let mut b = ModuleBuilder::new("m");
        let a = b.input("a", 4);
        let c = b.input("b", 4);
        let cat = b.concat(&[a, c], "cat");
        let hi = b.slice(cat, 7, 4, "hi");
        let lo = b.slice(cat, 3, 0, "lo");
        b.output("hi", hi);
        b.output("lo", lo);
        let mut sim = Interp::new(&b.finish()).unwrap();
        sim.set("a", 0x9);
        sim.set("b", 0x6);
        sim.settle();
        assert_eq!(sim.get("hi"), 0x9, "input 0 is the most significant field");
        assert_eq!(sim.get("lo"), 0x6);
    }

    #[test]
    fn register_enable_holds() {
        let mut b = ModuleBuilder::new("m");
        let d = b.input("d", 8);
        let en = b.input("en", 1);
        let q = b.register_en(d, en, 5, "q");
        b.output("q", q);
        let mut sim = Interp::new(&b.finish()).unwrap();
        sim.settle();
        assert_eq!(sim.get("q"), 5, "init value");
        sim.set("d", 42);
        sim.set("en", 0);
        sim.step();
        sim.settle();
        assert_eq!(sim.get("q"), 5, "held");
        sim.set("en", 1);
        sim.step();
        sim.settle();
        assert_eq!(sim.get("q"), 42, "loaded");
    }

    #[test]
    fn rejects_combinational_loop() {
        use crate::netlist::{Instance, Module, Net};
        let m = Module {
            name: "loopy".into(),
            ports: vec![],
            nets: vec![
                Net {
                    name: "a".into(),
                    width: 1,
                },
                Net {
                    name: "b".into(),
                    width: 1,
                },
            ],
            instances: vec![
                Instance {
                    name: "g1".into(),
                    op: PrimOp::Not,
                    inputs: vec![NetId(1)],
                    outputs: vec![NetId(0)],
                },
                Instance {
                    name: "g2".into(),
                    op: PrimOp::Not,
                    inputs: vec![NetId(0)],
                    outputs: vec![NetId(1)],
                },
            ],
        };
        assert!(Interp::new(&m).is_err());
    }
}
