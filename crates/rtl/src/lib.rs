//! # memsync-rtl — word-level netlist IR and HDL emission
//!
//! The RTL substrate of the memsync reproduction: generators in
//! `memsync-core` and `memsync-synth` build [`netlist::Module`]s through
//! [`builder::ModuleBuilder`]; [`validate::validate`] checks structural
//! well-formedness; [`verilog::emit`] / [`vhdl::emit`] print synthesizable
//! HDL; [`stats::NetlistStats`] feeds the area model in `memsync-fpga`.
//!
//! # Examples
//!
//! ```
//! use memsync_rtl::builder::ModuleBuilder;
//! use memsync_rtl::{validate, verilog};
//!
//! let mut b = ModuleBuilder::new("majority");
//! let a = b.input("a", 1);
//! let x = b.input("b", 1);
//! let c = b.input("c", 1);
//! let ab = b.and(&[a, x], "ab");
//! let ac = b.and(&[a, c], "ac");
//! let bc = b.and(&[x, c], "bc");
//! let y = b.or(&[ab, ac, bc], "y");
//! b.output("y", y);
//! let module = b.finish();
//! validate::validate(&module).expect("well-formed");
//! let text = verilog::emit(&module);
//! assert!(text.contains("module majority"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod builder;
pub mod interp;
pub mod netlist;
pub mod stats;
pub mod validate;
pub mod verilog;
pub mod vhdl;

pub use builder::ModuleBuilder;
pub use netlist::{InstId, Instance, Module, Net, NetId, Port, PortDir, PrimOp};
pub use stats::NetlistStats;
