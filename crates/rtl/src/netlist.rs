//! Word-level RTL netlist intermediate representation.
//!
//! A [`Module`] is a flat graph of typed nets and primitive instances: gates,
//! word operators, multiplexers, registers, and the two Virtex-II Pro macro
//! blocks the paper's organizations are built from (true-dual-port BRAM and
//! a CAM for the dependency list). The downstream `memsync-fpga` crate maps
//! this IR onto 4-input LUTs, flip-flops, slices, and block RAMs; the
//! emitters in [`crate::verilog`] and [`crate::vhdl`] print it as HDL.

use std::fmt;

/// Index of a net within its [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetId(pub usize);

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Index of an instance within its [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstId(pub usize);

/// Direction of a module port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortDir {
    /// Driven from outside the module.
    Input,
    /// Driven by module logic.
    Output,
}

/// A named module port bound to a net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Port {
    /// Port name as emitted in HDL.
    pub name: String,
    /// Direction.
    pub dir: PortDir,
    /// Net carrying the port value.
    pub net: NetId,
}

/// A wire bundle of a fixed bit width.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Net {
    /// Debug/HDL name (uniquified by the builder).
    pub name: String,
    /// Width in bits, ≥ 1.
    pub width: u32,
}

/// Primitive operations of the IR.
///
/// Width rules are documented per variant and enforced by
/// [`crate::validate::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrimOp {
    /// Constant: no inputs; output takes `value` truncated to the net width.
    Const {
        /// The literal value.
        value: u64,
    },
    /// Bitwise NOT: 1 input, same width out.
    Not,
    /// Bitwise AND: ≥2 inputs, all same width, same width out.
    And,
    /// Bitwise OR: ≥2 inputs, all same width, same width out.
    Or,
    /// Bitwise XOR: ≥2 inputs, all same width, same width out.
    Xor,
    /// N-way multiplexer: input 0 is the select (width ≥ ceil(log2(n)));
    /// inputs 1..=n are the data, all the output width. Select values beyond
    /// the data count hold the last input.
    Mux,
    /// Addition, wrapping: 2 inputs, same width, same width out.
    Add,
    /// Subtraction, wrapping: 2 inputs, same width, same width out.
    Sub,
    /// Multiplication, wrapping: 2 inputs, same width, same width out.
    /// Maps onto the embedded 18×18 multipliers plus glue.
    Mul,
    /// Equality: 2 inputs same width; 1-bit out.
    Eq,
    /// Inequality: 2 inputs same width; 1-bit out.
    Ne,
    /// Unsigned less-than: 2 inputs same width; 1-bit out.
    Lt,
    /// Logical shift left by a constant: 1 input, same width out.
    Shl {
        /// Shift amount.
        amount: u32,
    },
    /// Logical shift right by a constant: 1 input, same width out.
    Shr {
        /// Shift amount.
        amount: u32,
    },
    /// OR-reduce to 1 bit: 1 input.
    ReduceOr,
    /// AND-reduce to 1 bit: 1 input.
    ReduceAnd,
    /// Bit concatenation: output width = sum of input widths; input 0 is the
    /// most significant field.
    Concat,
    /// Bit slice `[hi:lo]` of the single input; output width = hi-lo+1.
    Slice {
        /// Most significant bit of the slice (inclusive).
        hi: u32,
        /// Least significant bit of the slice (inclusive).
        lo: u32,
    },
    /// D flip-flop bank with optional clock enable and synchronous reset.
    ///
    /// Inputs: `[d]`, `[d, en]` (when `has_enable`), or `[d, en, rst]`
    /// (when `has_enable` and `has_reset`). Output width = `d` width.
    Register {
        /// Power-on / reset value.
        init: u64,
        /// Whether input 1 is a clock-enable.
        has_enable: bool,
        /// Whether the last input is a synchronous reset to `init`.
        has_reset: bool,
    },
    /// True-dual-port block RAM macro (Virtex-II Pro 18 Kb BRAM shape).
    ///
    /// Inputs: `[addr_a, din_a, we_a, en_a, addr_b, din_b, we_b, en_b]`;
    /// outputs: `[dout_a, dout_b]`. Address widths must be
    /// `ceil(log2(depth))`, data widths `width`. Read-first behaviour.
    Bram {
        /// Number of words.
        depth: u32,
        /// Word width in bits.
        width: u32,
    },
    /// Content-addressable memory macro used for the §3.1 dependency list.
    ///
    /// Inputs: `[search_key, write_key, write_data, write_index, write_en]`;
    /// outputs: `[match (1 bit), match_index (ceil(log2(entries))),
    /// match_data (data_width)]`. All entries are compared in one cycle.
    Cam {
        /// Number of entries.
        entries: u32,
        /// Key width in bits.
        key_width: u32,
        /// Payload width in bits.
        data_width: u32,
    },
}

impl PrimOp {
    /// Whether this primitive holds state (registers, memories).
    pub fn is_sequential(&self) -> bool {
        matches!(
            self,
            PrimOp::Register { .. } | PrimOp::Bram { .. } | PrimOp::Cam { .. }
        )
    }

    /// Short mnemonic for debug output and stats.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            PrimOp::Const { .. } => "const",
            PrimOp::Not => "not",
            PrimOp::And => "and",
            PrimOp::Or => "or",
            PrimOp::Xor => "xor",
            PrimOp::Mux => "mux",
            PrimOp::Add => "add",
            PrimOp::Sub => "sub",
            PrimOp::Mul => "mul",
            PrimOp::Eq => "eq",
            PrimOp::Ne => "ne",
            PrimOp::Lt => "lt",
            PrimOp::Shl { .. } => "shl",
            PrimOp::Shr { .. } => "shr",
            PrimOp::ReduceOr => "reduce_or",
            PrimOp::ReduceAnd => "reduce_and",
            PrimOp::Concat => "concat",
            PrimOp::Slice { .. } => "slice",
            PrimOp::Register { .. } => "register",
            PrimOp::Bram { .. } => "bram",
            PrimOp::Cam { .. } => "cam",
        }
    }
}

/// One primitive instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instance {
    /// Instance name (uniquified by the builder).
    pub name: String,
    /// The operation.
    pub op: PrimOp,
    /// Input nets, in the order required by the op.
    pub inputs: Vec<NetId>,
    /// Output nets, in the order defined by the op.
    pub outputs: Vec<NetId>,
}

/// A flat RTL module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Module {
    /// Module name as emitted in HDL.
    pub name: String,
    /// Ports in declaration order.
    pub ports: Vec<Port>,
    /// All nets.
    pub nets: Vec<Net>,
    /// All instances.
    pub instances: Vec<Instance>,
}

impl Module {
    /// Net lookup.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range (an IR construction bug).
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.0]
    }

    /// Width of a net.
    pub fn width(&self, id: NetId) -> u32 {
        self.net(id).width
    }

    /// Whether the module contains any sequential primitive (and therefore
    /// needs `clk` in HDL).
    pub fn is_sequential(&self) -> bool {
        self.instances.iter().any(|i| i.op.is_sequential())
    }

    /// Iterates over ports of one direction.
    pub fn ports_in(&self, dir: PortDir) -> impl Iterator<Item = &Port> {
        self.ports.iter().filter(move |p| p.dir == dir)
    }

    /// Finds a port by name.
    pub fn port(&self, name: &str) -> Option<&Port> {
        self.ports.iter().find(|p| p.name == name)
    }
}

/// Ceiling of log2, with `clog2(0) == 0` and `clog2(1) == 0`.
pub fn clog2(n: u32) -> u32 {
    if n <= 1 {
        0
    } else {
        32 - (n - 1).leading_zeros()
    }
}

/// Address width needed to index `depth` words (at least 1 bit).
pub fn addr_width(depth: u32) -> u32 {
    clog2(depth).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clog2_values() {
        assert_eq!(clog2(0), 0);
        assert_eq!(clog2(1), 0);
        assert_eq!(clog2(2), 1);
        assert_eq!(clog2(3), 2);
        assert_eq!(clog2(4), 2);
        assert_eq!(clog2(5), 3);
        assert_eq!(clog2(1024), 10);
    }

    #[test]
    fn addr_width_is_at_least_one() {
        assert_eq!(addr_width(1), 1);
        assert_eq!(addr_width(2), 1);
        assert_eq!(addr_width(512), 9);
    }

    #[test]
    fn sequential_classification() {
        assert!(PrimOp::Register {
            init: 0,
            has_enable: false,
            has_reset: false
        }
        .is_sequential());
        assert!(PrimOp::Bram {
            depth: 512,
            width: 36
        }
        .is_sequential());
        assert!(!PrimOp::Add.is_sequential());
    }

    #[test]
    fn mnemonics_are_distinct_for_common_ops() {
        let ops = [
            PrimOp::And,
            PrimOp::Or,
            PrimOp::Xor,
            PrimOp::Mux,
            PrimOp::Add,
            PrimOp::Eq,
        ];
        let names: std::collections::BTreeSet<_> = ops.iter().map(|o| o.mnemonic()).collect();
        assert_eq!(names.len(), ops.len());
    }
}
