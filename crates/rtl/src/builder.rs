//! Ergonomic construction of [`Module`]s.
//!
//! The builder uniquifies names, tracks widths, and offers one method per
//! primitive so generator code reads like a structural HDL description.

use crate::netlist::{addr_width, Instance, Module, Net, NetId, Port, PortDir, PrimOp};
use std::collections::BTreeMap;

/// Incremental module builder.
///
/// # Examples
///
/// ```
/// use memsync_rtl::builder::ModuleBuilder;
///
/// let mut b = ModuleBuilder::new("adder");
/// let x = b.input("x", 8);
/// let y = b.input("y", 8);
/// let sum = b.add(x, y, "sum");
/// b.output("sum_out", sum);
/// let module = b.finish();
/// assert_eq!(module.ports.len(), 3);
/// ```
#[derive(Debug)]
pub struct ModuleBuilder {
    name: String,
    ports: Vec<Port>,
    nets: Vec<Net>,
    instances: Vec<Instance>,
    name_counts: BTreeMap<String, u32>,
}

impl ModuleBuilder {
    /// Starts a new module.
    pub fn new(name: impl Into<String>) -> Self {
        ModuleBuilder {
            name: name.into(),
            ports: Vec::new(),
            nets: Vec::new(),
            instances: Vec::new(),
            name_counts: BTreeMap::new(),
        }
    }

    fn unique(&mut self, base: &str) -> String {
        let count = self.name_counts.entry(base.to_owned()).or_insert(0);
        *count += 1;
        if *count == 1 {
            base.to_owned()
        } else {
            format!("{base}_{}", *count - 1)
        }
    }

    /// Creates a fresh net.
    pub fn net(&mut self, name: &str, width: u32) -> NetId {
        assert!(width >= 1, "net `{name}` must be at least 1 bit wide");
        let name = self.unique(name);
        let id = NetId(self.nets.len());
        self.nets.push(Net { name, width });
        id
    }

    /// Declares an input port and returns its net.
    pub fn input(&mut self, name: &str, width: u32) -> NetId {
        let net = self.net(name, width);
        self.ports.push(Port {
            name: self.nets[net.0].name.clone(),
            dir: PortDir::Input,
            net,
        });
        net
    }

    /// Declares an output port driven by an existing net.
    pub fn output(&mut self, name: &str, net: NetId) {
        self.ports.push(Port {
            name: name.to_owned(),
            dir: PortDir::Output,
            net,
        });
    }

    fn inst(&mut self, base: &str, op: PrimOp, inputs: Vec<NetId>, outputs: Vec<NetId>) {
        let name = self.unique(base);
        self.instances.push(Instance {
            name,
            op,
            inputs,
            outputs,
        });
    }

    /// Width of a net created so far.
    pub fn width(&self, net: NetId) -> u32 {
        self.nets[net.0].width
    }

    /// Constant driver.
    pub fn constant(&mut self, value: u64, width: u32, name: &str) -> NetId {
        let out = self.net(name, width);
        self.inst("c", PrimOp::Const { value }, vec![], vec![out]);
        out
    }

    /// Bitwise NOT.
    pub fn not(&mut self, a: NetId, name: &str) -> NetId {
        let out = self.net(name, self.width(a));
        self.inst("inv", PrimOp::Not, vec![a], vec![out]);
        out
    }

    /// Variadic bitwise AND.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two inputs are given.
    pub fn and(&mut self, inputs: &[NetId], name: &str) -> NetId {
        assert!(inputs.len() >= 2, "and requires at least two inputs");
        let out = self.net(name, self.width(inputs[0]));
        self.inst("and", PrimOp::And, inputs.to_vec(), vec![out]);
        out
    }

    /// Variadic bitwise OR.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two inputs are given.
    pub fn or(&mut self, inputs: &[NetId], name: &str) -> NetId {
        assert!(inputs.len() >= 2, "or requires at least two inputs");
        let out = self.net(name, self.width(inputs[0]));
        self.inst("or", PrimOp::Or, inputs.to_vec(), vec![out]);
        out
    }

    /// Variadic bitwise XOR.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two inputs are given.
    pub fn xor(&mut self, inputs: &[NetId], name: &str) -> NetId {
        assert!(inputs.len() >= 2, "xor requires at least two inputs");
        let out = self.net(name, self.width(inputs[0]));
        self.inst("xor", PrimOp::Xor, inputs.to_vec(), vec![out]);
        out
    }

    /// N-way mux; `select` picks among `data`.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn mux(&mut self, select: NetId, data: &[NetId], name: &str) -> NetId {
        assert!(!data.is_empty(), "mux requires at least one data input");
        let out = self.net(name, self.width(data[0]));
        let mut inputs = vec![select];
        inputs.extend_from_slice(data);
        self.inst("mux", PrimOp::Mux, inputs, vec![out]);
        out
    }

    /// Wrapping addition.
    pub fn add(&mut self, a: NetId, b: NetId, name: &str) -> NetId {
        let out = self.net(name, self.width(a));
        self.inst("add", PrimOp::Add, vec![a, b], vec![out]);
        out
    }

    /// Wrapping subtraction.
    pub fn sub(&mut self, a: NetId, b: NetId, name: &str) -> NetId {
        let out = self.net(name, self.width(a));
        self.inst("sub", PrimOp::Sub, vec![a, b], vec![out]);
        out
    }

    /// Wrapping multiplication.
    pub fn mul(&mut self, a: NetId, b: NetId, name: &str) -> NetId {
        let out = self.net(name, self.width(a));
        self.inst("mul", PrimOp::Mul, vec![a, b], vec![out]);
        out
    }

    /// Equality comparison (1-bit result).
    pub fn eq(&mut self, a: NetId, b: NetId, name: &str) -> NetId {
        let out = self.net(name, 1);
        self.inst("eq", PrimOp::Eq, vec![a, b], vec![out]);
        out
    }

    /// Inequality comparison (1-bit result).
    pub fn ne(&mut self, a: NetId, b: NetId, name: &str) -> NetId {
        let out = self.net(name, 1);
        self.inst("ne", PrimOp::Ne, vec![a, b], vec![out]);
        out
    }

    /// Unsigned less-than (1-bit result).
    pub fn lt(&mut self, a: NetId, b: NetId, name: &str) -> NetId {
        let out = self.net(name, 1);
        self.inst("lt", PrimOp::Lt, vec![a, b], vec![out]);
        out
    }

    /// Logical shift left by a constant amount.
    pub fn shl(&mut self, a: NetId, amount: u32, name: &str) -> NetId {
        let out = self.net(name, self.width(a));
        self.inst("shl", PrimOp::Shl { amount }, vec![a], vec![out]);
        out
    }

    /// Logical shift right by a constant amount.
    pub fn shr(&mut self, a: NetId, amount: u32, name: &str) -> NetId {
        let out = self.net(name, self.width(a));
        self.inst("shr", PrimOp::Shr { amount }, vec![a], vec![out]);
        out
    }

    /// OR-reduction to one bit.
    pub fn reduce_or(&mut self, a: NetId, name: &str) -> NetId {
        let out = self.net(name, 1);
        self.inst("ror", PrimOp::ReduceOr, vec![a], vec![out]);
        out
    }

    /// AND-reduction to one bit.
    pub fn reduce_and(&mut self, a: NetId, name: &str) -> NetId {
        let out = self.net(name, 1);
        self.inst("rand", PrimOp::ReduceAnd, vec![a], vec![out]);
        out
    }

    /// Concatenation; `fields[0]` becomes the most significant bits.
    ///
    /// # Panics
    ///
    /// Panics if `fields` is empty.
    pub fn concat(&mut self, fields: &[NetId], name: &str) -> NetId {
        assert!(!fields.is_empty(), "concat requires at least one field");
        let width = fields.iter().map(|f| self.width(*f)).sum();
        let out = self.net(name, width);
        self.inst("cat", PrimOp::Concat, fields.to_vec(), vec![out]);
        out
    }

    /// Bit slice `[hi:lo]`.
    ///
    /// # Panics
    ///
    /// Panics if the slice exceeds the input width or `hi < lo`.
    pub fn slice(&mut self, a: NetId, hi: u32, lo: u32, name: &str) -> NetId {
        assert!(hi >= lo, "slice hi must be >= lo");
        assert!(
            hi < self.width(a),
            "slice [{hi}:{lo}] exceeds width {}",
            self.width(a)
        );
        let out = self.net(name, hi - lo + 1);
        self.inst("bits", PrimOp::Slice { hi, lo }, vec![a], vec![out]);
        out
    }

    /// Full-width slice driving an existing net — a zero-cost wire alias
    /// used to close combinational feedback-free loops between pre-created
    /// nets and later-computed values.
    ///
    /// # Panics
    ///
    /// Panics if the slice does not match the destination width.
    pub fn slice_into(&mut self, a: NetId, hi: u32, lo: u32, dst: NetId) {
        assert!(hi >= lo && hi < self.width(a), "slice_into range invalid");
        assert_eq!(hi - lo + 1, self.width(dst), "slice_into width mismatch");
        self.inst("bits", PrimOp::Slice { hi, lo }, vec![a], vec![dst]);
    }

    /// Plain D register.
    pub fn register(&mut self, d: NetId, init: u64, name: &str) -> NetId {
        let out = self.net(name, self.width(d));
        self.inst(
            "reg",
            PrimOp::Register {
                init,
                has_enable: false,
                has_reset: false,
            },
            vec![d],
            vec![out],
        );
        out
    }

    /// D register with clock enable.
    pub fn register_en(&mut self, d: NetId, en: NetId, init: u64, name: &str) -> NetId {
        let out = self.net(name, self.width(d));
        self.inst(
            "reg",
            PrimOp::Register {
                init,
                has_enable: true,
                has_reset: false,
            },
            vec![d, en],
            vec![out],
        );
        out
    }

    /// Registers `d` into an existing net `q` (feedback registers: create
    /// `q` first with [`ModuleBuilder::net`], build logic reading `q`, then
    /// close the loop here).
    ///
    /// # Panics
    ///
    /// Panics if the widths of `d` and `q` differ.
    pub fn register_into(&mut self, d: NetId, q: NetId, init: u64) {
        assert_eq!(self.width(d), self.width(q), "register_into width mismatch");
        self.inst(
            "reg",
            PrimOp::Register {
                init,
                has_enable: false,
                has_reset: false,
            },
            vec![d],
            vec![q],
        );
    }

    /// Registers `d` into an existing net `q` with a clock enable.
    ///
    /// # Panics
    ///
    /// Panics if the widths of `d` and `q` differ.
    pub fn register_en_into(&mut self, d: NetId, en: NetId, q: NetId, init: u64) {
        assert_eq!(
            self.width(d),
            self.width(q),
            "register_en_into width mismatch"
        );
        self.inst(
            "reg",
            PrimOp::Register {
                init,
                has_enable: true,
                has_reset: false,
            },
            vec![d, en],
            vec![q],
        );
    }

    /// D register with clock enable and synchronous reset to `init`.
    pub fn register_en_rst(
        &mut self,
        d: NetId,
        en: NetId,
        rst: NetId,
        init: u64,
        name: &str,
    ) -> NetId {
        let out = self.net(name, self.width(d));
        self.inst(
            "reg",
            PrimOp::Register {
                init,
                has_enable: true,
                has_reset: true,
            },
            vec![d, en, rst],
            vec![out],
        );
        out
    }

    /// True-dual-port BRAM; returns `(dout_a, dout_b)`.
    #[allow(clippy::too_many_arguments)]
    pub fn bram(
        &mut self,
        depth: u32,
        width: u32,
        addr_a: NetId,
        din_a: NetId,
        we_a: NetId,
        en_a: NetId,
        addr_b: NetId,
        din_b: NetId,
        we_b: NetId,
        en_b: NetId,
        name: &str,
    ) -> (NetId, NetId) {
        let dout_a = self.net(&format!("{name}_dout_a"), width);
        let dout_b = self.net(&format!("{name}_dout_b"), width);
        self.inst(
            name,
            PrimOp::Bram { depth, width },
            vec![addr_a, din_a, we_a, en_a, addr_b, din_b, we_b, en_b],
            vec![dout_a, dout_b],
        );
        (dout_a, dout_b)
    }

    /// CAM macro; returns `(match, match_index, match_data)`.
    #[allow(clippy::too_many_arguments)]
    pub fn cam(
        &mut self,
        entries: u32,
        key_width: u32,
        data_width: u32,
        search_key: NetId,
        write_key: NetId,
        write_data: NetId,
        write_index: NetId,
        write_en: NetId,
        name: &str,
    ) -> (NetId, NetId, NetId) {
        let m = self.net(&format!("{name}_match"), 1);
        let idx = self.net(&format!("{name}_index"), addr_width(entries));
        let data = self.net(&format!("{name}_data"), data_width);
        self.inst(
            name,
            PrimOp::Cam {
                entries,
                key_width,
                data_width,
            },
            vec![search_key, write_key, write_data, write_index, write_en],
            vec![m, idx, data],
        );
        (m, idx, data)
    }

    /// Number of instances created so far.
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// Finishes the module.
    pub fn finish(self) -> Module {
        Module {
            name: self.name,
            ports: self.ports,
            nets: self.nets,
            instances: self.instances,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::PortDir;

    #[test]
    fn names_are_uniquified() {
        let mut b = ModuleBuilder::new("m");
        let a = b.net("x", 4);
        let c = b.net("x", 4);
        let m = {
            b.output("o1", a);
            b.output("o2", c);
            b.finish()
        };
        assert_eq!(m.nets[a.0].name, "x");
        assert_eq!(m.nets[c.0].name, "x_1");
    }

    #[test]
    fn concat_width_is_sum() {
        let mut b = ModuleBuilder::new("m");
        let a = b.input("a", 3);
        let c = b.input("b", 5);
        let out = b.concat(&[a, c], "cat");
        assert_eq!(b.width(out), 8);
    }

    #[test]
    fn slice_width() {
        let mut b = ModuleBuilder::new("m");
        let a = b.input("a", 16);
        let s = b.slice(a, 11, 4, "mid");
        assert_eq!(b.width(s), 8);
    }

    #[test]
    #[should_panic(expected = "exceeds width")]
    fn slice_out_of_range_panics() {
        let mut b = ModuleBuilder::new("m");
        let a = b.input("a", 4);
        let _ = b.slice(a, 4, 0, "bad");
    }

    #[test]
    fn ports_track_direction() {
        let mut b = ModuleBuilder::new("m");
        let a = b.input("a", 1);
        let n = b.not(a, "na");
        b.output("y", n);
        let m = b.finish();
        assert_eq!(m.ports_in(PortDir::Input).count(), 1);
        assert_eq!(m.ports_in(PortDir::Output).count(), 1);
        assert!(m.port("y").is_some());
    }

    #[test]
    fn bram_outputs_have_data_width() {
        let mut b = ModuleBuilder::new("m");
        let addr = b.input("addr", 9);
        let din = b.input("din", 36);
        let we = b.input("we", 1);
        let en = b.input("en", 1);
        let (da, db) = b.bram(512, 36, addr, din, we, en, addr, din, we, en, "ram");
        assert_eq!(b.width(da), 36);
        assert_eq!(b.width(db), 36);
    }

    #[test]
    fn cam_index_width_matches_entries() {
        let mut b = ModuleBuilder::new("m");
        let key = b.input("key", 11);
        let wkey = b.input("wkey", 11);
        let wdata = b.input("wdata", 4);
        let widx = b.input("widx", 3);
        let we = b.input("we", 1);
        let (_m, idx, data) = b.cam(8, 11, 4, key, wkey, wdata, widx, we, "deplist");
        assert_eq!(b.width(idx), 3);
        assert_eq!(b.width(data), 4);
    }
}
