//! Netlist statistics: primitive counts and storage totals.

use crate::netlist::{Module, PrimOp};
use std::collections::BTreeMap;

/// Aggregate counts over one module.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NetlistStats {
    /// Instance count per primitive mnemonic.
    pub ops: BTreeMap<String, u32>,
    /// Total flip-flop bits held in `Register` primitives.
    pub register_bits: u64,
    /// Number of BRAM macros.
    pub bram_count: u32,
    /// Total BRAM storage in bits.
    pub bram_bits: u64,
    /// Number of CAM macros.
    pub cam_count: u32,
    /// Total CAM entry count across macros.
    pub cam_entries: u32,
    /// Total nets.
    pub net_count: u32,
    /// Total instances.
    pub instance_count: u32,
}

impl NetlistStats {
    /// Computes statistics for a module.
    pub fn of(module: &Module) -> Self {
        let mut stats = NetlistStats {
            net_count: module.nets.len() as u32,
            instance_count: module.instances.len() as u32,
            ..NetlistStats::default()
        };
        for inst in &module.instances {
            *stats.ops.entry(inst.op.mnemonic().to_owned()).or_insert(0) += 1;
            match &inst.op {
                PrimOp::Register { .. } => {
                    stats.register_bits += u64::from(module.width(inst.outputs[0]));
                }
                PrimOp::Bram { depth, width } => {
                    stats.bram_count += 1;
                    stats.bram_bits += u64::from(*depth) * u64::from(*width);
                }
                PrimOp::Cam { entries, .. } => {
                    stats.cam_count += 1;
                    stats.cam_entries += entries;
                }
                _ => {}
            }
        }
        stats
    }

    /// Count of one mnemonic.
    pub fn op_count(&self, mnemonic: &str) -> u32 {
        self.ops.get(mnemonic).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;

    #[test]
    fn counts_registers_and_brams() {
        let mut b = ModuleBuilder::new("m");
        let d = b.input("d", 16);
        let q = b.register(d, 0, "q");
        let addr = b.input("addr", 9);
        let we = b.input("we", 1);
        let en = b.input("en", 1);
        let din = b.input("din", 36);
        let (da, _) = b.bram(512, 36, addr, din, we, en, addr, din, we, en, "ram");
        b.output("q", q);
        b.output("d2", da);
        let stats = NetlistStats::of(&b.finish());
        assert_eq!(stats.register_bits, 16);
        assert_eq!(stats.bram_count, 1);
        assert_eq!(stats.bram_bits, 512 * 36);
        assert_eq!(stats.op_count("register"), 1);
        assert_eq!(stats.op_count("bram"), 1);
        assert_eq!(stats.op_count("mux"), 0);
    }
}
