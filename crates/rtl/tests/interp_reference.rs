//! The netlist interpreter against plain-Rust reference arithmetic, over
//! randomized operands and widths (seeded Pcg32 sweeps).

use memsync_rtl::builder::ModuleBuilder;
use memsync_rtl::interp::Interp;
use memsync_trace::Pcg32;

fn binop_module(op: &str, width: u32) -> Interp {
    let mut b = ModuleBuilder::new("m");
    let x = b.input("x", width);
    let y = b.input("y", width);
    let r = match op {
        "add" => b.add(x, y, "r"),
        "sub" => b.sub(x, y, "r"),
        "mul" => b.mul(x, y, "r"),
        "and" => b.and(&[x, y], "r"),
        "or" => b.or(&[x, y], "r"),
        "xor" => b.xor(&[x, y], "r"),
        _ => unreachable!(),
    };
    b.output("r", r);
    Interp::new(&b.finish()).expect("interpretable")
}

fn mask(v: u64, w: u32) -> u64 {
    if w >= 64 {
        v
    } else {
        v & ((1u64 << w) - 1)
    }
}

#[test]
fn binops_match_reference() {
    let ops = ["add", "sub", "mul", "and", "or", "xor"];
    let mut rng = Pcg32::seed_from_u64(0x17E6_0001);
    for _case in 0..192 {
        let op = ops[rng.gen_range_usize(0..ops.len())];
        let width = rng.gen_range_u32(1..33);
        let x = rng.next_u64();
        let y = rng.next_u64();
        let mut sim = binop_module(op, width);
        let xm = mask(x, width);
        let ym = mask(y, width);
        sim.set("x", xm);
        sim.set("y", ym);
        sim.settle();
        let expected = match op {
            "add" => mask(xm.wrapping_add(ym), width),
            "sub" => mask(xm.wrapping_sub(ym), width),
            "mul" => mask(xm.wrapping_mul(ym), width),
            "and" => xm & ym,
            "or" => xm | ym,
            "xor" => xm ^ ym,
            _ => unreachable!(),
        };
        assert_eq!(sim.get("r"), expected, "{op} w={width}");
    }
}

#[test]
fn compares_match_reference() {
    let mut rng = Pcg32::seed_from_u64(0x17E6_0002);
    for _case in 0..128 {
        let width = rng.gen_range_u32(1..33);
        let x = rng.next_u64();
        let y = rng.next_u64();
        let mut b = ModuleBuilder::new("m");
        let xi = b.input("x", width);
        let yi = b.input("y", width);
        let eq = b.eq(xi, yi, "eq");
        let lt = b.lt(xi, yi, "lt");
        b.output("eq", eq);
        b.output("lt", lt);
        let mut sim = Interp::new(&b.finish()).expect("interpretable");
        let xm = mask(x, width);
        let ym = mask(y, width);
        sim.set("x", xm);
        sim.set("y", ym);
        sim.settle();
        assert_eq!(sim.get("eq"), u64::from(xm == ym));
        assert_eq!(sim.get("lt"), u64::from(xm < ym));
    }
}

/// A register chain delays its input by exactly its length.
#[test]
fn register_chain_delays() {
    let mut rng = Pcg32::seed_from_u64(0x17E6_0003);
    for _case in 0..32 {
        let len = rng.gen_range_usize(1..8);
        let n_values = rng.gen_range_usize(8..20);
        let values: Vec<u64> = (0..n_values).map(|_| rng.gen_range(0..256)).collect();
        let mut b = ModuleBuilder::new("m");
        let d = b.input("d", 8);
        let mut q = d;
        for i in 0..len {
            q = b.register(q, 0, &format!("q{i}"));
        }
        b.output("q", q);
        let mut sim = Interp::new(&b.finish()).expect("interpretable");
        let mut seen = Vec::new();
        for &v in &values {
            sim.set("d", v);
            sim.settle();
            seen.push(sim.get("q"));
            sim.step();
        }
        // After the pipeline fills, output k equals input k-len.
        for k in len..values.len() {
            assert_eq!(seen[k], values[k - len]);
        }
    }
}
