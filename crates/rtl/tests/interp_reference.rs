//! The netlist interpreter against plain-Rust reference arithmetic, over
//! randomized operands and widths.

use memsync_rtl::builder::ModuleBuilder;
use memsync_rtl::interp::Interp;
use proptest::prelude::*;

fn binop_module(op: &str, width: u32) -> Interp {
    let mut b = ModuleBuilder::new("m");
    let x = b.input("x", width);
    let y = b.input("y", width);
    let r = match op {
        "add" => b.add(x, y, "r"),
        "sub" => b.sub(x, y, "r"),
        "mul" => b.mul(x, y, "r"),
        "and" => b.and(&[x, y], "r"),
        "or" => b.or(&[x, y], "r"),
        "xor" => b.xor(&[x, y], "r"),
        _ => unreachable!(),
    };
    b.output("r", r);
    Interp::new(&b.finish()).expect("interpretable")
}

fn mask(v: u64, w: u32) -> u64 {
    if w >= 64 { v } else { v & ((1u64 << w) - 1) }
}

proptest! {
    #[test]
    fn binops_match_reference(
        op_idx in 0usize..6,
        width in 1u32..=32,
        x in any::<u64>(),
        y in any::<u64>(),
    ) {
        let ops = ["add", "sub", "mul", "and", "or", "xor"];
        let op = ops[op_idx];
        let mut sim = binop_module(op, width);
        let xm = mask(x, width);
        let ym = mask(y, width);
        sim.set("x", xm);
        sim.set("y", ym);
        sim.settle();
        let expected = match op {
            "add" => mask(xm.wrapping_add(ym), width),
            "sub" => mask(xm.wrapping_sub(ym), width),
            "mul" => mask(xm.wrapping_mul(ym), width),
            "and" => xm & ym,
            "or" => xm | ym,
            "xor" => xm ^ ym,
            _ => unreachable!(),
        };
        prop_assert_eq!(sim.get("r"), expected, "{} w={}", op, width);
    }

    #[test]
    fn compares_match_reference(width in 1u32..=32, x in any::<u64>(), y in any::<u64>()) {
        let mut b = ModuleBuilder::new("m");
        let xi = b.input("x", width);
        let yi = b.input("y", width);
        let eq = b.eq(xi, yi, "eq");
        let lt = b.lt(xi, yi, "lt");
        b.output("eq", eq);
        b.output("lt", lt);
        let mut sim = Interp::new(&b.finish()).expect("interpretable");
        let xm = mask(x, width);
        let ym = mask(y, width);
        sim.set("x", xm);
        sim.set("y", ym);
        sim.settle();
        prop_assert_eq!(sim.get("eq"), u64::from(xm == ym));
        prop_assert_eq!(sim.get("lt"), u64::from(xm < ym));
    }

    /// A register chain delays its input by exactly its length.
    #[test]
    fn register_chain_delays(len in 1usize..8, values in proptest::collection::vec(0u64..256, 8..20)) {
        let mut b = ModuleBuilder::new("m");
        let d = b.input("d", 8);
        let mut q = d;
        for i in 0..len {
            q = b.register(q, 0, &format!("q{i}"));
        }
        b.output("q", q);
        let mut sim = Interp::new(&b.finish()).expect("interpretable");
        let mut seen = Vec::new();
        for &v in &values {
            sim.set("d", v);
            sim.settle();
            seen.push(sim.get("q"));
            sim.step();
        }
        // After the pipeline fills, output k equals input k-len.
        for k in len..values.len() {
            prop_assert_eq!(seen[k], values[k - len]);
        }
    }
}
