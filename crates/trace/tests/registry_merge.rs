//! Merge semantics of [`MetricsRegistry`] — the aggregation behind
//! memsync-serve's per-shard stats frames. Merging N registries must be
//! indistinguishable (counters, histogram percentiles, latency streams,
//! high-water marks) from recording every sample into one registry.

use memsync_trace::bucket::{bucket_index, BUCKETS};
use memsync_trace::{BucketHistogram, LatencyRecorder, MetricsRegistry, Pcg32};

#[test]
fn merge_sums_counters_and_maxes_highwater() {
    let mut a = MetricsRegistry::new();
    let mut b = MetricsRegistry::new();
    a.add("serve.forwarded", 7);
    a.add("serve.dropped", 1);
    b.add("serve.forwarded", 5);
    b.add("serve.busy", 3);
    a.observe_gauge("serve.queue_depth", 4);
    b.observe_gauge("serve.queue_depth", 9);
    b.observe_gauge("serve.batchq", 2);
    a.merge(&b);
    assert_eq!(a.counter("serve.forwarded"), 12);
    assert_eq!(a.counter("serve.dropped"), 1);
    assert_eq!(a.counter("serve.busy"), 3);
    assert_eq!(a.highwater("serve.queue_depth"), Some(9));
    assert_eq!(a.highwater("serve.batchq"), Some(2));
}

#[test]
fn merge_concatenates_histograms_preserving_percentiles() {
    let mut a = MetricsRegistry::new();
    let mut b = MetricsRegistry::new();
    let mut one = MetricsRegistry::new();
    for v in 0..100u64 {
        // Interleave samples between the two shards.
        if v % 3 == 0 {
            a.record("serve.batch_size", v);
        } else {
            b.record("serve.batch_size", v);
        }
        one.record("serve.batch_size", v);
    }
    a.merge(&b);
    let merged = a.histogram("serve.batch_size").unwrap().summary().unwrap();
    let single = one
        .histogram("serve.batch_size")
        .unwrap()
        .summary()
        .unwrap();
    assert_eq!(merged, single, "order of recording must not matter");
    assert_eq!(merged.count, 100);
}

#[test]
fn merge_concatenates_latency_streams() {
    let mut a = MetricsRegistry::new();
    let mut b = MetricsRegistry::new();
    a.record_write(4, 10);
    a.record_delivery(4, 0, 13);
    b.record_write(4, 100);
    b.record_delivery(4, 0, 105);
    b.record_write(8, 0);
    b.record_delivery(8, 1, 2);
    a.merge(&b);
    assert_eq!(a.latency.samples(4, 0), &[3, 5]);
    assert_eq!(a.latency.samples(8, 1), &[2]);
    assert_eq!(a.streams().len(), 2);
}

/// Seeded property sweep: arbitrary samples split across K registries and
/// merged give the same counters, percentile summaries, and pooled latency
/// statistics as one registry that saw everything.
#[test]
fn property_split_then_merge_equals_single_registry() {
    for seed in 0..20u64 {
        let mut rng = Pcg32::seed_from_u64(0xC0FFEE ^ seed);
        let shards = 1 + (seed as usize % 4);
        let mut parts: Vec<MetricsRegistry> = (0..shards).map(|_| MetricsRegistry::new()).collect();
        let mut one = MetricsRegistry::new();
        for i in 0..400u64 {
            let shard = rng.gen_range_usize(0..shards);
            match rng.gen_range(0..4) {
                0 => {
                    let n = rng.gen_range(1..10);
                    parts[shard].add("c.events", n);
                    one.add("c.events", n);
                }
                1 => {
                    let v = rng.gen_range(0..1000);
                    parts[shard].record("h.latency", v);
                    one.record("h.latency", v);
                }
                2 => {
                    let v = rng.gen_range(0..64);
                    parts[shard].observe_gauge("g.depth", v);
                    one.observe_gauge("g.depth", v);
                }
                _ => {
                    // A closed produce-consume round within one shard.
                    let addr = 4 * (1 + (i as u32 % 3));
                    let lat = rng.gen_range(1..20);
                    parts[shard].record_write(addr, i * 100);
                    parts[shard].record_delivery(addr, shard, i * 100 + lat);
                    one.record_write(addr, i * 100);
                    one.record_delivery(addr, shard, i * 100 + lat);
                }
            }
        }
        let mut merged = MetricsRegistry::new();
        for p in &parts {
            merged.merge(p);
        }
        assert_eq!(
            merged.counter("c.events"),
            one.counter("c.events"),
            "seed {seed}"
        );
        assert_eq!(
            merged.histogram("h.latency").map(|h| h.summary()),
            one.histogram("h.latency").map(|h| h.summary()),
            "histogram percentiles must survive the split (seed {seed})"
        );
        assert_eq!(merged.highwater("g.depth"), one.highwater("g.depth"));
        let (mp, op) = (merged.pooled_stats(), one.pooled_stats());
        match (mp, op) {
            (None, None) => {}
            (Some(m), Some(o)) => {
                assert_eq!(m.count, o.count, "seed {seed}");
                assert_eq!(m.min, o.min);
                assert_eq!(m.max, o.max);
                assert!((m.mean - o.mean).abs() < 1e-9);
            }
            other => panic!("pooled stats diverged: {other:?}"),
        }
        // Merging must also be associative with an empty identity.
        let mut id = MetricsRegistry::new();
        id.merge(&merged);
        assert_eq!(id.counter("c.events"), merged.counter("c.events"));
    }
}

// ----------------------------------------------------------------------
// BucketHistogram merge — the aggregation behind the tracing plane's
// stage percentiles. The serve stats frame merges per-shard bucket
// histograms; these properties pin that the merge is loss-free at the
// bucket resolution, including the edges (empty identity, boundary
// values, saturating counts).

fn summaries_equal(a: &BucketHistogram, b: &BucketHistogram) {
    assert_eq!(a.buckets(), b.buckets(), "bucket counts differ");
    assert_eq!(a.count(), b.count());
    assert_eq!(a.min(), b.min());
    assert_eq!(a.max(), b.max());
    for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
        assert_eq!(a.percentile(q), b.percentile(q), "p{q} differs");
    }
}

#[test]
fn bucket_merge_with_empty_is_identity_both_ways() {
    let mut full = BucketHistogram::new();
    for v in [0u64, 1, 2, 1023, 1024, u64::MAX] {
        full.record(v);
    }
    let reference = full.clone();

    // full ⊕ empty = full.
    full.merge(&BucketHistogram::new());
    summaries_equal(&full, &reference);

    // empty ⊕ full = full (including exact min/max, which start at the
    // empty histogram's sentinel values u64::MAX / 0).
    let mut empty = BucketHistogram::new();
    empty.merge(&reference);
    summaries_equal(&empty, &reference);

    // empty ⊕ empty stays empty, not a phantom sample.
    let mut e2 = BucketHistogram::new();
    e2.merge(&BucketHistogram::new());
    assert_eq!(e2.count(), 0);
    assert_eq!(e2.min(), None);
    assert_eq!(e2.summary(), None);
}

#[test]
fn bucket_merge_saturates_counts_and_sums() {
    let mut a = BucketHistogram::new();
    let mut b = BucketHistogram::new();
    for h in [&mut a, &mut b] {
        h.record(u64::MAX);
        h.record(u64::MAX);
    }
    a.merge(&b);
    assert_eq!(a.count(), 4);
    assert_eq!(a.max(), Some(u64::MAX));
    // The running sum saturates instead of wrapping: the mean stays at
    // the top of the range rather than collapsing toward zero.
    assert!(a.mean().unwrap() >= (u64::MAX / 4) as f64);
    assert_eq!(a.percentile(1.0), Some(u64::MAX));
}

#[test]
fn bucket_split_at_boundaries_equals_single_recording() {
    // Adversarial split: every sample sits exactly on a bucket boundary
    // (2^k - 1 closes bucket k, 2^k opens bucket k+1), the worst case for
    // any off-by-one in the merge's bucket arithmetic.
    for k in 1..63u32 {
        let below = (1u64 << k) - 1;
        let at = 1u64 << k;
        assert_eq!(
            bucket_index(below) + 1,
            bucket_index(at),
            "2^{k}-1 and 2^{k} straddle a boundary"
        );
        let mut single = BucketHistogram::new();
        let mut left = BucketHistogram::new();
        let mut right = BucketHistogram::new();
        for (i, v) in [below, at, below, at, at].into_iter().enumerate() {
            single.record(v);
            if i % 2 == 0 {
                left.record(v);
            } else {
                right.record(v);
            }
        }
        left.merge(&right);
        summaries_equal(&left, &single);
    }
}

#[test]
fn property_bucket_split_then_merge_equals_single_histogram() {
    for seed in 0..20u64 {
        let mut rng = Pcg32::seed_from_u64(0xB0C4E7 ^ seed);
        let shards = 1 + (seed as usize % 5);
        let mut parts: Vec<BucketHistogram> = (0..shards).map(|_| BucketHistogram::new()).collect();
        let mut single = BucketHistogram::new();
        for _ in 0..500 {
            // Spread samples across the full bucket range, biased onto
            // boundaries: 2^k - 1, 2^k, 2^k + 1, or a random offset.
            let k = rng.gen_range(0..(BUCKETS as u64 - 1)) as u32;
            let base = 1u64 << k.min(62);
            let v = match rng.gen_range(0..4) {
                0 => base - 1,
                1 => base,
                2 => base.saturating_add(1),
                _ => base.saturating_add(rng.gen_range(0..base.max(1))),
            };
            parts[rng.gen_range_usize(0..shards)].record(v);
            single.record(v);
        }
        let mut merged = BucketHistogram::new();
        for p in &parts {
            merged.merge(p);
        }
        summaries_equal(&merged, &single);
        // Fold order must not matter either (associativity).
        let mut reversed = BucketHistogram::new();
        for p in parts.iter().rev() {
            reversed.merge(p);
        }
        summaries_equal(&reversed, &merged);
    }
}

// ----------------------------------------------------------------------
// LatencyRecorder merge edges: empty identities, stream union, and the
// documented closed-window contract (open produce rounds do not leak
// across a merge).

#[test]
fn latency_merge_with_empty_is_identity() {
    let mut full = LatencyRecorder::new();
    full.record_write(4, 10);
    full.record_delivery(4, 0, 13);
    let reference_samples = full.samples(4, 0).to_vec();

    full.merge(&LatencyRecorder::new());
    assert_eq!(full.samples(4, 0), reference_samples.as_slice());

    let mut empty = LatencyRecorder::new();
    empty.merge(&full);
    assert_eq!(empty.samples(4, 0), reference_samples.as_slice());
    assert_eq!(empty.streams(), full.streams());
    assert_eq!(empty.pooled_stats(), full.pooled_stats());
}

#[test]
fn latency_merge_unions_disjoint_streams_and_pools_shared_ones() {
    let mut a = LatencyRecorder::new();
    let mut b = LatencyRecorder::new();
    // Shared stream (4, 0): samples 3 from a, 5 from b.
    a.record_write(4, 10);
    a.record_delivery(4, 0, 13);
    b.record_write(4, 100);
    b.record_delivery(4, 0, 105);
    // Disjoint stream (8, 1) only in b.
    b.record_write(8, 0);
    b.record_delivery(8, 1, 7);
    a.merge(&b);
    assert_eq!(a.samples(4, 0), &[3, 5]);
    assert_eq!(a.samples(8, 1), &[7]);
    assert_eq!(a.streams().len(), 2);
    let pooled = a.pooled_stats().unwrap();
    assert_eq!(pooled.count, 3);
    assert_eq!((pooled.min, pooled.max), (3, 7));
}

#[test]
fn latency_merge_does_not_leak_open_produce_rounds() {
    // Documented closed-window contract: a `record_write` with no
    // delivery yet is measurement state, not a sample, and merging must
    // not let a later delivery in the *destination* recorder pair against
    // the source's open write.
    let mut open = LatencyRecorder::new();
    open.record_write(4, 1000);
    let mut dst = LatencyRecorder::new();
    dst.merge(&open);
    dst.record_delivery(4, 0, 1003);
    assert!(
        dst.samples(4, 0).is_empty(),
        "the open write must not cross the merge"
    );
    assert!(dst.streams().is_empty());
    assert_eq!(dst.pooled_stats(), None);
}
