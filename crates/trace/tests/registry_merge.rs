//! Merge semantics of [`MetricsRegistry`] — the aggregation behind
//! memsync-serve's per-shard stats frames. Merging N registries must be
//! indistinguishable (counters, histogram percentiles, latency streams,
//! high-water marks) from recording every sample into one registry.

use memsync_trace::{MetricsRegistry, Pcg32};

#[test]
fn merge_sums_counters_and_maxes_highwater() {
    let mut a = MetricsRegistry::new();
    let mut b = MetricsRegistry::new();
    a.add("serve.forwarded", 7);
    a.add("serve.dropped", 1);
    b.add("serve.forwarded", 5);
    b.add("serve.busy", 3);
    a.observe_gauge("serve.queue_depth", 4);
    b.observe_gauge("serve.queue_depth", 9);
    b.observe_gauge("serve.batchq", 2);
    a.merge(&b);
    assert_eq!(a.counter("serve.forwarded"), 12);
    assert_eq!(a.counter("serve.dropped"), 1);
    assert_eq!(a.counter("serve.busy"), 3);
    assert_eq!(a.highwater("serve.queue_depth"), Some(9));
    assert_eq!(a.highwater("serve.batchq"), Some(2));
}

#[test]
fn merge_concatenates_histograms_preserving_percentiles() {
    let mut a = MetricsRegistry::new();
    let mut b = MetricsRegistry::new();
    let mut one = MetricsRegistry::new();
    for v in 0..100u64 {
        // Interleave samples between the two shards.
        if v % 3 == 0 {
            a.record("serve.batch_size", v);
        } else {
            b.record("serve.batch_size", v);
        }
        one.record("serve.batch_size", v);
    }
    a.merge(&b);
    let merged = a.histogram("serve.batch_size").unwrap().summary().unwrap();
    let single = one
        .histogram("serve.batch_size")
        .unwrap()
        .summary()
        .unwrap();
    assert_eq!(merged, single, "order of recording must not matter");
    assert_eq!(merged.count, 100);
}

#[test]
fn merge_concatenates_latency_streams() {
    let mut a = MetricsRegistry::new();
    let mut b = MetricsRegistry::new();
    a.record_write(4, 10);
    a.record_delivery(4, 0, 13);
    b.record_write(4, 100);
    b.record_delivery(4, 0, 105);
    b.record_write(8, 0);
    b.record_delivery(8, 1, 2);
    a.merge(&b);
    assert_eq!(a.latency.samples(4, 0), &[3, 5]);
    assert_eq!(a.latency.samples(8, 1), &[2]);
    assert_eq!(a.streams().len(), 2);
}

/// Seeded property sweep: arbitrary samples split across K registries and
/// merged give the same counters, percentile summaries, and pooled latency
/// statistics as one registry that saw everything.
#[test]
fn property_split_then_merge_equals_single_registry() {
    for seed in 0..20u64 {
        let mut rng = Pcg32::seed_from_u64(0xC0FFEE ^ seed);
        let shards = 1 + (seed as usize % 4);
        let mut parts: Vec<MetricsRegistry> = (0..shards).map(|_| MetricsRegistry::new()).collect();
        let mut one = MetricsRegistry::new();
        for i in 0..400u64 {
            let shard = rng.gen_range_usize(0..shards);
            match rng.gen_range(0..4) {
                0 => {
                    let n = rng.gen_range(1..10);
                    parts[shard].add("c.events", n);
                    one.add("c.events", n);
                }
                1 => {
                    let v = rng.gen_range(0..1000);
                    parts[shard].record("h.latency", v);
                    one.record("h.latency", v);
                }
                2 => {
                    let v = rng.gen_range(0..64);
                    parts[shard].observe_gauge("g.depth", v);
                    one.observe_gauge("g.depth", v);
                }
                _ => {
                    // A closed produce-consume round within one shard.
                    let addr = 4 * (1 + (i as u32 % 3));
                    let lat = rng.gen_range(1..20);
                    parts[shard].record_write(addr, i * 100);
                    parts[shard].record_delivery(addr, shard, i * 100 + lat);
                    one.record_write(addr, i * 100);
                    one.record_delivery(addr, shard, i * 100 + lat);
                }
            }
        }
        let mut merged = MetricsRegistry::new();
        for p in &parts {
            merged.merge(p);
        }
        assert_eq!(
            merged.counter("c.events"),
            one.counter("c.events"),
            "seed {seed}"
        );
        assert_eq!(
            merged.histogram("h.latency").map(|h| h.summary()),
            one.histogram("h.latency").map(|h| h.summary()),
            "histogram percentiles must survive the split (seed {seed})"
        );
        assert_eq!(merged.highwater("g.depth"), one.highwater("g.depth"));
        let (mp, op) = (merged.pooled_stats(), one.pooled_stats());
        match (mp, op) {
            (None, None) => {}
            (Some(m), Some(o)) => {
                assert_eq!(m.count, o.count, "seed {seed}");
                assert_eq!(m.min, o.min);
                assert_eq!(m.max, o.max);
                assert!((m.mean - o.mean).abs() < 1e-9);
            }
            other => panic!("pooled stats diverged: {other:?}"),
        }
        // Merging must also be associative with an empty identity.
        let mut id = MetricsRegistry::new();
        id.merge(&merged);
        assert_eq!(id.counter("c.events"), merged.counter("c.events"));
    }
}
