//! Latency metrics: produce-to-consume delay distributions, the measurement
//! behind the paper's determinism comparison (§3.1 vs §3.2).
//!
//! Previously `memsync_sim::metrics`; folded into this crate so the
//! recorder lives next to the counter registry that embeds it.

use std::collections::BTreeMap;

/// Records per-(address, consumer) latencies between a producer write and
/// the consumer's data delivery.
#[derive(Debug, Clone, Default)]
pub struct LatencyRecorder {
    last_write: BTreeMap<u32, u64>,
    samples: BTreeMap<(u32, usize), Vec<u64>>,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Notes a producer write to `addr` at `cycle`.
    pub fn record_write(&mut self, addr: u32, cycle: u64) {
        self.last_write.insert(addr, cycle);
    }

    /// Notes consumer `consumer` receiving data for `addr` at `cycle`.
    pub fn record_delivery(&mut self, addr: u32, consumer: usize, cycle: u64) {
        if let Some(&w) = self.last_write.get(&addr) {
            self.samples
                .entry((addr, consumer))
                .or_default()
                .push(cycle.saturating_sub(w));
        }
    }

    /// All samples for one (address, consumer).
    pub fn samples(&self, addr: u32, consumer: usize) -> &[u64] {
        self.samples
            .get(&(addr, consumer))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Summary over one (address, consumer) stream.
    pub fn stats(&self, addr: u32, consumer: usize) -> Option<LatencyStats> {
        let s = self.samples.get(&(addr, consumer))?;
        LatencyStats::of(s)
    }

    /// Summary over every recorded stream pooled together.
    pub fn pooled_stats(&self) -> Option<LatencyStats> {
        let all: Vec<u64> = self.samples.values().flatten().copied().collect();
        LatencyStats::of(&all)
    }

    /// Streams recorded, as `(addr, consumer)` keys.
    pub fn streams(&self) -> Vec<(u32, usize)> {
        self.samples.keys().copied().collect()
    }

    /// Folds another recorder's samples into this one (per-stream
    /// concatenation). Open produce rounds (`last_write` entries with no
    /// delivery yet) are not carried over: merging is meant for recorders
    /// whose measurement windows are closed, e.g. per-shard registries
    /// snapshotted for a stats frame.
    pub fn merge(&mut self, other: &LatencyRecorder) {
        for (key, samples) in &other.samples {
            self.samples.entry(*key).or_default().extend(samples);
        }
    }
}

/// Summary statistics of a latency stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Sample count.
    pub count: usize,
    /// Minimum latency (cycles).
    pub min: u64,
    /// Maximum latency (cycles).
    pub max: u64,
    /// Mean latency.
    pub mean: f64,
    /// Population variance.
    pub variance: f64,
}

impl LatencyStats {
    /// Computes statistics; `None` for empty input.
    pub fn of(samples: &[u64]) -> Option<LatencyStats> {
        if samples.is_empty() {
            return None;
        }
        let count = samples.len();
        let min = *samples.iter().min().expect("non-empty");
        let max = *samples.iter().max().expect("non-empty");
        let mean = samples.iter().sum::<u64>() as f64 / count as f64;
        let variance = samples
            .iter()
            .map(|&s| {
                let d = s as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / count as f64;
        Some(LatencyStats {
            count,
            min,
            max,
            mean,
            variance,
        })
    }

    /// Whether every sample was identical — the §3.2 determinism property.
    pub fn is_deterministic(&self) -> bool {
        self.min == self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::percentile;

    #[test]
    fn records_latency_between_write_and_delivery() {
        let mut r = LatencyRecorder::new();
        r.record_write(4, 100);
        r.record_delivery(4, 0, 103);
        r.record_delivery(4, 1, 104);
        assert_eq!(r.samples(4, 0), &[3]);
        assert_eq!(r.samples(4, 1), &[4]);
    }

    #[test]
    fn stats_detect_determinism() {
        let s = LatencyStats::of(&[3, 3, 3]).unwrap();
        assert!(s.is_deterministic());
        assert_eq!(s.variance, 0.0);
        let v = LatencyStats::of(&[3, 5, 7]).unwrap();
        assert!(!v.is_deterministic());
        assert!(v.variance > 0.0);
        assert_eq!(v.mean, 5.0);
    }

    #[test]
    fn delivery_without_write_is_ignored() {
        let mut r = LatencyRecorder::new();
        r.record_delivery(9, 0, 50);
        assert!(r.samples(9, 0).is_empty());
        assert!(r.pooled_stats().is_none());
    }

    #[test]
    fn pooled_stats_cover_all_streams() {
        let mut r = LatencyRecorder::new();
        r.record_write(1, 0);
        r.record_delivery(1, 0, 2);
        r.record_write(2, 0);
        r.record_delivery(2, 1, 6);
        let p = r.pooled_stats().unwrap();
        assert_eq!(p.count, 2);
        assert_eq!(p.min, 2);
        assert_eq!(p.max, 6);
        assert_eq!(r.streams().len(), 2);
    }

    #[test]
    fn empty_stream_has_no_stats() {
        let r = LatencyRecorder::new();
        assert!(r.stats(0, 0).is_none());
        assert!(r.pooled_stats().is_none());
        assert!(r.streams().is_empty());
        assert_eq!(r.samples(0, 0), &[] as &[u64]);
        assert_eq!(LatencyStats::of(&[]), None);
    }

    #[test]
    fn single_sample_stats_and_percentiles() {
        let mut r = LatencyRecorder::new();
        r.record_write(8, 10);
        r.record_delivery(8, 2, 15);
        let s = r.stats(8, 2).unwrap();
        assert_eq!((s.count, s.min, s.max), (1, 5, 5));
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.variance, 0.0);
        assert!(s.is_deterministic());
        // Every percentile of a single-sample stream is that sample.
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(percentile(r.samples(8, 2), q), Some(5));
        }
    }

    #[test]
    fn pooled_differs_from_per_stream() {
        let mut r = LatencyRecorder::new();
        r.record_write(1, 0);
        r.record_delivery(1, 0, 3); // stream (1,0): [3]
        r.record_delivery(1, 1, 9); // stream (1,1): [9]
        let s0 = r.stats(1, 0).unwrap();
        let s1 = r.stats(1, 1).unwrap();
        assert!(s0.is_deterministic() && s1.is_deterministic());
        let pooled = r.pooled_stats().unwrap();
        assert_eq!(pooled.count, 2);
        assert!(!pooled.is_deterministic(), "pooling mixes the streams");
        assert_eq!(pooled.mean, 6.0);
    }

    #[test]
    fn delivery_before_recorded_write_saturates_to_zero() {
        let mut r = LatencyRecorder::new();
        // The write is recorded at a later cycle than the delivery (the
        // engine records grants after deliveries within one step); the
        // latency clamps at zero instead of wrapping.
        r.record_write(4, 100);
        r.record_delivery(4, 0, 90);
        assert_eq!(r.samples(4, 0), &[0]);
        let s = r.stats(4, 0).unwrap();
        assert_eq!((s.min, s.max), (0, 0));
    }
}
