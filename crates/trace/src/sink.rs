//! Trace sinks: where events go.
//!
//! Instrumentation sites hold a `&mut dyn TraceSink` and call
//! [`TraceSink::emit`] per event. [`NullSink`] reports itself disabled so
//! call sites can skip building events whose construction is not free
//! (e.g. per-consumer stall scans), keeping the uninstrumented hot path
//! within noise of the pre-instrumentation simulator.

use crate::event::TraceEvent;
use std::collections::VecDeque;
use std::io::Write;
use std::sync::{Arc, Mutex, PoisonError};

/// Destination of a cycle-event stream.
///
/// `Send` so a simulator owning its sink can move whole onto a worker
/// thread (the serve crate runs one `System` per shard thread).
pub trait TraceSink: std::fmt::Debug + Send {
    /// Records one event.
    fn emit(&mut self, ev: &TraceEvent);

    /// Whether emitting has any effect. Instrumentation may skip event
    /// construction entirely when this is `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Flushes buffered output (JSONL writers).
    fn flush(&mut self) {}
}

/// Discards everything; `enabled()` is `false`.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline(always)]
    fn emit(&mut self, _ev: &TraceEvent) {}

    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }
}

/// Collects every event in order (tests, the determinism regression).
#[derive(Debug, Clone, Default)]
pub struct VecSink {
    /// Events in emission order.
    pub events: Vec<TraceEvent>,
}

impl VecSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TraceSink for VecSink {
    fn emit(&mut self, ev: &TraceEvent) {
        self.events.push(*ev);
    }
}

/// Keeps the last `capacity` events; older ones are dropped (and counted).
#[derive(Debug, Clone)]
pub struct RingBufferSink {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl RingBufferSink {
    /// Creates a ring holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        RingBufferSink {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Retained event count.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drains the retained events into a `Vec` (e.g. for VCD export).
    pub fn take(&mut self) -> Vec<TraceEvent> {
        self.buf.drain(..).collect()
    }
}

impl TraceSink for RingBufferSink {
    fn emit(&mut self, ev: &TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(*ev);
    }
}

/// Streams events as JSON Lines to any writer.
#[derive(Debug)]
pub struct JsonlSink<W: Write + std::fmt::Debug> {
    w: W,
    /// Lines written so far.
    pub lines: u64,
}

impl<W: Write + std::fmt::Debug> JsonlSink<W> {
    /// Wraps a writer. Callers wanting buffering pass a `BufWriter`.
    pub fn new(w: W) -> Self {
        JsonlSink { w, lines: 0 }
    }

    /// Writes a raw metadata line (e.g. run headers between experiment
    /// phases); `obj` must already be a complete JSON object.
    pub fn write_meta(&mut self, obj: &str) {
        let _ = writeln!(self.w, "{obj}");
        self.lines += 1;
    }

    /// Consumes the sink, returning the writer after flushing.
    pub fn into_inner(mut self) -> W {
        let _ = self.w.flush();
        self.w
    }
}

impl<W: Write + std::fmt::Debug + Send> TraceSink for JsonlSink<W> {
    fn emit(&mut self, ev: &TraceEvent) {
        let _ = writeln!(self.w, "{}", ev.to_jsonl());
        self.lines += 1;
    }

    fn flush(&mut self) {
        let _ = self.w.flush();
    }
}

/// A cloneable handle to a shared sink, so a caller can hand one end to a
/// `System` (which owns its sink) and keep the other to inspect events
/// afterwards. Mutex-backed (not `RefCell`) so the handle satisfies the
/// trait's `Send` bound and survives the `System` moving threads.
#[derive(Debug, Default)]
pub struct SharedSink<S: TraceSink>(Arc<Mutex<S>>);

impl<S: TraceSink> SharedSink<S> {
    /// Wraps a sink for sharing.
    pub fn new(sink: S) -> Self {
        SharedSink(Arc::new(Mutex::new(sink)))
    }

    /// Runs `f` with the inner sink borrowed.
    pub fn with<R>(&self, f: impl FnOnce(&S) -> R) -> R {
        f(&self.0.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Runs `f` with the inner sink borrowed mutably.
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut S) -> R) -> R {
        f(&mut self.0.lock().unwrap_or_else(PoisonError::into_inner))
    }
}

impl<S: TraceSink> Clone for SharedSink<S> {
    fn clone(&self) -> Self {
        SharedSink(Arc::clone(&self.0))
    }
}

impl<S: TraceSink> TraceSink for SharedSink<S> {
    fn emit(&mut self, ev: &TraceEvent) {
        self.with_mut(|s| s.emit(ev));
    }

    fn enabled(&self) -> bool {
        self.with(TraceSink::enabled)
    }

    fn flush(&mut self) {
        self.with_mut(TraceSink::flush);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, Port};

    fn ev(cycle: u64) -> TraceEvent {
        TraceEvent {
            cycle,
            bank: 0,
            port: Port::C,
            addr: 1,
            kind: EventKind::ArbStall { consumer: 0 },
        }
    }

    #[test]
    fn null_sink_is_disabled() {
        let mut s = NullSink;
        assert!(!s.enabled());
        s.emit(&ev(0));
    }

    #[test]
    fn ring_buffer_keeps_newest_and_counts_drops() {
        let mut s = RingBufferSink::new(3);
        for c in 0..5 {
            s.emit(&ev(c));
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.dropped(), 2);
        let cycles: Vec<u64> = s.events().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![2, 3, 4]);
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let mut s = JsonlSink::new(Vec::new());
        s.emit(&ev(7));
        s.emit(&ev(8));
        s.write_meta("{\"meta\":1}");
        let out = String::from_utf8(s.into_inner()).unwrap();
        assert_eq!(out.lines().count(), 3);
        assert!(out.lines().next().unwrap().contains("\"c\":7"));
    }

    #[test]
    fn shared_sink_exposes_events_after_moving_one_handle() {
        let shared = SharedSink::new(VecSink::new());
        let mut handle: Box<dyn TraceSink> = Box::new(shared.clone());
        handle.emit(&ev(3));
        assert_eq!(shared.with(|s| s.events.len()), 1);
    }
}
