//! Typed cycle events with `(cycle, bank, port, addr)` attribution.
//!
//! One event describes one observable micro-action of a memory wrapper or
//! of the engine around it during one clock cycle. Events are small `Copy`
//! structs so emitting them through a [`crate::sink::NullSink`] costs a
//! few moves that the optimizer deletes.

/// Physical BRAM/wrapper port an event is attributed to.
///
/// `Rx` tags engine-level network-queue events that have no BRAM port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Port {
    /// Private per-thread port (never arbitrated).
    A,
    /// Read port of the event-driven organization's consumers.
    B,
    /// Arbitrated consumer pseudo-port.
    C,
    /// Producer pseudo-port.
    D,
    /// The thread's network receive interface (no BRAM port).
    Rx,
}

impl Port {
    /// Short stable name used in the JSONL schema and VCD signal names.
    pub fn name(self) -> &'static str {
        match self {
            Port::A => "A",
            Port::B => "B",
            Port::C => "C",
            Port::D => "D",
            Port::Rx => "rx",
        }
    }
}

/// Producer or consumer side of a pseudo-port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Role {
    /// Writing side (port D / selection window).
    Producer,
    /// Reading side (port C / event outputs).
    Consumer,
}

impl Role {
    /// One-letter prefix used in counter names (`p0`, `c3`, …).
    pub fn prefix(self) -> char {
        match self {
            Role::Producer => 'p',
            Role::Consumer => 'c',
        }
    }
}

/// What happened this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A consumer read was issued to the BRAM (data arrives next cycle).
    ReadIssue {
        /// Consumer pseudo-port index.
        consumer: usize,
    },
    /// A held request was accepted (write committed / read issued).
    Grant {
        /// Which side was granted.
        role: Role,
        /// Pseudo-port index within that side.
        index: usize,
    },
    /// A consumer was eligible (dependency armed) but lost arbitration or
    /// was pre-empted this cycle — the §3.1 jitter source.
    ArbStall {
        /// Consumer pseudo-port index.
        consumer: usize,
    },
    /// A consumer is blocked on its dependency (producer has not written,
    /// or this round's reads are drained).
    DepWait {
        /// Consumer pseudo-port index.
        consumer: usize,
    },
    /// A producer is blocked waiting for its selection window (§3.2) or
    /// for the port to free.
    WindowStall {
        /// Producer pseudo-port index.
        producer: usize,
    },
    /// A producer write matched a dependency-list entry (CAM hit).
    DepListHit {
        /// Producer pseudo-port index.
        producer: usize,
    },
    /// A producer write missed the dependency list and was rejected.
    DepListMiss {
        /// Producer pseudo-port index.
        producer: usize,
    },
    /// A producer write was committed to the BRAM.
    Write {
        /// Producer pseudo-port index.
        producer: usize,
        /// Data written.
        data: u32,
    },
    /// Read data was delivered to a consumer.
    Deliver {
        /// Consumer pseudo-port index.
        consumer: usize,
        /// Data delivered.
        data: u32,
    },
    /// A message was pushed onto a thread's rx queue.
    QueuePush {
        /// Thread index.
        thread: usize,
        /// Queue depth after the push.
        depth: usize,
    },
    /// A message was popped from a thread's rx queue.
    QueuePop {
        /// Thread index.
        thread: usize,
        /// Queue depth after the pop.
        depth: usize,
    },
}

impl EventKind {
    /// Stable snake_case name used in the JSONL schema and counters.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::ReadIssue { .. } => "read_issue",
            EventKind::Grant { .. } => "grant",
            EventKind::ArbStall { .. } => "arb_stall",
            EventKind::DepWait { .. } => "dep_wait",
            EventKind::WindowStall { .. } => "window_stall",
            EventKind::DepListHit { .. } => "deplist_hit",
            EventKind::DepListMiss { .. } => "deplist_miss",
            EventKind::Write { .. } => "write",
            EventKind::Deliver { .. } => "deliver",
            EventKind::QueuePush { .. } => "queue_push",
            EventKind::QueuePop { .. } => "queue_pop",
        }
    }
}

/// One cycle-attributed trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Clock cycle the event happened in.
    pub cycle: u64,
    /// Bank index. Sync banks come first in compilation order; private
    /// per-thread port-A banks follow (`sync_bank_count + thread_index`).
    pub bank: u16,
    /// Port the event is attributed to.
    pub port: Port,
    /// Address within the bank (0 when not address-attributed, e.g. queue
    /// events).
    pub addr: u32,
    /// The typed payload.
    pub kind: EventKind,
}

impl TraceEvent {
    /// Renders the event as one JSONL line (no trailing newline).
    ///
    /// Schema: `{"c":<cycle>,"bank":<bank>,"port":"<A|B|C|D|rx>",
    /// "addr":<addr>,"ev":"<kind>", ...kind fields}`.
    pub fn to_jsonl(&self) -> String {
        let mut s = format!(
            "{{\"c\":{},\"bank\":{},\"port\":\"{}\",\"addr\":{},\"ev\":\"{}\"",
            self.cycle,
            self.bank,
            self.port.name(),
            self.addr,
            self.kind.name()
        );
        match self.kind {
            EventKind::ReadIssue { consumer }
            | EventKind::ArbStall { consumer }
            | EventKind::DepWait { consumer } => {
                s.push_str(&format!(",\"consumer\":{consumer}"));
            }
            EventKind::Grant { role, index } => {
                s.push_str(&format!(
                    ",\"role\":\"{}\",\"index\":{index}",
                    match role {
                        Role::Producer => "producer",
                        Role::Consumer => "consumer",
                    }
                ));
            }
            EventKind::WindowStall { producer }
            | EventKind::DepListHit { producer }
            | EventKind::DepListMiss { producer } => {
                s.push_str(&format!(",\"producer\":{producer}"));
            }
            EventKind::Write { producer, data } => {
                s.push_str(&format!(",\"producer\":{producer},\"data\":{data}"));
            }
            EventKind::Deliver { consumer, data } => {
                s.push_str(&format!(",\"consumer\":{consumer},\"data\":{data}"));
            }
            EventKind::QueuePush { thread, depth } | EventKind::QueuePop { thread, depth } => {
                s.push_str(&format!(",\"thread\":{thread},\"depth\":{depth}"));
            }
        }
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_line_carries_attribution_and_payload() {
        let ev = TraceEvent {
            cycle: 42,
            bank: 1,
            port: Port::C,
            addr: 0x10,
            kind: EventKind::Deliver {
                consumer: 3,
                data: 99,
            },
        };
        let line = ev.to_jsonl();
        assert_eq!(
            line,
            "{\"c\":42,\"bank\":1,\"port\":\"C\",\"addr\":16,\"ev\":\"deliver\",\"consumer\":3,\"data\":99}"
        );
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(EventKind::ArbStall { consumer: 0 }.name(), "arb_stall");
        assert_eq!(
            EventKind::DepListMiss { producer: 0 }.name(),
            "deplist_miss"
        );
        assert_eq!(
            EventKind::Grant {
                role: Role::Producer,
                index: 0
            }
            .name(),
            "grant"
        );
    }
}
