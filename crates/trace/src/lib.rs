//! # memsync-trace — cycle-level observability for the simulator
//!
//! The paper's central claim (§3.1 vs §3.2) is that the event-driven
//! statically scheduled organization delivers *deterministic*
//! produce-to-consume latency while the arbitrated organization jitters
//! under contention. Defending that claim needs per-cycle visibility into
//! grants, stalls, dependency-list hits, and queue depths — this crate is
//! that apparatus.
//!
//! * [`event`] — typed cycle events (`ReadIssue`, `Grant`, `ArbStall`,
//!   `DepListHit`/`Miss`, `Deliver`, `QueuePush`/`Pop`, …) with
//!   `(cycle, bank, port, addr)` attribution;
//! * [`sink`] — the near-zero-cost [`TraceSink`] trait with [`NullSink`],
//!   [`RingBufferSink`], [`VecSink`], [`JsonlSink`], and [`SharedSink`];
//! * [`registry`] — the counter/histogram registry: arbitration stalls per
//!   consumer, grant-wait histograms with percentile summaries,
//!   dependency-list occupancy high-water marks, rx-queue depths, per-bank
//!   utilization;
//! * [`latency`] — the produce-to-consume [`LatencyRecorder`] (folded into
//!   the registry, previously `memsync_sim::metrics`);
//! * [`vcd`] — exports event streams as VCD so traces open in waveform
//!   viewers;
//! * [`bucket`] — fixed-footprint log2 [`BucketHistogram`]s for long-lived
//!   processes (the serve stage-latency histograms);
//! * [`span`] — request-scoped [`SpanRecord`]s: per-stage timings of one
//!   submit batch through the serving stack, JSONL-exportable;
//! * [`json`] — a dependency-free JSON value builder used by the JSONL
//!   sink and the metrics exporters;
//! * [`prng`] — a small deterministic PCG generator so traces are
//!   reproducible without a crates.io `rand` dependency.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bucket;
pub mod event;
pub mod json;
pub mod latency;
pub mod prng;
pub mod registry;
pub mod sink;
pub mod span;
pub mod vcd;

pub use bucket::{BucketHistogram, BucketSummary};
pub use event::{EventKind, Port, Role, TraceEvent};
pub use json::Json;
pub use latency::{LatencyRecorder, LatencyStats};
pub use prng::Pcg32;
pub use registry::{HistSummary, Histogram, MetricsRegistry, RecordingSink};
pub use sink::{JsonlSink, NullSink, RingBufferSink, SharedSink, TraceSink, VecSink};
pub use span::SpanRecord;
