//! Request-scoped span records for the serving stack.
//!
//! A span covers one submit batch's trip through one shard:
//! `decode → queue-wait → batch-coalesce → backend-execute → egress encode
//! → socket write`. The serve crate builds these on the connection thread
//! after the response is written and exports them as JSON Lines (one
//! object per line, `kind:"span"`), reusing the
//! [`JsonlSink`](crate::sink::JsonlSink) machinery, so a whole loadgen run
//! can be reconstructed offline into a per-stage waterfall.

use crate::json::Json;

/// Per-stage timing record of one submit batch through one shard.
///
/// All durations are nanoseconds. Batch-level stages (coalesce, execute,
/// egress) are measured once per shard activation and attributed whole to
/// every job in the batch — a span answers "what did this request
/// experience", not "what did this request exclusively consume".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanRecord {
    /// Span id: client-assigned (high bit clear) or server-assigned
    /// (high bit set) when the client did not tag the batch.
    pub span: u64,
    /// Whether the id came from the client.
    pub client_assigned: bool,
    /// Shard that executed this slice of the batch.
    pub shard: u16,
    /// Packets routed to this shard under this span.
    pub packets: u64,
    /// Request frame decode time on the connection thread.
    pub decode_ns: u64,
    /// Queue residency: submit enqueue to shard pickup.
    pub queue_ns: u64,
    /// Coalesce window: shard pickup to backend submit (batching more
    /// jobs from the queue).
    pub coalesce_ns: u64,
    /// Backend execution: submit_batch through egress drain.
    pub execute_ns: u64,
    /// Egress classification/verification after the drain.
    pub egress_ns: u64,
    /// Response frame encode + socket write on the connection thread.
    pub write_ns: u64,
    /// Backend-reported simulator cycles consumed by the activation
    /// (zero on the fast backend).
    pub sim_cycles: u64,
    /// Backend-reported egress frames emitted by the activation.
    pub frames: u64,
}

impl SpanRecord {
    /// Sum of every stage duration (the span's end-to-end service time as
    /// seen from the server).
    pub fn total_ns(&self) -> u64 {
        self.decode_ns
            .saturating_add(self.queue_ns)
            .saturating_add(self.coalesce_ns)
            .saturating_add(self.execute_ns)
            .saturating_add(self.egress_ns)
            .saturating_add(self.write_ns)
    }

    /// Renders the span as a JSON object (`kind:"span"`).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("kind", "span".into())
            .with("span", self.span.into())
            .with("client_assigned", self.client_assigned.into())
            .with("shard", u64::from(self.shard).into())
            .with("packets", self.packets.into())
            .with("decode_ns", self.decode_ns.into())
            .with("queue_ns", self.queue_ns.into())
            .with("coalesce_ns", self.coalesce_ns.into())
            .with("execute_ns", self.execute_ns.into())
            .with("egress_ns", self.egress_ns.into())
            .with("write_ns", self.write_ns.into())
            .with("sim_cycles", self.sim_cycles.into())
            .with("frames", self.frames.into())
    }

    /// One JSONL line (compact [`SpanRecord::to_json`]).
    pub fn to_jsonl(&self) -> String {
        self.to_json().render()
    }

    /// Parses a JSONL line back into a span. Returns `None` for lines
    /// that are not spans (e.g. meta headers) or are missing fields — the
    /// offline waterfall reader skips those.
    pub fn parse(line: &str) -> Option<SpanRecord> {
        let j = Json::parse(line.trim()).ok()?;
        if j.get("kind").and_then(Json::as_str) != Some("span") {
            return None;
        }
        let u = |key: &str| j.get(key).and_then(Json::as_u64);
        Some(SpanRecord {
            span: u("span")?,
            client_assigned: j.get("client_assigned").and_then(Json::as_bool)?,
            shard: u16::try_from(u("shard")?).ok()?,
            packets: u("packets")?,
            decode_ns: u("decode_ns")?,
            queue_ns: u("queue_ns")?,
            coalesce_ns: u("coalesce_ns")?,
            execute_ns: u("execute_ns")?,
            egress_ns: u("egress_ns")?,
            write_ns: u("write_ns")?,
            sim_cycles: u("sim_cycles")?,
            frames: u("frames")?,
        })
    }

    /// Stage names in waterfall order, paired with each stage's duration.
    pub fn stages(&self) -> [(&'static str, u64); 6] {
        [
            ("decode", self.decode_ns),
            ("queue", self.queue_ns),
            ("coalesce", self.coalesce_ns),
            ("execute", self.execute_ns),
            ("egress", self.egress_ns),
            ("write", self.write_ns),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SpanRecord {
        SpanRecord {
            span: 0x1234,
            client_assigned: true,
            shard: 3,
            packets: 100,
            decode_ns: 10,
            queue_ns: 20,
            coalesce_ns: 30,
            execute_ns: 40,
            egress_ns: 50,
            write_ns: 60,
            sim_cycles: 7,
            frames: 2,
        }
    }

    #[test]
    fn jsonl_round_trips() {
        let s = sample();
        let line = s.to_jsonl();
        assert!(line.contains("\"kind\":\"span\""));
        assert_eq!(SpanRecord::parse(&line), Some(s));
    }

    #[test]
    fn total_is_stage_sum() {
        assert_eq!(sample().total_ns(), 210);
        let stages = sample().stages();
        assert_eq!(stages.iter().map(|(_, v)| v).sum::<u64>(), 210);
        assert_eq!(stages[0].0, "decode");
        assert_eq!(stages[5].0, "write");
    }

    #[test]
    fn parse_skips_non_span_lines() {
        assert_eq!(SpanRecord::parse("{\"kind\":\"meta\",\"run\":1}"), None);
        assert_eq!(SpanRecord::parse("not json"), None);
        assert_eq!(SpanRecord::parse("{\"kind\":\"span\"}"), None);
    }

    #[test]
    fn server_assigned_ids_survive_the_high_bit() {
        let mut s = sample();
        s.span = (1 << 63) | 42;
        s.client_assigned = false;
        let line = s.to_jsonl();
        assert_eq!(SpanRecord::parse(&line), Some(s));
    }
}
