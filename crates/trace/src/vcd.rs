//! VCD (Value Change Dump) export of trace-event streams, so captured
//! traces open in ordinary waveform viewers (GTKWave & co).
//!
//! Events map onto signals as follows: pulse wires `bank{b}.grant_c{i}`,
//! `bank{b}.grant_p{i}`, `bank{b}.stall_c{i}`, `bank{b}.depwait_c{i}`,
//! `bank{b}.winstall_p{i}`, `bank{b}.write`, `bank{b}.read`, and
//! `bank{b}.deliver_c{i}`; vector signals `bank{b}.data[31:0]` (last
//! delivered word) and `queue{t}.depth[15:0]`. One VCD timestep is one
//! clock cycle.

use crate::event::{EventKind, Role, TraceEvent};
use std::collections::BTreeMap;
use std::io::{self, Write};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SignalKind {
    Pulse,
    Vector(u32),
}

/// VCD identifier code for the n-th signal (printable ASCII, base 94).
fn idcode(mut n: usize) -> String {
    let mut s = String::new();
    loop {
        s.push((33 + (n % 94)) as u8 as char);
        n /= 94;
        if n == 0 {
            break;
        }
    }
    s
}

/// Signals touched by one event: `(name, kind, value)`.
fn signals_of(ev: &TraceEvent) -> Vec<(String, SignalKind, u64)> {
    let b = ev.bank;
    match ev.kind {
        EventKind::ReadIssue { .. } => {
            vec![(format!("bank{b}.read"), SignalKind::Pulse, 1)]
        }
        EventKind::Grant {
            role: Role::Consumer,
            index,
        } => {
            vec![(format!("bank{b}.grant_c{index}"), SignalKind::Pulse, 1)]
        }
        EventKind::Grant {
            role: Role::Producer,
            index,
        } => {
            vec![(format!("bank{b}.grant_p{index}"), SignalKind::Pulse, 1)]
        }
        EventKind::ArbStall { consumer } => {
            vec![(format!("bank{b}.stall_c{consumer}"), SignalKind::Pulse, 1)]
        }
        EventKind::DepWait { consumer } => {
            vec![(format!("bank{b}.depwait_c{consumer}"), SignalKind::Pulse, 1)]
        }
        EventKind::WindowStall { producer } => {
            vec![(
                format!("bank{b}.winstall_p{producer}"),
                SignalKind::Pulse,
                1,
            )]
        }
        EventKind::DepListHit { .. } => {
            vec![(format!("bank{b}.deplist_hit"), SignalKind::Pulse, 1)]
        }
        EventKind::DepListMiss { .. } => {
            vec![(format!("bank{b}.deplist_miss"), SignalKind::Pulse, 1)]
        }
        EventKind::Write { data, .. } => vec![
            (format!("bank{b}.write"), SignalKind::Pulse, 1),
            (
                format!("bank{b}.data"),
                SignalKind::Vector(32),
                u64::from(data),
            ),
        ],
        EventKind::Deliver { consumer, data } => vec![
            (format!("bank{b}.deliver_c{consumer}"), SignalKind::Pulse, 1),
            (
                format!("bank{b}.data"),
                SignalKind::Vector(32),
                u64::from(data),
            ),
        ],
        EventKind::QueuePush { thread, depth } | EventKind::QueuePop { thread, depth } => {
            vec![(
                format!("queue{thread}.depth"),
                SignalKind::Vector(16),
                depth as u64,
            )]
        }
    }
}

/// Writes the event stream as a VCD document.
///
/// # Errors
///
/// Propagates I/O failures of the writer.
pub fn export_vcd(events: &[TraceEvent], out: &mut impl Write) -> io::Result<()> {
    // Pass 1: the signal dictionary.
    let mut signals: BTreeMap<String, SignalKind> = BTreeMap::new();
    let mut by_cycle: BTreeMap<u64, Vec<(String, SignalKind, u64)>> = BTreeMap::new();
    for ev in events {
        for (name, kind, value) in signals_of(ev) {
            signals.entry(name.clone()).or_insert(kind);
            by_cycle
                .entry(ev.cycle)
                .or_default()
                .push((name, kind, value));
        }
    }

    writeln!(out, "$date memsync-trace $end")?;
    writeln!(out, "$version memsync-trace VCD exporter $end")?;
    writeln!(out, "$timescale 1ns $end")?;
    writeln!(out, "$scope module memsync $end")?;
    let ids: BTreeMap<&String, String> = signals
        .keys()
        .enumerate()
        .map(|(i, name)| (name, idcode(i)))
        .collect();
    for (name, kind) in &signals {
        let width = match kind {
            SignalKind::Pulse => 1,
            SignalKind::Vector(w) => *w,
        };
        // VCD identifiers may not contain '.', so flatten it.
        let vcd_name = name.replace('.', "_");
        writeln!(out, "$var wire {width} {} {vcd_name} $end", ids[name])?;
    }
    writeln!(out, "$upscope $end")?;
    writeln!(out, "$enddefinitions $end")?;

    // Initial values: everything zero.
    writeln!(out, "#0")?;
    writeln!(out, "$dumpvars")?;
    for (name, kind) in &signals {
        match kind {
            SignalKind::Pulse => writeln!(out, "0{}", ids[name])?,
            SignalKind::Vector(_) => writeln!(out, "b0 {}", ids[name])?,
        }
    }
    writeln!(out, "$end")?;

    // Pass 2: walk cycles in order; pulses raised this cycle fall at the
    // next emitted timestep unless re-raised.
    let mut current: BTreeMap<&String, u64> = signals.keys().map(|k| (k, 0)).collect();
    let cycles: Vec<u64> = by_cycle.keys().copied().collect();
    for (i, &cycle) in cycles.iter().enumerate() {
        let mut target: BTreeMap<&String, u64> = signals
            .iter()
            .map(|(name, kind)| {
                let hold = match kind {
                    SignalKind::Pulse => 0, // pulses fall unless re-raised
                    SignalKind::Vector(_) => current[name],
                };
                (name, hold)
            })
            .collect();
        for (name, _, value) in &by_cycle[&cycle] {
            *target.get_mut(name).expect("signal registered") = *value;
        }
        let changes: Vec<(&String, u64)> = target
            .iter()
            .filter(|(name, v)| current[**name] != **v)
            .map(|(name, v)| (*name, *v))
            .collect();
        if !changes.is_empty() {
            writeln!(out, "#{cycle}")?;
            for (name, v) in &changes {
                match signals[*name] {
                    SignalKind::Pulse => writeln!(out, "{}{}", v, ids[name])?,
                    SignalKind::Vector(_) => writeln!(out, "b{:b} {}", v, ids[name])?,
                }
                *current.get_mut(name).expect("signal registered") = *v;
            }
        }
        // Drop pulses one cycle later when the trace goes quiet there.
        let next_traced = cycles.get(i + 1).copied();
        if next_traced != Some(cycle + 1) {
            let falling: Vec<&String> = signals
                .iter()
                .filter(|(name, kind)| **kind == SignalKind::Pulse && current[*name] != 0)
                .map(|(name, _)| name)
                .collect();
            if !falling.is_empty() {
                writeln!(out, "#{}", cycle + 1)?;
                for name in falling {
                    writeln!(out, "0{}", ids[name])?;
                    *current.get_mut(name).expect("signal registered") = 0;
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Port;

    fn ev(cycle: u64, kind: EventKind) -> TraceEvent {
        TraceEvent {
            cycle,
            bank: 0,
            port: Port::C,
            addr: 4,
            kind,
        }
    }

    #[test]
    fn exports_header_vars_and_changes() {
        let events = vec![
            ev(
                0,
                EventKind::Write {
                    producer: 0,
                    data: 7,
                },
            ),
            ev(
                2,
                EventKind::Grant {
                    role: Role::Consumer,
                    index: 1,
                },
            ),
            ev(
                3,
                EventKind::Deliver {
                    consumer: 1,
                    data: 7,
                },
            ),
        ];
        let mut buf = Vec::new();
        export_vcd(&events, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("$timescale 1ns $end"));
        assert!(s.contains("bank0_write"));
        assert!(s.contains("bank0_grant_c1"));
        assert!(s.contains("bank0_deliver_c1"));
        assert!(s.contains("b111 "), "data vector 7 dumped: {s}");
        assert!(s.contains("#0\n") && s.contains("#2\n") && s.contains("#3\n"));
    }

    #[test]
    fn pulses_fall_after_their_cycle() {
        let events = vec![ev(5, EventKind::ArbStall { consumer: 0 })];
        let mut buf = Vec::new();
        export_vcd(&events, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        let up = s.find("#5\n").expect("rise timestep");
        let down = s.find("#6\n").expect("fall timestep");
        assert!(up < down);
    }

    #[test]
    fn idcodes_are_unique_and_printable() {
        let codes: Vec<String> = (0..200).map(idcode).collect();
        let mut dedup = codes.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), codes.len());
        assert!(codes
            .iter()
            .all(|c| c.chars().all(|ch| ('!'..='~').contains(&ch))));
    }

    #[test]
    fn empty_event_list_still_produces_valid_header() {
        let mut buf = Vec::new();
        export_vcd(&[], &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("$enddefinitions $end"));
    }
}
