//! A dependency-free JSON value builder.
//!
//! The repo builds offline (no crates.io), so `serde_json` is not
//! available; this covers the small amount of JSON the metrics exporters
//! and the `report --json` binary need. Objects preserve insertion order,
//! which keeps every exporter deterministic.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer (rendered without a decimal point).
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating point (non-finite values render as `null`).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Creates an empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds a field to an object (panics on non-objects — builder misuse).
    pub fn set(&mut self, key: &str, value: Json) -> &mut Json {
        match self {
            Json::Obj(fields) => fields.push((key.to_owned(), value)),
            _ => panic!("Json::set on a non-object"),
        }
        self
    }

    /// Builder-style [`Json::set`].
    #[must_use]
    pub fn with(mut self, key: &str, value: Json) -> Json {
        self.set(key, value);
        self
    }

    /// Compact rendering.
    pub fn render(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, None, 0);
        s
    }

    /// Pretty rendering with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, Some(2), 0);
        s
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Num(f) => {
                if f.is_finite() {
                    let _ = write!(out, "{f}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

/// Where and why a [`Json::parse`] failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, JsonParseError> {
        Err(JsonParseError {
            at: self.pos,
            message: message.into(),
        })
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonParseError> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected {:?}", b as char))
        }
    }

    fn value(&mut self) -> Result<Json, JsonParseError> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            Some(c) => self.err(format!("unexpected byte {:?}", *c as char)),
            None => self.err("unexpected end of input"),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            self.err(format!("expected {word}"))
        }
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        let mut integral = true;
        while let Some(&c) = self.bytes.get(self.pos) {
            match c {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        if integral {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        match text.parse::<f64>() {
            Ok(f) => Ok(Json::Num(f)),
            Err(_) => self.err(format!("bad number {text:?}")),
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32);
                            match hex {
                                Some(c) => {
                                    out.push(c);
                                    self.pos += 4;
                                }
                                None => return self.err("bad \\u escape"),
                            }
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input came from a
                    // &str, so boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).map_err(|_| {
                        JsonParseError {
                            at: self.pos,
                            message: "invalid utf-8".into(),
                        }
                    })?;
                    let ch = rest.chars().next().expect("nonempty checked above");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonParseError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }
}

impl Json {
    /// Parses a JSON document (the inverse of [`Json::render`]). Integral
    /// numbers come back as [`Json::UInt`]/[`Json::Int`], everything else
    /// as [`Json::Num`].
    ///
    /// # Errors
    ///
    /// Returns the byte offset and cause of the first syntax error,
    /// including trailing garbage after the document.
    pub fn parse(s: &str) -> Result<Json, JsonParseError> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return p.err("trailing garbage after document");
        }
        Ok(v)
    }

    /// Object field lookup (`None` on non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(u) => Some(*u),
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as a float (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(f) => Some(*f),
            Json::UInt(u) => Some(*u as f64),
            Json::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl From<i64> for Json {
    fn from(i: i64) -> Json {
        Json::Int(i)
    }
}

impl From<u64> for Json {
    fn from(u: u64) -> Json {
        Json::UInt(u)
    }
}

impl From<usize> for Json {
    fn from(u: usize) -> Json {
        Json::UInt(u as u64)
    }
}

impl From<f64> for Json {
    fn from(f: f64) -> Json {
        Json::Num(f)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures_compactly() {
        let j = Json::obj()
            .with("name", "bank0".into())
            .with("stalls", Json::UInt(3))
            .with("util", Json::Num(0.5))
            .with("tags", Json::Arr(vec!["a".into(), "b".into()]));
        assert_eq!(
            j.render(),
            "{\"name\":\"bank0\",\"stalls\":3,\"util\":0.5,\"tags\":[\"a\",\"b\"]}"
        );
    }

    #[test]
    fn escapes_control_characters() {
        let j = Json::Str("a\"b\\c\nd\u{1}".to_owned());
        assert_eq!(j.render(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn pretty_output_is_indented_and_reparseable_shape() {
        let j = Json::obj()
            .with("x", Json::Int(-4))
            .with("y", Json::Arr(vec![Json::Null]));
        let p = j.pretty();
        assert!(p.contains("\n  \"x\": -4"));
        assert!(p.ends_with('}'));
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn parse_inverts_render() {
        let j = Json::obj()
            .with("name", "bank\"0\"".into())
            .with("stalls", Json::UInt(3))
            .with("delta", Json::Int(-7))
            .with("util", Json::Num(0.5))
            .with("tiny", Json::Num(1e-9))
            .with("on", Json::Bool(true))
            .with("none", Json::Null)
            .with("tags", Json::Arr(vec!["a".into(), Json::UInt(2)]))
            .with("nested", Json::obj().with("x", Json::UInt(1)));
        assert_eq!(Json::parse(&j.render()).unwrap(), j);
        assert_eq!(Json::parse(&j.pretty()).unwrap(), j);
    }

    #[test]
    fn parse_accessors_navigate_documents() {
        let doc = r#"{"a": 3, "b": -2, "f": 1.25, "s": "x", "on": false,
                      "arr": [{"k": 9}]}"#;
        let j = Json::parse(doc).unwrap();
        assert_eq!(j.get("a").and_then(Json::as_u64), Some(3));
        assert_eq!(j.get("b").and_then(Json::as_f64), Some(-2.0));
        assert_eq!(j.get("f").and_then(Json::as_f64), Some(1.25));
        assert_eq!(j.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(j.get("on").and_then(Json::as_bool), Some(false));
        let arr = j.get("arr").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].get("k").and_then(Json::as_u64), Some(9));
        assert_eq!(j.get("missing"), None);
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in ["", "{", "{\"a\":}", "[1,]", "{\"a\":1} x", "\"abc", "tru"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
        let e = Json::parse("{\"a\": @}").unwrap_err();
        assert_eq!(e.at, 6, "{e}");
    }

    #[test]
    fn parse_handles_escapes_and_unicode() {
        let j = Json::parse(r#""a\"b\\c\ndAü""#).unwrap();
        assert_eq!(j.as_str(), Some("a\"b\\c\ndAü"));
    }
}
