//! A dependency-free JSON value builder.
//!
//! The repo builds offline (no crates.io), so `serde_json` is not
//! available; this covers the small amount of JSON the metrics exporters
//! and the `report --json` binary need. Objects preserve insertion order,
//! which keeps every exporter deterministic.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer (rendered without a decimal point).
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating point (non-finite values render as `null`).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Creates an empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds a field to an object (panics on non-objects — builder misuse).
    pub fn set(&mut self, key: &str, value: Json) -> &mut Json {
        match self {
            Json::Obj(fields) => fields.push((key.to_owned(), value)),
            _ => panic!("Json::set on a non-object"),
        }
        self
    }

    /// Builder-style [`Json::set`].
    #[must_use]
    pub fn with(mut self, key: &str, value: Json) -> Json {
        self.set(key, value);
        self
    }

    /// Compact rendering.
    pub fn render(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, None, 0);
        s
    }

    /// Pretty rendering with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, Some(2), 0);
        s
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Num(f) => {
                if f.is_finite() {
                    let _ = write!(out, "{f}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl From<i64> for Json {
    fn from(i: i64) -> Json {
        Json::Int(i)
    }
}

impl From<u64> for Json {
    fn from(u: u64) -> Json {
        Json::UInt(u)
    }
}

impl From<usize> for Json {
    fn from(u: usize) -> Json {
        Json::UInt(u as u64)
    }
}

impl From<f64> for Json {
    fn from(f: f64) -> Json {
        Json::Num(f)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures_compactly() {
        let j = Json::obj()
            .with("name", "bank0".into())
            .with("stalls", Json::UInt(3))
            .with("util", Json::Num(0.5))
            .with("tags", Json::Arr(vec!["a".into(), "b".into()]));
        assert_eq!(
            j.render(),
            "{\"name\":\"bank0\",\"stalls\":3,\"util\":0.5,\"tags\":[\"a\",\"b\"]}"
        );
    }

    #[test]
    fn escapes_control_characters() {
        let j = Json::Str("a\"b\\c\nd\u{1}".to_owned());
        assert_eq!(j.render(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn pretty_output_is_indented_and_reparseable_shape() {
        let j = Json::obj()
            .with("x", Json::Int(-4))
            .with("y", Json::Arr(vec![Json::Null]));
        let p = j.pretty();
        assert!(p.contains("\n  \"x\": -4"));
        assert!(p.ends_with('}'));
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }
}
