//! Fixed-footprint log2-bucketed histograms for hot-path stage timings.
//!
//! The raw-sample [`Histogram`](crate::registry::Histogram) keeps every
//! sample, which is right for the simulator's bounded runs but wrong for a
//! long-lived serving process: a shard handling millions of batches would
//! grow its stage histograms without bound. [`BucketHistogram`] trades
//! exact percentiles for O(1) memory — 64 power-of-two buckets, saturating
//! counts, exact min/max — while keeping merge associative and loss-free
//! (merging two bucket histograms equals recording every sample into one,
//! bucket by bucket). Percentile queries answer with the *upper bound* of
//! the bucket containing the requested rank, so two histograms agree on a
//! percentile whenever they agree within one bucket — the resolution the
//! tracing acceptance test pins live snapshots against offline span
//! recomputation with.

use crate::json::Json;

/// Number of buckets: one zero bucket plus one per power of two of `u64`.
pub const BUCKETS: usize = 64;

/// Bucket index for a sample value.
///
/// `0` maps to bucket 0; any other `v` maps to `floor(log2(v)) + 1`,
/// clamped to [`BUCKETS`]` - 1`. Bucket `i > 0` therefore covers the value
/// range `[2^(i-1), 2^i - 1]`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((63 - v.leading_zeros()) as usize + 1).min(BUCKETS - 1)
    }
}

/// Upper bound of a bucket's value range (inclusive).
#[inline]
pub fn bucket_upper_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

/// A 64-bucket log2 histogram with saturating counts.
#[derive(Debug, Clone)]
pub struct BucketHistogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for BucketHistogram {
    fn default() -> Self {
        BucketHistogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl BucketHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample. Counts and the running sum saturate instead of
    /// wrapping, so a registry that outlives `u64` traffic stays ordered.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] = self.counts[bucket_index(v)].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact minimum sample; `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum sample; `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of all samples (saturating sum / count); `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Per-bucket counts, index `i` covering `[2^(i-1), 2^i - 1]`
    /// (bucket 0 holds zeros).
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.counts
    }

    /// Percentile estimate: the upper bound of the bucket holding the
    /// requested rank, clamped to the exact observed `max` (and floored at
    /// the exact `min` for low quantiles). `None` when empty.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the q-th sample, 1-based, same rounding as the raw-sample
        // `percentile` (round to nearest index).
        let rank = (q * (self.count - 1) as f64).round() as u64 + 1;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                return Some(bucket_upper_bound(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Folds `other` into `self`: bucket counts add (saturating), min/max
    /// tighten, sums saturate. Equivalent to having recorded every sample
    /// into one histogram.
    pub fn merge(&mut self, other: &BucketHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Percentile summary; `None` when empty.
    pub fn summary(&self) -> Option<BucketSummary> {
        (self.count > 0).then(|| BucketSummary {
            count: self.count,
            min: self.min,
            max: self.max,
            mean: self.mean().expect("non-empty"),
            p50: self.percentile(0.50).expect("non-empty"),
            p90: self.percentile(0.90).expect("non-empty"),
            p99: self.percentile(0.99).expect("non-empty"),
        })
    }
}

/// Percentile summary of a [`BucketHistogram`]. Percentiles are bucket
/// upper bounds; min/max are exact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BucketSummary {
    /// Sample count.
    pub count: u64,
    /// Exact minimum.
    pub min: u64,
    /// Exact maximum.
    pub max: u64,
    /// Mean (saturating sum / count).
    pub mean: f64,
    /// Median (bucket upper bound).
    pub p50: u64,
    /// 90th percentile (bucket upper bound).
    pub p90: u64,
    /// 99th percentile (bucket upper bound).
    pub p99: u64,
}

impl BucketSummary {
    /// Renders the summary as a JSON object (same shape as
    /// [`HistSummary`](crate::registry::HistSummary)).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("count", self.count.into())
            .with("min", self.min.into())
            .with("max", self.max.into())
            .with("mean", self.mean.into())
            .with("p50", self.p50.into())
            .with("p90", self.p90.into())
            .with("p99", self.p99.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_covers_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn upper_bounds_close_each_range() {
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(11), 2047);
        assert_eq!(bucket_upper_bound(BUCKETS - 1), u64::MAX);
        for v in [0u64, 1, 2, 3, 7, 100, 1 << 40] {
            assert!(v <= bucket_upper_bound(bucket_index(v)));
        }
    }

    #[test]
    fn records_and_summarizes() {
        let mut h = BucketHistogram::new();
        for v in [1u64, 1, 2, 4, 1000] {
            h.record(v);
        }
        let s = h.summary().unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        assert!((s.mean - 201.6).abs() < 1e-9);
        // p50: rank 3 lands in bucket 2 ([2,3]) → upper bound 3.
        assert_eq!(s.p50, 3);
        // p99 lands in the bucket of 1000 ([512,1023]) but clamps to the
        // exact max.
        assert_eq!(s.p99, 1000);
    }

    #[test]
    fn empty_histogram_answers_none() {
        let h = BucketHistogram::new();
        assert_eq!(h.count(), 0);
        assert!(h.min().is_none());
        assert!(h.max().is_none());
        assert!(h.mean().is_none());
        assert!(h.percentile(0.5).is_none());
        assert!(h.summary().is_none());
    }

    #[test]
    fn merge_equals_single_recording() {
        let samples = [0u64, 1, 5, 9, 1 << 20, 77, 3, 3, 3, u64::MAX];
        let mut single = BucketHistogram::new();
        let mut left = BucketHistogram::new();
        let mut right = BucketHistogram::new();
        for (i, &v) in samples.iter().enumerate() {
            single.record(v);
            if i % 2 == 0 {
                left.record(v);
            } else {
                right.record(v);
            }
        }
        left.merge(&right);
        assert_eq!(left.buckets(), single.buckets());
        assert_eq!(left.count(), single.count());
        assert_eq!(left.min(), single.min());
        assert_eq!(left.max(), single.max());
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(left.percentile(q), single.percentile(q));
        }
    }

    #[test]
    fn counts_saturate_instead_of_wrapping() {
        let mut h = BucketHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        // sum saturates at u64::MAX rather than wrapping to small values.
        assert!(h.mean().unwrap() >= (u64::MAX / 2) as f64);
        let mut other = h.clone();
        other.merge(&h);
        assert_eq!(other.count(), 4);
        assert_eq!(other.max(), Some(u64::MAX));
    }

    #[test]
    fn percentile_clamps_to_observed_extremes() {
        let mut h = BucketHistogram::new();
        h.record(1000);
        // Single sample: every percentile is that sample, not the bucket
        // bound 1023.
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.percentile(q), Some(1000));
        }
    }

    #[test]
    fn summary_json_has_percentile_fields() {
        let mut h = BucketHistogram::new();
        h.record(5);
        let s = h.summary().unwrap().to_json().render();
        for key in ["count", "min", "max", "mean", "p50", "p90", "p99"] {
            assert!(s.contains(key), "missing {key} in {s}");
        }
    }
}
