//! The counter/histogram registry.
//!
//! Everything the trace layer counts lands here: arbitration stalls per
//! consumer, grant-wait histograms, dependency-list occupancy high-water
//! marks, rx-queue depths, per-bank utilization, and the folded-in
//! produce-to-consume [`LatencyRecorder`]. The registry understands the
//! event vocabulary directly ([`MetricsRegistry::observe`]), so any
//! instrumentation site that emits [`TraceEvent`]s feeds the counters for
//! free via [`RecordingSink`].
//!
//! Counter naming scheme (stable, documented in EXPERIMENTS.md):
//!
//! * `bank{b}.arb_stall.c{i}` — eligible consumer lost arbitration;
//! * `bank{b}.dep_wait.c{i}` — consumer blocked on its dependency;
//! * `bank{b}.window_stall.p{i}` — producer waiting for its window;
//! * `bank{b}.grant.{c|p}{i}` — grants per pseudo-port;
//! * `bank{b}.deplist_hit` / `bank{b}.deplist_miss` — CAM outcomes;
//! * `bank{b}.writes` / `bank{b}.reads` / `bank{b}.deliveries.c{i}`;
//! * `queue{t}.push` / `queue{t}.pop` — rx-queue traffic;
//! * histograms `bank{b}.grant_wait.{c|p}{i}` and pooled
//!   `bank{b}.grant_wait.consumers`;
//! * high-water marks `bank{b}.deplist_occupancy` and `queue{t}.depth`.

use crate::bucket::BucketHistogram;
use crate::event::{EventKind, Port, Role, TraceEvent};
use crate::json::Json;
use crate::latency::{LatencyRecorder, LatencyStats};
use crate::sink::TraceSink;
use std::collections::BTreeMap;

/// Linear-interpolation percentile of an *unsorted* sample slice.
///
/// `q` is in `[0, 1]`; returns `None` on an empty slice. Single samples
/// answer every percentile with themselves.
pub fn percentile(samples: &[u64], q: f64) -> Option<u64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted: Vec<u64> = samples.to_vec();
    sorted.sort_unstable();
    let q = q.clamp(0.0, 1.0);
    let idx = q * (sorted.len() - 1) as f64;
    Some(sorted[idx.round() as usize])
}

/// A recorded sample distribution.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    samples: Vec<u64>,
}

/// Percentile summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistSummary {
    /// Sample count.
    pub count: usize,
    /// Minimum.
    pub min: u64,
    /// Maximum.
    pub max: u64,
    /// Mean.
    pub mean: f64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
}

impl Histogram {
    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.samples.push(v);
    }

    /// Raw samples in recording order.
    pub fn samples(&self) -> &[u64] {
        &self.samples
    }

    /// Percentile summary; `None` when empty.
    pub fn summary(&self) -> Option<HistSummary> {
        let s = LatencyStats::of(&self.samples)?;
        Some(HistSummary {
            count: s.count,
            min: s.min,
            max: s.max,
            mean: s.mean,
            p50: percentile(&self.samples, 0.50).expect("non-empty"),
            p90: percentile(&self.samples, 0.90).expect("non-empty"),
            p99: percentile(&self.samples, 0.99).expect("non-empty"),
        })
    }
}

impl HistSummary {
    /// Renders the summary as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("count", self.count.into())
            .with("min", self.min.into())
            .with("max", self.max.into())
            .with("mean", self.mean.into())
            .with("p50", self.p50.into())
            .with("p90", self.p90.into())
            .with("p99", self.p99.into())
    }
}

/// The registry: counters, histograms, high-water marks, and the folded-in
/// latency recorder.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    buckets: BTreeMap<String, BucketHistogram>,
    highwater: BTreeMap<String, u64>,
    /// Produce-to-consume latency streams (the former
    /// `memsync_sim::metrics::LatencyRecorder`).
    pub latency: LatencyRecorder,
    /// Grant-wait tracking: first stalled cycle per (bank, role, index).
    wait_since: BTreeMap<(u16, char, usize), u64>,
    /// Highest cycle seen in any event (utilization denominator).
    last_cycle: u64,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments a counter by one.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Increments a counter by `n`.
    pub fn add(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += n;
    }

    /// Current counter value (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Counters whose name starts with `prefix`, summed.
    pub fn counter_sum(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| v)
            .sum()
    }

    /// Records a histogram sample.
    pub fn record(&mut self, name: &str, v: u64) {
        self.histograms
            .entry(name.to_owned())
            .or_default()
            .record(v);
    }

    /// A histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Records a sample into a fixed-footprint log2 [`BucketHistogram`]
    /// (the long-lived-process counterpart of [`MetricsRegistry::record`]:
    /// O(1) memory, exact min/max, bucket-resolution percentiles).
    pub fn record_bucket(&mut self, name: &str, v: u64) {
        self.buckets.entry(name.to_owned()).or_default().record(v);
    }

    /// A bucketed histogram by name.
    pub fn bucket_histogram(&self, name: &str) -> Option<&BucketHistogram> {
        self.buckets.get(name)
    }

    /// Every bucketed histogram, in name order.
    pub fn bucket_histograms(&self) -> impl Iterator<Item = (&str, &BucketHistogram)> {
        self.buckets.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Raises a high-water mark (keeps the maximum ever observed).
    pub fn observe_gauge(&mut self, name: &str, v: u64) {
        let slot = self.highwater.entry(name.to_owned()).or_insert(0);
        *slot = (*slot).max(v);
    }

    /// A high-water mark by name.
    pub fn highwater(&self, name: &str) -> Option<u64> {
        self.highwater.get(name).copied()
    }

    // ---- latency fold: the LatencyRecorder API, delegated --------------

    /// Notes a producer write (see [`LatencyRecorder::record_write`]).
    pub fn record_write(&mut self, addr: u32, cycle: u64) {
        self.latency.record_write(addr, cycle);
    }

    /// Notes a delivery (see [`LatencyRecorder::record_delivery`]).
    pub fn record_delivery(&mut self, addr: u32, consumer: usize, cycle: u64) {
        self.latency.record_delivery(addr, consumer, cycle);
    }

    /// Latency summary for one stream.
    pub fn stats(&self, addr: u32, consumer: usize) -> Option<LatencyStats> {
        self.latency.stats(addr, consumer)
    }

    /// Latency summary pooled over every stream.
    pub fn pooled_stats(&self) -> Option<LatencyStats> {
        self.latency.pooled_stats()
    }

    /// Recorded latency streams.
    pub fn streams(&self) -> Vec<(u32, usize)> {
        self.latency.streams()
    }

    // ---- event vocabulary ----------------------------------------------

    /// Folds one trace event into the counters/histograms. All standard
    /// instrumentation flows through here (via [`RecordingSink`]), so the
    /// registry works identically whether events come from the full-system
    /// engine or from a directly driven wrapper model.
    pub fn observe(&mut self, ev: &TraceEvent) {
        self.last_cycle = self.last_cycle.max(ev.cycle);
        let b = ev.bank;
        match ev.kind {
            EventKind::ReadIssue { .. } => {
                self.inc(&format!("bank{b}.reads"));
            }
            EventKind::Grant { role, index } => {
                let p = role.prefix();
                self.inc(&format!("bank{b}.grant.{p}{index}"));
                if let Some(start) = self.wait_since.remove(&(b, p, index)) {
                    let waited = ev.cycle.saturating_sub(start);
                    self.record(&format!("bank{b}.grant_wait.{p}{index}"), waited);
                    if role == Role::Consumer {
                        self.record(&format!("bank{b}.grant_wait.consumers"), waited);
                    }
                }
            }
            EventKind::ArbStall { consumer } => {
                self.inc(&format!("bank{b}.arb_stall.c{consumer}"));
                self.wait_since
                    .entry((b, 'c', consumer))
                    .or_insert(ev.cycle);
            }
            EventKind::DepWait { consumer } => {
                self.inc(&format!("bank{b}.dep_wait.c{consumer}"));
                self.wait_since
                    .entry((b, 'c', consumer))
                    .or_insert(ev.cycle);
            }
            EventKind::WindowStall { producer } => {
                self.inc(&format!("bank{b}.window_stall.p{producer}"));
                self.wait_since
                    .entry((b, 'p', producer))
                    .or_insert(ev.cycle);
            }
            EventKind::DepListHit { .. } => {
                self.inc(&format!("bank{b}.deplist_hit"));
            }
            EventKind::DepListMiss { .. } => {
                self.inc(&format!("bank{b}.deplist_miss"));
            }
            EventKind::Write { .. } => {
                self.inc(&format!("bank{b}.writes"));
                // Port-A writes are private (never synchronized); only
                // sync-port writes open a produce-to-consume round.
                if ev.port != Port::A {
                    self.record_write(ev.addr, ev.cycle);
                }
            }
            EventKind::Deliver { consumer, .. } => {
                self.inc(&format!("bank{b}.deliveries.c{consumer}"));
                if ev.port != Port::A {
                    self.record_delivery(ev.addr, consumer, ev.cycle);
                }
            }
            EventKind::QueuePush { thread, depth } => {
                self.inc(&format!("queue{thread}.push"));
                self.observe_gauge(&format!("queue{thread}.depth"), depth as u64);
            }
            EventKind::QueuePop { thread, .. } => {
                self.inc(&format!("queue{thread}.pop"));
            }
        }
    }

    /// Folds another registry into this one: counters sum, histograms
    /// concatenate their samples (percentile summaries of the merged
    /// histogram equal those of recording every sample into one registry —
    /// `percentile` is order-independent), high-water marks keep the
    /// maximum, latency streams concatenate, and the utilization span
    /// covers both. In-flight grant-wait state (`wait_since`) is *not*
    /// merged: merge operates on closed measurement windows, e.g. the
    /// per-shard registries a serve stats frame aggregates.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.histograms {
            self.histograms
                .entry(k.clone())
                .or_default()
                .samples
                .extend(&h.samples);
        }
        for (k, h) in &other.buckets {
            self.buckets.entry(k.clone()).or_default().merge(h);
        }
        for (k, v) in &other.highwater {
            let slot = self.highwater.entry(k.clone()).or_insert(0);
            *slot = (*slot).max(*v);
        }
        self.latency.merge(&other.latency);
        self.last_cycle = self.last_cycle.max(other.last_cycle);
    }

    /// Per-bank utilization: BRAM-active cycles (reads + writes) over the
    /// observed cycle span, for every bank with any activity.
    pub fn utilization(&self) -> Vec<(String, f64)> {
        let span = (self.last_cycle + 1) as f64;
        self.counters
            .keys()
            .filter_map(|k| {
                let bank = k
                    .strip_suffix(".writes")
                    .or_else(|| k.strip_suffix(".reads"))?;
                Some(bank.to_owned())
            })
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .map(|bank| {
                let busy = self.counter(&format!("{bank}.writes"))
                    + self.counter(&format!("{bank}.reads"));
                (bank, busy as f64 / span)
            })
            .collect()
    }

    /// Exports everything as one JSON object: counters, high-water marks,
    /// histogram percentile summaries, utilization, and latency streams.
    pub fn to_json(&self) -> Json {
        let mut counters = Json::obj();
        for (k, v) in &self.counters {
            counters.set(k, (*v).into());
        }
        let mut hw = Json::obj();
        for (k, v) in &self.highwater {
            hw.set(k, (*v).into());
        }
        let mut hists = Json::obj();
        for (k, h) in &self.histograms {
            if let Some(s) = h.summary() {
                hists.set(k, s.to_json());
            }
        }
        let mut buckets = Json::obj();
        for (k, h) in &self.buckets {
            if let Some(s) = h.summary() {
                buckets.set(k, s.to_json());
            }
        }
        let mut util = Json::obj();
        for (bank, u) in self.utilization() {
            util.set(&bank, u.into());
        }
        let mut streams = Json::Arr(Vec::new());
        if let Json::Arr(items) = &mut streams {
            for (addr, consumer) in self.latency.streams() {
                let s = self.latency.stats(addr, consumer).expect("stream exists");
                items.push(
                    Json::obj()
                        .with("addr", u64::from(addr).into())
                        .with("consumer", consumer.into())
                        .with("count", s.count.into())
                        .with("min", s.min.into())
                        .with("max", s.max.into())
                        .with("mean", s.mean.into())
                        .with("variance", s.variance.into())
                        .with("deterministic", s.is_deterministic().into()),
                );
            }
        }
        let pooled = match self.latency.pooled_stats() {
            Some(s) => Json::obj()
                .with("count", s.count.into())
                .with("min", s.min.into())
                .with("max", s.max.into())
                .with("mean", s.mean.into())
                .with("variance", s.variance.into())
                .with("deterministic", s.is_deterministic().into()),
            None => Json::Null,
        };
        Json::obj()
            .with("counters", counters)
            .with("highwater", hw)
            .with("histograms", hists)
            .with("buckets", buckets)
            .with("utilization", util)
            .with(
                "latency",
                Json::obj().with("streams", streams).with("pooled", pooled),
            )
    }
}

/// Tees events into a user sink *and* a [`MetricsRegistry`]. The engine
/// threads one of these through the wrapper models so one emission updates
/// both the event stream and the counters.
#[derive(Debug)]
pub struct RecordingSink<'a> {
    /// Downstream event sink.
    pub sink: &'a mut dyn TraceSink,
    /// Registry fed by every event.
    pub registry: &'a mut MetricsRegistry,
}

impl TraceSink for RecordingSink<'_> {
    fn emit(&mut self, ev: &TraceEvent) {
        self.registry.observe(ev);
        self.sink.emit(ev);
    }

    fn enabled(&self) -> bool {
        true
    }

    fn flush(&mut self) {
        self.sink.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Port;
    use crate::sink::VecSink;

    fn ev(cycle: u64, kind: EventKind) -> TraceEvent {
        TraceEvent {
            cycle,
            bank: 0,
            port: Port::C,
            addr: 4,
            kind,
        }
    }

    #[test]
    fn percentile_interpolates_and_handles_edges() {
        assert_eq!(percentile(&[], 0.5), None);
        assert_eq!(percentile(&[7], 0.99), Some(7));
        let s = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10];
        assert_eq!(percentile(&s, 0.0), Some(1));
        assert_eq!(percentile(&s, 1.0), Some(10));
        assert_eq!(percentile(&s, 0.5), Some(6));
    }

    #[test]
    fn observe_counts_stalls_and_grant_waits() {
        let mut r = MetricsRegistry::new();
        r.observe(&ev(10, EventKind::ArbStall { consumer: 1 }));
        r.observe(&ev(11, EventKind::ArbStall { consumer: 1 }));
        r.observe(&ev(
            12,
            EventKind::Grant {
                role: Role::Consumer,
                index: 1,
            },
        ));
        assert_eq!(r.counter("bank0.arb_stall.c1"), 2);
        let h = r.histogram("bank0.grant_wait.c1").expect("wait recorded");
        assert_eq!(h.samples(), &[2]);
        assert_eq!(
            r.histogram("bank0.grant_wait.consumers").unwrap().samples(),
            &[2]
        );
        // A grant with no preceding stall records no wait.
        r.observe(&ev(
            13,
            EventKind::Grant {
                role: Role::Consumer,
                index: 0,
            },
        ));
        assert!(r.histogram("bank0.grant_wait.c0").is_none());
    }

    #[test]
    fn observe_feeds_latency_recorder() {
        let mut r = MetricsRegistry::new();
        r.observe(&ev(
            5,
            EventKind::Write {
                producer: 0,
                data: 9,
            },
        ));
        r.observe(&ev(
            8,
            EventKind::Deliver {
                consumer: 0,
                data: 9,
            },
        ));
        assert_eq!(r.latency.samples(4, 0), &[3]);
        assert_eq!(r.counter("bank0.writes"), 1);
        assert_eq!(r.counter("bank0.deliveries.c0"), 1);
    }

    #[test]
    fn queue_events_track_highwater() {
        let mut r = MetricsRegistry::new();
        r.observe(&ev(
            0,
            EventKind::QueuePush {
                thread: 2,
                depth: 1,
            },
        ));
        r.observe(&ev(
            1,
            EventKind::QueuePush {
                thread: 2,
                depth: 2,
            },
        ));
        r.observe(&ev(
            2,
            EventKind::QueuePop {
                thread: 2,
                depth: 1,
            },
        ));
        assert_eq!(r.highwater("queue2.depth"), Some(2));
        assert_eq!(r.counter("queue2.push"), 2);
        assert_eq!(r.counter("queue2.pop"), 1);
    }

    #[test]
    fn utilization_counts_reads_and_writes_over_span() {
        let mut r = MetricsRegistry::new();
        r.observe(&ev(
            0,
            EventKind::Write {
                producer: 0,
                data: 0,
            },
        ));
        r.observe(&ev(1, EventKind::ReadIssue { consumer: 0 }));
        r.observe(&ev(9, EventKind::ArbStall { consumer: 0 }));
        let u = r.utilization();
        assert_eq!(u.len(), 1);
        assert_eq!(u[0].0, "bank0");
        assert!((u[0].1 - 0.2).abs() < 1e-12, "2 busy / 10 cycles");
    }

    #[test]
    fn json_export_contains_all_sections() {
        let mut r = MetricsRegistry::new();
        r.observe(&ev(
            3,
            EventKind::Write {
                producer: 0,
                data: 1,
            },
        ));
        r.observe(&ev(
            5,
            EventKind::Deliver {
                consumer: 1,
                data: 1,
            },
        ));
        r.observe_gauge("bank0.deplist_occupancy", 3);
        r.record_bucket("stage.queue_ns", 17);
        let s = r.to_json().render();
        for key in [
            "counters",
            "highwater",
            "histograms",
            "buckets",
            "utilization",
            "latency",
            "pooled",
        ] {
            assert!(s.contains(key), "missing {key} in {s}");
        }
        assert!(s.contains("bank0.deplist_occupancy"));
    }

    #[test]
    fn recording_sink_tees_to_sink_and_registry() {
        let mut v = VecSink::new();
        let mut r = MetricsRegistry::new();
        let mut tee = RecordingSink {
            sink: &mut v,
            registry: &mut r,
        };
        tee.emit(&ev(1, EventKind::ArbStall { consumer: 0 }));
        assert_eq!(v.events.len(), 1);
        assert_eq!(r.counter("bank0.arb_stall.c0"), 1);
    }

    #[test]
    fn counter_sum_matches_prefix() {
        let mut r = MetricsRegistry::new();
        r.add("bank0.arb_stall.c0", 2);
        r.add("bank0.arb_stall.c1", 3);
        r.add("bank1.arb_stall.c0", 5);
        assert_eq!(r.counter_sum("bank0.arb_stall."), 5);
        assert_eq!(r.counter_sum("bank"), 10);
    }
}
