//! A small deterministic PRNG (PCG-XSH-RR 64/32).
//!
//! The repo builds offline, so the `rand` crate is unavailable; every
//! stochastic component (traffic sources, workload generators, randomized
//! tests) uses this generator instead. Seeding goes through SplitMix64 so
//! small seeds still produce well-mixed streams, and the whole thing is
//! deterministic by construction — a requirement for byte-identical traces.

use std::ops::Range;

const PCG_MUL: u64 = 6364136223846793005;

/// Permuted congruential generator, 64-bit state, 32-bit output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl Pcg32 {
    /// Seeds the generator; equal seeds give equal streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let initstate = splitmix64(&mut sm);
        let initseq = splitmix64(&mut sm);
        let mut rng = Pcg32 {
            state: 0,
            inc: (initseq << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(initstate);
        rng.next_u32();
        rng
    }

    /// Next 32 uniformly random bits.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MUL).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 random bits give a uniform double in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Uniform value in the half-open `range` (Lemire's unbiased method).
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    pub fn gen_range(&mut self, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end - range.start;
        // Widening multiply rejection sampling.
        loop {
            let x = self.next_u64();
            let m = (u128::from(x)) * (u128::from(span));
            let low = m as u64;
            if low >= span {
                return range.start + (m >> 64) as u64;
            }
            let threshold = span.wrapping_neg() % span;
            if low >= threshold {
                return range.start + (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` in the half-open `range`.
    pub fn gen_range_usize(&mut self, range: Range<usize>) -> usize {
        self.gen_range(range.start as u64..range.end as u64) as usize
    }

    /// Uniform `u32` in the half-open `range`.
    pub fn gen_range_u32(&mut self, range: Range<u32>) -> u32 {
        self.gen_range(u64::from(range.start)..u64::from(range.end)) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Pcg32::seed_from_u64(7);
        let mut b = Pcg32::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Pcg32::seed_from_u64(1);
        let mut b = Pcg32::seed_from_u64(2);
        let sa: Vec<u32> = (0..8).map(|_| a.next_u32()).collect();
        let sb: Vec<u32> = (0..8).map(|_| b.next_u32()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn gen_bool_rate_approximates_p() {
        let mut rng = Pcg32::seed_from_u64(42);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Pcg32::seed_from_u64(3);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = Pcg32::seed_from_u64(9);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            seen[(v - 3) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values reachable: {seen:?}");
    }
}
