//! Properties of the implementation model: packing bounds, monotonicity,
//! and timing sanity over randomized netlists.

use memsync_fpga::calibration::PackingModel;
use memsync_fpga::slices::pack;
use memsync_fpga::techmap::Resources;
use memsync_rtl::builder::ModuleBuilder;
use proptest::prelude::*;

proptest! {
    /// Packed slices always lie between perfect sharing and no sharing.
    #[test]
    fn packing_within_bounds(luts in 0u32..5000, ffs in 0u32..5000, share in 0.0f64..=1.0) {
        let r = Resources { luts, ffs, brams: 0 };
        let s = pack(r, PackingModel { share_fraction: share });
        let lower = luts.div_ceil(2).max(ffs.div_ceil(2));
        let upper = luts.div_ceil(2) + ffs.div_ceil(2);
        prop_assert!(s >= lower, "{s} < lower {lower}");
        prop_assert!(s <= upper, "{s} > upper {upper}");
    }

    /// Adding independent logic never reduces area and never improves the
    /// critical path.
    #[test]
    fn area_and_delay_monotone(extra in 1usize..20) {
        let build = |n: usize| {
            let mut b = ModuleBuilder::new("m");
            let x = b.input("x", 16);
            let mut acc = b.register(x, 0, "q0");
            for i in 0..n {
                let s = b.add(acc, x, &format!("s{i}"));
                acc = b.register(s, 0, &format!("q{i}"));
            }
            b.output("y", acc);
            b.finish()
        };
        let small = memsync_fpga::report::implement(&build(1)).expect("ok");
        let big = memsync_fpga::report::implement(&build(1 + extra)).expect("ok");
        prop_assert!(big.luts >= small.luts);
        prop_assert!(big.ffs > small.ffs);
        prop_assert!(big.timing.fmax_mhz <= small.timing.fmax_mhz + 1e-9);
    }

    /// Fmax is always positive and below the flip-flop-limited ceiling.
    #[test]
    fn fmax_bounded(width in 1u32..64) {
        let mut b = ModuleBuilder::new("m");
        let d = b.input("d", width);
        let q = b.register(d, 0, "q");
        b.output("q", q);
        let r = memsync_fpga::report::implement(&b.finish()).expect("ok");
        let m = memsync_fpga::calibration::DelayModel::default();
        let ceiling = 1000.0 / (m.t_cko + m.t_su);
        prop_assert!(r.timing.fmax_mhz > 0.0);
        prop_assert!(r.timing.fmax_mhz <= ceiling + 1e-9);
    }
}
