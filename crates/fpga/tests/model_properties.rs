//! Properties of the implementation model: packing bounds, monotonicity,
//! and timing sanity over randomized netlists (seeded Pcg32 sweeps).

use memsync_fpga::calibration::PackingModel;
use memsync_fpga::slices::pack;
use memsync_fpga::techmap::Resources;
use memsync_rtl::builder::ModuleBuilder;
use memsync_trace::Pcg32;

/// Packed slices always lie between perfect sharing and no sharing.
#[test]
fn packing_within_bounds() {
    let mut rng = Pcg32::seed_from_u64(0xFA6A_0001);
    for _case in 0..512 {
        let luts = rng.gen_range_u32(0..5000);
        let ffs = rng.gen_range_u32(0..5000);
        let share = rng.gen_range(0..1_000_001) as f64 / 1_000_000.0;
        let r = Resources {
            luts,
            ffs,
            brams: 0,
        };
        let s = pack(
            r,
            PackingModel {
                share_fraction: share,
            },
        );
        let lower = luts.div_ceil(2).max(ffs.div_ceil(2));
        let upper = luts.div_ceil(2) + ffs.div_ceil(2);
        assert!(s >= lower, "{s} < lower {lower}");
        assert!(s <= upper, "{s} > upper {upper}");
    }
}

/// Adding independent logic never reduces area and never improves the
/// critical path.
#[test]
fn area_and_delay_monotone() {
    let build = |n: usize| {
        let mut b = ModuleBuilder::new("m");
        let x = b.input("x", 16);
        let mut acc = b.register(x, 0, "q0");
        for i in 0..n {
            let s = b.add(acc, x, &format!("s{i}"));
            acc = b.register(s, 0, &format!("q{i}"));
        }
        b.output("y", acc);
        b.finish()
    };
    let small = memsync_fpga::report::implement(&build(1)).expect("ok");
    for extra in 1usize..20 {
        let big = memsync_fpga::report::implement(&build(1 + extra)).expect("ok");
        assert!(big.luts >= small.luts);
        assert!(big.ffs > small.ffs);
        assert!(big.timing.fmax_mhz <= small.timing.fmax_mhz + 1e-9);
    }
}

/// Fmax is always positive and below the flip-flop-limited ceiling.
#[test]
fn fmax_bounded() {
    for width in 1u32..64 {
        let mut b = ModuleBuilder::new("m");
        let d = b.input("d", width);
        let q = b.register(d, 0, "q");
        b.output("q", q);
        let r = memsync_fpga::report::implement(&b.finish()).expect("ok");
        let m = memsync_fpga::calibration::DelayModel::default();
        let ceiling = 1000.0 / (m.t_cko + m.t_su);
        assert!(r.timing.fmax_mhz > 0.0);
        assert!(r.timing.fmax_mhz <= ceiling + 1e-9);
    }
}
