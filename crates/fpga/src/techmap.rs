//! Technology mapping: netlist primitives → 4-input LUTs and flip-flops.
//!
//! Every primitive of the `memsync-rtl` IR is decomposed into the Virtex-II
//! Pro fabric resources it would occupy after synthesis: LUT4s (with MUXF5/
//! MUXF6 absorption for wide multiplexers and carry chains for arithmetic),
//! slice flip-flops, and 18 Kb BRAM blocks. CAMs are mapped to fabric
//! (FF storage + parallel comparators), matching the paper's note that the
//! dependency list uses "a content addressable memory (CAM) like structure".

use crate::bram::blocks_needed;
use memsync_rtl::netlist::{Instance, Module, PrimOp};

/// Fabric resources of one instance or one module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Resources {
    /// 4-input LUTs.
    pub luts: u32,
    /// Slice flip-flops.
    pub ffs: u32,
    /// 18 Kb BRAM blocks.
    pub brams: u32,
}

impl Resources {
    /// Component-wise sum.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Resources) -> Resources {
        Resources {
            luts: self.luts + other.luts,
            ffs: self.ffs + other.ffs,
            brams: self.brams + other.brams,
        }
    }
}

impl std::ops::Add for Resources {
    type Output = Resources;
    fn add(self, rhs: Resources) -> Resources {
        Resources::add(self, rhs)
    }
}

impl std::iter::Sum for Resources {
    fn sum<I: Iterator<Item = Resources>>(iter: I) -> Resources {
        iter.fold(Resources::default(), Resources::add)
    }
}

/// LUT4s needed for an associative n-input, 1-bit gate tree.
///
/// Each LUT4 merges up to 4 operands; a tree of them reduces `n` operands
/// with `ceil((n-1)/3)` LUTs.
pub fn gate_tree_luts(n: u32) -> u32 {
    if n <= 1 {
        0
    } else {
        (n - 1).div_ceil(3)
    }
}

/// Logic levels of the same tree.
pub fn gate_tree_levels(n: u32) -> u32 {
    if n <= 1 {
        0
    } else if n <= 4 {
        1
    } else {
        1 + gate_tree_levels(n.div_ceil(4))
    }
}

/// LUT4s per output bit of an n-way multiplexer, with MUXF5/MUXF6 absorbing
/// the combine stage of each 4:1 block.
pub fn mux_luts_per_bit(n: u32) -> u32 {
    match n {
        0 | 1 => 0,
        2 => 1,
        3 | 4 => 2,
        _ => 2 * n.div_ceil(4) + mux_luts_per_bit(n.div_ceil(4)),
    }
}

/// Logic levels of an n-way multiplexer. A 2:1 mux is one LUT level; 3:1
/// and 4:1 need the LUT pair + MUXF5 (two levels); 5:1 through 16:1 add the
/// MUXF6/MUXF7 combine stage (three levels); wider muxes tree 16:1 blocks.
pub fn mux_levels(n: u32) -> u32 {
    match n {
        0 | 1 => 0,
        2 => 1,
        3 | 4 => 2,
        5..=16 => 3,
        _ => 3 + mux_levels(n.div_ceil(16)),
    }
}

/// Maps a single instance to fabric resources.
pub fn map_instance(module: &Module, inst: &Instance) -> Resources {
    let w_out = inst.outputs.first().map(|&o| module.width(o)).unwrap_or(1);
    match &inst.op {
        PrimOp::Const { .. }
        | PrimOp::Not
        | PrimOp::Shl { .. }
        | PrimOp::Shr { .. }
        | PrimOp::Concat
        | PrimOp::Slice { .. } => Resources::default(),
        PrimOp::And | PrimOp::Or | PrimOp::Xor => Resources {
            luts: w_out * gate_tree_luts(inst.inputs.len() as u32),
            ..Resources::default()
        },
        PrimOp::Mux => {
            let n = (inst.inputs.len() - 1) as u32;
            Resources {
                luts: w_out * mux_luts_per_bit(n),
                ..Resources::default()
            }
        }
        PrimOp::Add | PrimOp::Sub => {
            // One LUT per bit plus the dedicated carry chain.
            Resources {
                luts: w_out,
                ..Resources::default()
            }
        }
        PrimOp::Mul => {
            // Embedded MULT18X18 blocks plus partial-product glue; counted
            // as fabric LUTs (one per output bit) since the device model
            // does not track multiplier blocks separately.
            Resources {
                luts: w_out,
                ..Resources::default()
            }
        }
        PrimOp::Eq | PrimOp::Ne => {
            let w = module.width(inst.inputs[0]);
            // Two bits compared per LUT, then an AND-reduce tree.
            let pairs = w.div_ceil(2);
            Resources {
                luts: pairs + gate_tree_luts(pairs),
                ..Resources::default()
            }
        }
        PrimOp::Lt => {
            // Carry-chain comparator: one LUT per bit.
            let w = module.width(inst.inputs[0]);
            Resources {
                luts: w,
                ..Resources::default()
            }
        }
        PrimOp::ReduceOr | PrimOp::ReduceAnd => {
            let w = module.width(inst.inputs[0]);
            Resources {
                luts: gate_tree_luts(w),
                ..Resources::default()
            }
        }
        PrimOp::Register { .. } => Resources {
            ffs: w_out,
            ..Resources::default()
        },
        PrimOp::Bram { depth, width } => Resources {
            brams: blocks_needed(*depth, *width),
            ..Resources::default()
        },
        PrimOp::Cam {
            entries,
            key_width,
            data_width,
        } => {
            // Fabric CAM: per entry, FF storage for key+data+valid, a
            // key comparator, and its slot in the priority/select network.
            let cmp_luts = {
                let pairs = key_width.div_ceil(2);
                pairs + gate_tree_luts(pairs)
            };
            let index_width = memsync_rtl::netlist::addr_width(*entries);
            let select_luts = *entries // priority chain cell per entry
                + index_width * gate_tree_luts(*entries) // index encoder
                + data_width * mux_luts_per_bit(*entries); // data mux
            Resources {
                luts: entries * cmp_luts + select_luts,
                ffs: entries * (key_width + data_width + 1),
                brams: 0,
            }
        }
    }
}

/// Maps a whole module, packing fanout-free trees of 1-bit gates into LUT
/// clusters first (see [`crate::cluster`]), exactly as synthesis would.
pub fn map_module(module: &Module) -> Resources {
    let clustering = crate::cluster::clusters(module);
    let mut total = Resources::default();
    for (idx, inst) in module.instances.iter().enumerate() {
        match clustering.cluster_of[idx] {
            Some(_) if clustering.is_root(idx) => {
                let c = clustering.cluster(idx).expect("root has a cluster");
                total.luts += gate_tree_luts(c.input_count().max(2));
            }
            Some(_) => {} // absorbed into the cluster's LUT tree
            None => total = total + map_instance(module, inst),
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsync_rtl::builder::ModuleBuilder;

    #[test]
    fn gate_tree_sizes() {
        assert_eq!(gate_tree_luts(1), 0);
        assert_eq!(gate_tree_luts(2), 1);
        assert_eq!(gate_tree_luts(4), 1);
        assert_eq!(gate_tree_luts(5), 2);
        assert_eq!(gate_tree_luts(7), 2);
        assert_eq!(gate_tree_luts(8), 3);
        assert_eq!(gate_tree_levels(4), 1);
        assert_eq!(gate_tree_levels(5), 2);
        assert_eq!(gate_tree_levels(16), 2);
        assert_eq!(gate_tree_levels(17), 3);
    }

    #[test]
    fn mux_sizes() {
        assert_eq!(mux_luts_per_bit(2), 1);
        assert_eq!(mux_luts_per_bit(4), 2);
        // 8-way: two 4:1 blocks (4 LUTs) + a 2:1 combine (1 LUT).
        assert_eq!(mux_luts_per_bit(8), 5);
        assert_eq!(mux_levels(2), 1);
        assert_eq!(mux_levels(4), 2);
        assert_eq!(mux_levels(8), 3);
        assert_eq!(mux_levels(16), 3);
        assert_eq!(mux_levels(17), 4);
    }

    #[test]
    fn register_maps_to_ffs_only() {
        let mut b = ModuleBuilder::new("m");
        let d = b.input("d", 16);
        let q = b.register(d, 0, "q");
        b.output("q", q);
        let m = b.finish();
        let r = map_module(&m);
        assert_eq!(
            r,
            Resources {
                luts: 0,
                ffs: 16,
                brams: 0
            }
        );
    }

    #[test]
    fn adder_maps_one_lut_per_bit() {
        let mut b = ModuleBuilder::new("m");
        let a = b.input("a", 32);
        let c = b.input("b", 32);
        let s = b.add(a, c, "s");
        b.output("s", s);
        let r = map_module(&b.finish());
        assert_eq!(r.luts, 32);
        assert_eq!(r.ffs, 0);
    }

    #[test]
    fn wide_mux_grows_with_ways() {
        let counts: Vec<u32> = [2u32, 4, 8]
            .iter()
            .map(|&n| {
                let mut b = ModuleBuilder::new("m");
                let sel = b.input("sel", 3);
                let data: Vec<_> = (0..n).map(|i| b.input(&format!("d{i}"), 18)).collect();
                let y = b.mux(sel, &data, "y");
                b.output("y", y);
                map_module(&b.finish()).luts
            })
            .collect();
        assert!(counts[0] < counts[1] && counts[1] < counts[2], "{counts:?}");
    }

    #[test]
    fn bram_maps_to_one_block() {
        let mut b = ModuleBuilder::new("m");
        let addr = b.input("addr", 9);
        let din = b.input("din", 36);
        let we = b.input("we", 1);
        let en = b.input("en", 1);
        let (da, _) = b.bram(512, 36, addr, din, we, en, addr, din, we, en, "ram");
        b.output("q", da);
        let r = map_module(&b.finish());
        assert_eq!(r.brams, 1);
        assert_eq!(r.luts, 0);
    }

    #[test]
    fn cam_ff_storage_scales_with_entries() {
        let per_entries = |n: u32| {
            let mut b = ModuleBuilder::new("m");
            let key = b.input("key", 10);
            let wdata = b.input("wdata", 4);
            let widx = b.input("widx", memsync_rtl::netlist::addr_width(n));
            let we = b.input("we", 1);
            let (hit, _, _) = b.cam(n, 10, 4, key, key, wdata, widx, we, "deplist");
            b.output("hit", hit);
            map_module(&b.finish())
        };
        let r4 = per_entries(4);
        let r8 = per_entries(8);
        assert_eq!(r4.ffs, 4 * 15);
        assert_eq!(r8.ffs, 8 * 15);
        assert!(r8.luts > r4.luts);
    }

    #[test]
    fn wiring_ops_are_free() {
        let mut b = ModuleBuilder::new("m");
        let a = b.input("a", 16);
        let s = b.slice(a, 7, 0, "lo");
        let c = b.concat(&[s, s], "cc");
        b.output("y", c);
        assert_eq!(map_module(&b.finish()), Resources::default());
    }
}
