//! Slice packing: LUT/FF counts → occupied Virtex-II Pro slices.
//!
//! Each slice holds two LUT4s and two flip-flops. After placement, a slice
//! used for logic can also host unrelated flip-flops; the
//! [`PackingModel`](crate::calibration::PackingModel) captures how often the
//! map stage achieves that sharing.

use crate::calibration::PackingModel;
use crate::techmap::Resources;

/// Packs resources into slices under a packing model.
///
/// The result is bounded below by `max(ceil(luts/2), ceil(ffs/2))` (perfect
/// sharing) and above by `ceil(luts/2) + ceil(ffs/2)` (no sharing).
pub fn pack(resources: Resources, model: PackingModel) -> u32 {
    let lut_slices = resources.luts.div_ceil(2);
    let ff_slices = resources.ffs.div_ceil(2);
    let lower = lut_slices.max(ff_slices);
    let upper = lut_slices + ff_slices;
    let share = model.share_fraction.clamp(0.0, 1.0);
    let packed = f64::from(upper) - share * f64::from(upper - lower);
    packed.ceil() as u32
}

/// Packs with the calibrated Virtex-II Pro model.
pub fn pack_default(resources: Resources) -> u32 {
    pack(resources, PackingModel::VIRTEX2PRO)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn res(luts: u32, ffs: u32) -> Resources {
        Resources {
            luts,
            ffs,
            brams: 0,
        }
    }

    #[test]
    fn perfect_sharing_is_max() {
        let m = PackingModel {
            share_fraction: 1.0,
        };
        assert_eq!(pack(res(100, 60), m), 50);
        assert_eq!(pack(res(10, 100), m), 50);
    }

    #[test]
    fn no_sharing_is_sum() {
        let m = PackingModel {
            share_fraction: 0.0,
        };
        assert_eq!(pack(res(100, 60), m), 80);
    }

    #[test]
    fn default_is_between_bounds() {
        let r = res(100, 60);
        let s = pack_default(r);
        assert!((50..=80).contains(&s), "{s}");
    }

    #[test]
    fn monotone_in_resources() {
        let a = pack_default(res(40, 66));
        let b = pack_default(res(80, 66));
        let c = pack_default(res(160, 66));
        assert!(a <= b && b <= c);
    }

    #[test]
    fn zero_resources_take_zero_slices() {
        assert_eq!(pack_default(res(0, 0)), 0);
    }
}
