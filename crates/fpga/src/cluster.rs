//! LUT clustering: packing trees of small gates into 4-input LUTs.
//!
//! Generators emit fine-grained gate networks (2-input ANDs/ORs, inverters,
//! 1-bit comparisons). Synthesis collapses any fanout-free tree of such
//! gates into LUT4s. This module finds those trees — maximal connected
//! subgraphs of 1-bit logic gates linked through fanout-1 nets — and reports
//! per-cluster external input counts, from which both the area model
//! (`ceil((n-1)/3)` LUTs) and the timing model (`gate_tree_levels(n)` LUT
//! levels) derive their numbers. Both models consume the same clustering so
//! area and delay stay consistent.

use memsync_rtl::netlist::{Module, NetId, PortDir, PrimOp};
use std::collections::BTreeSet;

/// Whether an instance is a 1-bit logic gate that synthesis can absorb
/// into a LUT tree.
pub fn is_mergeable(module: &Module, inst: &memsync_rtl::netlist::Instance) -> bool {
    let one_bit_out = inst
        .outputs
        .first()
        .map(|&o| module.width(o) == 1)
        .unwrap_or(false);
    match inst.op {
        PrimOp::And | PrimOp::Or | PrimOp::Xor | PrimOp::Not => {
            one_bit_out && inst.inputs.iter().all(|&i| module.width(i) == 1)
        }
        PrimOp::Eq | PrimOp::Ne => one_bit_out && inst.inputs.iter().all(|&i| module.width(i) == 1),
        _ => false,
    }
}

/// Clustering result.
#[derive(Debug, Clone)]
pub struct Clustering {
    /// Cluster id per instance (None for non-mergeable instances).
    pub cluster_of: Vec<Option<usize>>,
    /// Per-cluster data.
    pub clusters: Vec<Cluster>,
}

/// One packed LUT tree.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// Instance indices in the cluster.
    pub members: Vec<usize>,
    /// Root instance (the one whose output leaves the cluster).
    pub root: usize,
    /// Distinct external input nets.
    pub ext_inputs: Vec<NetId>,
}

impl Cluster {
    /// Number of distinct external inputs.
    pub fn input_count(&self) -> u32 {
        self.ext_inputs.len() as u32
    }
}

impl Clustering {
    /// Whether `net` is internal to the cluster containing instance `inst`
    /// (i.e. driven by another member).
    pub fn is_internal_input(&self, module: &Module, inst_idx: usize, net: NetId) -> bool {
        let Some(cid) = self.cluster_of[inst_idx] else {
            return false;
        };
        self.driver_of(module, net)
            .is_some_and(|d| self.cluster_of[d] == Some(cid))
    }

    fn driver_of(&self, module: &Module, net: NetId) -> Option<usize> {
        module
            .instances
            .iter()
            .position(|i| i.outputs.contains(&net))
    }

    /// Whether the instance is the root of its cluster.
    pub fn is_root(&self, inst_idx: usize) -> bool {
        self.cluster_of[inst_idx].is_some_and(|cid| self.clusters[cid].root == inst_idx)
    }

    /// Cluster of an instance, if any.
    pub fn cluster(&self, inst_idx: usize) -> Option<&Cluster> {
        self.cluster_of[inst_idx].map(|cid| &self.clusters[cid])
    }
}

/// Computes the clustering of a module.
pub fn clusters(module: &Module) -> Clustering {
    let n = module.instances.len();
    let mergeable: Vec<bool> = module
        .instances
        .iter()
        .map(|i| is_mergeable(module, i))
        .collect();

    // Fanout per net (instance consumers + output ports).
    let mut fanout = vec![0u32; module.nets.len()];
    for inst in &module.instances {
        for &i in &inst.inputs {
            fanout[i.0] += 1;
        }
    }
    for p in module.ports_in(PortDir::Output) {
        fanout[p.net.0] += 1;
    }
    // Driver per net.
    let mut driver: Vec<Option<usize>> = vec![None; module.nets.len()];
    for (idx, inst) in module.instances.iter().enumerate() {
        for &o in &inst.outputs {
            driver[o.0] = Some(idx);
        }
    }

    // Union-find over instances.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for (idx, inst) in module.instances.iter().enumerate() {
        if !mergeable[idx] {
            continue;
        }
        for &input in &inst.inputs {
            if fanout[input.0] != 1 {
                continue;
            }
            if let Some(d) = driver[input.0] {
                if mergeable[d] {
                    let a = find(&mut parent, idx);
                    let b = find(&mut parent, d);
                    if a != b {
                        parent[a] = b;
                    }
                }
            }
        }
    }

    // Collect clusters.
    let mut cluster_ids: Vec<Option<usize>> = vec![None; n];
    let mut roots: Vec<usize> = Vec::new();
    for idx in 0..n {
        if !mergeable[idx] {
            continue;
        }
        let r = find(&mut parent, idx);
        let cid = match roots.iter().position(|&x| x == r) {
            Some(c) => c,
            None => {
                roots.push(r);
                roots.len() - 1
            }
        };
        cluster_ids[idx] = Some(cid);
    }

    let mut clusters_out: Vec<Cluster> = roots
        .iter()
        .map(|_| Cluster {
            members: Vec::new(),
            root: usize::MAX,
            ext_inputs: Vec::new(),
        })
        .collect();
    for (idx, cid) in cluster_ids.iter().enumerate() {
        if let Some(cid) = *cid {
            clusters_out[cid].members.push(idx);
        }
    }
    // Single consumer instance per net (only meaningful when fanout == 1).
    let mut sole_consumer: Vec<Option<usize>> = vec![None; module.nets.len()];
    for (idx, inst) in module.instances.iter().enumerate() {
        for &i in &inst.inputs {
            if fanout[i.0] == 1 {
                sole_consumer[i.0] = Some(idx);
            }
        }
    }
    for (cid, cluster) in clusters_out.iter_mut().enumerate() {
        let mut ext: BTreeSet<NetId> = BTreeSet::new();
        for &m in &cluster.members {
            for &input in &module.instances[m].inputs {
                let internal = driver[input.0].is_some_and(|d| cluster_ids[d] == Some(cid));
                if !internal {
                    ext.insert(input);
                }
            }
            // The root's output leaves the cluster: either fanout != 1 or
            // its single consumer is not a member.
            let out = module.instances[m].outputs[0];
            let leaves = fanout[out.0] != 1
                || sole_consumer[out.0].is_none_or(|j| cluster_ids[j] != Some(cid));
            if leaves {
                cluster.root = m;
            }
        }
        cluster.ext_inputs = ext.into_iter().collect();
        if cluster.root == usize::MAX {
            // Degenerate (cyclic) cluster — only possible in invalid
            // netlists; pick an arbitrary root so area accounting still
            // terminates (timing rejects the loop separately).
            cluster.root = cluster.members[0];
        }
    }

    Clustering {
        cluster_of: cluster_ids,
        clusters: clusters_out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::techmap::{gate_tree_levels, gate_tree_luts};
    use memsync_rtl::builder::ModuleBuilder;

    #[test]
    fn chain_of_gates_forms_one_cluster() {
        // (((a & b) | c) & d) -> one 4-input cluster -> 1 LUT, 1 level.
        let mut b = ModuleBuilder::new("m");
        let a = b.input("a", 1);
        let x = b.input("b", 1);
        let c = b.input("c", 1);
        let d = b.input("d", 1);
        let ab = b.and(&[a, x], "ab");
        let abc = b.or(&[ab, c], "abc");
        let y = b.and(&[abc, d], "y");
        b.output("y", y);
        let m = b.finish();
        let cl = clusters(&m);
        assert_eq!(cl.clusters.len(), 1);
        let cluster = &cl.clusters[0];
        assert_eq!(cluster.members.len(), 3);
        assert_eq!(cluster.input_count(), 4);
        assert_eq!(gate_tree_luts(cluster.input_count()), 1);
        assert_eq!(gate_tree_levels(cluster.input_count()), 1);
    }

    #[test]
    fn fanout_breaks_clusters() {
        // ab feeds two consumers -> cannot be absorbed.
        let mut b = ModuleBuilder::new("m");
        let a = b.input("a", 1);
        let x = b.input("b", 1);
        let c = b.input("c", 1);
        let ab = b.and(&[a, x], "ab");
        let y1 = b.or(&[ab, c], "y1");
        let y2 = b.xor(&[ab, c], "y2");
        b.output("y1", y1);
        b.output("y2", y2);
        let m = b.finish();
        let cl = clusters(&m);
        assert_eq!(cl.clusters.len(), 3, "ab, y1, y2 all separate");
    }

    #[test]
    fn wide_ops_are_not_merged() {
        let mut b = ModuleBuilder::new("m");
        let a = b.input("a", 8);
        let c = b.input("b", 8);
        let w = b.and(&[a, c], "wide");
        let r = b.reduce_or(w, "r");
        b.output("r", r);
        let m = b.finish();
        let cl = clusters(&m);
        assert!(
            cl.clusters.is_empty(),
            "8-bit gate and reduction stay separate"
        );
    }

    #[test]
    fn big_cluster_counts_levels() {
        // OR of 9 inputs through a chain of 2-input ORs: 9 ext inputs ->
        // 3 LUTs, 2 levels.
        let mut b = ModuleBuilder::new("m");
        let ins: Vec<_> = (0..9).map(|i| b.input(&format!("i{i}"), 1)).collect();
        let mut acc = ins[0];
        for &i in &ins[1..] {
            acc = b.or(&[acc, i], "acc");
        }
        b.output("y", acc);
        let m = b.finish();
        let cl = clusters(&m);
        assert_eq!(cl.clusters.len(), 1);
        assert_eq!(cl.clusters[0].input_count(), 9);
        assert_eq!(gate_tree_luts(9), 3);
        assert_eq!(gate_tree_levels(9), 2);
    }

    #[test]
    fn root_is_the_exit_gate() {
        let mut b = ModuleBuilder::new("m");
        let a = b.input("a", 1);
        let x = b.input("b", 1);
        let ab = b.and(&[a, x], "ab");
        let y = b.not(ab, "y");
        b.output("y", y);
        let m = b.finish();
        let cl = clusters(&m);
        assert_eq!(cl.clusters.len(), 1);
        let root = cl.clusters[0].root;
        assert_eq!(m.instances[root].name, "inv");
    }
}
