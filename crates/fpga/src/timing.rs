//! Static timing analysis over the mapped netlist.
//!
//! Computes the worst register-to-register (or port-to-port) path using the
//! calibrated [`DelayModel`]: every primitive contributes its mapped LUT
//! levels, carry chains contribute per-bit delay, and every traversed net
//! contributes a fanout-dependent routing delay — the same decomposition
//! vendor timing reports use.

use crate::calibration::DelayModel;
use crate::techmap::{gate_tree_levels, mux_levels};
use memsync_rtl::netlist::{Module, NetId, PortDir, PrimOp};
use std::collections::VecDeque;
use std::fmt;

/// Result of timing analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingReport {
    /// Worst path delay in nanoseconds (including launch and setup).
    pub critical_path_ns: f64,
    /// Maximum clock frequency in MHz.
    pub fmax_mhz: f64,
}

impl fmt::Display for TimingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.2} ns ({:.1} MHz)",
            self.critical_path_ns, self.fmax_mhz
        )
    }
}

/// Timing analysis failure (combinational loop).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimingError {
    /// Description of the failure.
    pub message: String,
}

impl fmt::Display for TimingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "timing analysis failed: {}", self.message)
    }
}

impl std::error::Error for TimingError {}

/// Analyzes a module with the default calibrated model.
///
/// # Errors
///
/// Returns [`TimingError`] if the netlist contains a combinational loop.
pub fn analyze(module: &Module) -> Result<TimingReport, TimingError> {
    analyze_with(module, DelayModel::default())
}

/// Like [`analyze_with`], but also returns the instance names along the
/// critical path (endpoint last), for debugging and reports.
///
/// # Errors
///
/// Returns [`TimingError`] if the netlist contains a combinational loop.
pub fn critical_path(
    module: &Module,
    model: DelayModel,
) -> Result<(TimingReport, Vec<String>), TimingError> {
    let report = analyze_with(module, model)?;
    // Re-run arrival computation tracking predecessors.
    let mut best_pred: Vec<Option<usize>> = vec![None; module.nets.len()];
    let arrivals = arrivals_with_preds(module, model, &mut best_pred)?;
    // Find worst endpoint net.
    let mut worst_net: Option<NetId> = None;
    let mut worst: f64 = f64::MIN;
    for inst in &module.instances {
        let seq = matches!(
            inst.op,
            PrimOp::Register { .. } | PrimOp::Bram { .. } | PrimOp::Cam { .. }
        );
        if seq {
            for &i in &inst.inputs {
                if arrivals[i.0] > worst {
                    worst = arrivals[i.0];
                    worst_net = Some(i);
                }
            }
        }
    }
    for p in module.ports_in(PortDir::Output) {
        if arrivals[p.net.0] > worst {
            worst = arrivals[p.net.0];
            worst_net = Some(p.net);
        }
    }
    let mut path = Vec::new();
    let mut cur = worst_net;
    let mut driver_of: Vec<Option<usize>> = vec![None; module.nets.len()];
    for (idx, inst) in module.instances.iter().enumerate() {
        for &o in &inst.outputs {
            driver_of[o.0] = Some(idx);
        }
    }
    while let Some(n) = cur {
        if let Some(d) = driver_of[n.0] {
            let inst = &module.instances[d];
            path.push(format!(
                "{} ({}) @ {:.2}ns",
                inst.name,
                inst.op.mnemonic(),
                arrivals[n.0]
            ));
            if matches!(inst.op, PrimOp::Register { .. } | PrimOp::Bram { .. }) {
                break;
            }
            cur = best_pred[n.0].map(NetId);
        } else {
            path.push(format!(
                "port net {} @ {:.2}ns",
                module.nets[n.0].name, arrivals[n.0]
            ));
            break;
        }
    }
    path.reverse();
    Ok((report, path))
}

fn arrivals_with_preds(
    module: &Module,
    model: DelayModel,
    best_pred: &mut [Option<usize>],
) -> Result<Vec<f64>, TimingError> {
    // Duplicate of the pass-1 arrival computation, additionally recording
    // for every net the input net that determined its arrival.
    let n_nets = module.nets.len();
    let clustering = crate::cluster::clusters(module);
    let mut driver: Vec<Option<usize>> = vec![None; n_nets];
    for (idx, inst) in module.instances.iter().enumerate() {
        for &o in &inst.outputs {
            driver[o.0] = Some(idx);
        }
    }
    let mut fanout = vec![0u32; n_nets];
    for inst in &module.instances {
        for &i in &inst.inputs {
            fanout[i.0] += 1;
        }
    }
    for p in module.ports_in(PortDir::Output) {
        fanout[p.net.0] += 1;
    }
    let route = |net: NetId| -> f64 {
        model.t_net_base + model.t_net_fanout * f64::from(1 + fanout[net.0]).log2()
    };
    let order = topo_order(module)?;
    let mut arrival = vec![0.0f64; n_nets];
    for inst in &module.instances {
        let launch = match inst.op {
            PrimOp::Register { .. } => Some(model.t_cko),
            PrimOp::Bram { .. } => Some(model.t_bram_cko),
            _ => None,
        };
        if let Some(t) = launch {
            for &o in &inst.outputs {
                arrival[o.0] = t;
            }
        }
    }
    for &idx in &order {
        let inst = &module.instances[idx];
        match &inst.op {
            PrimOp::Register { .. } | PrimOp::Bram { .. } => {}
            PrimOp::Cam {
                entries, key_width, ..
            } => {
                let key = inst.inputs[0];
                let cmp_levels = 1 + gate_tree_levels(key_width.div_ceil(2));
                let delay = f64::from(cmp_levels) * model.t_lut
                    + f64::from(*entries) * model.t_cam_prio
                    + f64::from(mux_levels(*entries)) * model.t_lut;
                let launch = arrival[key.0] + route(key) + delay;
                let from_storage = model.t_cko + delay;
                for &o in &inst.outputs {
                    arrival[o.0] = launch.max(from_storage);
                    best_pred[o.0] = Some(key.0);
                }
            }
            comb => {
                let in_cluster = clustering.cluster_of[idx];
                let wiring = matches!(
                    comb,
                    PrimOp::Const { .. }
                        | PrimOp::Not
                        | PrimOp::Shl { .. }
                        | PrimOp::Shr { .. }
                        | PrimOp::Concat
                        | PrimOp::Slice { .. }
                );
                let delay = match in_cluster {
                    Some(cid) if clustering.is_root(idx) => {
                        let levels = crate::techmap::gate_tree_levels(
                            clustering.clusters[cid].input_count().max(2),
                        );
                        f64::from(levels) * model.t_lut
                            + f64::from(levels.saturating_sub(1)) * model.t_net_base
                    }
                    Some(_) => 0.0,
                    None => comb_delay(module, inst, comb, model),
                };
                let mut max_in: f64 = 0.0;
                let mut pred = None;
                for &i in &inst.inputs {
                    let internal = in_cluster.is_some()
                        && driver[i.0].is_some_and(|d| clustering.cluster_of[d] == in_cluster);
                    let hop = if wiring || internal { 0.0 } else { route(i) };
                    if arrival[i.0] + hop >= max_in {
                        max_in = arrival[i.0] + hop;
                        pred = Some(i.0);
                    }
                }
                for &o in &inst.outputs {
                    arrival[o.0] = max_in + delay;
                    best_pred[o.0] = pred;
                }
            }
        }
    }
    Ok(arrival)
}

fn topo_order(module: &Module) -> Result<Vec<usize>, TimingError> {
    let n_nets = module.nets.len();
    let n_inst = module.instances.len();
    let prop_inputs = |op: &PrimOp, n_inputs: usize| -> Vec<usize> {
        match op {
            PrimOp::Register { .. } | PrimOp::Bram { .. } => Vec::new(),
            PrimOp::Cam { .. } => vec![0],
            _ => (0..n_inputs).collect(),
        }
    };
    let mut driver_of: Vec<Option<usize>> = vec![None; n_nets];
    for (idx, inst) in module.instances.iter().enumerate() {
        for &o in &inst.outputs {
            driver_of[o.0] = Some(idx);
        }
    }
    let mut indegree = vec![0u32; n_inst];
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n_inst];
    for (idx, inst) in module.instances.iter().enumerate() {
        for &pi in &prop_inputs(&inst.op, inst.inputs.len()) {
            if let Some(d) = driver_of[inst.inputs[pi].0] {
                if !matches!(
                    module.instances[d].op,
                    PrimOp::Register { .. } | PrimOp::Bram { .. }
                ) {
                    indegree[idx] += 1;
                    dependents[d].push(idx);
                }
            }
        }
    }
    let mut queue: VecDeque<usize> = (0..n_inst).filter(|&i| indegree[i] == 0).collect();
    let mut order = Vec::with_capacity(n_inst);
    while let Some(i) = queue.pop_front() {
        order.push(i);
        for &d in &dependents[i] {
            indegree[d] -= 1;
            if indegree[d] == 0 {
                queue.push_back(d);
            }
        }
    }
    if order.len() != n_inst {
        return Err(TimingError {
            message: "combinational loop detected".into(),
        });
    }
    Ok(order)
}

/// Analyzes a module with an explicit delay model.
///
/// # Errors
///
/// Returns [`TimingError`] if the netlist contains a combinational loop.
pub fn analyze_with(module: &Module, model: DelayModel) -> Result<TimingReport, TimingError> {
    let n_nets = module.nets.len();
    let n_inst = module.instances.len();

    // Fanout per net.
    let mut fanout = vec![0u32; n_nets];
    for inst in &module.instances {
        for &i in &inst.inputs {
            fanout[i.0] += 1;
        }
    }
    for p in module.ports_in(PortDir::Output) {
        fanout[p.net.0] += 1;
    }
    let route = |net: NetId| -> f64 {
        model.t_net_base + model.t_net_fanout * f64::from(1 + fanout[net.0]).log2()
    };

    // Combinational propagation edges: for each instance, which inputs
    // propagate to outputs (sequential elements launch fresh paths instead).
    let prop_inputs = |op: &PrimOp, n_inputs: usize| -> Vec<usize> {
        match op {
            PrimOp::Register { .. } | PrimOp::Bram { .. } => Vec::new(),
            // The CAM search path is combinational; writes are clocked.
            PrimOp::Cam { .. } => vec![0],
            _ => (0..n_inputs).collect(),
        }
    };

    // Kahn topological order over instances via combinational edges.
    let mut driver_of: Vec<Option<usize>> = vec![None; n_nets];
    for (idx, inst) in module.instances.iter().enumerate() {
        for &o in &inst.outputs {
            driver_of[o.0] = Some(idx);
        }
    }
    let mut indegree = vec![0u32; n_inst];
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n_inst];
    for (idx, inst) in module.instances.iter().enumerate() {
        for &pi in &prop_inputs(&inst.op, inst.inputs.len()) {
            if let Some(d) = driver_of[inst.inputs[pi].0] {
                if !matches!(
                    module.instances[d].op,
                    PrimOp::Register { .. } | PrimOp::Bram { .. }
                ) {
                    indegree[idx] += 1;
                    dependents[d].push(idx);
                }
            }
        }
    }
    let mut queue: VecDeque<usize> = (0..n_inst).filter(|&i| indegree[i] == 0).collect();
    let mut order = Vec::with_capacity(n_inst);
    while let Some(i) = queue.pop_front() {
        order.push(i);
        for &d in &dependents[i] {
            indegree[d] -= 1;
            if indegree[d] == 0 {
                queue.push_back(d);
            }
        }
    }
    if order.len() != n_inst {
        return Err(TimingError {
            message: "combinational loop detected".into(),
        });
    }
    let clustering = crate::cluster::clusters(module);

    // Arrival times per net. Input ports launch at t=0; register and BRAM
    // outputs launch at clock-to-out and do not depend on anything, so they
    // are initialized up front (their edges are excluded from the
    // topological graph, which otherwise would not order them before their
    // combinational consumers).
    let mut arrival = vec![0.0f64; n_nets];
    for p in module.ports_in(PortDir::Input) {
        arrival[p.net.0] = 0.0;
    }
    for inst in &module.instances {
        let launch = match inst.op {
            PrimOp::Register { .. } => Some(model.t_cko),
            PrimOp::Bram { .. } => Some(model.t_bram_cko),
            _ => None,
        };
        if let Some(t) = launch {
            for &o in &inst.outputs {
                arrival[o.0] = t;
            }
        }
    }
    // Pass 1: arrival times in topological order. Sequential elements only
    // launch (set their outputs); their setup checks happen in pass 2, once
    // every arrival is final — registers sort first in the topological
    // order, so their D inputs are not yet computed here.
    for &idx in &order {
        let inst = &module.instances[idx];
        match &inst.op {
            PrimOp::Register { .. } => {
                for &o in &inst.outputs {
                    arrival[o.0] = model.t_cko;
                }
            }
            PrimOp::Bram { .. } => {
                for &o in &inst.outputs {
                    arrival[o.0] = model.t_bram_cko;
                }
            }
            PrimOp::Cam {
                entries, key_width, ..
            } => {
                // Search side is combinational through the compare array,
                // the priority chain, and the output select network.
                let key = inst.inputs[0];
                let cmp_levels = 1 + gate_tree_levels(key_width.div_ceil(2));
                let delay = f64::from(cmp_levels) * model.t_lut
                    + f64::from(*entries) * model.t_cam_prio
                    + f64::from(mux_levels(*entries)) * model.t_lut;
                let launch = arrival[key.0] + route(key) + delay;
                // Entry storage is registered, so the search also launches
                // from the stored keys at t_cko.
                let from_storage = model.t_cko + delay;
                for &o in &inst.outputs {
                    arrival[o.0] = launch.max(from_storage);
                }
            }
            comb => {
                if let Some(cid) = clustering.cluster_of[idx] {
                    // Member of a packed LUT tree: external inputs pay one
                    // routing hop into the cluster; internal nets are free;
                    // the whole tree's LUT levels are charged at the root.
                    let mut max_in: f64 = 0.0;
                    for &i in &inst.inputs {
                        let internal =
                            driver_of[i.0].is_some_and(|d| clustering.cluster_of[d] == Some(cid));
                        let hop = if internal { 0.0 } else { route(i) };
                        max_in = max_in.max(arrival[i.0] + hop);
                    }
                    let delay = if clustering.is_root(idx) {
                        let levels = crate::techmap::gate_tree_levels(
                            clustering.clusters[cid].input_count().max(2),
                        );
                        f64::from(levels) * model.t_lut
                            + f64::from(levels.saturating_sub(1)) * model.t_net_base
                    } else {
                        0.0
                    };
                    for &o in &inst.outputs {
                        arrival[o.0] = max_in + delay;
                    }
                } else {
                    // Wiring pseudo-ops (constants, slices, concatenations,
                    // fixed shifts, lone inverters absorbed into LUT inputs)
                    // are net aliases: no logic delay, no extra routing hop.
                    let wiring = matches!(
                        comb,
                        PrimOp::Const { .. }
                            | PrimOp::Not
                            | PrimOp::Shl { .. }
                            | PrimOp::Shr { .. }
                            | PrimOp::Concat
                            | PrimOp::Slice { .. }
                    );
                    let delay = comb_delay(module, inst, comb, model);
                    let mut max_in: f64 = 0.0;
                    for &i in &inst.inputs {
                        let hop = if wiring { 0.0 } else { route(i) };
                        max_in = max_in.max(arrival[i.0] + hop);
                    }
                    for &o in &inst.outputs {
                        arrival[o.0] = max_in + delay;
                    }
                }
            }
        }
    }

    // Pass 2: setup checks at every sequential endpoint and output port.
    let mut worst: f64 = 0.0;
    for inst in &module.instances {
        match &inst.op {
            PrimOp::Register { .. } => {
                for &i in &inst.inputs {
                    worst = worst.max(arrival[i.0] + route(i) + model.t_su);
                }
            }
            PrimOp::Bram { .. } => {
                for &i in &inst.inputs {
                    worst = worst.max(arrival[i.0] + route(i) + model.t_bram_su);
                }
            }
            PrimOp::Cam { .. } => {
                // Write side is clocked (endpoint); the search key flows
                // through combinationally and is checked wherever the CAM
                // outputs terminate.
                for &i in &inst.inputs[1..] {
                    worst = worst.max(arrival[i.0] + route(i) + model.t_su);
                }
            }
            _ => {}
        }
    }
    for p in module.ports_in(PortDir::Output) {
        worst = worst.max(arrival[p.net.0] + route(p.net));
    }
    // A purely wired module still needs one routing hop.
    let critical = worst.max(model.t_cko + model.t_su);
    Ok(TimingReport {
        critical_path_ns: critical,
        fmax_mhz: 1000.0 / critical,
    })
}

fn comb_delay(
    module: &Module,
    inst: &memsync_rtl::netlist::Instance,
    op: &PrimOp,
    model: DelayModel,
) -> f64 {
    match op {
        PrimOp::Const { .. }
        | PrimOp::Not
        | PrimOp::Shl { .. }
        | PrimOp::Shr { .. }
        | PrimOp::Concat
        | PrimOp::Slice { .. } => 0.0,
        PrimOp::And | PrimOp::Or | PrimOp::Xor => {
            f64::from(gate_tree_levels(inst.inputs.len() as u32)) * model.t_lut
        }
        PrimOp::Mux => {
            let n = (inst.inputs.len() - 1) as u32;
            f64::from(mux_levels(n)) * model.t_lut
        }
        PrimOp::Add | PrimOp::Sub | PrimOp::Lt => {
            let w = module.width(inst.inputs[0]);
            model.t_lut + f64::from(w) * model.t_carry
        }
        PrimOp::Mul => {
            // Embedded multiplier: roughly three LUT delays plus carry.
            let w = module.width(inst.inputs[0]);
            3.0 * model.t_lut + f64::from(w) * model.t_carry * 0.5
        }
        PrimOp::Eq | PrimOp::Ne => {
            // Wide equality maps onto the dedicated carry chain (MUXCY
            // compare), like the magnitude comparator.
            let w = module.width(inst.inputs[0]);
            model.t_lut + f64::from(w) * model.t_carry
        }
        PrimOp::ReduceOr | PrimOp::ReduceAnd => {
            let w = module.width(inst.inputs[0]);
            f64::from(gate_tree_levels(w)) * model.t_lut
        }
        PrimOp::Register { .. } | PrimOp::Bram { .. } | PrimOp::Cam { .. } => {
            unreachable!("sequential ops handled by caller")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsync_rtl::builder::ModuleBuilder;

    fn reg_to_reg_through(extra_mux_ways: u32) -> TimingReport {
        let mut b = ModuleBuilder::new("m");
        let d = b.input("d", 8);
        let q1 = b.register(d, 0, "q1");
        let sel = b.input("sel", 3);
        let data: Vec<_> = (0..extra_mux_ways)
            .map(|i| {
                if i == 0 {
                    q1
                } else {
                    b.input(&format!("alt{i}"), 8)
                }
            })
            .collect();
        let y = b.mux(sel, &data, "y");
        let q2 = b.register(y, 0, "q2");
        b.output("q", q2);
        analyze(&b.finish()).unwrap()
    }

    #[test]
    fn wider_mux_slows_the_clock() {
        let f2 = reg_to_reg_through(2).fmax_mhz;
        let f8 = reg_to_reg_through(8).fmax_mhz;
        assert!(f2 > f8, "2-way {f2} should beat 8-way {f8}");
    }

    #[test]
    fn fmax_is_reciprocal_of_period() {
        let r = reg_to_reg_through(4);
        assert!((r.fmax_mhz - 1000.0 / r.critical_path_ns).abs() < 1e-9);
    }

    #[test]
    fn empty_module_reports_ff_limit() {
        let b = ModuleBuilder::new("empty");
        let r = analyze(&b.finish()).unwrap();
        let m = DelayModel::default();
        assert!((r.critical_path_ns - (m.t_cko + m.t_su)).abs() < 1e-9);
    }

    #[test]
    fn combinational_loop_is_an_error() {
        use memsync_rtl::netlist::{Instance, Module, Net, NetId, PrimOp};
        let m = Module {
            name: "loopy".into(),
            ports: vec![],
            nets: vec![
                Net {
                    name: "a".into(),
                    width: 1,
                },
                Net {
                    name: "b".into(),
                    width: 1,
                },
            ],
            instances: vec![
                Instance {
                    name: "g1".into(),
                    op: PrimOp::Not,
                    inputs: vec![NetId(1)],
                    outputs: vec![NetId(0)],
                },
                Instance {
                    name: "g2".into(),
                    op: PrimOp::Not,
                    inputs: vec![NetId(0)],
                    outputs: vec![NetId(1)],
                },
            ],
        };
        assert!(analyze(&m).is_err());
    }

    #[test]
    fn registers_cut_paths() {
        // Two short reg-to-reg stages must beat one long combinational one.
        let staged = {
            let mut b = ModuleBuilder::new("staged");
            let d = b.input("d", 32);
            let q1 = b.register(d, 0, "q1");
            let s1 = b.add(q1, q1, "s1");
            let q2 = b.register(s1, 0, "q2");
            let s2 = b.add(q2, q2, "s2");
            let q3 = b.register(s2, 0, "q3");
            b.output("q", q3);
            analyze(&b.finish()).unwrap()
        };
        let flat = {
            let mut b = ModuleBuilder::new("flat");
            let d = b.input("d", 32);
            let q1 = b.register(d, 0, "q1");
            let s1 = b.add(q1, q1, "s1");
            let s2 = b.add(s1, s1, "s2");
            let q3 = b.register(s2, 0, "q3");
            b.output("q", q3);
            analyze(&b.finish()).unwrap()
        };
        assert!(staged.fmax_mhz > flat.fmax_mhz);
    }

    #[test]
    fn cam_search_scales_with_entries() {
        let per = |n: u32| {
            let mut b = ModuleBuilder::new("m");
            let key = b.input("key", 10);
            let wdata = b.input("wdata", 4);
            let widx = b.input("widx", memsync_rtl::netlist::addr_width(n));
            let we = b.input("we", 1);
            let (hit, _, _) = b.cam(n, 10, 4, key, key, wdata, widx, we, "cam");
            let q = b.register_en(wdata, hit, 0, "q");
            b.output("q", q);
            analyze(&b.finish()).unwrap().fmax_mhz
        };
        assert!(per(4) > per(16));
    }
}
