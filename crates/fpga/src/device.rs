//! Virtex-II Pro device database.
//!
//! Capacities follow the Virtex-II Pro Platform FPGA Handbook (reference [4]
//! of the paper). The paper's experiments target the XC2VP20.

use std::fmt;

/// A Virtex-II Pro part.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Part {
    /// XC2VP2 — smallest family member.
    Xc2vp2,
    /// XC2VP4.
    Xc2vp4,
    /// XC2VP7.
    Xc2vp7,
    /// XC2VP20 — the paper's target device.
    Xc2vp20,
    /// XC2VP30.
    Xc2vp30,
    /// XC2VP50.
    Xc2vp50,
    /// XC2VP70.
    Xc2vp70,
    /// XC2VP100 — largest family member.
    Xc2vp100,
}

impl Part {
    /// All parts, smallest first.
    pub const ALL: [Part; 8] = [
        Part::Xc2vp2,
        Part::Xc2vp4,
        Part::Xc2vp7,
        Part::Xc2vp20,
        Part::Xc2vp30,
        Part::Xc2vp50,
        Part::Xc2vp70,
        Part::Xc2vp100,
    ];

    /// Device capacity record.
    pub fn capacity(self) -> Capacity {
        // slices, 18 Kb BRAMs, PowerPC cores, RocketIO transceivers
        let (slices, brams, ppc, rocketio) = match self {
            Part::Xc2vp2 => (1408, 12, 0, 4),
            Part::Xc2vp4 => (3008, 28, 1, 4),
            Part::Xc2vp7 => (4928, 44, 1, 8),
            Part::Xc2vp20 => (9280, 88, 2, 8),
            Part::Xc2vp30 => (13696, 136, 2, 8),
            Part::Xc2vp50 => (23616, 232, 2, 16),
            Part::Xc2vp70 => (33088, 328, 2, 20),
            Part::Xc2vp100 => (44096, 444, 2, 20),
        };
        Capacity {
            slices,
            luts: slices * 2,
            flip_flops: slices * 2,
            brams,
            bram_bits: u64::from(brams) * 18 * 1024,
            powerpc_cores: ppc,
            rocketio,
        }
    }

    /// Part name as printed by vendor tools.
    pub fn name(self) -> &'static str {
        match self {
            Part::Xc2vp2 => "xc2vp2",
            Part::Xc2vp4 => "xc2vp4",
            Part::Xc2vp7 => "xc2vp7",
            Part::Xc2vp20 => "xc2vp20",
            Part::Xc2vp30 => "xc2vp30",
            Part::Xc2vp50 => "xc2vp50",
            Part::Xc2vp70 => "xc2vp70",
            Part::Xc2vp100 => "xc2vp100",
        }
    }
}

impl fmt::Display for Part {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Resource capacities of one part.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capacity {
    /// Logic slices (each: 2 LUT4 + 2 FF).
    pub slices: u32,
    /// 4-input LUTs.
    pub luts: u32,
    /// Slice flip-flops.
    pub flip_flops: u32,
    /// 18 Kb block RAMs.
    pub brams: u32,
    /// Total block RAM bits.
    pub bram_bits: u64,
    /// Hard PowerPC 405 cores.
    pub powerpc_cores: u32,
    /// RocketIO serial transceivers.
    pub rocketio: u32,
}

impl Capacity {
    /// Whether a design demanding the given resources fits.
    pub fn fits(&self, slices: u32, brams: u32) -> bool {
        slices <= self.slices && brams <= self.brams
    }

    /// Slice utilization as a fraction.
    pub fn slice_utilization(&self, slices: u32) -> f64 {
        f64::from(slices) / f64::from(self.slices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xc2vp20_matches_paper_target() {
        let cap = Part::Xc2vp20.capacity();
        assert_eq!(cap.slices, 9280);
        assert_eq!(cap.brams, 88);
        assert_eq!(cap.powerpc_cores, 2);
        // The paper's 5430-slice forwarding application fits comfortably.
        assert!(cap.fits(5430, 10));
    }

    #[test]
    fn capacities_monotonic_in_part_size() {
        let mut prev = 0;
        for p in Part::ALL {
            let s = p.capacity().slices;
            assert!(s > prev, "{p} slices {s} not > {prev}");
            prev = s;
        }
    }

    #[test]
    fn bram_bits_are_18kb_each() {
        for p in Part::ALL {
            let c = p.capacity();
            assert_eq!(c.bram_bits, u64::from(c.brams) * 18 * 1024);
        }
    }

    #[test]
    fn utilization_fraction() {
        let cap = Part::Xc2vp20.capacity();
        let u = cap.slice_utilization(4640);
        assert!((u - 0.5).abs() < 1e-9);
    }
}
