//! # memsync-fpga — Virtex-II Pro implementation model
//!
//! Substitute for the Xilinx ISE 6.3 synthesis + place-and-route flow the
//! paper used (see DESIGN.md §3): structural technology mapping of
//! `memsync-rtl` netlists onto 4-input LUTs, slice flip-flops, and 18 Kb
//! BRAM blocks, slice packing, and a calibrated static timing model.
//!
//! * [`device`] — part database (XC2VP2 … XC2VP100; the paper targets the
//!   XC2VP20);
//! * [`bram`] — 18 Kb block RAM aspect ratios and block counting;
//! * [`techmap`] — primitive → LUT/FF/BRAM decomposition;
//! * [`slices`] — LUT/FF packing into slices;
//! * [`timing`] — longest-path analysis with the calibrated delay model;
//! * [`calibration`] — the fixed constants and the paper anchors they were
//!   fitted to;
//! * [`report`] — one-call area + timing implementation report.
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), memsync_fpga::timing::TimingError> {
//! use memsync_rtl::builder::ModuleBuilder;
//! use memsync_fpga::{device::Part, report::implement};
//!
//! let mut b = ModuleBuilder::new("pipeline");
//! let d = b.input("d", 32);
//! let q1 = b.register(d, 0, "q1");
//! let s = b.add(q1, d, "s");
//! let q2 = b.register(s, 0, "q2");
//! b.output("q", q2);
//! let report = implement(&b.finish())?;
//! assert!(report.fits(Part::Xc2vp20));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bram;
pub mod calibration;
pub mod cluster;
pub mod device;
pub mod report;
pub mod slices;
pub mod techmap;
pub mod timing;

pub use calibration::{DelayModel, PackingModel, PAPER_ANCHORS};
pub use device::Part;
pub use report::{implement, ImplReport};
pub use techmap::Resources;
pub use timing::TimingReport;
