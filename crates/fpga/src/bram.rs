//! Virtex-II Pro 18 Kb block RAM shape model.
//!
//! Each BRAM holds 18,432 bits (16 K data + 2 K parity) and is true dual
//! ported; each port independently selects an aspect ratio from 16K×1 up to
//! 512×36. The allocation step in `memsync-core` uses this model to pick a
//! configuration and count BRAMs.

/// Data bits in one 18 Kb block (excluding parity).
pub const DATA_BITS: u32 = 16 * 1024;

/// Data+parity bits in one 18 Kb block.
pub const TOTAL_BITS: u32 = 18 * 1024;

/// A supported port aspect ratio.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AspectRatio {
    /// Words per block.
    pub depth: u32,
    /// Data width per word (parity bits included for 9/18/36).
    pub width: u32,
}

/// All aspect ratios of the Virtex-II Pro 18 Kb BRAM, widest first.
pub const ASPECT_RATIOS: [AspectRatio; 6] = [
    AspectRatio {
        depth: 512,
        width: 36,
    },
    AspectRatio {
        depth: 1024,
        width: 18,
    },
    AspectRatio {
        depth: 2048,
        width: 9,
    },
    AspectRatio {
        depth: 4096,
        width: 4,
    },
    AspectRatio {
        depth: 8192,
        width: 2,
    },
    AspectRatio {
        depth: 16384,
        width: 1,
    },
];

impl AspectRatio {
    /// Total bits addressable through this ratio.
    pub fn bits(&self) -> u32 {
        self.depth * self.width
    }

    /// Address width for this ratio.
    pub fn addr_width(&self) -> u32 {
        memsync_rtl::netlist::addr_width(self.depth)
    }
}

/// Picks the narrowest aspect ratio whose width covers `word_width`, if any.
pub fn ratio_for_width(word_width: u32) -> Option<AspectRatio> {
    ASPECT_RATIOS
        .iter()
        .rev()
        .find(|r| r.width >= word_width)
        .copied()
}

/// Number of 18 Kb blocks needed for `words` words of `word_width` bits,
/// tiling wide words across parallel blocks.
pub fn blocks_needed(words: u32, word_width: u32) -> u32 {
    if words == 0 || word_width == 0 {
        return 0;
    }
    match ratio_for_width(word_width) {
        Some(ratio) => {
            // One block column; deep data may cascade multiple blocks.
            words.div_ceil(ratio.depth)
        }
        None => {
            // Wider than 36: parallel columns of 36-bit blocks.
            let columns = word_width.div_ceil(36);
            columns * words.div_ceil(512)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ratios_hold_18kb() {
        for r in ASPECT_RATIOS {
            // 9/18/36-wide ratios include parity; 1/2/4-wide are data only.
            let bits = r.bits();
            assert!(
                bits == DATA_BITS || bits == TOTAL_BITS,
                "ratio {r:?} holds {bits}"
            );
        }
    }

    #[test]
    fn ratio_for_width_picks_narrowest_fit() {
        assert_eq!(ratio_for_width(1).unwrap().width, 1);
        assert_eq!(ratio_for_width(8).unwrap().width, 9);
        assert_eq!(ratio_for_width(11).unwrap().width, 18);
        assert_eq!(ratio_for_width(32).unwrap().width, 36);
        assert_eq!(ratio_for_width(40), None);
    }

    #[test]
    fn blocks_needed_examples() {
        assert_eq!(blocks_needed(512, 36), 1);
        assert_eq!(blocks_needed(513, 36), 2);
        assert_eq!(blocks_needed(1024, 18), 1);
        assert_eq!(blocks_needed(100, 32), 1);
        // 64-bit words need two parallel columns.
        assert_eq!(blocks_needed(512, 64), 2);
        assert_eq!(blocks_needed(0, 32), 0);
    }

    #[test]
    fn addr_width_matches_depth() {
        assert_eq!(
            AspectRatio {
                depth: 512,
                width: 36
            }
            .addr_width(),
            9
        );
        assert_eq!(
            AspectRatio {
                depth: 1024,
                width: 18
            }
            .addr_width(),
            10
        );
        assert_eq!(
            AspectRatio {
                depth: 16384,
                width: 1
            }
            .addr_width(),
            14
        );
    }
}
