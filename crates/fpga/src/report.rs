//! Combined implementation report: area + timing for one module, the
//! equivalent of the paper's post-place-and-route numbers.

use crate::calibration::{DelayModel, PackingModel};
use crate::device::Part;
use crate::slices::pack;
use crate::techmap::{map_module, Resources};
use crate::timing::{analyze_with, TimingError, TimingReport};
use memsync_rtl::netlist::Module;
use std::fmt;

/// Area and timing of one implemented module.
#[derive(Debug, Clone, PartialEq)]
pub struct ImplReport {
    /// Module name.
    pub module: String,
    /// LUT4 count.
    pub luts: u32,
    /// Flip-flop count.
    pub ffs: u32,
    /// Occupied slices.
    pub slices: u32,
    /// 18 Kb BRAM blocks.
    pub brams: u32,
    /// Worst path / Fmax.
    pub timing: TimingReport,
}

impl ImplReport {
    /// Whether the report fits on `part` (slices and BRAMs).
    pub fn fits(&self, part: Part) -> bool {
        part.capacity().fits(self.slices, self.brams)
    }

    /// Whether the design meets a target clock in MHz.
    pub fn meets(&self, target_mhz: f64) -> bool {
        self.timing.fmax_mhz >= target_mhz
    }
}

impl fmt::Display for ImplReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} LUT, {} FF, {} slices, {} BRAM, {}",
            self.module, self.luts, self.ffs, self.slices, self.brams, self.timing
        )
    }
}

/// Implements (maps, packs, times) a module with the calibrated models.
///
/// # Errors
///
/// Returns [`TimingError`] on a combinational loop.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), memsync_fpga::timing::TimingError> {
/// use memsync_rtl::builder::ModuleBuilder;
///
/// let mut b = ModuleBuilder::new("acc");
/// let d = b.input("d", 16);
/// let q = b.register(d, 0, "q");
/// let s = b.add(q, d, "s");
/// let q2 = b.register(s, 0, "q2");
/// b.output("q", q2);
/// let report = memsync_fpga::report::implement(&b.finish())?;
/// assert_eq!(report.ffs, 32);
/// assert!(report.timing.fmax_mhz > 0.0);
/// # Ok(())
/// # }
/// ```
pub fn implement(module: &Module) -> Result<ImplReport, TimingError> {
    implement_with(module, DelayModel::default(), PackingModel::default())
}

/// Implements a module with explicit models.
///
/// # Errors
///
/// Returns [`TimingError`] on a combinational loop.
pub fn implement_with(
    module: &Module,
    delay: DelayModel,
    packing: PackingModel,
) -> Result<ImplReport, TimingError> {
    let resources: Resources = map_module(module);
    let timing = analyze_with(module, delay)?;
    Ok(ImplReport {
        module: module.name.clone(),
        luts: resources.luts,
        ffs: resources.ffs,
        slices: pack(resources, packing),
        brams: resources.brams,
        timing,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsync_rtl::builder::ModuleBuilder;

    #[test]
    fn report_combines_area_and_timing() {
        let mut b = ModuleBuilder::new("m");
        let a = b.input("a", 8);
        let q = b.register(a, 0, "q");
        let s = b.add(q, a, "s");
        b.output("s", s);
        let r = implement(&b.finish()).unwrap();
        assert_eq!(r.ffs, 8);
        assert_eq!(r.luts, 8);
        assert!(r.slices >= 4);
        assert!(r.fits(Part::Xc2vp20));
        assert!(r.meets(10.0));
    }

    #[test]
    fn display_mentions_all_resources() {
        let mut b = ModuleBuilder::new("disp");
        let a = b.input("a", 4);
        let q = b.register(a, 0, "q");
        b.output("q", q);
        let r = implement(&b.finish()).unwrap();
        let s = r.to_string();
        assert!(s.contains("disp"));
        assert!(s.contains("FF"));
        assert!(s.contains("MHz"));
    }
}
