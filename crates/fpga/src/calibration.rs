//! Fixed calibration constants for the area/timing model, and the paper
//! anchors they were fitted against.
//!
//! The paper's absolute numbers come from Xilinx ISE 6.3 place-and-route on
//! an XC2VP20 (-5 speed grade era silicon). We cannot run ISE, so the model
//! in [`crate::timing`] uses a standard LUT-level + fanout-routing delay
//! decomposition whose constants were fitted **once** against the anchors
//! below and are never varied per experiment. All trend claims (who wins,
//! how area/Fmax scale with consumer count) come out of the structural
//! netlists, not these constants.

/// Delay model constants, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayModel {
    /// LUT4 propagation delay.
    pub t_lut: f64,
    /// Fixed component of a net's routing delay.
    pub t_net_base: f64,
    /// Fanout-dependent routing delay (multiplied by log2(1+fanout)).
    pub t_net_fanout: f64,
    /// Per-bit carry-chain delay (adders, subtractors, comparators).
    pub t_carry: f64,
    /// Flip-flop clock-to-out.
    pub t_cko: f64,
    /// Flip-flop setup time.
    pub t_su: f64,
    /// Block RAM clock-to-out.
    pub t_bram_cko: f64,
    /// Block RAM address/data setup.
    pub t_bram_su: f64,
    /// Per-entry delay of the CAM priority chain.
    pub t_cam_prio: f64,
}

impl DelayModel {
    /// The calibrated Virtex-II Pro (-5/-6 era) constants used everywhere.
    pub const VIRTEX2PRO: DelayModel = DelayModel {
        t_lut: 0.467,
        t_net_base: 0.15,
        t_net_fanout: 0.05,
        t_carry: 0.02,
        t_cko: 0.977,
        t_su: 1.0,
        t_bram_cko: 1.65,
        t_bram_su: 0.45,
        t_cam_prio: 0.16,
    };
}

impl Default for DelayModel {
    fn default() -> Self {
        DelayModel::VIRTEX2PRO
    }
}

/// Slice packing model: how LUT/FF pairs share slices after place-and-route.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PackingModel {
    /// Fraction of slices in which an unrelated LUT and FF can be packed
    /// together (1.0 = perfect packing, 0.0 = no sharing).
    pub share_fraction: f64,
}

impl PackingModel {
    /// Calibrated packing efficiency matching ISE-era map results.
    pub const VIRTEX2PRO: PackingModel = PackingModel {
        share_fraction: 0.60,
    };
}

impl Default for PackingModel {
    fn default() -> Self {
        PackingModel::VIRTEX2PRO
    }
}

/// The surviving numeric anchors from the paper's evaluation (§4) used to
/// fit the constants above and asserted (with tolerance bands) by the
/// experiment harness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperAnchors {
    /// Arbitrated organization baseline flip-flop count (constant across
    /// consumer counts).
    pub arbitrated_ffs: u32,
    /// Achieved Fmax, arbitrated organization, for 2/4/8 consumers (MHz).
    /// The 8-consumer value was lost in extraction; the paper targeted
    /// 125 MHz and lists the value first, so it is banded at 120–130 and
    /// the midpoint is used here.
    pub arbitrated_fmax_mhz: [f64; 3],
    /// Achieved Fmax, event-driven organization, for 2/4/8 consumers (MHz).
    pub event_driven_fmax_mhz: [f64; 3],
    /// Target clock used for the arbitrated runs (MHz).
    pub target_clock_mhz: f64,
    /// Slices of the complete two-port IP forwarding application.
    pub app_total_slices: u32,
    /// Slices of the core forwarding function alone.
    pub app_core_slices: u32,
    /// Overhead band of the synchronization logic relative to the core
    /// (fraction, inclusive).
    pub overhead_band: (f64, f64),
}

/// The anchors as published.
pub const PAPER_ANCHORS: PaperAnchors = PaperAnchors {
    arbitrated_ffs: 66,
    arbitrated_fmax_mhz: [158.0, 130.0, 125.0],
    event_driven_fmax_mhz: [177.0, 136.0, 129.0],
    target_clock_mhz: 125.0,
    app_total_slices: 5430,
    app_core_slices: 1000,
    overhead_band: (0.05, 0.20),
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_match_prose() {
        assert_eq!(PAPER_ANCHORS.arbitrated_ffs, 66);
        assert_eq!(PAPER_ANCHORS.event_driven_fmax_mhz, [177.0, 136.0, 129.0]);
        assert_eq!(PAPER_ANCHORS.app_total_slices, 5430);
    }

    #[test]
    fn fmax_anchors_decrease_with_consumers() {
        for series in [
            PAPER_ANCHORS.arbitrated_fmax_mhz,
            PAPER_ANCHORS.event_driven_fmax_mhz,
        ] {
            assert!(series[0] > series[1]);
            assert!(series[1] > series[2]);
        }
    }

    #[test]
    fn event_driven_dominates_arbitrated_in_anchors() {
        for i in 0..3 {
            assert!(PAPER_ANCHORS.event_driven_fmax_mhz[i] >= PAPER_ANCHORS.arbitrated_fmax_mhz[i]);
        }
    }

    #[test]
    fn delay_model_is_positive() {
        let m = DelayModel::default();
        for v in [
            m.t_lut,
            m.t_net_base,
            m.t_net_fanout,
            m.t_carry,
            m.t_cko,
            m.t_su,
            m.t_bram_cko,
            m.t_bram_su,
            m.t_cam_prio,
        ] {
            assert!(v > 0.0);
        }
    }
}
