//! Differential property test: the flat `Dir24_8` classifier must agree
//! with the binary-trie `Fib` oracle on every address, for arbitrary
//! route tables.
//!
//! Tables are generated from seeded randomness (no external deps — a
//! splitmix-style generator) and deliberately include the nasty shapes:
//! duplicate prefixes (last insert wins), deeply nested prefixes, a
//! default route, and the /0 and /32 length edges. Addresses are probed
//! in classes — exact prefix bases, prefix ends, ±1 neighbours across
//! prefix boundaries, and uniform random — so both the direct tbl24 path
//! and the overflow-block path are exercised on both sides of every
//! boundary.

use memsync_netapp::fib::{Dir24_8, Fib, Route};

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    fn range(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// One random route. Length is biased toward the interesting regions:
/// the /0 and /32 edges, the 24/25 boundary where overflow blocks start,
/// and a uniform spread elsewhere.
fn random_route(rng: &mut Rng) -> Route {
    let len = match rng.range(8) {
        0 => 0,
        1 => 32,
        2 => 24,
        3 => 25,
        _ => rng.range(33) as u8,
    };
    let mask = if len == 0 {
        0
    } else {
        u32::MAX << (32 - u32::from(len))
    };
    Route {
        prefix: rng.u32() & mask,
        len,
        next_hop: rng.u32() % 512,
    }
}

/// A random table of `n` routes: mostly fresh random prefixes, with a
/// fraction re-targeting an existing prefix (duplicates) or nesting a
/// longer prefix inside an existing one.
fn random_table(rng: &mut Rng, n: usize) -> Vec<Route> {
    let mut routes: Vec<Route> = Vec::with_capacity(n);
    for i in 0..n {
        let r = if i > 0 && rng.range(4) == 0 {
            let base = routes[rng.range(i as u64) as usize];
            if base.len == 32 || rng.range(2) == 0 {
                // Duplicate prefix, different hop — last insert must win.
                Route {
                    next_hop: rng.u32() % 512,
                    ..base
                }
            } else {
                // Nest a strictly longer prefix inside an existing route.
                let len = (u32::from(base.len) + 1 + rng.range(32 - u64::from(base.len)) as u32)
                    .min(32) as u8;
                let mask = u32::MAX << (32 - u32::from(len));
                Route {
                    prefix: (base.prefix | (rng.u32() >> base.len.min(31))) & mask,
                    len,
                    next_hop: rng.u32() % 512,
                }
            }
        } else {
            random_route(rng)
        };
        routes.push(r);
    }
    routes
}

/// Addresses worth probing for a table: for every route, the prefix base,
/// the last covered address, and the neighbours one past each end (the
/// other side of both boundaries), plus random probes.
fn probe_addresses(routes: &[Route], rng: &mut Rng) -> Vec<u32> {
    let mut addrs = vec![0u32, 1, u32::MAX - 1, u32::MAX];
    for r in routes {
        let host = if r.len == 0 {
            u32::MAX
        } else {
            (u32::MAX >> 1) >> (r.len - 1)
        };
        let span_end = r.prefix | host;
        addrs.push(r.prefix);
        addrs.push(span_end);
        addrs.push(r.prefix.wrapping_sub(1));
        addrs.push(span_end.wrapping_add(1));
        // A random address inside the prefix (lands in overflow blocks
        // for len > 24 slots shared with shorter routes).
        addrs.push(r.prefix | (rng.u32() & host));
    }
    for _ in 0..256 {
        addrs.push(rng.u32());
    }
    addrs
}

#[test]
fn dir24_8_agrees_with_the_trie_on_random_tables() {
    for seed in 0..24u64 {
        let mut rng = Rng(0xD1E2_4800 + seed);
        // Small tables stress empty/sparse shapes, bigger ones stress
        // nesting and overflow-block promotion.
        let n = [0usize, 1, 2, 8, 24, 64][(seed % 6) as usize];
        let routes = random_table(&mut rng, n);
        let mut fib = Fib::new();
        for r in &routes {
            fib.insert(*r);
        }
        let dir = Dir24_8::from_routes(&routes);
        let addrs = probe_addresses(&routes, &mut rng);
        let mut batch = vec![None; addrs.len()];
        dir.lookup_batch(&addrs, &mut batch);
        for (addr, batched) in addrs.iter().zip(&batch) {
            let want = fib.lookup(*addr);
            let got = dir.lookup(*addr);
            assert_eq!(
                got, want,
                "seed {seed}, addr {addr:#010x}: dir {got:?} != trie {want:?} \
                 (table: {routes:?})"
            );
            assert_eq!(*batched, want, "lookup_batch diverged at {addr:#010x}");
        }
    }
}

#[test]
fn dir24_8_agrees_with_the_trie_under_insert_withdraw_churn() {
    // The mutable case the live control plane exercises: a seeded
    // interleaving of inserts and withdraws against the trie, with the
    // flat classifier rebuilt from `fib.routes()` after every mutation
    // and swept for agreement across the full u32 space (boundary
    // probes of every live route plus random addresses). Withdraw picks
    // from the live route set, so nested-prefix withdrawal (the covering
    // shorter route must show through again) and withdraw-of-default
    // both occur along the way; the trailing phase forces them
    // explicitly in case a seed dodged them.
    for seed in 0..6u64 {
        let mut rng = Rng(0xC4u64 << 32 | seed);
        let mut fib = Fib::new();
        // Seed with a default route so default withdrawal is reachable.
        fib.insert(Route {
            prefix: 0,
            len: 0,
            next_hop: 7,
        });
        for step in 0..40 {
            let live = fib.routes();
            let withdraw = !live.is_empty() && rng.range(3) == 0;
            if withdraw {
                let victim = live[rng.range(live.len() as u64) as usize];
                assert_eq!(
                    fib.remove(victim.prefix, victim.len),
                    Some(victim.next_hop),
                    "withdrawing a live route returns its hop"
                );
            } else {
                let r = if !live.is_empty() && rng.range(3) == 0 {
                    // Nest a longer prefix inside a live route, so a
                    // later withdraw of either exercises the nested case.
                    let base = live[rng.range(live.len() as u64) as usize];
                    let len = (u32::from(base.len)
                        + 1
                        + rng.range(32 - u64::from(base.len).min(31)) as u32)
                        .min(32) as u8;
                    let mask = u32::MAX << (32 - u32::from(len));
                    Route {
                        prefix: (base.prefix | (rng.u32() >> base.len.min(31))) & mask,
                        len,
                        next_hop: rng.u32() % 512,
                    }
                } else {
                    random_route(&mut rng)
                };
                fib.insert(r);
            }
            let routes = fib.routes();
            let dir = Dir24_8::from_routes(&routes);
            for addr in probe_addresses(&routes, &mut rng) {
                assert_eq!(
                    dir.lookup(addr),
                    fib.lookup(addr),
                    "seed {seed} step {step}, addr {addr:#010x} (table: {routes:?})"
                );
            }
        }
        // Forced edges: withdraw a nested prefix under a live covering
        // route, then withdraw the default.
        fib.insert(Route {
            prefix: 0,
            len: 0,
            next_hop: 7,
        });
        fib.insert(Route {
            prefix: 0x0a00_0000,
            len: 8,
            next_hop: 81,
        });
        fib.insert(Route {
            prefix: 0x0a0b_0000,
            len: 16,
            next_hop: 82,
        });
        assert_eq!(fib.remove(0x0a0b_0000, 16), Some(82));
        let dir = Dir24_8::from_fib(&fib);
        assert_eq!(
            dir.lookup(0x0a0b_0105),
            Some(81),
            "covering /8 shows through"
        );
        assert_eq!(fib.remove(0, 0), Some(7));
        let dir = Dir24_8::from_fib(&fib);
        assert_eq!(dir.lookup(0x0a0b_0105), Some(81));
        for addr in probe_addresses(&fib.routes(), &mut rng) {
            assert_eq!(
                dir.lookup(addr),
                fib.lookup(addr),
                "post-default-withdraw sweep"
            );
        }
    }
}

#[test]
fn dir24_8_agrees_on_a_default_route_plus_host_routes_table() {
    // The pathological all-edges table: /0 default plus a dense run of
    // /32s sharing one tbl24 slot — all 256 low bytes land in one
    // overflow block, the rest of the space on the default.
    let mut routes = vec![Route {
        prefix: 0,
        len: 0,
        next_hop: 7,
    }];
    for low in 0..=255u32 {
        routes.push(Route {
            prefix: 0x0a0b_0c00 | low,
            len: 32,
            next_hop: 1000 + low,
        });
    }
    let mut fib = Fib::new();
    for r in &routes {
        fib.insert(*r);
    }
    let dir = Dir24_8::from_routes(&routes);
    assert_eq!(dir.overflow_blocks(), 1);
    for low in 0..=255u32 {
        let addr = 0x0a0b_0c00 | low;
        assert_eq!(dir.lookup(addr), Some(1000 + low));
        assert_eq!(dir.lookup(addr), fib.lookup(addr));
    }
    assert_eq!(dir.lookup(0x0a0b_0d00), Some(7), "past the block: default");
    assert_eq!(dir.lookup(0x0a0b_0bff), Some(7));
}
