//! Longest-prefix-match forwarding table (binary trie).

use std::collections::HashMap;

/// A route entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Route {
    /// Network prefix (host bits zero).
    pub prefix: u32,
    /// Prefix length, 0..=32.
    pub len: u8,
    /// Next-hop / egress port identifier.
    pub next_hop: u32,
}

#[derive(Debug, Clone, Default)]
struct Node {
    children: [Option<Box<Node>>; 2],
    next_hop: Option<u32>,
}

/// A binary-trie FIB.
#[derive(Debug, Clone, Default)]
pub struct Fib {
    root: Node,
    len: usize,
}

impl Fib {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of routes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts (or replaces) a route.
    ///
    /// # Panics
    ///
    /// Panics if `len > 32` or the prefix has host bits set.
    pub fn insert(&mut self, route: Route) {
        assert!(route.len <= 32, "prefix length out of range");
        if route.len < 32 {
            assert_eq!(
                route.prefix & ((1u64 << (32 - route.len)) - 1) as u32,
                0,
                "host bits set in prefix"
            );
        }
        let mut node = &mut self.root;
        for i in 0..route.len {
            let bit = ((route.prefix >> (31 - i)) & 1) as usize;
            node = node.children[bit].get_or_insert_with(Box::default);
        }
        if node.next_hop.replace(route.next_hop).is_none() {
            self.len += 1;
        }
    }

    /// Withdraws the route at exactly `prefix/len`, returning its next
    /// hop, or `None` when no such route exists (covering or nested
    /// routes are untouched — withdrawal is exact-match, not LPM).
    /// Interior nodes left with no route and no children are pruned, so
    /// a long insert/withdraw churn cannot grow the trie without bound.
    ///
    /// # Panics
    ///
    /// Panics if `len > 32` or the prefix has host bits set.
    pub fn remove(&mut self, prefix: u32, len: u8) -> Option<u32> {
        assert!(len <= 32, "prefix length out of range");
        if len < 32 {
            assert_eq!(
                prefix & ((1u64 << (32 - len)) - 1) as u32,
                0,
                "host bits set in prefix"
            );
        }
        // Returns (withdrawn hop, whether the visited node is now empty
        // and its parent should prune the edge).
        fn walk(node: &mut Node, prefix: u32, len: u8) -> (Option<u32>, bool) {
            if len == 0 {
                let hop = node.next_hop.take();
                let prune = node.children.iter().all(|c| c.is_none());
                return (hop, prune);
            }
            let bit = ((prefix >> 31) & 1) as usize;
            let Some(child) = node.children[bit].as_mut() else {
                return (None, false);
            };
            let (hop, prune_child) = walk(child, prefix << 1, len - 1);
            if prune_child {
                node.children[bit] = None;
            }
            let prune = node.next_hop.is_none() && node.children.iter().all(|c| c.is_none());
            (hop, prune)
        }
        let (hop, _) = walk(&mut self.root, prefix, len);
        if hop.is_some() {
            self.len -= 1;
        }
        hop
    }

    /// Allocated trie nodes, counting the root (diagnostics: pins that
    /// [`Fib::remove`] prunes emptied branches).
    pub fn nodes(&self) -> usize {
        fn count(node: &Node) -> usize {
            1 + node
                .children
                .iter()
                .flatten()
                .map(|c| count(c))
                .sum::<usize>()
        }
        count(&self.root)
    }

    /// Longest-prefix match.
    pub fn lookup(&self, addr: u32) -> Option<u32> {
        let mut node = &self.root;
        let mut best = node.next_hop;
        for i in 0..32 {
            let bit = ((addr >> (31 - i)) & 1) as usize;
            match &node.children[bit] {
                Some(child) => {
                    node = child;
                    if node.next_hop.is_some() {
                        best = node.next_hop;
                    }
                }
                None => break,
            }
        }
        best
    }

    /// All routes in the table, in depth-first (prefix, ascending-bit)
    /// order. Each stored prefix appears exactly once — duplicates were
    /// already collapsed by [`Fib::insert`]'s replace semantics.
    pub fn routes(&self) -> Vec<Route> {
        fn walk(node: &Node, prefix: u32, len: u8, out: &mut Vec<Route>) {
            if let Some(next_hop) = node.next_hop {
                out.push(Route {
                    prefix,
                    len,
                    next_hop,
                });
            }
            for (bit, child) in node.children.iter().enumerate() {
                if let Some(child) = child {
                    walk(child, prefix | ((bit as u32) << (31 - len)), len + 1, out);
                }
            }
        }
        let mut out = Vec::with_capacity(self.len);
        walk(&self.root, 0, 0, &mut out);
        out
    }
}

/// A DIR-24-8 flat-table longest-prefix classifier compiled from a
/// [`Fib`].
///
/// The classic two-level layout: a 2^24-entry top table indexed by the
/// high 24 address bits resolves every prefix of length ≤ 24 in a single
/// load, and slots covered by a longer prefix point at a 256-entry
/// overflow block indexed by the low byte. Next hops are interned so the
/// tables hold dense `u16` codes:
///
/// * `0` — no route covers the slot;
/// * `1..=0x7fff` — direct hit, next hop is `hops[code - 1]`;
/// * `0x8000 | block` — (top table only) consult overflow block `block`.
///
/// Lookups are two dependent loads worst case, no pointer chasing and no
/// branches on prefix length — the shape the batched forwarding path
/// wants. Build cost is O(routes × covered slots) into ~32 MiB of table,
/// so compile once per route table and share (the serve layer builds one
/// per supervisor, not per shard incarnation). Agreement with the trie
/// oracle over random tables is pinned by `tests/dir24_8.rs`.
#[derive(Debug, Clone)]
pub struct Dir24_8 {
    tbl24: Vec<u16>,
    overflow: Vec<u16>,
    hops: Vec<u32>,
}

/// Direct-hit codes are 15-bit, so at most this many distinct next hops
/// can be interned (far above any modeled table).
const MAX_HOPS: usize = 0x7fff;
/// Top-level entries with this bit set index an overflow block.
const OVERFLOW_BIT: u16 = 0x8000;

impl Dir24_8 {
    /// Compiles the classifier from a trie.
    pub fn from_fib(fib: &Fib) -> Self {
        Self::from_routes(&fib.routes())
    }

    /// Compiles the classifier from a route list. Routes are applied in
    /// ascending prefix-length order (stable, so a later duplicate of the
    /// same prefix wins) — longer prefixes overwrite the slots of the
    /// shorter ones they nest inside, which is exactly longest-prefix
    /// semantics once lookups read the final table.
    ///
    /// # Panics
    ///
    /// Panics on invalid routes (host bits set, `len > 32`), more than
    /// 32767 distinct next hops, or more than 32767 overflow blocks.
    pub fn from_routes(routes: &[Route]) -> Self {
        let mut sorted: Vec<Route> = routes.to_vec();
        sorted.sort_by_key(|r| r.len);
        let mut dir = Dir24_8 {
            tbl24: vec![0u16; 1 << 24],
            overflow: Vec::new(),
            hops: Vec::new(),
        };
        // Build-time intern index: hop -> direct-hit code. A linear scan
        // here made rebuilds quadratic in distinct next hops, which the
        // live control plane turns into a hot path (tables are rebuilt on
        // every route-churn swap).
        let mut codes: HashMap<u32, u16> = HashMap::with_capacity(routes.len().min(MAX_HOPS));
        for route in sorted {
            assert!(route.len <= 32, "prefix length out of range");
            if route.len < 32 {
                assert_eq!(
                    route.prefix & ((1u64 << (32 - route.len)) - 1) as u32,
                    0,
                    "host bits set in prefix"
                );
            }
            let code = *codes.entry(route.next_hop).or_insert_with(|| {
                assert!(dir.hops.len() < MAX_HOPS, "next-hop space exhausted");
                dir.hops.push(route.next_hop);
                dir.hops.len() as u16
            });
            if route.len <= 24 {
                // ≤24 routes are applied before any overflow block exists
                // (ascending-length order), so a plain range fill is safe.
                let start = (route.prefix >> 8) as usize;
                let span = 1usize << (24 - route.len);
                dir.tbl24[start..start + span].fill(code);
            } else {
                let slot = (route.prefix >> 8) as usize;
                let entry = dir.tbl24[slot];
                let block = if entry & OVERFLOW_BIT != 0 {
                    (entry & !OVERFLOW_BIT) as usize
                } else {
                    // Promote the slot: seed a fresh block with the ≤24
                    // route that covered it (same code space), then point
                    // the slot at the block.
                    let block = dir.overflow.len() / 256;
                    assert!(block < MAX_HOPS, "overflow block space exhausted");
                    dir.overflow.resize(dir.overflow.len() + 256, entry);
                    dir.tbl24[slot] = OVERFLOW_BIT | block as u16;
                    block
                };
                let low = (route.prefix & 0xff) as usize;
                let span = 1usize << (32 - route.len);
                dir.overflow[block * 256 + low..block * 256 + low + span].fill(code);
            }
        }
        dir
    }

    /// Longest-prefix match; agrees with [`Fib::lookup`] on the table the
    /// classifier was compiled from.
    pub fn lookup(&self, addr: u32) -> Option<u32> {
        let entry = self.tbl24[(addr >> 8) as usize];
        let code = if entry & OVERFLOW_BIT != 0 {
            self.overflow[((entry & !OVERFLOW_BIT) as usize) * 256 + (addr & 0xff) as usize]
        } else {
            entry
        };
        if code == 0 {
            None
        } else {
            Some(self.hops[code as usize - 1])
        }
    }

    /// Batched lookup: one verdict per address, written into `hops`.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn lookup_batch(&self, addrs: &[u32], hops: &mut [Option<u32>]) {
        assert_eq!(addrs.len(), hops.len(), "one verdict slot per address");
        for (addr, hop) in addrs.iter().zip(hops.iter_mut()) {
            *hop = self.lookup(*addr);
        }
    }

    /// Number of allocated overflow blocks (diagnostics).
    pub fn overflow_blocks(&self) -> usize {
        self.overflow.len() / 256
    }

    /// Number of distinct interned next hops.
    pub fn distinct_hops(&self) -> usize {
        self.hops.len()
    }
}

/// Builds a deterministic synthetic table of `n` routes spread over the
/// address space (used by the workloads and benches).
pub fn synthetic_table(n: usize) -> Fib {
    let mut fib = Fib::new();
    // A default route plus /16s and /24s interleaved.
    fib.insert(Route {
        prefix: 0,
        len: 0,
        next_hop: 0,
    });
    for i in 0..n {
        let i32b = i as u32;
        if i % 3 == 0 {
            let prefix = (10u32 << 24) | ((i32b & 0xff) << 16);
            fib.insert(Route {
                prefix,
                len: 16,
                next_hop: 100 + i32b,
            });
        } else {
            let prefix = (192u32 << 24) | (168 << 16) | ((i32b & 0xff) << 8);
            fib.insert(Route {
                prefix,
                len: 24,
                next_hop: 200 + i32b,
            });
        }
    }
    fib
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn longest_prefix_wins() {
        let mut fib = Fib::new();
        fib.insert(Route {
            prefix: 0x0a00_0000,
            len: 8,
            next_hop: 1,
        });
        fib.insert(Route {
            prefix: 0x0a0a_0000,
            len: 16,
            next_hop: 2,
        });
        fib.insert(Route {
            prefix: 0x0a0a_0a00,
            len: 24,
            next_hop: 3,
        });
        assert_eq!(fib.lookup(0x0a0a_0a05), Some(3));
        assert_eq!(fib.lookup(0x0a0a_0505), Some(2));
        assert_eq!(fib.lookup(0x0a05_0505), Some(1));
        assert_eq!(fib.lookup(0x0b00_0000), None);
    }

    #[test]
    fn default_route_catches_all() {
        let mut fib = Fib::new();
        fib.insert(Route {
            prefix: 0,
            len: 0,
            next_hop: 9,
        });
        assert_eq!(fib.lookup(0xffff_ffff), Some(9));
        assert_eq!(fib.lookup(0), Some(9));
    }

    #[test]
    fn replace_updates_in_place() {
        let mut fib = Fib::new();
        fib.insert(Route {
            prefix: 0x0a00_0000,
            len: 8,
            next_hop: 1,
        });
        fib.insert(Route {
            prefix: 0x0a00_0000,
            len: 8,
            next_hop: 7,
        });
        assert_eq!(fib.len(), 1);
        assert_eq!(fib.lookup(0x0a01_0101), Some(7));
    }

    #[test]
    #[should_panic(expected = "host bits")]
    fn rejects_host_bits() {
        let mut fib = Fib::new();
        fib.insert(Route {
            prefix: 0x0a00_0001,
            len: 8,
            next_hop: 1,
        });
    }

    #[test]
    fn host_route_matches_exactly() {
        let mut fib = Fib::new();
        fib.insert(Route {
            prefix: 0xc0a8_0101,
            len: 32,
            next_hop: 5,
        });
        assert_eq!(fib.lookup(0xc0a8_0101), Some(5));
        assert_eq!(fib.lookup(0xc0a8_0102), None);
    }

    #[test]
    fn duplicate_prefix_last_write_wins_repeatedly() {
        let mut fib = Fib::new();
        for hop in [1u32, 2, 3, 4] {
            fib.insert(Route {
                prefix: 0xc0a8_0000,
                len: 16,
                next_hop: hop,
            });
        }
        assert_eq!(fib.len(), 1, "replacement never inflates the count");
        assert_eq!(fib.lookup(0xc0a8_1234), Some(4));
        // Replacing a /0 behaves the same (the root node is special-cased
        // nowhere).
        fib.insert(Route {
            prefix: 0,
            len: 0,
            next_hop: 10,
        });
        fib.insert(Route {
            prefix: 0,
            len: 0,
            next_hop: 11,
        });
        assert_eq!(fib.len(), 2);
        assert_eq!(fib.lookup(0x0102_0304), Some(11));
    }

    #[test]
    fn default_route_loses_to_any_longer_match() {
        let mut fib = Fib::new();
        fib.insert(Route {
            prefix: 0,
            len: 0,
            next_hop: 99,
        });
        fib.insert(Route {
            prefix: 0x8000_0000,
            len: 1,
            next_hop: 1,
        });
        // Addresses under the /1 take the /1; everything else falls back.
        assert_eq!(fib.lookup(0xffff_ffff), Some(1));
        assert_eq!(fib.lookup(0x7fff_ffff), Some(99));
        assert_eq!(fib.lookup(0), Some(99));
    }

    #[test]
    fn nested_prefixes_tie_break_to_the_longest_on_every_boundary() {
        // A full nesting chain /0 ⊃ /8 ⊃ /16 ⊃ /24 ⊃ /32: each address
        // picks exactly the deepest covering prefix, including addresses
        // that diverge one bit past a shorter match.
        let mut fib = Fib::new();
        fib.insert(Route {
            prefix: 0,
            len: 0,
            next_hop: 0,
        });
        fib.insert(Route {
            prefix: 0x0a00_0000,
            len: 8,
            next_hop: 8,
        });
        fib.insert(Route {
            prefix: 0x0a0b_0000,
            len: 16,
            next_hop: 16,
        });
        fib.insert(Route {
            prefix: 0x0a0b_0c00,
            len: 24,
            next_hop: 24,
        });
        fib.insert(Route {
            prefix: 0x0a0b_0c0d,
            len: 32,
            next_hop: 32,
        });
        assert_eq!(fib.len(), 5);
        assert_eq!(fib.lookup(0x0a0b_0c0d), Some(32), "exact host route");
        assert_eq!(fib.lookup(0x0a0b_0c0c), Some(24), "one bit off the /32");
        assert_eq!(fib.lookup(0x0a0b_0d00), Some(16), "outside the /24");
        assert_eq!(fib.lookup(0x0a0c_0000), Some(8), "outside the /16");
        assert_eq!(fib.lookup(0x0b00_0000), Some(0), "outside the /8");
        // A sibling branch never inherits a cousin's longer match.
        fib.insert(Route {
            prefix: 0x0a0b_8000,
            len: 17,
            next_hop: 17,
        });
        assert_eq!(fib.lookup(0x0a0b_8001), Some(17));
        assert_eq!(fib.lookup(0x0a0b_7fff), Some(16));
    }

    #[test]
    fn remove_is_exact_match_and_returns_the_hop() {
        let mut fib = Fib::new();
        fib.insert(Route {
            prefix: 0x0a00_0000,
            len: 8,
            next_hop: 1,
        });
        fib.insert(Route {
            prefix: 0x0a0b_0000,
            len: 16,
            next_hop: 2,
        });
        // Withdrawing the nested /16 exposes the covering /8 again.
        assert_eq!(fib.remove(0x0a0b_0000, 16), Some(2));
        assert_eq!(fib.len(), 1);
        assert_eq!(fib.lookup(0x0a0b_0105), Some(1));
        // Exact-match only: no /16 left, and the /8 is not LPM-withdrawn.
        assert_eq!(fib.remove(0x0a0b_0000, 16), None);
        assert_eq!(fib.len(), 1);
        assert_eq!(fib.remove(0x0a00_0000, 8), Some(1));
        assert!(fib.is_empty());
        assert_eq!(fib.lookup(0x0a0b_0105), None);
    }

    #[test]
    fn remove_prunes_emptied_branches() {
        let mut fib = Fib::new();
        assert_eq!(fib.nodes(), 1, "just the root");
        fib.insert(Route {
            prefix: 0xc0a8_0101,
            len: 32,
            next_hop: 5,
        });
        assert_eq!(fib.nodes(), 33, "root plus one 32-deep spine");
        fib.insert(Route {
            prefix: 0xc0a8_0000,
            len: 16,
            next_hop: 6,
        });
        assert_eq!(fib.remove(0xc0a8_0101, 32), Some(5));
        // The spine below the /16 is gone; the /16 path stays.
        assert_eq!(fib.nodes(), 17);
        assert_eq!(fib.lookup(0xc0a8_0101), Some(6));
        assert_eq!(fib.remove(0xc0a8_0000, 16), Some(6));
        assert_eq!(fib.nodes(), 1, "back to the bare root");
        // A long insert/withdraw churn cannot grow the trie.
        for i in 0..1000u32 {
            fib.insert(Route {
                prefix: i << 8,
                len: 24,
                next_hop: i,
            });
            assert_eq!(fib.remove(i << 8, 24), Some(i));
        }
        assert_eq!(fib.nodes(), 1);
    }

    #[test]
    fn remove_default_route_keeps_longer_matches() {
        let mut fib = Fib::new();
        fib.insert(Route {
            prefix: 0,
            len: 0,
            next_hop: 9,
        });
        fib.insert(Route {
            prefix: 0x0a00_0000,
            len: 8,
            next_hop: 1,
        });
        assert_eq!(fib.remove(0, 0), Some(9));
        assert_eq!(fib.lookup(0x0a01_0101), Some(1), "the /8 survives");
        assert_eq!(fib.lookup(0x0b00_0000), None, "no default any more");
        assert_eq!(fib.remove(0, 0), None, "default already withdrawn");
    }

    #[test]
    #[should_panic(expected = "host bits")]
    fn remove_rejects_host_bits() {
        Fib::new().remove(0x0a00_0001, 8);
    }

    #[test]
    fn dir24_8_build_with_many_distinct_hops_is_near_linear() {
        // Every route gets its own next hop — the worst case for the
        // intern index. With the old O(hops) linear scan this build was
        // quadratic (~450M probes at this size, tens of seconds in a
        // debug test run); the hashed index finishes in well under the
        // budget even unoptimized.
        let n: u32 = 30_000;
        let routes: Vec<Route> = (0..n)
            .map(|i| Route {
                prefix: i << 8,
                len: 24,
                next_hop: 1_000_000 + i,
            })
            .collect();
        let t0 = std::time::Instant::now();
        let dir = Dir24_8::from_routes(&routes);
        let elapsed = t0.elapsed();
        assert_eq!(dir.distinct_hops(), n as usize);
        assert_eq!(dir.lookup(0), Some(1_000_000));
        assert_eq!(dir.lookup((n - 1) << 8 | 0x17), Some(1_000_000 + n - 1));
        assert!(
            elapsed < std::time::Duration::from_secs(2),
            "many-hops build took {elapsed:?} — intern has gone super-linear"
        );
    }

    #[test]
    fn synthetic_table_is_usable() {
        let fib = synthetic_table(32);
        assert!(fib.len() > 20);
        // Everything resolves at least to the default route.
        assert!(fib.lookup(0x0102_0304).is_some());
        assert_eq!(fib.lookup(0xc0a8_0105), Some(201));
    }

    #[test]
    fn routes_round_trips_through_a_fresh_trie() {
        let fib = synthetic_table(32);
        let routes = fib.routes();
        assert_eq!(routes.len(), fib.len());
        let mut rebuilt = Fib::new();
        for r in &routes {
            rebuilt.insert(*r);
        }
        assert_eq!(rebuilt.len(), fib.len());
        assert_eq!(rebuilt.routes(), routes, "stable enumeration order");
        for addr in [0u32, 0x0a05_0000, 0xc0a8_0123, 0xffff_ffff] {
            assert_eq!(rebuilt.lookup(addr), fib.lookup(addr));
        }
    }

    #[test]
    fn dir24_8_matches_the_trie_on_the_synthetic_table() {
        let fib = synthetic_table(64);
        let dir = Dir24_8::from_fib(&fib);
        for addr in [
            0u32,
            0x0a00_0000,
            0x0a05_1234,
            0xc0a8_0105,
            0xc0a8_1505,
            0x0102_0304,
            0xffff_ffff,
        ] {
            assert_eq!(dir.lookup(addr), fib.lookup(addr), "addr {addr:#010x}");
        }
    }

    #[test]
    fn dir24_8_overflow_blocks_resolve_long_prefixes() {
        // A /26 and a /32 nested inside a /24 inside a /16: the shared
        // tbl24 slot must promote to an overflow block that still serves
        // the shorter covering routes for unmatched low bytes.
        let mut fib = Fib::new();
        fib.insert(Route {
            prefix: 0xc0a8_0000,
            len: 16,
            next_hop: 1,
        });
        fib.insert(Route {
            prefix: 0xc0a8_0100,
            len: 24,
            next_hop: 2,
        });
        fib.insert(Route {
            prefix: 0xc0a8_0140,
            len: 26,
            next_hop: 3,
        });
        fib.insert(Route {
            prefix: 0xc0a8_0142,
            len: 32,
            next_hop: 4,
        });
        let dir = Dir24_8::from_fib(&fib);
        assert_eq!(dir.overflow_blocks(), 1, "one promoted slot");
        assert_eq!(dir.distinct_hops(), 4);
        for addr in [
            0xc0a8_0142u32, // the host route
            0xc0a8_0141,    // inside the /26, one off the /32
            0xc0a8_017f,    // last address of the /26
            0xc0a8_0180,    // past the /26, back on the /24
            0xc0a8_0100,    // first address of the /24
            0xc0a8_0200,    // sibling /24 slot, served by the /16
            0xc0a9_0000,    // outside the /16 entirely
        ] {
            assert_eq!(dir.lookup(addr), fib.lookup(addr), "addr {addr:#010x}");
        }
        assert_eq!(dir.lookup(0xc0a8_0142), Some(4));
        assert_eq!(dir.lookup(0xc0a9_0000), None);
    }

    #[test]
    fn dir24_8_duplicate_prefix_last_wins() {
        // from_routes applies equal-length routes in list order, so the
        // later duplicate must win — mirroring Fib::insert's replace.
        let routes = [
            Route {
                prefix: 0x0a00_0000,
                len: 8,
                next_hop: 1,
            },
            Route {
                prefix: 0x0a00_0000,
                len: 8,
                next_hop: 7,
            },
        ];
        let dir = Dir24_8::from_routes(&routes);
        assert_eq!(dir.lookup(0x0a01_0203), Some(7));
    }

    #[test]
    fn dir24_8_empty_and_default_edges() {
        let empty = Dir24_8::from_routes(&[]);
        assert_eq!(empty.lookup(0), None);
        assert_eq!(empty.lookup(0xffff_ffff), None);
        let default_only = Dir24_8::from_routes(&[Route {
            prefix: 0,
            len: 0,
            next_hop: 9,
        }]);
        assert_eq!(default_only.lookup(0), Some(9));
        assert_eq!(default_only.lookup(0xffff_ffff), Some(9));
    }

    #[test]
    fn dir24_8_lookup_batch_matches_scalar() {
        let fib = synthetic_table(32);
        let dir = Dir24_8::from_fib(&fib);
        let addrs: Vec<u32> = (0..256).map(|i| i * 0x0101_0101).collect();
        let mut batch = vec![None; addrs.len()];
        dir.lookup_batch(&addrs, &mut batch);
        for (addr, got) in addrs.iter().zip(&batch) {
            assert_eq!(*got, dir.lookup(*addr));
        }
    }
}
