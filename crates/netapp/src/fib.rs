//! Longest-prefix-match forwarding table (binary trie).

/// A route entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Route {
    /// Network prefix (host bits zero).
    pub prefix: u32,
    /// Prefix length, 0..=32.
    pub len: u8,
    /// Next-hop / egress port identifier.
    pub next_hop: u32,
}

#[derive(Debug, Clone, Default)]
struct Node {
    children: [Option<Box<Node>>; 2],
    next_hop: Option<u32>,
}

/// A binary-trie FIB.
#[derive(Debug, Clone, Default)]
pub struct Fib {
    root: Node,
    len: usize,
}

impl Fib {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of routes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts (or replaces) a route.
    ///
    /// # Panics
    ///
    /// Panics if `len > 32` or the prefix has host bits set.
    pub fn insert(&mut self, route: Route) {
        assert!(route.len <= 32, "prefix length out of range");
        if route.len < 32 {
            assert_eq!(
                route.prefix & ((1u64 << (32 - route.len)) - 1) as u32,
                0,
                "host bits set in prefix"
            );
        }
        let mut node = &mut self.root;
        for i in 0..route.len {
            let bit = ((route.prefix >> (31 - i)) & 1) as usize;
            node = node.children[bit].get_or_insert_with(Box::default);
        }
        if node.next_hop.replace(route.next_hop).is_none() {
            self.len += 1;
        }
    }

    /// Longest-prefix match.
    pub fn lookup(&self, addr: u32) -> Option<u32> {
        let mut node = &self.root;
        let mut best = node.next_hop;
        for i in 0..32 {
            let bit = ((addr >> (31 - i)) & 1) as usize;
            match &node.children[bit] {
                Some(child) => {
                    node = child;
                    if node.next_hop.is_some() {
                        best = node.next_hop;
                    }
                }
                None => break,
            }
        }
        best
    }
}

/// Builds a deterministic synthetic table of `n` routes spread over the
/// address space (used by the workloads and benches).
pub fn synthetic_table(n: usize) -> Fib {
    let mut fib = Fib::new();
    // A default route plus /16s and /24s interleaved.
    fib.insert(Route {
        prefix: 0,
        len: 0,
        next_hop: 0,
    });
    for i in 0..n {
        let i32b = i as u32;
        if i % 3 == 0 {
            let prefix = (10u32 << 24) | ((i32b & 0xff) << 16);
            fib.insert(Route {
                prefix,
                len: 16,
                next_hop: 100 + i32b,
            });
        } else {
            let prefix = (192u32 << 24) | (168 << 16) | ((i32b & 0xff) << 8);
            fib.insert(Route {
                prefix,
                len: 24,
                next_hop: 200 + i32b,
            });
        }
    }
    fib
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn longest_prefix_wins() {
        let mut fib = Fib::new();
        fib.insert(Route {
            prefix: 0x0a00_0000,
            len: 8,
            next_hop: 1,
        });
        fib.insert(Route {
            prefix: 0x0a0a_0000,
            len: 16,
            next_hop: 2,
        });
        fib.insert(Route {
            prefix: 0x0a0a_0a00,
            len: 24,
            next_hop: 3,
        });
        assert_eq!(fib.lookup(0x0a0a_0a05), Some(3));
        assert_eq!(fib.lookup(0x0a0a_0505), Some(2));
        assert_eq!(fib.lookup(0x0a05_0505), Some(1));
        assert_eq!(fib.lookup(0x0b00_0000), None);
    }

    #[test]
    fn default_route_catches_all() {
        let mut fib = Fib::new();
        fib.insert(Route {
            prefix: 0,
            len: 0,
            next_hop: 9,
        });
        assert_eq!(fib.lookup(0xffff_ffff), Some(9));
        assert_eq!(fib.lookup(0), Some(9));
    }

    #[test]
    fn replace_updates_in_place() {
        let mut fib = Fib::new();
        fib.insert(Route {
            prefix: 0x0a00_0000,
            len: 8,
            next_hop: 1,
        });
        fib.insert(Route {
            prefix: 0x0a00_0000,
            len: 8,
            next_hop: 7,
        });
        assert_eq!(fib.len(), 1);
        assert_eq!(fib.lookup(0x0a01_0101), Some(7));
    }

    #[test]
    #[should_panic(expected = "host bits")]
    fn rejects_host_bits() {
        let mut fib = Fib::new();
        fib.insert(Route {
            prefix: 0x0a00_0001,
            len: 8,
            next_hop: 1,
        });
    }

    #[test]
    fn host_route_matches_exactly() {
        let mut fib = Fib::new();
        fib.insert(Route {
            prefix: 0xc0a8_0101,
            len: 32,
            next_hop: 5,
        });
        assert_eq!(fib.lookup(0xc0a8_0101), Some(5));
        assert_eq!(fib.lookup(0xc0a8_0102), None);
    }

    #[test]
    fn duplicate_prefix_last_write_wins_repeatedly() {
        let mut fib = Fib::new();
        for hop in [1u32, 2, 3, 4] {
            fib.insert(Route {
                prefix: 0xc0a8_0000,
                len: 16,
                next_hop: hop,
            });
        }
        assert_eq!(fib.len(), 1, "replacement never inflates the count");
        assert_eq!(fib.lookup(0xc0a8_1234), Some(4));
        // Replacing a /0 behaves the same (the root node is special-cased
        // nowhere).
        fib.insert(Route {
            prefix: 0,
            len: 0,
            next_hop: 10,
        });
        fib.insert(Route {
            prefix: 0,
            len: 0,
            next_hop: 11,
        });
        assert_eq!(fib.len(), 2);
        assert_eq!(fib.lookup(0x0102_0304), Some(11));
    }

    #[test]
    fn default_route_loses_to_any_longer_match() {
        let mut fib = Fib::new();
        fib.insert(Route {
            prefix: 0,
            len: 0,
            next_hop: 99,
        });
        fib.insert(Route {
            prefix: 0x8000_0000,
            len: 1,
            next_hop: 1,
        });
        // Addresses under the /1 take the /1; everything else falls back.
        assert_eq!(fib.lookup(0xffff_ffff), Some(1));
        assert_eq!(fib.lookup(0x7fff_ffff), Some(99));
        assert_eq!(fib.lookup(0), Some(99));
    }

    #[test]
    fn nested_prefixes_tie_break_to_the_longest_on_every_boundary() {
        // A full nesting chain /0 ⊃ /8 ⊃ /16 ⊃ /24 ⊃ /32: each address
        // picks exactly the deepest covering prefix, including addresses
        // that diverge one bit past a shorter match.
        let mut fib = Fib::new();
        fib.insert(Route {
            prefix: 0,
            len: 0,
            next_hop: 0,
        });
        fib.insert(Route {
            prefix: 0x0a00_0000,
            len: 8,
            next_hop: 8,
        });
        fib.insert(Route {
            prefix: 0x0a0b_0000,
            len: 16,
            next_hop: 16,
        });
        fib.insert(Route {
            prefix: 0x0a0b_0c00,
            len: 24,
            next_hop: 24,
        });
        fib.insert(Route {
            prefix: 0x0a0b_0c0d,
            len: 32,
            next_hop: 32,
        });
        assert_eq!(fib.len(), 5);
        assert_eq!(fib.lookup(0x0a0b_0c0d), Some(32), "exact host route");
        assert_eq!(fib.lookup(0x0a0b_0c0c), Some(24), "one bit off the /32");
        assert_eq!(fib.lookup(0x0a0b_0d00), Some(16), "outside the /24");
        assert_eq!(fib.lookup(0x0a0c_0000), Some(8), "outside the /16");
        assert_eq!(fib.lookup(0x0b00_0000), Some(0), "outside the /8");
        // A sibling branch never inherits a cousin's longer match.
        fib.insert(Route {
            prefix: 0x0a0b_8000,
            len: 17,
            next_hop: 17,
        });
        assert_eq!(fib.lookup(0x0a0b_8001), Some(17));
        assert_eq!(fib.lookup(0x0a0b_7fff), Some(16));
    }

    #[test]
    fn synthetic_table_is_usable() {
        let fib = synthetic_table(32);
        assert!(fib.len() > 20);
        // Everything resolves at least to the default route.
        assert!(fib.lookup(0x0102_0304).is_some());
        assert_eq!(fib.lookup(0xc0a8_0105), Some(201));
    }
}
