//! # memsync-netapp — networking application substrate
//!
//! The paper's evaluation domain: IP packet forwarding. This crate provides
//! the software reference (packets, checksums, a longest-prefix-match FIB),
//! seeded workload generation, and hic source generators for the forwarding
//! application whose 1/2, 1/4, and 1/8 producer/consumer scenarios the
//! experiments sweep.
//!
//! * [`packet`] — IPv4/Ethernet headers, RFC 1071 checksums, the forwarding
//!   transform;
//! * [`fib`] — binary-trie longest-prefix match plus the flat
//!   [`fib::Dir24_8`] classifier compiled from it;
//! * [`forwarding`] — hic source generators ([`forwarding::app_source`],
//!   [`forwarding::core_source`]);
//! * [`workload`] — seeded packet traces and the software oracle.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fib;
pub mod forwarding;
pub mod packet;
pub mod workload;

pub use fib::{Dir24_8, Fib, Route};
pub use packet::{EthernetFrame, Ipv4Packet};
pub use workload::Workload;
