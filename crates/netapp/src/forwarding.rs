//! hic source generators for the IP packet-forwarding application.
//!
//! §4 of the paper evaluates "three different scenarios based on a simple
//! Internet Protocol (IP) packet forwarding application", scaling the
//! number of consumer pseudo-ports. These generators produce that
//! application as hic source: an ingress/parse stage, a two-level
//! longest-prefix-match lookup stage, a TTL/checksum forwarding stage, and
//! a configurable number of egress consumers fed through the shared-memory
//! dependency that the memory organizations guard.

/// Generates the full forwarding application with `egress` consumer
/// threads on the final (scaled) dependency.
///
/// # Panics
///
/// Panics unless `1 <= egress <= 8` (the base architecture's pseudo-port
/// limit).
pub fn app_source(egress: usize) -> String {
    assert!((1..=8).contains(&egress), "egress count 1..=8");
    let mut src = String::new();

    // ---- ingress: parse the descriptor into header fields ----
    let fwd_consumers: Vec<String> = (0..egress).map(|i| format!("[e{i},od{i}]")).collect();
    src.push_str(
        r#"
thread rx () {
    message pkt;
    int dstp, ttl, ver, flags, desc;
    #interface{eth0, "gige"}
    recv pkt;
    dstp = (pkt >> 8) & 16777215;
    ttl = pkt & 255;
    ver = (pkt >> 28) & 15;
    flags = (pkt >> 24) & 15;
    if (ttl > 1) {
        #consumer{m_rx,[lkp,key]}
        desc = (dstp << 8) | (ttl - 1);
    } else {
        desc = 0;
    }
}
"#,
    );

    // ---- lookup: two-level trie over port-A tables ----
    src.push_str(
        r#"
thread lkp () {
    int key, idx0, idx1, node, hop, route;
    int tbl0[256], tbl1[256];
    #producer{m_rx,[rx,desc]}
    key = desc;
    idx0 = (key >> 24) & 255;
    node = tbl0[idx0];
    if ((node & 1) == 1) {
        idx1 = (key >> 16) & 255;
        hop = tbl1[idx1];
    } else {
        hop = node >> 1;
    }
    #consumer{m_lkp,[fwd,rinfo]}
    route = (hop << 16) | (key & 65535);
}
"#,
    );

    // ---- forward: TTL/checksum arithmetic ----
    src.push_str(&format!(
        r#"
thread fwd () {{
    int rinfo, hop, meta, sum, csum, outv;
    #producer{{m_lkp,[lkp,route]}}
    rinfo = route;
    hop = (rinfo >> 16) & 65535;
    meta = rinfo & 65535;
    sum = (meta & 255) + ((meta >> 8) & 255) + hop;
    sum = (sum & 65535) + (sum >> 16);
    sum = (sum & 65535) + (sum >> 16);
    csum = (~sum) & 65535;
    #consumer{{m_fwd,{}}}
    outv = (hop << 20) | (csum << 4) | 5;
}}
"#,
        fwd_consumers.join(",")
    ));

    // ---- egress consumers (the scaled pseudo-ports) ----
    for i in 0..egress {
        src.push_str(&format!(
            r#"
thread e{i} () {{
    int od{i}, frame{i}, crc{i};
    #producer{{m_fwd,[fwd,outv]}}
    od{i} = outv;
    crc{i} = g(od{i}, {seed});
    frame{i} = od{i} ^ (crc{i} << 1);
    send frame{i};
}}
"#,
            seed = 17 + i
        ));
    }
    src
}

/// Generates the larger "core forwarding function" used for the overhead
/// accounting (the paper's core is about 1000 slices). `stages` scales the
/// amount of per-packet work.
pub fn core_source(stages: usize) -> String {
    assert!((1..=16).contains(&stages), "stages 1..=16");
    let mut body = String::new();
    body.push_str(
        "    message pkt;\n    int h0, h1, h2, acc, tmp;\n    int tbl[256];\n    recv pkt;\n    h0 = pkt;\n    acc = 0;\n",
    );
    for s in 0..stages {
        body.push_str(&format!(
            "    h1 = (h0 >> {shift}) & 65535;\n    h2 = tbl[(h1 >> 8) & 255];\n    tmp = f(h1, h2);\n    acc = acc + ((tmp >> {fold}) & 4095) + h2;\n    acc = (acc & 65535) + (acc >> 16);\n    h0 = h0 ^ (tmp << 1);\n",
            shift = (s * 3) % 16,
            fold = (s * 5) % 12,
        ));
    }
    body.push_str("    send acc;\n");
    format!("thread core () {{\n{body}}}\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsync_core::{Compiler, OrganizationKind};

    #[test]
    fn app_source_compiles_for_all_paper_cases() {
        for egress in [2usize, 4, 8] {
            let src = app_source(egress);
            let system = Compiler::new(&src)
                .organization(OrganizationKind::Arbitrated)
                .compile()
                .unwrap_or_else(|e| panic!("egress={egress}: {e}"));
            // rx, lkp, fwd + egress threads.
            assert_eq!(system.fsms.len(), 3 + egress);
            // Every dependency landed in a bank obeying the 8-port budget.
            let total_guarded: usize = system.plan.sync_banks.iter().map(|b| b.guarded.len()).sum();
            assert_eq!(total_guarded, 3);
            for bank in &system.plan.sync_banks {
                assert!(bank.consumers.len() <= 8);
                assert!(bank.producers.len() <= 8);
            }
            // The scaled dependency has all egress threads as consumers.
            let fwd_bank = system
                .plan
                .sync_banks
                .iter()
                .find(|b| b.guarded.iter().any(|g| g.dep == "m_fwd"))
                .expect("m_fwd allocated");
            assert!(fwd_bank.consumers.len() >= egress);
        }
    }

    #[test]
    fn app_dependencies_match_structure() {
        let src = app_source(4);
        let (_, analysis) = memsync_hic::compile(&src).unwrap();
        assert_eq!(analysis.dependencies.len(), 3);
        let m_fwd = analysis.dependency("m_fwd").unwrap();
        assert_eq!(m_fwd.dep_number(), 4);
        assert_eq!(m_fwd.producer.thread, "fwd");
    }

    #[test]
    fn app_compiles_under_event_driven_too() {
        let src = app_source(2);
        let system = Compiler::new(&src)
            .organization(OrganizationKind::EventDriven)
            .compile()
            .unwrap();
        assert_eq!(system.wrapper_modules.len(), 1);
        assert!(system.wrapper_modules[0].name.contains("evt"));
    }

    #[test]
    fn core_source_compiles_and_scales() {
        let small = Compiler::new(core_source(2)).compile().unwrap();
        let big = Compiler::new(core_source(8)).compile().unwrap();
        let a = small.implement().unwrap().core_slices();
        let b = big.implement().unwrap().core_slices();
        assert!(b > a, "more stages, more area: {a} vs {b}");
    }

    #[test]
    fn generated_sources_have_no_division() {
        // Division is not synthesizable by the codegen; the generators must
        // avoid it.
        for src in [app_source(8), core_source(8)] {
            assert!(!src.contains('/'), "division found");
            assert!(!src.contains('%'), "remainder found");
        }
    }
}
