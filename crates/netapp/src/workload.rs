//! Packet workload generation: seeded traces against a synthetic FIB.

use crate::fib::{synthetic_table, Fib};
use crate::packet::Ipv4Packet;
use memsync_trace::Pcg32;

/// A generated trace plus the table it targets.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Packets in arrival order.
    pub packets: Vec<Ipv4Packet>,
    /// The forwarding table.
    pub fib: Fib,
}

impl Workload {
    /// Generates a seeded trace of `n` packets over a table of
    /// `routes` routes. A configurable fraction hits known /24 prefixes so
    /// lookup outcomes are mixed.
    pub fn generate(seed: u64, n: usize, routes: usize) -> Self {
        let mut rng = Pcg32::seed_from_u64(seed);
        let fib = synthetic_table(routes);
        let mut packets = Vec::with_capacity(n);
        for _ in 0..n {
            let dst = if rng.gen_bool(0.7) {
                // Hit a synthetic /24.
                let i = rng.gen_range_u32(0..routes as u32);
                (192u32 << 24) | (168 << 16) | ((i & 0xff) << 8) | rng.gen_range_u32(0..256)
            } else {
                rng.next_u32()
            };
            let ttl = rng.gen_range(1..65) as u8;
            packets.push(Ipv4Packet::new(rng.next_u32(), dst, ttl, 17, 64));
        }
        Workload { packets, fib }
    }

    /// Runs the software reference forwarding over the trace, returning
    /// `(forwarded, dropped)` counts — the oracle for hardware checks.
    pub fn reference_forward(&self) -> (usize, usize) {
        let mut forwarded = 0;
        let mut dropped = 0;
        for p in &self.packets {
            let mut q = *p;
            if q.forward() && self.fib.lookup(q.dst).is_some() {
                forwarded += 1;
            } else {
                dropped += 1;
            }
        }
        (forwarded, dropped)
    }

    /// Message descriptors for the simulator's rx interfaces.
    pub fn descriptors(&self) -> Vec<i64> {
        self.packets
            .iter()
            .map(|p| i64::from(p.descriptor()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_seed_deterministic() {
        let a = Workload::generate(5, 100, 16);
        let b = Workload::generate(5, 100, 16);
        assert_eq!(a.packets, b.packets);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Workload::generate(1, 50, 16);
        let b = Workload::generate(2, 50, 16);
        assert_ne!(a.packets, b.packets);
    }

    #[test]
    fn reference_forward_accounts_everything() {
        let w = Workload::generate(9, 500, 32);
        let (fwd, drop) = w.reference_forward();
        assert_eq!(fwd + drop, 500);
        assert!(fwd > 0, "most packets should forward");
    }

    #[test]
    fn checksums_valid_in_trace() {
        let w = Workload::generate(3, 64, 8);
        assert!(w.packets.iter().all(Ipv4Packet::checksum_ok));
    }

    #[test]
    fn descriptors_match_packets() {
        let w = Workload::generate(4, 10, 8);
        let d = w.descriptors();
        assert_eq!(d.len(), 10);
        assert_eq!(d[0], i64::from(w.packets[0].descriptor()));
    }
}
