//! IPv4 / Ethernet packet structures for the forwarding workloads.

/// A parsed IPv4 header (the fields the forwarding path touches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Packet {
    /// Source address.
    pub src: u32,
    /// Destination address.
    pub dst: u32,
    /// Time to live.
    pub ttl: u8,
    /// Protocol number.
    pub protocol: u8,
    /// Total length (header + payload).
    pub total_len: u16,
    /// Header checksum.
    pub checksum: u16,
}

impl Ipv4Packet {
    /// Builds a packet with a freshly computed checksum.
    pub fn new(src: u32, dst: u32, ttl: u8, protocol: u8, total_len: u16) -> Self {
        let mut p = Ipv4Packet {
            src,
            dst,
            ttl,
            protocol,
            total_len,
            checksum: 0,
        };
        p.checksum = p.compute_checksum();
        p
    }

    /// Serializes the modeled 20-byte header.
    pub fn to_bytes(&self) -> [u8; 20] {
        let mut b = [0u8; 20];
        b[0] = 0x45; // version 4, IHL 5
        b[2..4].copy_from_slice(&self.total_len.to_be_bytes());
        b[8] = self.ttl;
        b[9] = self.protocol;
        b[10..12].copy_from_slice(&self.checksum.to_be_bytes());
        b[12..16].copy_from_slice(&self.src.to_be_bytes());
        b[16..20].copy_from_slice(&self.dst.to_be_bytes());
        b
    }

    /// Parses a 20-byte header. Strict: this is the decode path of the
    /// serve frame codec, so anything the model cannot round-trip is
    /// rejected rather than silently reinterpreted.
    ///
    /// # Errors
    ///
    /// Rejects short headers, non-IPv4 versions, IHL ≠ 5 (options are not
    /// modeled), and headers whose stored checksum does not match.
    pub fn from_bytes(b: &[u8]) -> Result<Self, ParsePacketError> {
        if b.len() < 20 {
            return Err(ParsePacketError::Truncated);
        }
        if b[0] >> 4 != 4 {
            return Err(ParsePacketError::NotIpv4);
        }
        if b[0] & 0x0f != 5 {
            return Err(ParsePacketError::BadIhl(b[0] & 0x0f));
        }
        let p = Ipv4Packet {
            src: u32::from_be_bytes([b[12], b[13], b[14], b[15]]),
            dst: u32::from_be_bytes([b[16], b[17], b[18], b[19]]),
            ttl: b[8],
            protocol: b[9],
            total_len: u16::from_be_bytes([b[2], b[3]]),
            checksum: u16::from_be_bytes([b[10], b[11]]),
        };
        if !p.checksum_ok() {
            return Err(ParsePacketError::BadChecksum {
                stored: p.checksum,
                computed: p.compute_checksum(),
            });
        }
        Ok(p)
    }

    /// RFC 1071 header checksum over the serialized header (with the
    /// checksum field zeroed).
    ///
    /// Computed in closed form over the modeled header words instead of
    /// serializing through [`Ipv4Packet::to_bytes`] and folding byte
    /// pairs: the modeled header is `0x4500`, `total_len`, `ttl:protocol`,
    /// and the four address halves (every other word is zero), so the sum
    /// is seven adds and two folds — this runs per packet on both the
    /// frame-decode and workload-generation hot paths. Equivalence with
    /// the serialized fold is pinned by
    /// `closed_form_checksum_matches_serialized_fold`.
    pub fn compute_checksum(&self) -> u16 {
        let mut sum = 0x4500u32
            + u32::from(self.total_len)
            + (u32::from(self.ttl) << 8)
            + u32::from(self.protocol)
            + (self.src >> 16)
            + (self.src & 0xffff)
            + (self.dst >> 16)
            + (self.dst & 0xffff);
        while sum >> 16 != 0 {
            sum = (sum & 0xffff) + (sum >> 16);
        }
        !(sum as u16)
    }

    /// Whether the stored checksum matches the header.
    pub fn checksum_ok(&self) -> bool {
        self.checksum == self.compute_checksum()
    }

    /// The forwarding transform: decrement TTL and incrementally update the
    /// checksum (RFC 1624). Returns `false` (drop) when TTL expires.
    pub fn forward(&mut self) -> bool {
        if self.ttl <= 1 {
            return false;
        }
        self.ttl -= 1;
        self.checksum = self.compute_checksum();
        true
    }

    /// A compact 32-bit descriptor used as the shared-memory `message`
    /// handle (what the hic threads pass around).
    pub fn descriptor(&self) -> u32 {
        // High bits of dst (the lookup key) + TTL.
        (self.dst & 0xffff_ff00) | u32::from(self.ttl)
    }
}

/// Packet parsing failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParsePacketError {
    /// Fewer than 20 header bytes.
    Truncated,
    /// Version field is not 4.
    NotIpv4,
    /// IHL is not 5 (the model carries no options).
    BadIhl(u8),
    /// Stored header checksum does not match the computed one.
    BadChecksum {
        /// Checksum carried in the header.
        stored: u16,
        /// Checksum recomputed over the header.
        computed: u16,
    },
}

impl std::fmt::Display for ParsePacketError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParsePacketError::Truncated => f.write_str("truncated header"),
            ParsePacketError::NotIpv4 => f.write_str("not an IPv4 header"),
            ParsePacketError::BadIhl(ihl) => write!(f, "unsupported IHL {ihl} (expected 5)"),
            ParsePacketError::BadChecksum { stored, computed } => {
                write!(
                    f,
                    "bad header checksum {stored:#06x} (computed {computed:#06x})"
                )
            }
        }
    }
}

impl std::error::Error for ParsePacketError {}

/// A minimal Ethernet II frame around an IPv4 header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EthernetFrame {
    /// Destination MAC.
    pub dst_mac: [u8; 6],
    /// Source MAC.
    pub src_mac: [u8; 6],
    /// Encapsulated packet.
    pub payload: Ipv4Packet,
}

impl EthernetFrame {
    /// EtherType of IPv4.
    pub const ETHERTYPE_IPV4: u16 = 0x0800;

    /// Serializes header + IPv4 header.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(14 + 20);
        v.extend_from_slice(&self.dst_mac);
        v.extend_from_slice(&self.src_mac);
        v.extend_from_slice(&Self::ETHERTYPE_IPV4.to_be_bytes());
        v.extend_from_slice(&self.payload.to_bytes());
        v
    }

    /// Parses a frame.
    ///
    /// # Errors
    ///
    /// Rejects short frames, wrong EtherType, and bad IPv4 headers.
    pub fn from_bytes(b: &[u8]) -> Result<Self, ParsePacketError> {
        if b.len() < 14 + 20 {
            return Err(ParsePacketError::Truncated);
        }
        let ethertype = u16::from_be_bytes([b[12], b[13]]);
        if ethertype != Self::ETHERTYPE_IPV4 {
            return Err(ParsePacketError::NotIpv4);
        }
        Ok(EthernetFrame {
            dst_mac: b[0..6].try_into().expect("length checked"),
            src_mac: b[6..12].try_into().expect("length checked"),
            payload: Ipv4Packet::from_bytes(&b[14..])?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 1071 sum over the serialized header bytes — the definition the
    /// closed-form `compute_checksum` must reproduce exactly.
    fn serialized_fold_checksum(p: &Ipv4Packet) -> u16 {
        let mut copy = *p;
        copy.checksum = 0;
        let bytes = copy.to_bytes();
        let mut sum: u32 = 0;
        for pair in bytes.chunks(2) {
            sum += u32::from(u16::from_be_bytes([pair[0], pair[1]]));
        }
        while sum >> 16 != 0 {
            sum = (sum & 0xffff) + (sum >> 16);
        }
        !(sum as u16)
    }

    #[test]
    fn closed_form_checksum_matches_serialized_fold() {
        // Corner values plus a seeded sweep: the closed form must be
        // bit-identical to folding the serialized header, including
        // multi-round carry folds (all-ones addresses).
        let corners = [
            (0u32, 0u32, 0u8, 0u8, 0u16),
            (0xffff_ffff, 0xffff_ffff, 255, 255, 65535),
            (0xffff_0000, 0x0000_ffff, 1, 0, 20),
            (0x8000_0001, 0x7fff_fffe, 128, 17, 576),
        ];
        for (src, dst, ttl, proto, len) in corners {
            let p = Ipv4Packet {
                src,
                dst,
                ttl,
                protocol: proto,
                total_len: len,
                checksum: 0,
            };
            assert_eq!(p.compute_checksum(), serialized_fold_checksum(&p));
        }
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 32) as u32
        };
        for _ in 0..10_000 {
            let p = Ipv4Packet {
                src: next(),
                dst: next(),
                ttl: next() as u8,
                protocol: next() as u8,
                total_len: next() as u16,
                checksum: 0,
            };
            assert_eq!(p.compute_checksum(), serialized_fold_checksum(&p), "{p:?}");
        }
    }

    #[test]
    fn checksum_round_trip() {
        let p = Ipv4Packet::new(0x0a00_0001, 0xc0a8_0101, 64, 6, 1500);
        assert!(p.checksum_ok());
        let bytes = p.to_bytes();
        let q = Ipv4Packet::from_bytes(&bytes).unwrap();
        assert_eq!(p, q);
        assert!(q.checksum_ok());
    }

    #[test]
    fn forward_decrements_ttl_and_fixes_checksum() {
        let mut p = Ipv4Packet::new(1, 2, 4, 17, 64);
        assert!(p.forward());
        assert_eq!(p.ttl, 3);
        assert!(p.checksum_ok());
    }

    #[test]
    fn forward_drops_expired() {
        let mut p = Ipv4Packet::new(1, 2, 1, 17, 64);
        assert!(!p.forward());
        assert_eq!(p.ttl, 1, "unchanged on drop");
    }

    #[test]
    fn corrupted_checksum_detected() {
        let mut p = Ipv4Packet::new(1, 2, 64, 6, 100);
        p.checksum ^= 0x00ff;
        assert!(!p.checksum_ok());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(
            Ipv4Packet::from_bytes(&[0; 10]),
            Err(ParsePacketError::Truncated)
        );
        let mut b = [0u8; 20];
        b[0] = 0x60; // IPv6
        assert_eq!(Ipv4Packet::from_bytes(&b), Err(ParsePacketError::NotIpv4));
    }

    #[test]
    fn strict_round_trip_over_the_wire_format() {
        // The serve frame codec ships exactly these 20 bytes; every field
        // the model carries must survive serialize → strict parse.
        for (src, dst, ttl, proto, len) in [
            (0u32, 0u32, 1u8, 0u8, 20u16),
            (0xffff_ffff, 0xffff_ffff, 255, 255, 65535),
            (0x0a00_0001, 0xc0a8_0101, 64, 6, 1500),
        ] {
            let p = Ipv4Packet::new(src, dst, ttl, proto, len);
            let q = Ipv4Packet::from_bytes(&p.to_bytes()).unwrap();
            assert_eq!(p, q);
            assert_eq!(p.to_bytes(), q.to_bytes(), "byte-identical re-encode");
        }
    }

    #[test]
    fn parse_rejects_bad_ihl() {
        let mut b = Ipv4Packet::new(1, 2, 64, 6, 100).to_bytes();
        b[0] = 0x46; // version 4, IHL 6 (20 bytes of options not modeled)
        assert_eq!(Ipv4Packet::from_bytes(&b), Err(ParsePacketError::BadIhl(6)));
    }

    #[test]
    fn parse_rejects_corrupted_checksum() {
        let p = Ipv4Packet::new(1, 2, 64, 6, 100);
        let mut b = p.to_bytes();
        b[10] ^= 0x01; // flip a checksum bit
        match Ipv4Packet::from_bytes(&b) {
            Err(ParsePacketError::BadChecksum { stored, computed }) => {
                assert_eq!(stored, p.checksum ^ 0x0100);
                assert_eq!(computed, p.checksum);
            }
            other => panic!("expected BadChecksum, got {other:?}"),
        }
        // Corrupting a covered field without fixing the checksum fails too.
        let mut b = p.to_bytes();
        b[8] = b[8].wrapping_add(1); // ttl
        assert!(matches!(
            Ipv4Packet::from_bytes(&b),
            Err(ParsePacketError::BadChecksum { .. })
        ));
    }

    #[test]
    fn ethernet_round_trip() {
        let f = EthernetFrame {
            dst_mac: [1, 2, 3, 4, 5, 6],
            src_mac: [7, 8, 9, 10, 11, 12],
            payload: Ipv4Packet::new(5, 6, 10, 6, 60),
        };
        let bytes = f.to_bytes();
        assert_eq!(EthernetFrame::from_bytes(&bytes).unwrap(), f);
    }

    #[test]
    fn descriptor_carries_prefix_and_ttl() {
        let p = Ipv4Packet::new(0, 0xc0a8_01fe, 64, 6, 60);
        let d = p.descriptor();
        assert_eq!(d & 0xff, 64);
        assert_eq!(d & 0xffff_ff00, 0xc0a8_0100);
    }
}
