//! Shared evaluation semantics for hic operators and user functions.
//!
//! Both the cycle-accurate simulator (`memsync-sim`) and any constant
//! folding use these definitions, so hardware and software behaviour agree.
//! User combinational functions (`f`, `g`, `h` in Figure 1) have no bodies
//! in hic — they stand for library combinational logic — so they are given a
//! fixed deterministic definition: a mix network over the arguments seeded
//! by the function name. The RTL codegen instantiates the same network.

use memsync_hic::ast::{BinaryOp, UnaryOp};

/// Evaluates a binary operator on 64-bit two's-complement values.
///
/// Comparison and logical operators yield 0/1. Division and remainder by
/// zero yield 0 (hardware divide-by-zero convention used throughout).
pub fn eval_binary(op: BinaryOp, a: i64, b: i64) -> i64 {
    match op {
        BinaryOp::Or => i64::from(a != 0 || b != 0),
        BinaryOp::And => i64::from(a != 0 && b != 0),
        BinaryOp::BitOr => a | b,
        BinaryOp::BitXor => a ^ b,
        BinaryOp::BitAnd => a & b,
        BinaryOp::Eq => i64::from(a == b),
        BinaryOp::Ne => i64::from(a != b),
        BinaryOp::Lt => i64::from(a < b),
        BinaryOp::Le => i64::from(a <= b),
        BinaryOp::Gt => i64::from(a > b),
        BinaryOp::Ge => i64::from(a >= b),
        BinaryOp::Shl => a.wrapping_shl((b & 63) as u32),
        BinaryOp::Shr => ((a as u64).wrapping_shr((b & 63) as u32)) as i64,
        BinaryOp::Add => a.wrapping_add(b),
        BinaryOp::Sub => a.wrapping_sub(b),
        BinaryOp::Mul => a.wrapping_mul(b),
        BinaryOp::Div => {
            if b == 0 {
                0
            } else {
                a.wrapping_div(b)
            }
        }
        BinaryOp::Rem => {
            if b == 0 {
                0
            } else {
                a.wrapping_rem(b)
            }
        }
    }
}

/// Evaluates a unary operator.
pub fn eval_unary(op: UnaryOp, a: i64) -> i64 {
    match op {
        UnaryOp::Neg => a.wrapping_neg(),
        UnaryOp::Not => i64::from(a == 0),
        UnaryOp::BitNot => !a,
    }
}

/// FNV-1a hash of a function name, used as the seed of its mix network.
pub fn name_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The deterministic stand-in for a user combinational function: a rotate/
/// xor/add fold of the arguments, seeded by the name, computed in the
/// 32-bit datapath domain so the generated RTL network (built from
/// `Shl`/`Shr`/`Or`/`Xor`/`Add` primitives) produces bit-identical results.
pub fn call_function(name: &str, args: &[i64]) -> i64 {
    call_function_seeded(name_seed(name), args)
}

/// [`call_function`] with the name hash precomputed — hot callers (the
/// serve fast-path backend evaluates one `g()` per packet per egress
/// consumer) hash the name once and fold only the arguments per call.
pub fn call_function_seeded(seed: u64, args: &[i64]) -> i64 {
    let mut acc = seed as u32;
    for &a in args {
        let a = a as u32;
        acc = acc.rotate_left(5) ^ a;
        acc = acc.wrapping_add(a.rotate_left(13));
    }
    i64::from(acc)
}

/// Masks a value to `width` bits (two's complement, zero-extended container).
pub fn mask_to_width(value: i64, width: u32) -> i64 {
    if width >= 64 {
        value
    } else {
        value & ((1i64 << width) - 1)
    }
}

/// The hardware datapath width used by the synthesized threads: hic `int`
/// is 32 bits, and all temporaries are carried at this width.
pub const DATAPATH_WIDTH: u32 = 32;

/// Evaluates a binary operator in the 32-bit datapath domain (what the
/// generated RTL computes): operands are truncated to 32 bits, the result
/// is zero-extended back into the `i64` container. Comparisons are
/// unsigned, matching the RTL `Lt` primitive.
pub fn eval_binary_datapath(op: BinaryOp, a: i64, b: i64) -> i64 {
    let ua = a as u32;
    let ub = b as u32;
    let r: u32 = match op {
        BinaryOp::Or => u32::from(ua != 0 || ub != 0),
        BinaryOp::And => u32::from(ua != 0 && ub != 0),
        BinaryOp::BitOr => ua | ub,
        BinaryOp::BitXor => ua ^ ub,
        BinaryOp::BitAnd => ua & ub,
        BinaryOp::Eq => u32::from(ua == ub),
        BinaryOp::Ne => u32::from(ua != ub),
        BinaryOp::Lt => u32::from(ua < ub),
        BinaryOp::Le => u32::from(ua <= ub),
        BinaryOp::Gt => u32::from(ua > ub),
        BinaryOp::Ge => u32::from(ua >= ub),
        BinaryOp::Shl => ua.wrapping_shl(ub & 31),
        BinaryOp::Shr => ua.wrapping_shr(ub & 31),
        BinaryOp::Add => ua.wrapping_add(ub),
        BinaryOp::Sub => ua.wrapping_sub(ub),
        BinaryOp::Mul => ua.wrapping_mul(ub),
        BinaryOp::Div => ua.checked_div(ub).unwrap_or(0),
        BinaryOp::Rem => {
            if ub == 0 {
                0
            } else {
                ua % ub
            }
        }
    };
    i64::from(r)
}

/// Evaluates a unary operator in the 32-bit datapath domain.
pub fn eval_unary_datapath(op: UnaryOp, a: i64) -> i64 {
    let ua = a as u32;
    let r: u32 = match op {
        UnaryOp::Neg => ua.wrapping_neg(),
        UnaryOp::Not => u32::from(ua == 0),
        UnaryOp::BitNot => !ua,
    };
    i64::from(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_wraps() {
        assert_eq!(eval_binary(BinaryOp::Add, i64::MAX, 1), i64::MIN);
        assert_eq!(eval_binary(BinaryOp::Mul, 1 << 62, 4), 0);
    }

    #[test]
    fn division_by_zero_is_zero() {
        assert_eq!(eval_binary(BinaryOp::Div, 42, 0), 0);
        assert_eq!(eval_binary(BinaryOp::Rem, 42, 0), 0);
    }

    #[test]
    fn comparisons_are_boolean() {
        assert_eq!(eval_binary(BinaryOp::Lt, 1, 2), 1);
        assert_eq!(eval_binary(BinaryOp::Ge, 1, 2), 0);
        assert_eq!(eval_binary(BinaryOp::And, 5, 0), 0);
        assert_eq!(eval_binary(BinaryOp::Or, 5, 0), 1);
    }

    #[test]
    fn shift_is_logical_right() {
        assert_eq!(eval_binary(BinaryOp::Shr, -1, 60), 15);
    }

    #[test]
    fn unary_ops() {
        assert_eq!(eval_unary(UnaryOp::Neg, 5), -5);
        assert_eq!(eval_unary(UnaryOp::Not, 0), 1);
        assert_eq!(eval_unary(UnaryOp::Not, 7), 0);
        assert_eq!(eval_unary(UnaryOp::BitNot, 0), -1);
    }

    #[test]
    fn calls_are_deterministic_and_name_sensitive() {
        let a = call_function("f", &[1, 2]);
        let b = call_function("f", &[1, 2]);
        let c = call_function("g", &[1, 2]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn calls_are_argument_order_sensitive() {
        assert_ne!(call_function("f", &[1, 2]), call_function("f", &[2, 1]));
    }

    #[test]
    fn datapath_ops_are_32bit() {
        assert_eq!(eval_binary_datapath(BinaryOp::Add, 0xffff_ffff, 1), 0);
        assert_eq!(
            eval_binary_datapath(BinaryOp::Lt, -1, 0),
            0,
            "unsigned compare"
        );
        assert_eq!(eval_unary_datapath(UnaryOp::BitNot, 0), 0xffff_ffff);
        assert_eq!(eval_unary_datapath(UnaryOp::Neg, 1), 0xffff_ffff);
    }

    #[test]
    fn call_fits_in_32_bits() {
        let v = call_function("f", &[1, 2, 3]);
        assert!(v >= 0 && v <= i64::from(u32::MAX));
    }

    #[test]
    fn mask_widths() {
        assert_eq!(mask_to_width(0x1ff, 8), 0xff);
        assert_eq!(mask_to_width(-1, 4), 15);
        assert_eq!(mask_to_width(123, 64), 123);
    }
}
