//! Cycle-accurate finite state machines.
//!
//! The end product of the §3 front-end synthesis: each thread becomes an
//! FSM in which "we have knowledge of the particular state where memory
//! accesses happen". States issue their operations in order; a state whose
//! memory operation is guarded blocks until the memory organization grants
//! it (the multi-cycle behaviour the organizations of §3.1/§3.2 introduce).

use crate::cdfg::lower_thread;
use crate::ir::{DfOp, DfThread, MemBinding, OpKind, Terminator, Value};
use crate::schedule::{list_schedule, Constraints};
use memsync_hic::ast::{Program, Thread};
use memsync_hic::error::Result;

/// Control transfer out of a state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateNext {
    /// Unconditional transition.
    Goto(usize),
    /// Two-way branch (non-zero = then).
    Branch {
        /// Condition value.
        cond: Value,
        /// Target when non-zero.
        then_state: usize,
        /// Target when zero.
        else_state: usize,
    },
    /// Multi-way dispatch.
    Switch {
        /// Selector value.
        selector: Value,
        /// `(match, target)` arms.
        arms: Vec<(i64, usize)>,
        /// Default target.
        default: usize,
    },
    /// End of one run-to-completion iteration; control returns to the entry
    /// state and iteration counters advance.
    Restart,
}

/// One FSM state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsmState {
    /// Operations issued in this state, in chaining order.
    pub ops: Vec<DfOp>,
    /// Transition taken when the state completes (a state with a guarded
    /// memory op completes only when granted).
    pub next: StateNext,
    /// Originating basic block (for reports).
    pub block: usize,
    /// Cycle within the block schedule.
    pub cycle: u32,
}

impl FsmState {
    /// Whether this state issues any memory operation.
    pub fn has_memory_op(&self) -> bool {
        self.ops.iter().any(|o| o.kind.is_memory())
    }

    /// Whether any memory op in this state is guarded by a dependency.
    pub fn has_guarded_op(&self) -> bool {
        self.ops.iter().any(|o| o.kind.dep().is_some())
    }
}

/// A synthesized thread FSM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fsm {
    /// Thread name.
    pub thread: String,
    /// Variable names.
    pub vars: Vec<String>,
    /// Variable widths (bits).
    pub widths: Vec<u32>,
    /// States; index 0 is the entry state.
    pub states: Vec<FsmState>,
    /// Memory residency used during synthesis.
    pub binding: MemBinding,
}

impl Fsm {
    /// Synthesizes a thread: lowering, scheduling, state construction.
    ///
    /// # Errors
    ///
    /// Propagates lowering failures (see [`lower_thread`]).
    #[deprecated(
        since = "0.1.0",
        note = "use the `Synthesis` builder: \
                `Synthesis::of(program).constraints(c).binding(b).thread(name).run()`"
    )]
    pub fn synthesize(
        program: &Program,
        thread: &Thread,
        binding: &MemBinding,
        constraints: Constraints,
    ) -> Result<Fsm> {
        let df = lower_thread(program, thread, binding)?;
        Ok(Self::from_dfthread(&df, constraints))
    }

    /// Builds the FSM from an already lowered thread.
    pub fn from_dfthread(df: &DfThread, constraints: Constraints) -> Fsm {
        let schedules: Vec<_> = df
            .blocks
            .iter()
            .map(|b| list_schedule(b, constraints))
            .collect();
        // State index of the first cycle of each block.
        let mut block_start = Vec::with_capacity(df.blocks.len());
        let mut total = 0usize;
        for s in &schedules {
            block_start.push(total);
            total += s.cycles as usize;
        }
        let mut states = Vec::with_capacity(total);
        for (bi, (block, sched)) in df.blocks.iter().zip(schedules.iter()).enumerate() {
            for cycle in 0..sched.cycles {
                let ops: Vec<DfOp> = sched.ops_in_cycle(cycle).cloned().collect();
                let is_last = cycle + 1 == sched.cycles;
                let next = if !is_last {
                    StateNext::Goto(block_start[bi] + cycle as usize + 1)
                } else {
                    match &block.term {
                        Terminator::Jump(t) => StateNext::Goto(block_start[*t]),
                        Terminator::Branch {
                            cond,
                            then_block,
                            else_block,
                        } => StateNext::Branch {
                            cond: *cond,
                            then_state: block_start[*then_block],
                            else_state: block_start[*else_block],
                        },
                        Terminator::Switch {
                            selector,
                            arms,
                            default,
                        } => StateNext::Switch {
                            selector: *selector,
                            arms: arms.iter().map(|(v, t)| (*v, block_start[*t])).collect(),
                            default: block_start[*default],
                        },
                        Terminator::Restart => StateNext::Restart,
                    }
                };
                states.push(FsmState {
                    ops,
                    next,
                    block: bi,
                    cycle,
                });
            }
        }
        Fsm {
            thread: df.name.clone(),
            vars: df.vars.clone(),
            widths: df.widths.clone(),
            states,
            binding: df.binding.clone(),
        }
    }

    /// Number of states issuing memory operations.
    pub fn memory_state_count(&self) -> usize {
        self.states.iter().filter(|s| s.has_memory_op()).count()
    }

    /// Number of states issuing guarded (dependency-carrying) operations.
    pub fn guarded_state_count(&self) -> usize {
        self.states.iter().filter(|s| s.has_guarded_op()).count()
    }

    /// All distinct dependency ids this FSM touches, with direction:
    /// `(dep, is_write)`.
    pub fn dependencies(&self) -> Vec<(String, bool)> {
        let mut deps = Vec::new();
        for s in &self.states {
            for o in &s.ops {
                match &o.kind {
                    OpKind::MemRead { dep: Some(d), .. } if !deps.contains(&(d.clone(), false)) => {
                        deps.push((d.clone(), false));
                    }
                    OpKind::MemWrite { dep: Some(d), .. } if !deps.contains(&(d.clone(), true)) => {
                        deps.push((d.clone(), true));
                    }
                    _ => {}
                }
            }
        }
        deps
    }

    /// Looks up a variable id by name.
    pub fn var_id(&self, name: &str) -> Option<crate::ir::VarId> {
        self.vars
            .iter()
            .position(|v| v == name)
            .map(|i| crate::ir::VarId(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::PortClass;
    use memsync_hic::parser::parse;

    fn synth(src: &str, binding: MemBinding) -> Fsm {
        let program = parse(src).unwrap();
        crate::synthesis::Synthesis::of(&program)
            .binding(binding)
            .run()
            .unwrap()
            .fsm
    }

    #[test]
    fn straight_line_states_chain() {
        let fsm = synth(
            "thread t() { int a, b; a = 1; b = a + 2; }",
            MemBinding::new(),
        );
        assert!(!fsm.states.is_empty());
        // Terminal state restarts.
        let last = fsm.states.iter().find(|s| s.next == StateNext::Restart);
        assert!(last.is_some(), "restart state exists");
    }

    #[test]
    fn guarded_states_are_identified() {
        let mut binding = MemBinding::new();
        binding.place_guarded("v", PortClass::C, 0, Some("m".into()), None);
        let fsm = synth("thread c() { int w, v; w = v + 1; }", binding);
        assert_eq!(fsm.guarded_state_count(), 1);
        assert_eq!(fsm.dependencies(), vec![("m".to_owned(), false)]);
    }

    #[test]
    fn branch_targets_resolve_to_states() {
        let fsm = synth(
            "thread t() { int a, b; a = 1; if (a) { b = 1; } else { b = 2; } b = 3; }",
            MemBinding::new(),
        );
        for s in &fsm.states {
            match &s.next {
                StateNext::Goto(t) => assert!(*t < fsm.states.len()),
                StateNext::Branch {
                    then_state,
                    else_state,
                    ..
                } => {
                    assert!(*then_state < fsm.states.len());
                    assert!(*else_state < fsm.states.len());
                }
                StateNext::Switch { arms, default, .. } => {
                    for (_, t) in arms {
                        assert!(*t < fsm.states.len());
                    }
                    assert!(*default < fsm.states.len());
                }
                StateNext::Restart => {}
            }
        }
    }

    #[test]
    fn memory_states_counted() {
        let fsm = synth(
            "thread t() { int tbl[8]; tbl[0] = 1; tbl[1] = 2; }",
            MemBinding::new(),
        );
        assert_eq!(fsm.memory_state_count(), 2);
        assert_eq!(fsm.guarded_state_count(), 0);
    }

    #[test]
    fn loop_fsm_has_cycle() {
        let fsm = synth(
            "thread t() { int a; a = 4; while (a) { a = a - 1; } }",
            MemBinding::new(),
        );
        // Some state must transition backwards (to a lower index).
        let back = fsm.states.iter().enumerate().any(|(i, s)| match &s.next {
            StateNext::Goto(t) => *t <= i,
            StateNext::Branch {
                then_state,
                else_state,
                ..
            } => *then_state <= i || *else_state <= i,
            _ => false,
        });
        assert!(back, "loop must produce a backward transition");
    }

    #[test]
    fn producer_write_dependency_recorded() {
        let mut binding = MemBinding::new();
        binding.place_guarded("v", PortClass::D, 4, None, Some("mt1".into()));
        let fsm = synth("thread p() { int v; v = 9; }", binding);
        assert_eq!(fsm.dependencies(), vec![("mt1".to_owned(), true)]);
    }
}
