//! Operation scheduling: three-address blocks → cycle-assigned blocks.
//!
//! Implements the classic behavioral-synthesis trio the paper leans on
//! ("these steps are well researched in the behavioral synthesis
//! community"): ASAP and ALAP for bounds, and resource-constrained list
//! scheduling for the final assignment. Memory operations occupy a port for
//! their cycle and deliver read data one cycle later; ALU operations may
//! chain up to a configurable depth within one cycle.

use crate::ir::{Block, DfOp, OpKind, Temp, Value};
use std::collections::BTreeMap;

/// Resource constraints for list scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Constraints {
    /// Simultaneous ALU (logic/arith/call) operations per cycle.
    pub alu_per_cycle: u32,
    /// Simultaneous memory operations per cycle (the paper assumes memory
    /// accesses are single-cycle and one per state).
    pub mem_per_cycle: u32,
    /// Maximum dependent ALU operations chained combinationally in one
    /// cycle.
    pub max_chain: u32,
}

impl Default for Constraints {
    fn default() -> Self {
        Constraints {
            alu_per_cycle: 4,
            mem_per_cycle: 1,
            max_chain: 2,
        }
    }
}

/// A scheduled block: every op paired with its issue cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledBlock {
    /// `(cycle, op)` pairs in issue order (cycles are non-decreasing).
    pub ops: Vec<(u32, DfOp)>,
    /// Number of cycles the block occupies (≥ 1).
    pub cycles: u32,
    /// Cycle in which the terminator's condition value is available.
    pub cond_ready: u32,
}

impl ScheduledBlock {
    /// Ops issued in a given cycle.
    pub fn ops_in_cycle(&self, cycle: u32) -> impl Iterator<Item = &DfOp> {
        self.ops
            .iter()
            .filter(move |(c, _)| *c == cycle)
            .map(|(_, o)| o)
    }
}

fn is_alu(kind: &OpKind) -> bool {
    matches!(
        kind,
        OpKind::Unary(_) | OpKind::Binary(_) | OpKind::Call(_) | OpKind::Copy | OpKind::Select
    )
}

/// ASAP schedule: every op at the earliest cycle its data allows (no
/// resource limits, unit chaining).
pub fn asap(block: &Block) -> Vec<u32> {
    let mut avail: BTreeMap<Temp, u32> = BTreeMap::new();
    let mut cycles = Vec::with_capacity(block.ops.len());
    for op in &block.ops {
        let ready = op
            .args
            .iter()
            .filter_map(|a| match a {
                Value::Temp(t) => avail.get(t).copied(),
                _ => Some(0),
            })
            .max()
            .unwrap_or(0);
        cycles.push(ready);
        if let Some(t) = op.result {
            let latency = u32::from(matches!(op.kind, OpKind::MemRead { .. }));
            avail.insert(t, ready + latency);
        }
    }
    cycles
}

/// ALAP schedule for a given block length (cycles counted from 0).
pub fn alap(block: &Block, length: u32) -> Vec<u32> {
    // Walk backwards: an op must complete before the earliest consumer of
    // its result.
    let mut deadline: BTreeMap<Temp, u32> = BTreeMap::new();
    let mut cycles = vec![length.saturating_sub(1); block.ops.len()];
    for (idx, op) in block.ops.iter().enumerate().rev() {
        let mut latest = length.saturating_sub(1);
        if let Some(t) = op.result {
            if let Some(&d) = deadline.get(&t) {
                let latency = u32::from(matches!(op.kind, OpKind::MemRead { .. }));
                latest = d.saturating_sub(latency);
            }
        }
        cycles[idx] = latest;
        for a in &op.args {
            if let Value::Temp(t) = a {
                let cur = deadline.get(t).copied().unwrap_or(latest);
                deadline.insert(*t, cur.min(latest));
            }
        }
    }
    cycles
}

/// Resource-constrained list scheduling.
///
/// Ops are visited in program order (a legal topological order of the data
/// dependencies); each is placed at the earliest cycle satisfying data
/// readiness, chain depth, and resource limits. Ordering between memory
/// operations is preserved (program order), keeping the §3 partial order of
/// memory accesses intact.
pub fn list_schedule(block: &Block, constraints: Constraints) -> ScheduledBlock {
    let mut avail: BTreeMap<Temp, u32> = BTreeMap::new();
    let mut chain_depth: BTreeMap<Temp, u32> = BTreeMap::new();
    let mut alu_used: BTreeMap<u32, u32> = BTreeMap::new();
    let mut mem_used: BTreeMap<u32, u32> = BTreeMap::new();
    let mut last_mem_cycle: Option<u32> = None;
    // Variable dependences: reads must not land before the cycle of the
    // last program-order write (same cycle is fine — ops keep their order
    // within a state and the datapath forwards same-state stores), and
    // writes must not land before earlier reads/writes of the variable.
    let mut var_last_write: BTreeMap<u32, u32> = BTreeMap::new();
    let mut var_last_access: BTreeMap<u32, u32> = BTreeMap::new();
    let mut scheduled = Vec::with_capacity(block.ops.len());
    let mut span = 1u32;

    for op in &block.ops {
        let var_reads: Vec<u32> = op
            .args
            .iter()
            .filter_map(|a| match a {
                Value::Var(v) => Some(v.0),
                _ => None,
            })
            .collect();
        let var_write: Option<u32> = match &op.kind {
            OpKind::StoreVar { var } | OpKind::Recv { var } => Some(var.0),
            _ => None,
        };
        let data_ready = op
            .args
            .iter()
            .filter_map(|a| match a {
                Value::Temp(t) => avail.get(t).copied(),
                _ => Some(0),
            })
            .chain(
                var_reads
                    .iter()
                    .map(|v| var_last_write.get(v).copied().unwrap_or(0)),
            )
            .chain(var_write.iter().map(|v| {
                var_last_access
                    .get(v)
                    .copied()
                    .unwrap_or(0)
                    .max(var_last_write.get(v).copied().unwrap_or(0))
            }))
            .max()
            .unwrap_or(0);
        // Memory program order: a memory op may not issue before the cycle
        // of the previous memory op.
        let order_ready = if op.kind.is_memory() {
            last_mem_cycle.map(|c| c + 1).unwrap_or(0).max(data_ready)
        } else {
            data_ready
        };
        let mut cycle = order_ready;
        loop {
            let fits_resources = if op.kind.is_memory() {
                mem_used.get(&cycle).copied().unwrap_or(0) < constraints.mem_per_cycle
            } else if is_alu(&op.kind) {
                alu_used.get(&cycle).copied().unwrap_or(0) < constraints.alu_per_cycle
            } else {
                true
            };
            let depth = if is_alu(&op.kind) {
                1 + op
                    .args
                    .iter()
                    .filter_map(|a| match a {
                        Value::Temp(t) if avail.get(t) == Some(&cycle) => {
                            chain_depth.get(t).copied()
                        }
                        _ => None,
                    })
                    .max()
                    .unwrap_or(0)
            } else {
                1
            };
            if fits_resources && depth <= constraints.max_chain {
                if op.kind.is_memory() {
                    *mem_used.entry(cycle).or_insert(0) += 1;
                    last_mem_cycle = Some(cycle);
                } else if is_alu(&op.kind) {
                    *alu_used.entry(cycle).or_insert(0) += 1;
                }
                if let Some(t) = op.result {
                    let latency = u32::from(matches!(op.kind, OpKind::MemRead { .. }));
                    avail.insert(t, cycle + latency);
                    chain_depth.insert(t, if latency > 0 { 0 } else { depth });
                }
                for v in &var_reads {
                    var_last_access
                        .entry(*v)
                        .and_modify(|c| *c = (*c).max(cycle))
                        .or_insert(cycle);
                }
                if let Some(v) = var_write {
                    var_last_write
                        .entry(v)
                        .and_modify(|c| *c = (*c).max(cycle))
                        .or_insert(cycle);
                    var_last_access
                        .entry(v)
                        .and_modify(|c| *c = (*c).max(cycle))
                        .or_insert(cycle);
                }
                scheduled.push((cycle, op.clone()));
                span = span.max(cycle + 1);
                if let Some(t) = op.result {
                    span = span.max(avail[&t] + 1);
                }
                break;
            }
            cycle += 1;
        }
    }

    // The terminator's condition must be available by the end.
    let cond_value = match &block.term {
        crate::ir::Terminator::Branch { cond, .. } => Some(*cond),
        crate::ir::Terminator::Switch { selector, .. } => Some(*selector),
        _ => None,
    };
    let cond_ready = match cond_value {
        Some(Value::Temp(t)) => avail.get(&t).copied().unwrap_or(0),
        _ => 0,
    };
    span = span.max(cond_ready + 1);

    ScheduledBlock {
        ops: scheduled,
        cycles: span,
        cond_ready,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdfg::lower_thread;
    use crate::ir::MemBinding;
    use memsync_hic::parser::parse;

    fn block_of(src: &str) -> Block {
        let program = parse(src).unwrap();
        let t = lower_thread(&program, &program.threads[0], &MemBinding::new()).unwrap();
        t.blocks[0].clone()
    }

    #[test]
    fn asap_respects_dependencies() {
        let b = block_of("thread t() { int a, b; a = 1; b = ((a + 1) * 2) + 3; }");
        let cycles = asap(&b);
        // Dependent ops never scheduled before their producers.
        for (i, op) in b.ops.iter().enumerate() {
            for a in &op.args {
                if let Value::Temp(t) = a {
                    let def = b
                        .ops
                        .iter()
                        .position(|o| o.result == Some(*t))
                        .expect("def exists");
                    assert!(cycles[def] <= cycles[i]);
                }
            }
        }
    }

    #[test]
    fn alap_fits_within_asap_length() {
        let b = block_of("thread t() { int a, b; a = 1; b = ((a + 1) * 2) + 3; }");
        let asap_cycles = asap(&b);
        let len = asap_cycles.iter().max().copied().unwrap_or(0) + 1;
        let alap_cycles = alap(&b, len);
        for (s, l) in asap_cycles.iter().zip(alap_cycles.iter()) {
            assert!(s <= l, "asap {s} must not exceed alap {l} (mobility >= 0)");
        }
    }

    #[test]
    fn chaining_limits_ops_per_cycle() {
        let b = block_of("thread t() { int a, b; a = 1; b = a + 1 + 2 + 3 + 4 + 5; }");
        let tight = list_schedule(
            &b,
            Constraints {
                alu_per_cycle: 8,
                mem_per_cycle: 1,
                max_chain: 1,
            },
        );
        let loose = list_schedule(
            &b,
            Constraints {
                alu_per_cycle: 8,
                mem_per_cycle: 1,
                max_chain: 8,
            },
        );
        assert!(tight.cycles > loose.cycles);
    }

    #[test]
    fn alu_limit_serializes_independent_ops() {
        let b = block_of(
            "thread t() { int a, b, c, d, e; a = 1; b = a + 1; c = a + 2; d = a + 3; e = a + 4; }",
        );
        let one = list_schedule(
            &b,
            Constraints {
                alu_per_cycle: 1,
                mem_per_cycle: 1,
                max_chain: 1,
            },
        );
        let four = list_schedule(
            &b,
            Constraints {
                alu_per_cycle: 4,
                mem_per_cycle: 1,
                max_chain: 1,
            },
        );
        assert!(
            one.cycles > four.cycles,
            "{} vs {}",
            one.cycles,
            four.cycles
        );
    }

    #[test]
    fn memory_reads_add_latency() {
        let b = block_of("thread t() { int tbl[8], x; x = tbl[0] + 1; }");
        let s = list_schedule(&b, Constraints::default());
        // Read in cycle 0, data in cycle 1, add no earlier than cycle 1.
        let read_cycle = s
            .ops
            .iter()
            .find(|(_, o)| matches!(o.kind, OpKind::MemRead { .. }))
            .map(|(c, _)| *c)
            .unwrap();
        let add_cycle = s
            .ops
            .iter()
            .find(|(_, o)| matches!(o.kind, OpKind::Binary(_)))
            .map(|(c, _)| *c)
            .unwrap();
        assert!(add_cycle > read_cycle);
    }

    #[test]
    fn memory_ops_keep_program_order() {
        let b = block_of("thread t() { int tbl[8]; tbl[0] = 1; tbl[1] = 2; tbl[2] = 3; }");
        let s = list_schedule(&b, Constraints::default());
        let mem_cycles: Vec<u32> = s
            .ops
            .iter()
            .filter(|(_, o)| o.kind.is_memory())
            .map(|(c, _)| *c)
            .collect();
        let mut sorted = mem_cycles.clone();
        sorted.sort_unstable();
        assert_eq!(mem_cycles, sorted);
        // With one port, each write is a distinct cycle.
        assert_eq!(mem_cycles.len(), 3);
        assert!(mem_cycles[0] < mem_cycles[1] && mem_cycles[1] < mem_cycles[2]);
    }

    #[test]
    fn empty_block_is_one_cycle() {
        let b = Block {
            ops: vec![],
            term: crate::ir::Terminator::Restart,
        };
        let s = list_schedule(&b, Constraints::default());
        assert_eq!(s.cycles, 1);
    }
}
