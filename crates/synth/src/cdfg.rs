//! Lowering from the hic AST to the three-address [`DfThread`] form.
//!
//! Expression trees become chains of [`DfOp`]s over temps; control flow
//! becomes basic blocks with explicit terminators; reads and writes of
//! memory-resident variables (per the caller-provided [`MemBinding`])
//! become `MemRead`/`MemWrite` operations carrying their guarding
//! dependency ids.

use crate::ir::{Block, DfOp, DfThread, MemBinding, OpKind, Residency, Terminator, Value, VarId};
use memsync_hic::ast::{Expr, LValue, Program, Stmt, StmtKind, Thread};
use memsync_hic::error::{CompileError, Result, Span};

/// Lowers one thread.
///
/// # Errors
///
/// Returns a [`CompileError`] if the thread references variables missing
/// from its declarations (callers are expected to have run
/// [`memsync_hic::sema::analyze`] first, which catches this earlier with
/// better messages).
pub fn lower_thread(program: &Program, thread: &Thread, binding: &MemBinding) -> Result<DfThread> {
    let mut ctx = Lowering {
        program,
        thread,
        binding,
        vars: Vec::new(),
        widths: Vec::new(),
        blocks: Vec::new(),
        next_temp: 0,
        current: Vec::new(),
    };
    for decl in thread.params.iter().chain(thread.decls.iter()) {
        ctx.vars.push(decl.name.clone());
        ctx.widths
            .push(decl.ty.bit_width(Some(program)).unwrap_or(32));
    }
    // Constants named by pragmas become pseudo-variables initialized by a
    // leading store so later reads resolve.
    let mut const_inits: Vec<(String, i64)> = Vec::new();
    memsync_hic::ast::walk_stmts(&thread.body, &mut |stmt: &Stmt| {
        for pragma in &stmt.pragmas {
            if let memsync_hic::ast::Pragma::Constant { name, value, .. } = pragma {
                if !const_inits.iter().any(|(n, _)| n == name) {
                    const_inits.push((name.clone(), *value));
                }
            }
        }
    });
    for (name, _) in &const_inits {
        if !ctx.vars.iter().any(|v| v == name) {
            ctx.vars.push(name.clone());
            ctx.widths.push(32);
        }
    }

    // Entry block: constant initialization.
    for (name, value) in &const_inits {
        let var = ctx.var_id(name, Span::dummy())?;
        ctx.current.push(DfOp {
            kind: OpKind::StoreVar { var },
            args: vec![Value::Const(*value)],
            result: None,
        });
    }

    let entry_exit = ctx.lower_stmts(&thread.body)?;
    ctx.seal(entry_exit, Terminator::Restart);

    Ok(DfThread {
        name: thread.name.clone(),
        vars: ctx.vars,
        widths: ctx.widths,
        blocks: ctx.blocks,
        binding: binding.clone(),
    })
}

struct Lowering<'a> {
    program: &'a Program,
    thread: &'a Thread,
    binding: &'a MemBinding,
    vars: Vec<String>,
    widths: Vec<u32>,
    blocks: Vec<Block>,
    next_temp: u32,
    current: Vec<DfOp>,
}

/// Handle to a block whose terminator is filled in later.
#[derive(Debug, Clone, Copy)]
struct PendingBlock(usize);

impl<'a> Lowering<'a> {
    fn fresh_temp(&mut self) -> crate::ir::Temp {
        let t = crate::ir::Temp(self.next_temp);
        self.next_temp += 1;
        t
    }

    fn var_id(&mut self, name: &str, span: Span) -> Result<VarId> {
        // Remote producer variables read under a `#producer` pragma may not
        // be locally declared; materialize them as local shadow registers
        // (the wrapper delivers the value through port C).
        if let Some(i) = self.vars.iter().position(|v| v == name) {
            return Ok(VarId(i as u32));
        }
        if self.binding.residency.contains_key(name) {
            self.vars.push(name.to_owned());
            self.widths.push(32);
            return Ok(VarId((self.vars.len() - 1) as u32));
        }
        // Tolerate locally undeclared names that sema would have flagged.
        if self.thread.var(name).is_none() {
            self.vars.push(name.to_owned());
            self.widths.push(32);
            return Ok(VarId((self.vars.len() - 1) as u32));
        }
        Err(CompileError::single(
            format!("unknown variable `{name}`"),
            span,
        ))
    }

    /// Finishes the current block with `term`, returning its index.
    fn seal_current(&mut self, term: Terminator) -> usize {
        let ops = std::mem::take(&mut self.current);
        self.blocks.push(Block { ops, term });
        self.blocks.len() - 1
    }

    /// Finishes a pending block list by pointing them at a target.
    fn patch(&mut self, pending: &[PendingBlock], target: usize) {
        for p in pending {
            match &mut self.blocks[p.0].term {
                t @ Terminator::Restart => *t = Terminator::Jump(target),
                Terminator::Jump(t) if *t == usize::MAX => *t = target,
                Terminator::Branch {
                    then_block,
                    else_block,
                    ..
                } => {
                    if *then_block == usize::MAX {
                        *then_block = target;
                    }
                    if *else_block == usize::MAX {
                        *else_block = target;
                    }
                }
                Terminator::Switch { arms, default, .. } => {
                    for (_, t) in arms.iter_mut() {
                        if *t == usize::MAX {
                            *t = target;
                        }
                    }
                    if *default == usize::MAX {
                        *default = target;
                    }
                }
                Terminator::Jump(_) => {}
            }
        }
    }

    fn seal(&mut self, pending: Vec<PendingBlock>, term: Terminator) {
        // Any fall-through from `pending` lands in a final block with `term`.
        let final_block = self.seal_current(term);
        self.patch(&pending, final_block);
    }

    /// Lowers statements into the current block chain; returns blocks whose
    /// successor is the statement following the list.
    fn lower_stmts(&mut self, stmts: &[Stmt]) -> Result<Vec<PendingBlock>> {
        let mut pending: Vec<PendingBlock> = Vec::new();
        for stmt in stmts {
            if !pending.is_empty() {
                // The previous statement ended in control flow; start a new
                // block and patch the pending exits to it.
                let target = self.blocks.len() + usize::from(!self.current.is_empty());
                // Close current (possibly empty) chain point lazily: only
                // needed if ops already accumulated.
                if !self.current.is_empty() {
                    let b = self.seal_current(Terminator::Jump(usize::MAX));
                    pending.push(PendingBlock(b));
                    let _ = target;
                }
                let joined = std::mem::take(&mut pending);
                // Every pending block jumps to the block that will start now.
                let start = self.blocks.len();
                self.patch(&joined, start);
            }
            pending = self.lower_stmt(stmt)?;
        }
        Ok(pending)
    }

    /// Lowers one statement; returns pending exits (empty means fall
    /// through in the current open block).
    fn lower_stmt(&mut self, stmt: &Stmt) -> Result<Vec<PendingBlock>> {
        match &stmt.kind {
            StmtKind::Assign { target, value } => {
                let v = self.lower_expr(value)?;
                self.lower_store(target, v, stmt.span)?;
                Ok(vec![])
            }
            StmtKind::Recv { var } => {
                let id = self.var_id(var, stmt.span)?;
                self.current.push(DfOp {
                    kind: OpKind::Recv { var: id },
                    args: vec![],
                    result: None,
                });
                Ok(vec![])
            }
            StmtKind::Send { value } => {
                let v = self.lower_expr(value)?;
                self.current.push(DfOp {
                    kind: OpKind::Send,
                    args: vec![v],
                    result: None,
                });
                Ok(vec![])
            }
            StmtKind::Expr(e) => {
                let _ = self.lower_expr(e)?;
                Ok(vec![])
            }
            StmtKind::Block(body) => self.lower_stmts(body),
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let c = self.lower_expr(cond)?;
                let header = self.seal_current(Terminator::Branch {
                    cond: c,
                    then_block: usize::MAX,
                    else_block: usize::MAX,
                });
                // Then arm.
                let then_start = self.blocks.len();
                let then_pending = self.lower_stmts(then_branch)?;
                let then_exit = self.seal_current(Terminator::Jump(usize::MAX));
                self.patch(&then_pending, then_exit);
                if let Terminator::Branch { then_block, .. } = &mut self.blocks[header].term {
                    *then_block = then_start;
                }
                let mut exits = vec![PendingBlock(then_exit)];
                if else_branch.is_empty() {
                    exits.push(PendingBlock(header));
                } else {
                    let else_start = self.blocks.len();
                    let else_pending = self.lower_stmts(else_branch)?;
                    let else_exit = self.seal_current(Terminator::Jump(usize::MAX));
                    self.patch(&else_pending, else_exit);
                    if let Terminator::Branch { else_block, .. } = &mut self.blocks[header].term {
                        *else_block = else_start;
                    }
                    exits.push(PendingBlock(else_exit));
                }
                Ok(exits)
            }
            StmtKind::While { cond, body } => {
                // Close current block into the loop header.
                let pre = self.seal_current(Terminator::Jump(usize::MAX));
                let header_start = self.blocks.len();
                self.patch(&[PendingBlock(pre)], header_start);
                let c = self.lower_expr(cond)?;
                let header = self.seal_current(Terminator::Branch {
                    cond: c,
                    then_block: usize::MAX,
                    else_block: usize::MAX,
                });
                let body_start = self.blocks.len();
                let body_pending = self.lower_stmts(body)?;
                let body_exit = self.seal_current(Terminator::Jump(header_start));
                self.patch(&body_pending, body_exit);
                if let Terminator::Branch { then_block, .. } = &mut self.blocks[header].term {
                    *then_block = body_start;
                }
                Ok(vec![PendingBlock(header)])
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                let init_pending = self.lower_stmt(init)?;
                debug_assert!(init_pending.is_empty(), "for-init is a simple assignment");
                let pre = self.seal_current(Terminator::Jump(usize::MAX));
                let header_start = self.blocks.len();
                self.patch(&[PendingBlock(pre)], header_start);
                let c = self.lower_expr(cond)?;
                let header = self.seal_current(Terminator::Branch {
                    cond: c,
                    then_block: usize::MAX,
                    else_block: usize::MAX,
                });
                let body_start = self.blocks.len();
                let body_pending = self.lower_stmts(body)?;
                // Step runs after the body, then loops to the header.
                if !body_pending.is_empty() {
                    let join = self.blocks.len() + usize::from(!self.current.is_empty());
                    if !self.current.is_empty() {
                        let b = self.seal_current(Terminator::Jump(usize::MAX));
                        self.patch(&[PendingBlock(b)], join);
                    }
                    let start = self.blocks.len();
                    self.patch(&body_pending, start);
                }
                let step_pending = self.lower_stmt(step)?;
                debug_assert!(step_pending.is_empty(), "for-step is a simple assignment");
                let _step_exit = self.seal_current(Terminator::Jump(header_start));
                if let Terminator::Branch { then_block, .. } = &mut self.blocks[header].term {
                    *then_block = body_start;
                }
                Ok(vec![PendingBlock(header)])
            }
            StmtKind::Case {
                selector,
                arms,
                default,
            } => {
                let sel = self.lower_expr(selector)?;
                let header = self.seal_current(Terminator::Switch {
                    selector: sel,
                    arms: arms.iter().map(|a| (a.value, usize::MAX)).collect(),
                    default: usize::MAX,
                });
                let mut exits = Vec::new();
                for (i, arm) in arms.iter().enumerate() {
                    let start = self.blocks.len();
                    let arm_pending = self.lower_stmts(&arm.body)?;
                    let exit = self.seal_current(Terminator::Jump(usize::MAX));
                    self.patch(&arm_pending, exit);
                    if let Terminator::Switch { arms, .. } = &mut self.blocks[header].term {
                        arms[i].1 = start;
                    }
                    exits.push(PendingBlock(exit));
                }
                if default.is_empty() {
                    exits.push(PendingBlock(header));
                } else {
                    let start = self.blocks.len();
                    let def_pending = self.lower_stmts(default)?;
                    let exit = self.seal_current(Terminator::Jump(usize::MAX));
                    self.patch(&def_pending, exit);
                    if let Terminator::Switch { default, .. } = &mut self.blocks[header].term {
                        *default = start;
                    }
                    exits.push(PendingBlock(exit));
                }
                Ok(exits)
            }
        }
    }

    fn lower_store(&mut self, target: &LValue, value: Value, span: Span) -> Result<()> {
        let base = target.base().to_owned();
        let var = self.var_id(&base, span)?;
        let index = match target {
            LValue::Var(_) | LValue::Field { .. } => Value::Const(0),
            LValue::Index { index, .. } => self.lower_expr(index)?,
        };
        match self.binding.residency_of(&base) {
            Residency::Register => {
                if matches!(target, LValue::Index { .. }) {
                    // Register-resident arrays still route through memory
                    // port A (arrays cannot live in single FF registers).
                    self.current.push(DfOp {
                        kind: OpKind::MemWrite { var, dep: None },
                        args: vec![index, value],
                        result: None,
                    });
                } else {
                    self.current.push(DfOp {
                        kind: OpKind::StoreVar { var },
                        args: vec![value],
                        result: None,
                    });
                }
            }
            Residency::Memory { write_dep, .. } => {
                self.current.push(DfOp {
                    kind: OpKind::MemWrite {
                        var,
                        dep: write_dep,
                    },
                    args: vec![index, value],
                    result: None,
                });
            }
        }
        Ok(())
    }

    fn lower_expr(&mut self, expr: &Expr) -> Result<Value> {
        Ok(match expr {
            Expr::Int(v, _) => Value::Const(*v),
            Expr::Char(c, _) => Value::Const(i64::from(*c)),
            Expr::Var(name, span) | Expr::Field { name, span, .. } => {
                self.lower_var_read(name, Value::Const(0), *span)?
            }
            Expr::Index { name, index, span } => {
                let idx = self.lower_expr(index)?;
                self.lower_var_read(name, idx, *span)?
            }
            Expr::Call { callee, args, .. } => {
                let mut lowered = Vec::with_capacity(args.len());
                for a in args {
                    lowered.push(self.lower_expr(a)?);
                }
                let t = self.fresh_temp();
                self.current.push(DfOp {
                    kind: OpKind::Call(callee.clone()),
                    args: lowered,
                    result: Some(t),
                });
                Value::Temp(t)
            }
            Expr::Unary { op, operand, .. } => {
                let a = self.lower_expr(operand)?;
                let t = self.fresh_temp();
                self.current.push(DfOp {
                    kind: OpKind::Unary(*op),
                    args: vec![a],
                    result: Some(t),
                });
                Value::Temp(t)
            }
            Expr::Binary { op, lhs, rhs, .. } => {
                let a = self.lower_expr(lhs)?;
                let b = self.lower_expr(rhs)?;
                let t = self.fresh_temp();
                self.current.push(DfOp {
                    kind: OpKind::Binary(*op),
                    args: vec![a, b],
                    result: Some(t),
                });
                Value::Temp(t)
            }
        })
    }

    fn lower_var_read(&mut self, name: &str, index: Value, span: Span) -> Result<Value> {
        let var = self.var_id(name, span)?;
        let is_array = self.thread.var(name).is_some_and(|d| d.array_len.is_some());
        match self.binding.residency_of(name) {
            Residency::Register => {
                if matches!(index, Value::Const(0)) && !is_array {
                    Ok(Value::Var(var))
                } else {
                    // Register-resident array read goes through port A.
                    let t = self.fresh_temp();
                    self.current.push(DfOp {
                        kind: OpKind::MemRead { var, dep: None },
                        args: vec![index],
                        result: Some(t),
                    });
                    Ok(Value::Temp(t))
                }
            }
            Residency::Memory { read_dep, .. } => {
                let t = self.fresh_temp();
                self.current.push(DfOp {
                    kind: OpKind::MemRead { var, dep: read_dep },
                    args: vec![index],
                    result: Some(t),
                });
                Ok(Value::Temp(t))
            }
        }
    }

    #[allow(dead_code)]
    fn program(&self) -> &Program {
        self.program
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::PortClass;
    use memsync_hic::parser::parse;

    fn lower(src: &str, binding: MemBinding) -> DfThread {
        let program = parse(src).unwrap();
        lower_thread(&program, &program.threads[0], &binding).unwrap()
    }

    #[test]
    fn straight_line_lowering() {
        let t = lower(
            "thread t() { int a, b; a = 1; b = a + 2; }",
            MemBinding::new(),
        );
        assert_eq!(t.blocks.len(), 1);
        let ops = &t.blocks[0].ops;
        // store a, read-free add (a is a register read inline), store b
        assert!(matches!(ops[0].kind, OpKind::StoreVar { .. }));
        assert!(matches!(ops[1].kind, OpKind::Binary(_)));
        assert!(matches!(ops[2].kind, OpKind::StoreVar { .. }));
        assert!(matches!(t.blocks[0].term, Terminator::Restart));
    }

    #[test]
    fn guarded_read_carries_dep() {
        let mut binding = MemBinding::new();
        binding.place_guarded("v", PortClass::C, 0, Some("mt1".into()), None);
        let t = lower("thread c() { int w, v; w = v + 1; }", binding);
        let read = t.blocks[0]
            .ops
            .iter()
            .find(|o| matches!(o.kind, OpKind::MemRead { .. }))
            .expect("memory read present");
        assert_eq!(read.kind.dep(), Some("mt1"));
    }

    #[test]
    fn guarded_write_carries_dep() {
        let mut binding = MemBinding::new();
        binding.place_guarded("v", PortClass::D, 0, None, Some("mt1".into()));
        let t = lower("thread p() { int v; v = 7; }", binding);
        let write = t.blocks[0]
            .ops
            .iter()
            .find(|o| matches!(o.kind, OpKind::MemWrite { .. }))
            .expect("memory write present");
        assert_eq!(write.kind.dep(), Some("mt1"));
    }

    #[test]
    fn if_produces_branch_blocks() {
        let t = lower(
            "thread t() { int a, b; a = 1; if (a) { b = 2; } else { b = 3; } b = 4; }",
            MemBinding::new(),
        );
        let has_branch = t
            .blocks
            .iter()
            .any(|b| matches!(b.term, Terminator::Branch { .. }));
        assert!(has_branch);
        // All non-MAX successors must be in range.
        for b in &t.blocks {
            for s in b.term.successors() {
                assert!(s < t.blocks.len(), "dangling successor {s}");
            }
        }
    }

    #[test]
    fn while_loops_to_header() {
        let t = lower(
            "thread t() { int a; a = 8; while (a) { a = a - 1; } a = 0; }",
            MemBinding::new(),
        );
        // There must be a back edge: some block jumps to a lower-numbered one.
        let back_edge = t
            .blocks
            .iter()
            .enumerate()
            .any(|(i, b)| b.term.successors().iter().any(|&s| s <= i));
        assert!(back_edge);
    }

    #[test]
    fn case_produces_switch() {
        let t = lower(
            "thread t() { int s, a; s = 1; case (s) { when 1: a = 1; when 2: a = 2; default: a = 0; } a = 9; }",
            MemBinding::new(),
        );
        let sw = t
            .blocks
            .iter()
            .find_map(|b| match &b.term {
                Terminator::Switch { arms, .. } => Some(arms.len()),
                _ => None,
            })
            .expect("switch present");
        assert_eq!(sw, 2);
    }

    #[test]
    fn constants_initialized_at_entry() {
        let t = lower(
            "thread t() { int a; #constant{k, 5} a = k + 1; }",
            MemBinding::new(),
        );
        let first = &t.blocks[0].ops[0];
        assert!(matches!(first.kind, OpKind::StoreVar { .. }));
        assert_eq!(first.args, vec![Value::Const(5)]);
    }

    #[test]
    fn arrays_route_through_memory() {
        let t = lower(
            "thread t() { int tbl[8], i, v; i = 1; v = tbl[i]; tbl[0] = v; }",
            MemBinding::new(),
        );
        let reads = t.blocks[0]
            .ops
            .iter()
            .filter(|o| matches!(o.kind, OpKind::MemRead { .. }))
            .count();
        let writes = t.blocks[0]
            .ops
            .iter()
            .filter(|o| matches!(o.kind, OpKind::MemWrite { .. }))
            .count();
        assert_eq!(reads, 1);
        assert_eq!(writes, 1);
    }

    #[test]
    fn for_loop_shape() {
        let t = lower(
            "thread t() { int i, acc; acc = 0; for (i = 0; i < 4; i = i + 1) { acc = acc + i; } }",
            MemBinding::new(),
        );
        // Header must branch; body must eventually jump back to header.
        let header = t
            .blocks
            .iter()
            .position(|b| matches!(b.term, Terminator::Branch { .. }))
            .expect("header exists");
        let back = t
            .blocks
            .iter()
            .any(|b| b.term.successors().contains(&header));
        assert!(back, "no back edge to for-header");
    }
}
