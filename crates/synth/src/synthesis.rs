//! The pipeline-builder synthesis API.
//!
//! [`Synthesis`] is the one front door to thread synthesis: it owns the
//! whole lowering → optimize → schedule → FSM pipeline and returns both
//! the [`Fsm`] and the middle-end's [`PassReport`]. The positional
//! four-argument [`Fsm::synthesize`] it replaces is deprecated.
//!
//! ```
//! use memsync_synth::{OptLevel, Synthesis};
//!
//! let program = memsync_hic::parser::parse(
//!     "thread t() { int a; a = (1 + 2) * 4; send a; }",
//! )
//! .unwrap();
//! let result = Synthesis::of(&program).opt(OptLevel::O1).run().unwrap();
//! assert!(result.pass_report.ops_removed() > 0);
//! assert!(!result.fsm.states.is_empty());
//! ```

use crate::cdfg::lower_thread;
use crate::fsm::Fsm;
use crate::ir::MemBinding;
use crate::opt::{optimize, OptLevel, PassReport};
use crate::schedule::Constraints;
use memsync_hic::ast::Program;
use memsync_hic::error::{CompileError, Result, Span};

/// Builder for one thread-synthesis run.
///
/// Construct with [`Synthesis::of`], refine with the chainable setters,
/// finish with [`Synthesis::run`]. Every setting has a sensible default:
/// default [`Constraints`], an all-register [`MemBinding`], [`OptLevel::O0`],
/// and — for single-thread programs — the program's only thread.
#[derive(Debug, Clone)]
pub struct Synthesis<'a> {
    program: &'a Program,
    constraints: Constraints,
    binding: MemBinding,
    opt: OptLevel,
    thread: Option<String>,
}

/// What a synthesis run produces.
#[derive(Debug, Clone)]
pub struct SynthesisResult {
    /// The cycle-accurate state machine.
    pub fsm: Fsm,
    /// What the middle-end did (all zeros except the state counts at
    /// [`OptLevel::O0`]).
    pub pass_report: PassReport,
}

impl<'a> Synthesis<'a> {
    /// Starts a synthesis run over `program`.
    pub fn of(program: &'a Program) -> Self {
        Synthesis {
            program,
            constraints: Constraints::default(),
            binding: MemBinding::new(),
            opt: OptLevel::default(),
            thread: None,
        }
    }

    /// Sets the scheduling resource constraints.
    pub fn constraints(mut self, constraints: Constraints) -> Self {
        self.constraints = constraints;
        self
    }

    /// Sets the memory residency binding.
    pub fn binding(mut self, binding: MemBinding) -> Self {
        self.binding = binding;
        self
    }

    /// Sets the middle-end optimization level.
    pub fn opt(mut self, level: OptLevel) -> Self {
        self.opt = level;
        self
    }

    /// Selects the thread to synthesize (required when the program has
    /// more than one).
    pub fn thread(mut self, name: impl Into<String>) -> Self {
        self.thread = Some(name.into());
        self
    }

    /// Runs the pipeline: lower, optimize, schedule, build the FSM.
    ///
    /// At [`OptLevel::O1`] both the optimized and the unoptimized
    /// lowerings are scheduled and the optimized one is kept only when
    /// its FSM is no larger — the middle-end never pessimizes. A
    /// rejected run is reported with [`PassReport::gated`] set.
    ///
    /// # Errors
    ///
    /// Fails when the named thread does not exist (or no name was given
    /// and the program is not single-threaded), and propagates lowering
    /// errors (see [`lower_thread`]).
    pub fn run(self) -> Result<SynthesisResult> {
        let thread = match &self.thread {
            Some(name) => self
                .program
                .threads
                .iter()
                .find(|t| t.name == *name)
                .ok_or_else(|| {
                    CompileError::single(format!("no thread named `{name}`"), Span::dummy())
                })?,
            None => match self.program.threads.as_slice() {
                [only] => only,
                [] => {
                    return Err(CompileError::single(
                        "program has no threads".to_owned(),
                        Span::dummy(),
                    ))
                }
                _ => {
                    return Err(CompileError::single(
                        "program has multiple threads; name one with .thread(..)".to_owned(),
                        Span::dummy(),
                    ))
                }
            },
        };
        let mut df = lower_thread(self.program, thread, &self.binding)?;
        match self.opt {
            OptLevel::O0 => {
                let mut pass_report = optimize(&mut df, OptLevel::O0);
                let fsm = Fsm::from_dfthread(&df, self.constraints);
                pass_report.states_before = fsm.states.len();
                pass_report.states_after = fsm.states.len();
                Ok(SynthesisResult { fsm, pass_report })
            }
            OptLevel::O1 => {
                // Cost-model gate: schedule both lowerings and keep the
                // optimized one only when it is no worse. Propagation can
                // lengthen combinational chains past `max_chain` (register
                // reads are chain-free; the temps replacing them are not),
                // so a thread that scheduled densely through its registers
                // may serialize after optimization.
                let baseline = Fsm::from_dfthread(&df, self.constraints);
                let mut opt_df = df.clone();
                let mut pass_report = optimize(&mut opt_df, OptLevel::O1);
                let opt_fsm = Fsm::from_dfthread(&opt_df, self.constraints);
                if opt_fsm.states.len() <= baseline.states.len() {
                    pass_report.states_before = baseline.states.len();
                    pass_report.states_after = opt_fsm.states.len();
                    Ok(SynthesisResult {
                        fsm: opt_fsm,
                        pass_report,
                    })
                } else {
                    let gated = PassReport {
                        thread: pass_report.thread,
                        level: OptLevel::O1,
                        iterations: pass_report.iterations,
                        ops_before: pass_report.ops_before,
                        ops_after: pass_report.ops_before,
                        guarded_ops_before: pass_report.guarded_ops_before,
                        guarded_ops_after: pass_report.guarded_ops_before,
                        states_before: baseline.states.len(),
                        states_after: baseline.states.len(),
                        gated: true,
                        ..PassReport::default()
                    };
                    Ok(SynthesisResult {
                        fsm: baseline,
                        pass_report: gated,
                    })
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::PortClass;
    use memsync_hic::parser::parse;

    #[test]
    fn defaults_pick_the_only_thread() {
        let program = parse("thread t() { int a; a = 1; send a; }").unwrap();
        let r = Synthesis::of(&program).run().unwrap();
        assert_eq!(r.fsm.thread, "t");
        assert_eq!(r.pass_report.level, OptLevel::O0);
        assert_eq!(r.pass_report.states_before, r.pass_report.states_after);
    }

    #[test]
    fn multi_thread_requires_a_name() {
        let program = parse("thread a() { int x; x = 1; } thread b() { int y; y = 2; }").unwrap();
        assert!(Synthesis::of(&program).run().is_err());
        let r = Synthesis::of(&program).thread("b").run().unwrap();
        assert_eq!(r.fsm.thread, "b");
        assert!(Synthesis::of(&program).thread("zzz").run().is_err());
    }

    #[test]
    fn o1_reduces_states_on_foldable_code() {
        let program =
            parse("thread t() { int a, b; a = (1 + 2) * 4; b = a + a; send b; }").unwrap();
        // One ALU per cycle, no chaining: every surviving op is a state.
        let tight = Constraints {
            alu_per_cycle: 1,
            mem_per_cycle: 1,
            max_chain: 1,
        };
        let o0 = Synthesis::of(&program).constraints(tight).run().unwrap();
        let o1 = Synthesis::of(&program)
            .constraints(tight)
            .opt(OptLevel::O1)
            .run()
            .unwrap();
        assert!(
            o1.fsm.states.len() < o0.fsm.states.len(),
            "O1 {} !< O0 {}",
            o1.fsm.states.len(),
            o0.fsm.states.len()
        );
        assert_eq!(o1.pass_report.states_before, o0.fsm.states.len());
        assert_eq!(o1.pass_report.states_after, o1.fsm.states.len());
        assert!(o1.pass_report.states_saved() > 0);
    }

    #[test]
    fn builder_threads_binding_through() {
        let mut binding = MemBinding::new();
        binding.place_guarded("v", PortClass::C, 0, Some("m".into()), None);
        let program = parse("thread c() { int w, v; w = v; send w; }").unwrap();
        let r = Synthesis::of(&program).binding(binding).run().unwrap();
        assert_eq!(r.fsm.dependencies(), vec![("m".to_owned(), false)]);
    }

    #[test]
    fn deprecated_entry_point_matches_builder() {
        let program = parse("thread t() { int a; a = 3; send a; }").unwrap();
        #[allow(deprecated)]
        let old = Fsm::synthesize(
            &program,
            &program.threads[0],
            &MemBinding::new(),
            Constraints::default(),
        )
        .unwrap();
        let new = Synthesis::of(&program).run().unwrap().fsm;
        assert_eq!(old, new);
    }
}
