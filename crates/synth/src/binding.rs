//! Register and functional-unit binding.
//!
//! After scheduling, temporaries that cross state boundaries need datapath
//! registers; this module performs left-edge interval allocation to share
//! them, and counts the functional units a shared datapath would need
//! (the peak per-state usage). The results feed area reporting and are the
//! classic final step of the behavioral synthesis flow referenced in §3.

use crate::fsm::Fsm;
use crate::ir::{OpKind, Temp, Value};
use std::collections::BTreeMap;

/// Binding results for one FSM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BindingReport {
    /// Registers for declared variables (one each).
    pub var_registers: usize,
    /// Registers for cross-state temporaries before sharing.
    pub temp_values: usize,
    /// Registers for cross-state temporaries after left-edge sharing.
    pub temp_registers: usize,
    /// Peak ALU operations issued in any single state (shared-FU count).
    pub alu_units: usize,
    /// Assignment of each shared temp to its register index.
    pub assignment: BTreeMap<u32, usize>,
}

/// A live interval over state indices (inclusive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Interval {
    temp: Temp,
    start: usize,
    end: usize,
}

/// Computes the binding for an FSM.
pub fn bind(fsm: &Fsm) -> BindingReport {
    // Temp lifetime: def state .. last use state (by state index). Temps
    // used only within their def state need no register (wires).
    let mut def_state: BTreeMap<Temp, usize> = BTreeMap::new();
    let mut last_use: BTreeMap<Temp, usize> = BTreeMap::new();
    let mut alu_peak = 0usize;
    for (si, state) in fsm.states.iter().enumerate() {
        let alu_here = state
            .ops
            .iter()
            .filter(|o| {
                matches!(
                    o.kind,
                    OpKind::Unary(_) | OpKind::Binary(_) | OpKind::Call(_) | OpKind::Select
                )
            })
            .count();
        alu_peak = alu_peak.max(alu_here);
        for op in &state.ops {
            if let Some(t) = op.result {
                def_state.entry(t).or_insert(si);
            }
            for a in &op.args {
                if let Value::Temp(t) = a {
                    last_use
                        .entry(*t)
                        .and_modify(|e| *e = (*e).max(si))
                        .or_insert(si);
                }
            }
        }
        // Condition uses extend lifetimes too.
        let cond = match &state.next {
            crate::fsm::StateNext::Branch { cond, .. } => Some(*cond),
            crate::fsm::StateNext::Switch { selector, .. } => Some(*selector),
            _ => None,
        };
        if let Some(Value::Temp(t)) = cond {
            last_use
                .entry(t)
                .and_modify(|e| *e = (*e).max(si))
                .or_insert(si);
        }
    }

    let mut intervals: Vec<Interval> = def_state
        .iter()
        .filter_map(|(t, &d)| {
            let u = last_use.get(t).copied().unwrap_or(d);
            // Back-edge uses (use state < def state) are loop-carried: the
            // value must survive the whole loop; extend to the full span.
            let (start, end) = if u < d { (0, fsm.states.len()) } else { (d, u) };
            (end > start).then_some(Interval {
                temp: *t,
                start,
                end,
            })
        })
        .collect();

    // Left-edge: sort by start, greedily reuse the register whose interval
    // ended earliest.
    intervals.sort_by_key(|i| (i.start, i.end));
    let mut register_free_at: Vec<usize> = Vec::new();
    let mut assignment: BTreeMap<u32, usize> = BTreeMap::new();
    for iv in &intervals {
        let slot = register_free_at.iter().position(|&free| free <= iv.start);
        let reg = match slot {
            Some(r) => {
                register_free_at[r] = iv.end;
                r
            }
            None => {
                register_free_at.push(iv.end);
                register_free_at.len() - 1
            }
        };
        assignment.insert(iv.temp.0, reg);
    }

    BindingReport {
        var_registers: fsm.vars.len(),
        temp_values: intervals.len(),
        temp_registers: register_free_at.len(),
        alu_units: alu_peak,
        assignment,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Constraints;
    use memsync_hic::parser::parse;

    fn fsm_of(src: &str) -> Fsm {
        let program = parse(src).unwrap();
        crate::synthesis::Synthesis::of(&program)
            .constraints(Constraints {
                alu_per_cycle: 1,
                mem_per_cycle: 1,
                max_chain: 1,
            })
            .run()
            .unwrap()
            .fsm
    }

    #[test]
    fn sharing_never_exceeds_value_count() {
        let fsm = fsm_of(
            "thread t() { int a, b, c; a = 1; b = (a + 1) * (a + 2); c = (b + 3) * (b + 4); }",
        );
        let r = bind(&fsm);
        assert!(r.temp_registers <= r.temp_values);
        assert!(r.alu_units >= 1);
    }

    #[test]
    fn disjoint_lifetimes_share_one_register() {
        // With alu_per_cycle=1 and chain=1 each binary op lands in its own
        // state; t0 (a+1) dies feeding b, t1 (b+2) dies feeding c.
        let fsm = fsm_of("thread t() { int a, b, c; a = 1; b = a + 1; c = b + 2; }");
        let r = bind(&fsm);
        assert!(
            r.temp_registers <= 1,
            "disjoint single-state temps need at most one shared register, got {}",
            r.temp_registers
        );
    }

    #[test]
    fn var_registers_count_declarations() {
        let fsm = fsm_of("thread t() { int a, b, c; a = 1; b = 2; c = 3; }");
        assert_eq!(bind(&fsm).var_registers, 3);
    }

    #[test]
    fn cross_state_temp_gets_a_register() {
        // With one ALU per cycle and no chaining, `a + 1` and `a + 2` land
        // in different states, so the first temp crosses a state boundary.
        let fsm = fsm_of("thread t() { int a, c; a = 4; c = (a + 1) * (a + 2); }");
        let r = bind(&fsm);
        assert!(r.temp_registers >= 1, "expected a cross-state register");
    }
}
