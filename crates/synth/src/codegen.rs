//! RTL code generation: FSM → `memsync-rtl` netlist.
//!
//! Produces a synthesizable thread module: a binary-encoded state register,
//! one 32-bit datapath register per declared variable, shared registers for
//! cross-state temporaries, spatially instantiated operators, and the memory
//! port interfaces that connect to the wrapper of `memsync-core`:
//!
//! * per used port class `x ∈ {a, b, c, d}`: outputs `px_addr`, `px_wdata`,
//!   `px_we`, `px_req`; inputs `px_rdata` and (except port A, which is the
//!   direct single-cycle port) `px_grant`;
//! * network interface: `rx_data`/`rx_valid`/`rx_ready` and
//!   `tx_data`/`tx_valid`/`tx_ready`.
//!
//! A state holding a guarded memory operation advances only when its port
//! grant is asserted — the blocking semantics of §3.1 in hardware.

use crate::binding::bind;
use crate::eval::{name_seed, DATAPATH_WIDTH};
use crate::fsm::{Fsm, StateNext};
use crate::ir::{OpKind, PortClass, Residency, Temp, Value, VarId};
use memsync_hic::ast::{BinaryOp, UnaryOp};
use memsync_rtl::builder::ModuleBuilder;
use memsync_rtl::netlist::{clog2, Module, NetId};
use std::collections::BTreeMap;
use std::fmt;

/// Address bus width of the wrapper ports (covers the 512×36 BRAM view).
pub const PORT_ADDR_WIDTH: u32 = 9;

/// Code generation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodegenError {
    /// Description of the unsupported construct.
    pub message: String,
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codegen failed: {}", self.message)
    }
}

impl std::error::Error for CodegenError {}

#[derive(Default)]
struct PortUse {
    /// (state, addr net, wdata net or None for reads, stall-on-grant)
    accesses: Vec<(usize, NetId, Option<NetId>, bool)>,
}

/// Generates the RTL module of one thread FSM.
///
/// # Errors
///
/// Returns [`CodegenError`] for constructs with no combinational hardware
/// mapping (`/` and `%`, which require an iterative divider core).
pub fn generate(fsm: &Fsm) -> Result<Module, CodegenError> {
    let w = DATAPATH_WIDTH;
    let n_states = fsm.states.len().max(1);
    let sw = clog2(n_states as u32).max(1);
    let mut b = ModuleBuilder::new(format!("thread_{}", fsm.thread));
    let binding = bind(fsm);

    // --- interface discovery ---
    let mut uses_recv = false;
    let mut uses_send = false;
    let mut used_ports: Vec<PortClass> = Vec::new();
    for s in &fsm.states {
        for op in &s.ops {
            match &op.kind {
                OpKind::Recv { .. } => uses_recv = true,
                OpKind::Send => uses_send = true,
                OpKind::MemRead { var, .. } | OpKind::MemWrite { var, .. } => {
                    let port = port_of(fsm, *var);
                    if !used_ports.contains(&port) {
                        used_ports.push(port);
                    }
                }
                _ => {}
            }
        }
    }
    used_ports.sort();

    // --- ports ---
    let mut rdata: BTreeMap<PortClass, NetId> = BTreeMap::new();
    let mut grant: BTreeMap<PortClass, Option<NetId>> = BTreeMap::new();
    for &p in &used_ports {
        let pl = port_label(p);
        rdata.insert(p, b.input(&format!("p{pl}_rdata"), w));
        let g = if p == PortClass::A {
            None
        } else {
            Some(b.input(&format!("p{pl}_grant"), 1))
        };
        grant.insert(p, g);
    }
    let rx = uses_recv.then(|| (b.input("rx_data", w), b.input("rx_valid", 1)));
    let tx_ready = uses_send.then(|| b.input("tx_ready", 1));

    // --- state register (feedback) ---
    let state_q = b.net("state_q", sw);

    // in_state decoders.
    let mut in_state: Vec<NetId> = Vec::with_capacity(n_states);
    for s in 0..n_states {
        let c = b.constant(s as u64, sw, &format!("s{s}"));
        in_state.push(b.eq(state_q, c, &format!("in_s{s}")));
    }

    // --- variable registers (feedback nets, written later) ---
    let var_q: Vec<NetId> = fsm
        .vars
        .iter()
        .map(|v| b.net(&format!("var_{v}"), w))
        .collect();

    // Cross-state temp registers.
    let mut temp_reg: BTreeMap<u32, NetId> = BTreeMap::new();
    for t in binding.assignment.keys() {
        temp_reg.insert(*t, b.net(&format!("treg_{t}"), w));
    }
    // Memory-read temps always need a register (data arrives next cycle).
    for s in &fsm.states {
        for op in &s.ops {
            if matches!(op.kind, OpKind::MemRead { .. }) {
                if let Some(t) = op.result {
                    temp_reg
                        .entry(t.0)
                        .or_insert_with(|| b.net(&format!("treg_{}", t.0), w));
                }
            }
        }
    }

    // --- per-state datapath ---
    let zero1 = b.constant(0, 1, "zero1");
    let one1 = b.constant(1, 1, "one1");
    let mut holds: Vec<NetId> = Vec::with_capacity(n_states);
    let mut port_use: BTreeMap<PortClass, PortUse> = BTreeMap::new();
    // Per-var writers: (state idx, value net, extra condition net).
    let mut var_writers: Vec<Vec<(usize, NetId, Option<NetId>)>> = vec![Vec::new(); fsm.vars.len()];
    // Temp register writers: temp -> (state, value net, extra condition).
    let mut temp_writers: BTreeMap<u32, (usize, NetId, Option<NetId>)> = BTreeMap::new();
    // Send data muxing: (state, value net).
    let mut send_states: Vec<(usize, NetId)> = Vec::new();
    let mut recv_states: Vec<usize> = Vec::new();
    // Wire values of temps in their defining state.
    let mut temp_wire: BTreeMap<u32, (usize, NetId)> = BTreeMap::new();
    // Same-state forwarding of variable stores: a read of `v` after a store
    // to `v` within one state sees the stored wire, matching the sequential
    // chaining semantics the FSM executor implements.
    let mut var_wire: BTreeMap<u32, (usize, NetId)> = BTreeMap::new();
    // Branch conditions resolved per state while wires are in scope.
    let mut next_targets: Vec<Option<NetId>> = vec![None; n_states];

    for (si, state) in fsm.states.iter().enumerate() {
        let mut stall_terms: Vec<NetId> = Vec::new();
        let resolve = |b: &mut ModuleBuilder,
                       temp_wire: &BTreeMap<u32, (usize, NetId)>,
                       var_wire: &BTreeMap<u32, (usize, NetId)>,
                       temp_reg: &BTreeMap<u32, NetId>,
                       v: Value|
         -> NetId {
            match v {
                Value::Const(c) => b.constant(c as u32 as u64, w, "k"),
                Value::Var(id) => {
                    if let Some((ds, wire)) = var_wire.get(&id.0) {
                        if *ds == si {
                            return *wire;
                        }
                    }
                    var_q[id.0 as usize]
                }
                Value::Temp(t) => {
                    if let Some((ds, wire)) = temp_wire.get(&t.0) {
                        if *ds == si {
                            return *wire;
                        }
                    }
                    *temp_reg
                        .get(&t.0)
                        .unwrap_or_else(|| panic!("temp %{} has no register", t.0))
                }
            }
        };

        for op in &state.ops {
            match &op.kind {
                OpKind::Copy => {
                    let a = resolve(&mut b, &temp_wire, &var_wire, &temp_reg, op.args[0]);
                    if let Some(t) = op.result {
                        note_temp(
                            &mut b,
                            &binding,
                            &mut temp_wire,
                            &mut temp_writers,
                            si,
                            t,
                            a,
                        );
                    }
                }
                OpKind::Unary(u) => {
                    let a = resolve(&mut b, &temp_wire, &var_wire, &temp_reg, op.args[0]);
                    let y = gen_unary(&mut b, *u, a, w);
                    if let Some(t) = op.result {
                        note_temp(
                            &mut b,
                            &binding,
                            &mut temp_wire,
                            &mut temp_writers,
                            si,
                            t,
                            y,
                        );
                    }
                }
                OpKind::Binary(op2) => {
                    let a = resolve(&mut b, &temp_wire, &var_wire, &temp_reg, op.args[0]);
                    let c = resolve(&mut b, &temp_wire, &var_wire, &temp_reg, op.args[1]);
                    let y = gen_binary(&mut b, *op2, a, c, w, op.args[1])?;
                    if let Some(t) = op.result {
                        note_temp(
                            &mut b,
                            &binding,
                            &mut temp_wire,
                            &mut temp_writers,
                            si,
                            t,
                            y,
                        );
                    }
                }
                OpKind::Call(name) => {
                    let args: Vec<NetId> = op
                        .args
                        .iter()
                        .map(|a| resolve(&mut b, &temp_wire, &var_wire, &temp_reg, *a))
                        .collect();
                    let y = gen_call(&mut b, name, &args, w);
                    if let Some(t) = op.result {
                        note_temp(
                            &mut b,
                            &binding,
                            &mut temp_wire,
                            &mut temp_writers,
                            si,
                            t,
                            y,
                        );
                    }
                }
                OpKind::Select => {
                    let c = resolve(&mut b, &temp_wire, &var_wire, &temp_reg, op.args[0]);
                    let tv = resolve(&mut b, &temp_wire, &var_wire, &temp_reg, op.args[1]);
                    let ev = resolve(&mut b, &temp_wire, &var_wire, &temp_reg, op.args[2]);
                    let taken = bool_of(&mut b, c, w);
                    let y = b.mux(taken, &[ev, tv], "sel");
                    if let Some(t) = op.result {
                        note_temp(
                            &mut b,
                            &binding,
                            &mut temp_wire,
                            &mut temp_writers,
                            si,
                            t,
                            y,
                        );
                    }
                }
                OpKind::StoreVar { var } => {
                    let v = resolve(&mut b, &temp_wire, &var_wire, &temp_reg, op.args[0]);
                    var_writers[var.0 as usize].push((si, v, None));
                    var_wire.insert(var.0, (si, v));
                }
                OpKind::MemRead { var, .. } => {
                    let port = port_of(fsm, *var);
                    let base = base_of(fsm, *var);
                    let addr = match op.args[0] {
                        Value::Const(c) => b.constant(
                            (u64::from(base) + (c as u32 as u64)) & ((1 << PORT_ADDR_WIDTH) - 1),
                            PORT_ADDR_WIDTH,
                            "addr_k",
                        ),
                        idx_val => {
                            let idx = resolve(&mut b, &temp_wire, &var_wire, &temp_reg, idx_val);
                            let idx10 = b.slice(idx, PORT_ADDR_WIDTH - 1, 0, "idx10");
                            let basek = b.constant(u64::from(base), PORT_ADDR_WIDTH, "base");
                            b.add(basek, idx10, "addr")
                        }
                    };
                    port_use.entry(port).or_default().accesses.push((
                        si,
                        addr,
                        None,
                        port != PortClass::A,
                    ));
                    if let Some(g) = grant[&port] {
                        let ng = b.not(g, "ngrant");
                        stall_terms.push(ng);
                    }
                    if let Some(t) = op.result {
                        // Latch rdata at the end of the issue state (when
                        // granted); available from the next state on.
                        let fire = match grant[&port] {
                            Some(g) => b.and(&[in_state[si], g], "rd_fire"),
                            None => in_state[si],
                        };
                        // Delay one cycle: the BRAM presents data in the
                        // cycle after the address; latch it then.
                        let fire_d = b.register(fire, 0, "rd_fire_d");
                        temp_writers.insert(t.0, (usize::MAX, rdata[&port], Some(fire_d)));
                        temp_reg
                            .entry(t.0)
                            .or_insert_with(|| b.net(&format!("treg_{}", t.0), w));
                    }
                }
                OpKind::MemWrite { var, .. } => {
                    let port = port_of(fsm, *var);
                    let base = base_of(fsm, *var);
                    let idx = resolve(&mut b, &temp_wire, &var_wire, &temp_reg, op.args[0]);
                    let data = resolve(&mut b, &temp_wire, &var_wire, &temp_reg, op.args[1]);
                    let idx10 = b.slice(idx, PORT_ADDR_WIDTH - 1, 0, "idx10");
                    let basek = b.constant(u64::from(base), PORT_ADDR_WIDTH, "base");
                    let addr = b.add(basek, idx10, "addr");
                    port_use.entry(port).or_default().accesses.push((
                        si,
                        addr,
                        Some(data),
                        port != PortClass::A,
                    ));
                    if let Some(g) = grant[&port] {
                        let ng = b.not(g, "ngrant");
                        stall_terms.push(ng);
                    }
                }
                OpKind::Recv { var } => {
                    let (rx_data, rx_valid) = rx.expect("recv implies rx ports");
                    var_writers[var.0 as usize].push((si, rx_data, Some(rx_valid)));
                    // Later ops in this state see the arriving message
                    // combinationally (their commits are gated by the same
                    // state advance, so stalled cycles are harmless).
                    var_wire.insert(var.0, (si, rx_data));
                    recv_states.push(si);
                    let nv = b.not(rx_valid, "no_rx");
                    stall_terms.push(nv);
                }
                OpKind::Send => {
                    let v = resolve(&mut b, &temp_wire, &var_wire, &temp_reg, op.args[0]);
                    send_states.push((si, v));
                    let tr = tx_ready.expect("send implies tx ports");
                    let ntr = b.not(tr, "no_tx");
                    stall_terms.push(ntr);
                }
            }
        }

        // hold = in_state & (any stall term)
        let hold = if stall_terms.is_empty() {
            zero1
        } else {
            let any = if stall_terms.len() == 1 {
                stall_terms[0]
            } else {
                b.or(&stall_terms, "stalls")
            };
            b.and(&[in_state[si], any], "hold")
        };
        holds.push(hold);

        // Next-state target value.
        let target = match &state.next {
            StateNext::Goto(t) => b.constant(*t as u64, sw, "tgt"),
            StateNext::Restart => b.constant(0, sw, "tgt"),
            StateNext::Branch {
                cond,
                then_state,
                else_state,
            } => {
                let c = resolve(&mut b, &temp_wire, &var_wire, &temp_reg, *cond);
                let zero = b.constant(0, w, "z");
                let taken = b.ne(c, zero, "taken");
                let t1 = b.constant(*then_state as u64, sw, "t_then");
                let t0 = b.constant(*else_state as u64, sw, "t_else");
                b.mux(taken, &[t0, t1], "tgt")
            }
            StateNext::Switch {
                selector,
                arms,
                default,
            } => {
                let sel = resolve(&mut b, &temp_wire, &var_wire, &temp_reg, *selector);
                let mut acc = b.constant(*default as u64, sw, "t_def");
                for (k, t) in arms {
                    let kk = b.constant(*k as u32 as u64, w, "k");
                    let hit = b.eq(sel, kk, "hit");
                    let tt = b.constant(*t as u64, sw, "t_arm");
                    acc = b.mux(hit, &[acc, tt], "tgt");
                }
                acc
            }
        };
        next_targets[si] = Some(target);
    }

    // advance_s = in_state & !hold; global next-state mux chain.
    let mut next = state_q;
    for si in 0..n_states {
        let nh = b.not(holds[si], "nhold");
        let adv = b.and(&[in_state[si], nh], "adv");
        let target = next_targets[si].expect("every state has a target");
        next = b.mux(adv, &[next, target], "next_acc");
    }
    b.register_into(next, state_q, 0);

    // Variable registers.
    for (vi, writers) in var_writers.iter().enumerate() {
        let q = var_q[vi];
        if writers.is_empty() {
            // Constant-zero initialized, never written.
            let z = b.constant(0, w, "vz");
            b.register_into(z, q, 0);
            continue;
        }
        let mut d = q;
        let mut en_terms: Vec<NetId> = Vec::new();
        for (si, value, extra) in writers {
            let cond = match extra {
                Some(x) => b.and(&[in_state[*si], *x], "wr_cond"),
                None => in_state[*si],
            };
            d = b.mux(cond, &[d, *value], "var_d");
            en_terms.push(cond);
        }
        let en = if en_terms.len() == 1 {
            en_terms[0]
        } else {
            b.or(&en_terms, "var_en")
        };
        b.register_en_into(d, en, q, 0);
    }

    // Temp registers.
    for (t, q) in &temp_reg {
        match temp_writers.get(t) {
            Some((si, value, extra)) => {
                let cond = match (*si, extra) {
                    (usize::MAX, Some(x)) => *x,
                    (si, Some(x)) => b.and(&[in_state[si], *x], "t_cond"),
                    (si, None) => in_state[si],
                };
                b.register_en_into(*value, cond, *q, 0);
            }
            None => {
                // Defined but value recorded as wire-only (shouldn't happen
                // for registered temps); tie off.
                let z = b.constant(0, w, "tz");
                b.register_into(z, *q, 0);
            }
        }
    }

    // Port output buses.
    for (&port, pu) in &port_use {
        let pl = port_label(port);
        let mut addr = b.constant(0, PORT_ADDR_WIDTH, "a0");
        let mut wdata = b.constant(0, w, "d0");
        let mut req_terms: Vec<NetId> = Vec::new();
        let mut we_terms: Vec<NetId> = Vec::new();
        for (si, a, d, _) in &pu.accesses {
            addr = b.mux(in_state[*si], &[addr, *a], "p_addr");
            if let Some(d) = d {
                wdata = b.mux(in_state[*si], &[wdata, *d], "p_wdata");
                we_terms.push(in_state[*si]);
            }
            req_terms.push(in_state[*si]);
        }
        let req = or_any(&mut b, &req_terms, zero1, "p_req");
        let we = or_any(&mut b, &we_terms, zero1, "p_we");
        b.output(&format!("p{pl}_addr"), addr);
        b.output(&format!("p{pl}_wdata"), wdata);
        b.output(&format!("p{pl}_we"), we);
        b.output(&format!("p{pl}_req"), req);
    }

    // Network interface outputs.
    if uses_recv {
        let terms: Vec<NetId> = recv_states.iter().map(|&s| in_state[s]).collect();
        let rdy = or_any(&mut b, &terms, zero1, "rx_rdy");
        b.output("rx_ready", rdy);
    }
    if uses_send {
        let mut data = b.constant(0, w, "tx0");
        let mut valid_terms = Vec::new();
        for (si, v) in &send_states {
            data = b.mux(in_state[*si], &[data, *v], "tx_data_m");
            valid_terms.push(in_state[*si]);
        }
        let valid = or_any(&mut b, &valid_terms, zero1, "tx_valid_w");
        b.output("tx_data", data);
        b.output("tx_valid", valid);
    }
    // Debug/observability outputs keep the datapath live.
    b.output("state", state_q);
    let _ = one1;

    Ok(b.finish())
}

fn or_any(b: &mut ModuleBuilder, terms: &[NetId], zero: NetId, name: &str) -> NetId {
    match terms.len() {
        0 => zero,
        1 => terms[0],
        _ => b.or(terms, name),
    }
}

fn port_of(fsm: &Fsm, var: VarId) -> PortClass {
    match fsm.binding.residency_of(&fsm.vars[var.0 as usize]) {
        Residency::Memory { port, .. } => port,
        Residency::Register => PortClass::A,
    }
}

fn base_of(fsm: &Fsm, var: VarId) -> u32 {
    match fsm.binding.residency_of(&fsm.vars[var.0 as usize]) {
        Residency::Memory { base_addr, .. } => base_addr,
        Residency::Register => 0,
    }
}

fn port_label(p: PortClass) -> char {
    match p {
        PortClass::A => 'a',
        PortClass::B => 'b',
        PortClass::C => 'c',
        PortClass::D => 'd',
    }
}

fn extend_bit(b: &mut ModuleBuilder, bit: NetId, w: u32, name: &str) -> NetId {
    let zeros = b.constant(0, w - 1, "zext");
    b.concat(&[zeros, bit], name)
}

fn bool_of(b: &mut ModuleBuilder, v: NetId, w: u32) -> NetId {
    let zero = b.constant(0, w, "z");
    b.ne(v, zero, "nz")
}

fn gen_unary(b: &mut ModuleBuilder, op: UnaryOp, a: NetId, w: u32) -> NetId {
    match op {
        UnaryOp::Neg => {
            let zero = b.constant(0, w, "z");
            b.sub(zero, a, "neg")
        }
        UnaryOp::Not => {
            let zero = b.constant(0, w, "z");
            let isz = b.eq(a, zero, "isz");
            extend_bit(b, isz, w, "lnot")
        }
        UnaryOp::BitNot => b.not(a, "bnot"),
    }
}

fn gen_binary(
    b: &mut ModuleBuilder,
    op: BinaryOp,
    x: NetId,
    y: NetId,
    w: u32,
    y_value: Value,
) -> Result<NetId, CodegenError> {
    Ok(match op {
        BinaryOp::Add => b.add(x, y, "sum"),
        BinaryOp::Sub => b.sub(x, y, "dif"),
        BinaryOp::Mul => b.mul(x, y, "prd"),
        BinaryOp::BitAnd => b.and(&[x, y], "ba"),
        BinaryOp::BitOr => b.or(&[x, y], "bo"),
        BinaryOp::BitXor => b.xor(&[x, y], "bx"),
        BinaryOp::Eq => {
            let e = b.eq(x, y, "ceq");
            extend_bit(b, e, w, "eqx")
        }
        BinaryOp::Ne => {
            let e = b.ne(x, y, "cne");
            extend_bit(b, e, w, "nex")
        }
        BinaryOp::Lt => {
            let e = b.lt(x, y, "clt");
            extend_bit(b, e, w, "ltx")
        }
        BinaryOp::Gt => {
            let e = b.lt(y, x, "cgt");
            extend_bit(b, e, w, "gtx")
        }
        BinaryOp::Le => {
            let g = b.lt(y, x, "cgt");
            let e = b.not(g, "cle");
            extend_bit(b, e, w, "lex")
        }
        BinaryOp::Ge => {
            let l = b.lt(x, y, "clt");
            let e = b.not(l, "cge");
            extend_bit(b, e, w, "gex")
        }
        BinaryOp::And => {
            let xa = bool_of(b, x, w);
            let ya = bool_of(b, y, w);
            let e = b.and(&[xa, ya], "land");
            extend_bit(b, e, w, "landx")
        }
        BinaryOp::Or => {
            let xa = bool_of(b, x, w);
            let ya = bool_of(b, y, w);
            let e = b.or(&[xa, ya], "lor");
            extend_bit(b, e, w, "lorx")
        }
        BinaryOp::Shl => gen_shift(b, x, y, y_value, w, true),
        BinaryOp::Shr => gen_shift(b, x, y, y_value, w, false),
        BinaryOp::Div | BinaryOp::Rem => {
            return Err(CodegenError {
                message: "`/` and `%` need an iterative divider core and are not \
                          synthesizable combinationally; restructure the hic source"
                    .into(),
            })
        }
    })
}

/// Constant shifts use the wired primitive; variable shifts build a barrel
/// shifter from log2(w) mux stages.
fn gen_shift(
    b: &mut ModuleBuilder,
    x: NetId,
    y: NetId,
    y_value: Value,
    w: u32,
    left: bool,
) -> NetId {
    if let Value::Const(c) = y_value {
        let amount = (c as u32) & (w - 1);
        return if left {
            b.shl(x, amount, "shlk")
        } else {
            b.shr(x, amount, "shrk")
        };
    }
    let stages = clog2(w);
    let mut cur = x;
    for s in 0..stages {
        let amount = 1u32 << s;
        let shifted = if left {
            b.shl(cur, amount, "bshl")
        } else {
            b.shr(cur, amount, "bshr")
        };
        let bit = b.slice(y, s, s, "shbit");
        cur = b.mux(bit, &[cur, shifted], "bstage");
    }
    cur
}

/// The call-network stand-in: per argument,
/// `acc = rotl(acc, 5) ^ a; acc = acc + rotl(a, 13)`, seeded by the name.
fn gen_call(b: &mut ModuleBuilder, name: &str, args: &[NetId], w: u32) -> NetId {
    let rotl = |b: &mut ModuleBuilder, v: NetId, n: u32| -> NetId {
        let n = n % w;
        if n == 0 {
            return v;
        }
        let hi = b.shl(v, n, "rl_hi");
        let lo = b.shr(v, w - n, "rl_lo");
        b.or(&[hi, lo], "rl")
    };
    let mut acc = b.constant(u64::from(name_seed(name) as u32), w, "seed");
    for &a in args {
        let r5 = rotl(b, acc, 5);
        acc = b.xor(&[r5, a], "mix");
        let a13 = rotl(b, a, 13);
        acc = b.add(acc, a13, "mixa");
    }
    acc
}

/// Records a temp's wire value; registers it too when the binding says it
/// crosses states.
fn note_temp(
    b: &mut ModuleBuilder,
    binding: &crate::binding::BindingReport,
    temp_wire: &mut BTreeMap<u32, (usize, NetId)>,
    temp_writers: &mut BTreeMap<u32, (usize, NetId, Option<NetId>)>,
    state: usize,
    t: Temp,
    value: NetId,
) {
    temp_wire.insert(t.0, (state, value));
    if binding.assignment.contains_key(&t.0) {
        temp_writers.insert(t.0, (state, value, None));
    }
    let _ = b;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::MemBinding;
    use memsync_hic::parser::parse;
    use memsync_rtl::validate::validate;

    fn gen(src: &str, binding: MemBinding) -> Module {
        let program = parse(src).unwrap();
        let fsm = crate::synthesis::Synthesis::of(&program)
            .binding(binding)
            .run()
            .unwrap()
            .fsm;
        generate(&fsm).expect("codegen")
    }

    #[test]
    fn straight_line_thread_validates() {
        let m = gen(
            "thread t() { int a, b; a = 1; b = a + 2; }",
            MemBinding::new(),
        );
        validate(&m).unwrap_or_else(|e| panic!("{e:?}"));
        assert!(m.is_sequential());
        assert!(m.port("state").is_some());
    }

    #[test]
    fn guarded_consumer_exposes_port_c() {
        let mut binding = MemBinding::new();
        binding.place_guarded("v", PortClass::C, 3, Some("m".into()), None);
        let m = gen("thread c() { int w, v; w = v + 1; }", binding);
        validate(&m).unwrap_or_else(|e| panic!("{e:?}"));
        assert!(m.port("pc_addr").is_some());
        assert!(m.port("pc_req").is_some());
        assert!(m.port("pc_grant").is_some());
        assert!(m.port("pc_rdata").is_some());
    }

    #[test]
    fn producer_exposes_port_d() {
        let mut binding = MemBinding::new();
        binding.place_guarded("v", PortClass::D, 0, None, Some("m".into()));
        let m = gen("thread p() { int v; v = 9; }", binding);
        validate(&m).unwrap_or_else(|e| panic!("{e:?}"));
        assert!(m.port("pd_addr").is_some());
        assert!(m.port("pd_we").is_some());
        assert!(m.port("pd_grant").is_some());
    }

    #[test]
    fn recv_send_interface_generated() {
        let m = gen(
            "thread io() { message msg; recv msg; send msg; }",
            MemBinding::new(),
        );
        validate(&m).unwrap_or_else(|e| panic!("{e:?}"));
        for p in [
            "rx_data", "rx_valid", "rx_ready", "tx_data", "tx_valid", "tx_ready",
        ] {
            assert!(m.port(p).is_some(), "missing {p}");
        }
    }

    #[test]
    fn control_flow_thread_validates() {
        let m = gen(
            "thread t() { int a, b; a = 4; while (a) { a = a - 1; } if (a == 0) { b = 1; } else { b = 2; } }",
            MemBinding::new(),
        );
        validate(&m).unwrap_or_else(|e| panic!("{e:?}"));
    }

    #[test]
    fn division_is_rejected() {
        let program = parse("thread t() { int a, b; a = 8; b = a / 2; }").unwrap();
        let fsm = crate::synthesis::Synthesis::of(&program).run().unwrap().fsm;
        let err = generate(&fsm).unwrap_err();
        assert!(err.message.contains("divider"));
    }

    #[test]
    fn call_network_generated() {
        let m = gen(
            "thread t() { int a, b, c; a = 1; b = 2; c = f(a, b); }",
            MemBinding::new(),
        );
        validate(&m).unwrap_or_else(|e| panic!("{e:?}"));
        // The mix network uses xor instances.
        assert!(m.instances.iter().any(|i| i.op.mnemonic() == "xor"));
    }

    #[test]
    fn array_thread_uses_port_a() {
        let m = gen(
            "thread t() { int tbl[16], i, v; i = 2; v = tbl[i]; tbl[0] = v + 1; }",
            MemBinding::new(),
        );
        validate(&m).unwrap_or_else(|e| panic!("{e:?}"));
        assert!(m.port("pa_addr").is_some());
        assert!(m.port("pa_grant").is_none(), "port A is ungated");
    }

    #[test]
    fn timing_and_area_analyzable() {
        let m = gen(
            "thread t() { int a, b; a = 1; while (a < 100) { a = a + b; b = b + 1; } }",
            MemBinding::new(),
        );
        let report = memsync_fpga::report::implement(&m).expect("no loops");
        assert!(report.ffs > 0);
        assert!(report.luts > 0);
        assert!(report.timing.fmax_mhz > 20.0);
    }
}
