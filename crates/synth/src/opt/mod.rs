//! Optimizing middle-end between [`crate::cdfg`] lowering and
//! [`crate::schedule`].
//!
//! The passes run over the three-address [`DfThread`] form, before any
//! cycle assignment, so every op they delete is a state (or part of one)
//! the FSM never has to visit. The memory-centric payoff is
//! **guarded-read forwarding**: a consumed guarded value re-read in the
//! same pacing window reuses the held register instead of re-arbitrating,
//! deleting a synchronization event from the FSM outright. Around it sit
//! the classic behavioral-synthesis cleanups — constant folding,
//! copy/constant propagation, common-subexpression elimination, dead-op
//! elimination, and CFG simplification (branch folding, if-conversion to
//! [`crate::ir::OpKind::Select`], unreachable-block removal).
//!
//! Passes preserve the thread's observable semantics: messages sent,
//! guarded dependency footprint ([`crate::fsm::Fsm::dependencies`]), and
//! the per-pacing-window values of every surviving memory operation. They
//! never remove a guarded read's *first* occurrence, any memory write, or
//! any `recv`/`send`.

mod cfg;
mod dce;
mod local;

use crate::ir::DfThread;
use memsync_trace::Json;
use std::fmt;
use std::str::FromStr;

/// How hard the middle-end works.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OptLevel {
    /// No optimization: the lowered CDFG goes straight to scheduling.
    #[default]
    O0,
    /// The full fixpoint pipeline (folding, propagation, CSE, DCE,
    /// guarded-read forwarding, CFG simplification).
    O1,
}

impl OptLevel {
    /// The numeric spelling used by `--opt {0,1}` flags.
    pub fn as_u8(self) -> u8 {
        match self {
            OptLevel::O0 => 0,
            OptLevel::O1 => 1,
        }
    }
}

impl fmt::Display for OptLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OptLevel::O0 => "O0",
            OptLevel::O1 => "O1",
        })
    }
}

impl FromStr for OptLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<OptLevel, String> {
        match s {
            "0" | "O0" | "o0" => Ok(OptLevel::O0),
            "1" | "O1" | "o1" => Ok(OptLevel::O1),
            other => Err(format!("unknown opt level {other:?} (expected 0 or 1)")),
        }
    }
}

/// What one pass did, accumulated over every fixpoint iteration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PassStats {
    /// Pass name (`fold_prop_cse`, `forward`, `dce`, `cfg`).
    pub name: &'static str,
    /// Rewrites applied (folds, propagations, forwards, conversions).
    pub applications: usize,
    /// Ops deleted outright by this pass.
    pub ops_removed: usize,
}

/// Per-thread optimization report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PassReport {
    /// Thread the report describes.
    pub thread: String,
    /// Level the pipeline ran at.
    pub level: OptLevel,
    /// Fixpoint iterations until quiescence.
    pub iterations: u32,
    /// Ops in the thread before any pass ran.
    pub ops_before: usize,
    /// Ops after the pipeline.
    pub ops_after: usize,
    /// Guarded memory ops (sync events) before.
    pub guarded_ops_before: usize,
    /// Guarded memory ops after.
    pub guarded_ops_after: usize,
    /// Memory reads replaced by register reuse (guarded + port-A).
    pub reads_forwarded: usize,
    /// Guarded reads among [`PassReport::reads_forwarded`] — each one is a
    /// deleted arbitration event.
    pub guarded_reads_forwarded: usize,
    /// FSM states the unoptimized schedule would have used.
    pub states_before: usize,
    /// FSM states the optimized schedule uses.
    pub states_after: usize,
    /// Whether the cost model rejected the optimized lowering and the
    /// unoptimized thread was emitted instead (see
    /// [`crate::synthesis::Synthesis`]): the pipeline never pessimizes a
    /// schedule.
    pub gated: bool,
    /// Per-pass breakdown.
    pub passes: Vec<PassStats>,
}

impl PassReport {
    /// FSM states the pipeline saved (0 at `O0`).
    pub fn states_saved(&self) -> usize {
        self.states_before.saturating_sub(self.states_after)
    }

    /// Ops the pipeline removed.
    pub fn ops_removed(&self) -> usize {
        self.ops_before.saturating_sub(self.ops_after)
    }

    /// Renders the report as a dependency-free JSON document.
    pub fn to_json(&self) -> Json {
        let passes: Vec<Json> = self
            .passes
            .iter()
            .map(|p| {
                Json::obj()
                    .with("name", Json::Str(p.name.to_owned()))
                    .with("applications", p.applications.into())
                    .with("ops_removed", p.ops_removed.into())
            })
            .collect();
        Json::obj()
            .with("thread", Json::Str(self.thread.clone()))
            .with("level", Json::Str(self.level.to_string()))
            .with("iterations", u64::from(self.iterations).into())
            .with("ops_before", self.ops_before.into())
            .with("ops_after", self.ops_after.into())
            .with("ops_removed", self.ops_removed().into())
            .with("guarded_ops_before", self.guarded_ops_before.into())
            .with("guarded_ops_after", self.guarded_ops_after.into())
            .with("reads_forwarded", self.reads_forwarded.into())
            .with(
                "guarded_reads_forwarded",
                self.guarded_reads_forwarded.into(),
            )
            .with("states_before", self.states_before.into())
            .with("states_after", self.states_after.into())
            .with("states_saved", self.states_saved().into())
            .with("gated", u64::from(self.gated).into())
            .with("passes", Json::Arr(passes))
    }
}

/// Upper bound on fixpoint iterations; each pass is monotone (only ever
/// removes or simplifies), so this is a safety net, not a tuning knob.
const MAX_ITERATIONS: u32 = 8;

/// Counts guarded (dependency-carrying) memory ops in a thread.
fn guarded_op_count(df: &DfThread) -> usize {
    df.blocks
        .iter()
        .flat_map(|b| b.ops.iter())
        .filter(|o| o.kind.dep().is_some())
        .count()
}

/// Runs the pipeline over one lowered thread, in place.
///
/// At [`OptLevel::O0`] the thread is untouched and the report carries only
/// the before-counters. At [`OptLevel::O1`] the passes run in order —
/// local simplification (fold/propagate/CSE/forward), dead-op
/// elimination, CFG simplification — until a full sweep changes nothing.
/// The caller fills in `states_before`/`states_after` (the pass manager
/// does not schedule).
pub fn optimize(df: &mut DfThread, level: OptLevel) -> PassReport {
    let mut report = PassReport {
        thread: df.name.clone(),
        level,
        ops_before: df.op_count(),
        guarded_ops_before: guarded_op_count(df),
        ..PassReport::default()
    };
    let mut local_stats = PassStats {
        name: "fold_prop_cse",
        ..PassStats::default()
    };
    let mut forward_stats = PassStats {
        name: "forward",
        ..PassStats::default()
    };
    let mut dce_stats = PassStats {
        name: "dce",
        ..PassStats::default()
    };
    let mut cfg_stats = PassStats {
        name: "cfg",
        ..PassStats::default()
    };

    if level == OptLevel::O1 {
        // Fresh-temp counter for ops the optimizer materializes
        // (if-conversion selects); starts past every temp in the thread.
        let mut next_temp = next_free_temp(df);
        let mut guarded_forwards = 0usize;
        for _ in 0..MAX_ITERATIONS {
            report.iterations += 1;
            let (l, g) = local::run(df, &mut local_stats, &mut forward_stats);
            guarded_forwards += g;
            let d = dce::run(df, &mut dce_stats);
            let c = cfg::run(df, &mut next_temp, &mut cfg_stats);
            if !(l | d | c) {
                break;
            }
        }
        report.reads_forwarded = forward_stats.applications;
        report.guarded_reads_forwarded = guarded_forwards;
    }

    report.ops_after = df.op_count();
    report.guarded_ops_after = guarded_op_count(df);
    report.passes = vec![local_stats, forward_stats, dce_stats, cfg_stats];
    report
}

/// First temp id not used anywhere in the thread.
fn next_free_temp(df: &DfThread) -> u32 {
    let mut next = 0u32;
    for b in &df.blocks {
        for op in &b.ops {
            if let Some(t) = op.result {
                next = next.max(t.0 + 1);
            }
            for a in &op.args {
                if let crate::ir::Value::Temp(t) = a {
                    next = next.max(t.0 + 1);
                }
            }
        }
    }
    next
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdfg::lower_thread;
    use crate::ir::{MemBinding, OpKind, PortClass};
    use memsync_hic::parser::parse;

    fn lowered(src: &str, binding: MemBinding) -> DfThread {
        let program = parse(src).unwrap();
        lower_thread(&program, &program.threads[0], &binding).unwrap()
    }

    #[test]
    fn opt_level_parses_and_prints() {
        assert_eq!("0".parse::<OptLevel>(), Ok(OptLevel::O0));
        assert_eq!("1".parse::<OptLevel>(), Ok(OptLevel::O1));
        assert_eq!("O1".parse::<OptLevel>(), Ok(OptLevel::O1));
        assert!("2".parse::<OptLevel>().is_err());
        assert_eq!(OptLevel::O1.to_string(), "O1");
        assert_eq!(OptLevel::O0.as_u8(), 0);
    }

    #[test]
    fn o0_is_identity() {
        let mut df = lowered(
            "thread t() { int a, b; a = 1 + 2; b = a + a; }",
            MemBinding::new(),
        );
        let before = df.clone();
        let report = optimize(&mut df, OptLevel::O0);
        assert_eq!(df, before);
        assert_eq!(report.ops_removed(), 0);
        assert_eq!(report.iterations, 0);
    }

    #[test]
    fn constant_expressions_fold_away() {
        let mut df = lowered(
            "thread t() { int a; a = (1 + 2) * 4 - 3; send a; }",
            MemBinding::new(),
        );
        let report = optimize(&mut df, OptLevel::O1);
        // Everything collapses (the dead store included) into sending the
        // constant 9.
        assert_eq!(df.op_count(), 1, "{:?}", df.blocks);
        let op = &df.blocks[0].ops[0];
        assert!(matches!(op.kind, OpKind::Send));
        assert_eq!(op.args, vec![crate::ir::Value::Const(9)]);
        assert!(report.ops_removed() >= 3);
    }

    #[test]
    fn folding_uses_datapath_semantics() {
        // 0 - 1 in the 32-bit unsigned datapath is 0xffff_ffff, not -1.
        let mut df = lowered(
            "thread t() { int a; a = 0 - 1; send a; }",
            MemBinding::new(),
        );
        optimize(&mut df, OptLevel::O1);
        let op = df.blocks[0].ops.last().unwrap();
        assert_eq!(op.args, vec![crate::ir::Value::Const(0xffff_ffff)]);
    }

    #[test]
    fn division_is_never_folded() {
        // Codegen rejects `/` at every level; folding it away would make
        // O1 accept what O0 rejects.
        let mut df = lowered("thread t() { int a; a = 8 / 2; }", MemBinding::new());
        optimize(&mut df, OptLevel::O1);
        let has_div = df.blocks.iter().flat_map(|b| &b.ops).any(|o| {
            matches!(
                o.kind,
                OpKind::Binary(memsync_hic::ast::BinaryOp::Div | memsync_hic::ast::BinaryOp::Rem)
            )
        });
        assert!(has_div, "division must survive to be rejected by codegen");
    }

    #[test]
    fn common_subexpressions_are_eliminated() {
        let mut df = lowered(
            "thread t() { int a, b, c; a = 7; b = (a + 1) * 2; c = (a + 1) * 2; }",
            MemBinding::new(),
        );
        let before = df.op_count();
        let report = optimize(&mut df, OptLevel::O1);
        assert!(
            df.op_count() < before,
            "CSE failed: {} -> {}",
            before,
            df.op_count()
        );
        assert!(report.passes.iter().any(|p| p.applications > 0));
    }

    #[test]
    fn dead_stores_and_their_feeders_die() {
        // `b` is computed and stored but never read anywhere.
        let mut df = lowered(
            "thread t() { int a, b; a = 1; b = (a + 2) * 3; send a; }",
            MemBinding::new(),
        );
        optimize(&mut df, OptLevel::O1);
        let b_id = df.var_id("b").unwrap();
        let stores_b = df
            .blocks
            .iter()
            .flat_map(|bl| &bl.ops)
            .any(|o| matches!(o.kind, OpKind::StoreVar { var } if var == b_id));
        assert!(!stores_b, "dead store to b survived");
    }

    #[test]
    fn guarded_reads_are_never_removed_by_dce() {
        let mut binding = MemBinding::new();
        binding.place_guarded("v", PortClass::C, 0, Some("m".into()), None);
        // The read's result is dead, but the consume is a sync event.
        let mut df = lowered("thread c() { int w, v; w = v; }", binding);
        optimize(&mut df, OptLevel::O1);
        let guarded_reads = df
            .blocks
            .iter()
            .flat_map(|b| &b.ops)
            .filter(|o| matches!(&o.kind, OpKind::MemRead { dep: Some(_), .. }))
            .count();
        assert_eq!(guarded_reads, 1, "the consume must survive");
    }

    #[test]
    fn guarded_reread_is_forwarded() {
        let mut binding = MemBinding::new();
        binding.place_guarded("v", PortClass::C, 0, Some("m".into()), None);
        let mut df = lowered(
            "thread c() { int a, b, v; a = v; b = v; send (a + b); }",
            binding,
        );
        let report = optimize(&mut df, OptLevel::O1);
        let guarded_reads = df
            .blocks
            .iter()
            .flat_map(|b| &b.ops)
            .filter(|o| matches!(&o.kind, OpKind::MemRead { dep: Some(_), .. }))
            .count();
        assert_eq!(guarded_reads, 1, "second consume forwarded from the first");
        assert_eq!(report.guarded_reads_forwarded, 1);
        assert!(report.reads_forwarded >= 1);
        assert_eq!(report.guarded_ops_before, 2);
        assert_eq!(report.guarded_ops_after, 1);
    }

    #[test]
    fn recv_fences_guarded_forwarding() {
        let mut binding = MemBinding::new();
        binding.place_guarded("v", PortClass::C, 0, Some("m".into()), None);
        // A recv is a pacing-window boundary: the re-read must re-arbitrate.
        let mut df = lowered(
            "thread c() { int a, b, v; message msg; a = v; recv msg; b = v; send (a + b); }",
            binding,
        );
        optimize(&mut df, OptLevel::O1);
        let guarded_reads = df
            .blocks
            .iter()
            .flat_map(|b| &b.ops)
            .filter(|o| matches!(&o.kind, OpKind::MemRead { dep: Some(_), .. }))
            .count();
        assert_eq!(guarded_reads, 2, "forwarding must not cross a recv");
    }

    #[test]
    fn constant_branch_folds_and_unreachable_code_dies() {
        let mut df = lowered(
            "thread t() { int a; if (1) { a = 5; } else { a = 9; } send a; }",
            MemBinding::new(),
        );
        optimize(&mut df, OptLevel::O1);
        // Only the then-side store survives; the 9 is unreachable.
        let consts: Vec<i64> = df
            .blocks
            .iter()
            .flat_map(|b| &b.ops)
            .flat_map(|o| o.args.iter())
            .filter_map(|a| match a {
                crate::ir::Value::Const(c) => Some(*c),
                _ => None,
            })
            .collect();
        assert!(consts.contains(&5));
        assert!(
            !consts.contains(&9),
            "unreachable else survived: {consts:?}"
        );
        let has_branch = df
            .blocks
            .iter()
            .any(|b| matches!(b.term, crate::ir::Terminator::Branch { .. }));
        assert!(!has_branch, "constant branch survived");
    }

    #[test]
    fn diamond_if_converts_to_select() {
        let mut binding = MemBinding::new();
        binding.place_guarded("d", PortClass::D, 0, None, Some("m".into()));
        let mut df = lowered(
            "thread p() { int x, d; message msg; recv msg; x = msg; \
             if (x > 1) { d = x * 2; } else { d = 0; } }",
            binding,
        );
        let report = optimize(&mut df, OptLevel::O1);
        let writes = df
            .blocks
            .iter()
            .flat_map(|b| &b.ops)
            .filter(|o| matches!(&o.kind, OpKind::MemWrite { dep: Some(_), .. }))
            .count();
        assert_eq!(writes, 1, "paired guarded writes merged through a select");
        assert!(
            df.blocks
                .iter()
                .flat_map(|b| &b.ops)
                .any(|o| matches!(o.kind, OpKind::Select)),
            "select materialized"
        );
        assert_eq!(report.guarded_ops_before, 2);
        assert_eq!(report.guarded_ops_after, 1);
    }

    #[test]
    fn report_json_round_trips() {
        let mut df = lowered(
            "thread t() { int a; a = 1 + 2; send a; }",
            MemBinding::new(),
        );
        let mut report = optimize(&mut df, OptLevel::O1);
        report.states_before = 4;
        report.states_after = 2;
        let doc = Json::parse(&report.to_json().render()).expect("valid JSON");
        assert_eq!(
            doc.get("thread").and_then(Json::as_str),
            Some("t"),
            "{doc:?}"
        );
        assert_eq!(doc.get("level").and_then(Json::as_str), Some("O1"));
        assert_eq!(doc.get("states_saved").and_then(Json::as_u64), Some(2));
        assert!(doc.get("passes").and_then(Json::as_arr).is_some());
    }

    #[test]
    fn narrow_store_propagation_respects_width() {
        // `c` is 8 bits: the stored 300 reads back as 44, and constant
        // propagation must agree with the masked register.
        let mut df = lowered(
            "thread t() { char c; int d; c = 300; d = c + 1; send d; }",
            MemBinding::new(),
        );
        optimize(&mut df, OptLevel::O1);
        let consts: Vec<i64> = df
            .blocks
            .iter()
            .flat_map(|b| &b.ops)
            .flat_map(|o| o.args.iter())
            .filter_map(|a| match a {
                crate::ir::Value::Const(c) => Some(*c),
                _ => None,
            })
            .collect();
        assert!(
            consts.contains(&45) || consts.contains(&44),
            "masked fold expected, got {consts:?}"
        );
        assert!(!consts.contains(&301), "unmasked propagation: {consts:?}");
    }
}
