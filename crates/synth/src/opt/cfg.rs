//! Control-flow simplification.
//!
//! Five transforms, each preserving the thread's run-to-completion
//! semantics (a `Restart` terminator is an iteration boundary and is never
//! confused with a jump to the entry block):
//!
//! 1. **Terminator folding** — branches on constants and switches on
//!    constants become jumps; a branch whose arms coincide becomes a jump.
//! 2. **Jump threading** — edges through empty jump-only blocks are
//!    redirected to their final target; a jump to an empty restarting
//!    block becomes a restart.
//! 3. **If-conversion** — a branch diamond whose arms are straight-line,
//!    memory-read-free, and whose memory writes pair up exactly collapses
//!    into the header with [`OpKind::Select`] muxes. Pairing two guarded
//!    writes into one deletes a producer synchronization event per
//!    iteration.
//! 4. **Block merging** — a block whose only successor has no other
//!    predecessors is fused with it.
//! 5. **Unreachable removal** — blocks no path from the entry reaches are
//!    deleted (with an order-preserving index remap; block 0 stays the
//!    entry, which `Restart` implicitly targets).

use super::PassStats;
use crate::eval::mask_to_width;
use crate::ir::{Block, DfOp, DfThread, OpKind, Temp, Terminator, Value, VarId};
use std::collections::BTreeMap;

/// Runs one sweep of every CFG transform. Returns whether anything
/// changed (the pass-manager fixpoint re-runs until quiescent).
pub(super) fn run(df: &mut DfThread, next_temp: &mut u32, stats: &mut PassStats) -> bool {
    let mut changed = false;
    changed |= fold_terminators(df, stats);
    changed |= thread_jumps(df, stats);
    changed |= if_convert(df, next_temp, stats);
    changed |= merge_chains(df, stats);
    changed |= remove_unreachable(df, stats);
    changed
}

/// Edge-counted predecessors; the entry block gets one implicit edge (the
/// restart path), so it is never treated as merge- or convert-able.
fn pred_counts(df: &DfThread) -> Vec<usize> {
    let mut preds = vec![0usize; df.blocks.len()];
    preds[0] += 1;
    for b in &df.blocks {
        for s in b.term.successors() {
            preds[s] += 1;
        }
    }
    preds
}

fn fold_terminators(df: &mut DfThread, stats: &mut PassStats) -> bool {
    let mut changed = false;
    for b in &mut df.blocks {
        let folded = match &b.term {
            Terminator::Branch {
                cond: Value::Const(c),
                then_block,
                else_block,
            } => Some(if (*c as u32) != 0 {
                *then_block
            } else {
                *else_block
            }),
            Terminator::Branch {
                then_block,
                else_block,
                ..
            } if then_block == else_block => Some(*then_block),
            Terminator::Switch {
                selector: Value::Const(c),
                arms,
                default,
            } => {
                // Exact arm-matching semantics of the executor: compare in
                // the truncated domain first, then the literal one.
                let sel = i64::from(*c as u32);
                Some(
                    arms.iter()
                        .find(|(k, _)| i64::from(*k as u32) == sel || *k == sel)
                        .map(|(_, t)| *t)
                        .unwrap_or(*default),
                )
            }
            _ => None,
        };
        if let Some(t) = folded {
            b.term = Terminator::Jump(t);
            stats.applications += 1;
            changed = true;
        }
    }
    changed
}

/// Final destination of an edge into `s`, skipping empty jump-only blocks
/// (never the entry, never a self-loop).
fn final_target(blocks: &[Block], mut s: usize) -> usize {
    let mut hops = 0;
    while s != 0 && hops <= blocks.len() {
        let b = &blocks[s];
        if !b.ops.is_empty() {
            break;
        }
        match b.term {
            Terminator::Jump(t) if t != s => {
                s = t;
                hops += 1;
            }
            _ => break,
        }
    }
    s
}

fn thread_jumps(df: &mut DfThread, stats: &mut PassStats) -> bool {
    let mut changed = false;
    for bi in 0..df.blocks.len() {
        let mut term = df.blocks[bi].term.clone();
        let mut touched = false;
        {
            let blocks = &df.blocks;
            let mut redirect = |s: &mut usize| {
                let t = final_target(blocks, *s);
                if t != *s {
                    *s = t;
                    touched = true;
                }
            };
            match &mut term {
                Terminator::Jump(t) => redirect(t),
                Terminator::Branch {
                    then_block,
                    else_block,
                    ..
                } => {
                    redirect(then_block);
                    redirect(else_block);
                }
                Terminator::Switch { arms, default, .. } => {
                    for (_, t) in arms.iter_mut() {
                        redirect(t);
                    }
                    redirect(default);
                }
                Terminator::Restart => {}
            }
        }
        // A jump into an empty restarting block is itself a restart.
        if let Terminator::Jump(t) = term {
            if t != 0
                && t != bi
                && df.blocks[t].ops.is_empty()
                && df.blocks[t].term == Terminator::Restart
            {
                term = Terminator::Restart;
                touched = true;
            }
        }
        if touched {
            df.blocks[bi].term = term;
            stats.applications += 1;
            changed = true;
        }
    }
    changed
}

/// What one branch arm does, with in-arm register writes renamed away.
struct ArmPlan {
    /// Pure ops, operands substituted, hoistable as-is.
    hoisted: Vec<DfOp>,
    /// Memory writes in program order, operands substituted.
    writes: Vec<DfOp>,
    /// Final (raw, pre-mask) value of each register the arm stores.
    vars: BTreeMap<u32, Value>,
}

/// Plans the conversion of one arm; `None` means the arm is not
/// convertible (memory reads, `recv`/`send`, or a read of a narrow
/// register after a non-constant in-arm store, which substitution cannot
/// represent because the register masks and a value does not).
fn plan_arm(df: &DfThread, bi: usize) -> Option<ArmPlan> {
    let mut vars: BTreeMap<u32, Value> = BTreeMap::new();
    let mut read_subst: BTreeMap<u32, Value> = BTreeMap::new();
    let mut hoisted = Vec::new();
    let mut writes = Vec::new();
    for op in &df.blocks[bi].ops {
        let mut op = op.clone();
        for a in &mut op.args {
            if let Value::Var(v) = a {
                if let Some(r) = read_subst.get(&v.0) {
                    *a = *r;
                } else if vars.contains_key(&v.0) {
                    return None;
                }
            }
        }
        match &op.kind {
            OpKind::Copy
            | OpKind::Unary(_)
            | OpKind::Binary(_)
            | OpKind::Call(_)
            | OpKind::Select => hoisted.push(op),
            OpKind::StoreVar { var } => {
                let v = var.0;
                let width = df.widths[v as usize].min(32);
                let val = op.args[0];
                vars.insert(v, val);
                match val {
                    Value::Const(c) => {
                        read_subst.insert(v, Value::Const(mask_to_width(c, width)));
                    }
                    _ if width >= 32 => {
                        read_subst.insert(v, val);
                    }
                    _ => {
                        read_subst.remove(&v);
                    }
                }
            }
            OpKind::MemWrite { .. } => writes.push(op),
            OpKind::MemRead { .. } | OpKind::Recv { .. } | OpKind::Send => return None,
        }
    }
    Some(ArmPlan {
        hoisted,
        writes,
        vars,
    })
}

/// Builds the replacement op sequence for a convertible diamond, or
/// `None` if the arms' memory writes do not pair exactly.
fn build_conversion(
    df: &DfThread,
    cond: Value,
    tb: usize,
    eb: usize,
    next_temp: &mut u32,
) -> Option<Vec<DfOp>> {
    let tplan = plan_arm(df, tb)?;
    let eplan = plan_arm(df, eb)?;
    if tplan.writes.len() != eplan.writes.len() {
        return None;
    }
    // Writes must pair positionally: same variable, same dependency, same
    // constant address. Anything looser would reorder observable writes.
    for (wt, we) in tplan.writes.iter().zip(eplan.writes.iter()) {
        if wt.kind != we.kind {
            return None;
        }
        match (wt.args[0], we.args[0]) {
            (Value::Const(a), Value::Const(b)) if a as u32 == b as u32 => {}
            _ => return None,
        }
    }

    let mut nt = *next_temp;
    let mut fresh = || {
        let t = Temp(nt);
        nt += 1;
        t
    };
    let mut ops = Vec::new();
    ops.extend(tplan.hoisted);
    ops.extend(eplan.hoisted);
    // Merged writes: mux the data where the arms disagree. These run
    // before any register commit, so incoming `Var` operands still mean
    // the incoming values.
    for (wt, we) in tplan.writes.into_iter().zip(eplan.writes) {
        let data = if wt.args[1] == we.args[1] {
            wt.args[1]
        } else {
            let t = fresh();
            ops.push(DfOp {
                kind: OpKind::Select,
                args: vec![cond, wt.args[1], we.args[1]],
                result: Some(t),
            });
            Value::Temp(t)
        };
        ops.push(DfOp {
            kind: wt.kind,
            args: vec![wt.args[0], data],
            result: None,
        });
    }
    // Register commits: first materialize every final value (so each mux
    // and copy reads incoming registers), then store them all.
    let mut stores = Vec::new();
    let keys: Vec<u32> = tplan
        .vars
        .keys()
        .chain(eplan.vars.keys())
        .copied()
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    for v in keys {
        let incoming = Value::Var(VarId(v));
        let tv = tplan.vars.get(&v).copied().unwrap_or(incoming);
        let ev = eplan.vars.get(&v).copied().unwrap_or(incoming);
        let mut fv = if tv == ev {
            tv
        } else {
            let t = fresh();
            ops.push(DfOp {
                kind: OpKind::Select,
                args: vec![cond, tv, ev],
                result: Some(t),
            });
            Value::Temp(t)
        };
        // Route register-sourced values through a temp: the batched stores
        // below must not observe each other.
        if matches!(fv, Value::Var(_)) {
            let t = fresh();
            ops.push(DfOp {
                kind: OpKind::Copy,
                args: vec![fv],
                result: Some(t),
            });
            fv = Value::Temp(t);
        }
        stores.push(DfOp {
            kind: OpKind::StoreVar { var: VarId(v) },
            args: vec![fv],
            result: None,
        });
    }
    ops.extend(stores);
    *next_temp = nt;
    Some(ops)
}

fn if_convert(df: &mut DfThread, next_temp: &mut u32, stats: &mut PassStats) -> bool {
    let mut changed = false;
    loop {
        let preds = pred_counts(df);
        let mut applied = false;
        for h in 0..df.blocks.len() {
            let Terminator::Branch {
                cond,
                then_block: tb,
                else_block: eb,
            } = df.blocks[h].term
            else {
                continue;
            };
            if tb == eb || tb == 0 || eb == 0 || tb == h || eb == h {
                continue;
            }
            if preds[tb] != 1 || preds[eb] != 1 {
                continue;
            }
            let join = match (&df.blocks[tb].term, &df.blocks[eb].term) {
                (Terminator::Jump(a), Terminator::Jump(b))
                    if a == b && *a != h && *a != tb && *a != eb =>
                {
                    Some(*a)
                }
                (Terminator::Restart, Terminator::Restart) => None,
                _ => continue,
            };
            let Some(merged) = build_conversion(df, cond, tb, eb, next_temp) else {
                continue;
            };
            df.blocks[h].ops.extend(merged);
            df.blocks[h].term = match join {
                Some(j) => Terminator::Jump(j),
                None => Terminator::Restart,
            };
            stats.applications += 1;
            applied = true;
            changed = true;
            break;
        }
        if !applied {
            break;
        }
    }
    changed
}

fn merge_chains(df: &mut DfThread, stats: &mut PassStats) -> bool {
    let mut changed = false;
    loop {
        let preds = pred_counts(df);
        let mut did = false;
        for a in 0..df.blocks.len() {
            let Terminator::Jump(b) = df.blocks[a].term else {
                continue;
            };
            if b == 0 || b == a || preds[b] != 1 {
                continue;
            }
            // Detach `b` (it becomes an unreachable self-loop swept later)
            // and fuse it onto `a`.
            let tail = std::mem::replace(
                &mut df.blocks[b],
                Block {
                    ops: Vec::new(),
                    term: Terminator::Jump(b),
                },
            );
            df.blocks[a].ops.extend(tail.ops);
            df.blocks[a].term = tail.term;
            stats.applications += 1;
            did = true;
            changed = true;
            break;
        }
        if !did {
            break;
        }
    }
    changed
}

fn remove_unreachable(df: &mut DfThread, stats: &mut PassStats) -> bool {
    let n = df.blocks.len();
    let mut seen = vec![false; n];
    let mut stack = vec![0usize];
    seen[0] = true;
    while let Some(b) = stack.pop() {
        for s in df.blocks[b].term.successors() {
            if !seen[s] {
                seen[s] = true;
                stack.push(s);
            }
        }
    }
    if seen.iter().all(|&s| s) {
        return false;
    }
    // Order-preserving remap keeps block 0 the entry.
    let mut remap = vec![usize::MAX; n];
    let mut next = 0usize;
    for (i, &alive) in seen.iter().enumerate() {
        if alive {
            remap[i] = next;
            next += 1;
        }
    }
    let old = std::mem::take(&mut df.blocks);
    for (i, mut b) in old.into_iter().enumerate() {
        if !seen[i] {
            stats.applications += 1;
            stats.ops_removed += b.ops.len();
            continue;
        }
        match &mut b.term {
            Terminator::Jump(t) => *t = remap[*t],
            Terminator::Branch {
                then_block,
                else_block,
                ..
            } => {
                *then_block = remap[*then_block];
                *else_block = remap[*else_block];
            }
            Terminator::Switch { arms, default, .. } => {
                for (_, t) in arms.iter_mut() {
                    *t = remap[*t];
                }
                *default = remap[*default];
            }
            Terminator::Restart => {}
        }
        df.blocks.push(b);
    }
    true
}
