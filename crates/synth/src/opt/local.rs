//! Block-local simplification: constant folding, copy/constant
//! propagation, common-subexpression elimination, and memory-read
//! forwarding.
//!
//! One forward scan per block maintains three facts: what value each temp
//! resolves to (`temp_map`), what value each register variable currently
//! holds (`var_map`), and which memory words are already held in a temp
//! (`mem_avail`). Substitutions are applied eagerly, so folding, CSE, and
//! forwarding all see canonical operands.
//!
//! Soundness rules, in the order they bite:
//!
//! - `temp_map`/`var_map`/`mem_avail` only ever record `Temp` or `Const`
//!   values. Temps are statically single-assignment, so neither goes stale;
//!   a `Var` value would silently change meaning at the variable's next
//!   definition.
//! - `var_map` entries for variables narrower than the datapath record the
//!   *masked* constant (what [`mask_to_width`] leaves in the register);
//!   non-constant stores to narrow variables are not propagated at all.
//! - `mem_avail` is keyed by `(variable, index)` with constant indexes
//!   normalized through `as u32` (the address truncation the hardware
//!   applies). Entries are recorded only when a later hit is forwardable:
//!   guarded reads (the ISSUE-sanctioned same-pacing-window register
//!   reuse) and accesses to register-resident (private port-A) arrays.
//!   Shared unguarded banks are never forwarded — another thread may write
//!   between the two accesses.
//! - A `recv` is a pacing-window boundary: it clears `mem_avail` outright,
//!   so no forwarding crosses it.
//! - Division and remainder are never folded: codegen rejects them at
//!   every level, and folding would make `O1` accept programs `O0`
//!   rejects.

use super::PassStats;
use crate::eval::{call_function, eval_binary_datapath, eval_unary_datapath, mask_to_width};
use crate::ir::{DfThread, OpKind, Residency, Terminator, Value};
use memsync_hic::ast::BinaryOp;
use std::collections::BTreeMap;

/// Ordered key form of a [`Value`] for CSE/availability tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum VKey {
    T(u32),
    V(u32),
    C(i64),
}

fn vkey(v: Value) -> VKey {
    match v {
        Value::Temp(t) => VKey::T(t.0),
        Value::Var(id) => VKey::V(id.0),
        Value::Const(c) => VKey::C(c),
    }
}

/// Key form of a memory index: constants are normalized through the `as
/// u32` truncation the address datapath applies.
fn idx_key(v: Value) -> VKey {
    match v {
        Value::Const(c) => VKey::C(i64::from(c as u32)),
        other => vkey(other),
    }
}

fn as_const(v: Value) -> Option<i64> {
    match v {
        Value::Const(c) => Some(c),
        _ => None,
    }
}

/// Runs the local pass over every block. Returns whether anything changed
/// and how many of the forwarded reads were guarded (each a deleted
/// synchronization event).
pub(super) fn run(
    df: &mut DfThread,
    fold: &mut PassStats,
    forward: &mut PassStats,
) -> (bool, usize) {
    let mut changed = false;
    let mut guarded_forwards = 0usize;
    let widths = df.widths.clone();
    let vars = df.vars.clone();
    let binding = df.binding.clone();
    let reg_resident =
        |v: u32| -> bool { matches!(binding.residency_of(&vars[v as usize]), Residency::Register) };

    for block in &mut df.blocks {
        let mut temp_map: BTreeMap<u32, Value> = BTreeMap::new();
        let mut var_map: BTreeMap<u32, Value> = BTreeMap::new();
        let mut cse: BTreeMap<(String, Vec<VKey>), Value> = BTreeMap::new();
        let mut mem_avail: BTreeMap<(u32, VKey), Value> = BTreeMap::new();
        let mut new_ops = Vec::with_capacity(block.ops.len());

        'ops: for mut op in block.ops.drain(..) {
            for a in &mut op.args {
                let s = match *a {
                    Value::Temp(t) => temp_map.get(&t.0).copied(),
                    Value::Var(v) => var_map.get(&v.0).copied(),
                    Value::Const(_) => None,
                };
                if let Some(s) = s {
                    if s != *a {
                        *a = s;
                        changed = true;
                    }
                }
            }

            match &op.kind {
                OpKind::Copy => {
                    match (op.result, op.args[0]) {
                        (None, _) => {
                            // Result-less copy: no effect at all.
                            fold.applications += 1;
                            fold.ops_removed += 1;
                            changed = true;
                        }
                        (Some(t), v @ (Value::Temp(_) | Value::Const(_))) => {
                            temp_map.insert(t.0, v);
                            fold.applications += 1;
                            fold.ops_removed += 1;
                            changed = true;
                        }
                        // Copy of an unknown register value must stay put:
                        // propagating a `Var` could go stale at its next
                        // definition.
                        (Some(_), Value::Var(_)) => new_ops.push(op),
                    }
                }
                OpKind::Unary(_) | OpKind::Binary(_) | OpKind::Call(_) | OpKind::Select => {
                    let folded: Option<Value> = match &op.kind {
                        OpKind::Unary(u) => {
                            as_const(op.args[0]).map(|a| Value::Const(eval_unary_datapath(*u, a)))
                        }
                        OpKind::Binary(b) if !matches!(b, BinaryOp::Div | BinaryOp::Rem) => {
                            match (as_const(op.args[0]), as_const(op.args[1])) {
                                (Some(x), Some(y)) => {
                                    Some(Value::Const(eval_binary_datapath(*b, x, y)))
                                }
                                _ => None,
                            }
                        }
                        OpKind::Binary(_) => None,
                        OpKind::Call(name) => {
                            let consts: Option<Vec<i64>> =
                                op.args.iter().map(|a| as_const(*a)).collect();
                            consts.map(|cs| Value::Const(call_function(name, &cs)))
                        }
                        OpKind::Select => match as_const(op.args[0]) {
                            Some(c) => Some(if (c as u32) != 0 {
                                op.args[1]
                            } else {
                                op.args[2]
                            }),
                            None if op.args[1] == op.args[2] => Some(op.args[1]),
                            None => None,
                        },
                        _ => unreachable!(),
                    };
                    if let Some(v) = folded {
                        match (op.result, v) {
                            (None, _) => {}
                            (Some(t), Value::Temp(_) | Value::Const(_)) => {
                                temp_map.insert(t.0, v);
                            }
                            (Some(_), Value::Var(_)) => {
                                // Folded to a live register read (select of
                                // identical var arms): keep a positional
                                // copy so the read happens here, not at some
                                // later use after a redefinition.
                                op.kind = OpKind::Copy;
                                op.args = vec![v];
                                fold.applications += 1;
                                changed = true;
                                new_ops.push(op);
                                continue 'ops;
                            }
                        }
                        fold.applications += 1;
                        fold.ops_removed += 1;
                        changed = true;
                        continue 'ops;
                    }
                    // Value numbering: identical pure op on identical
                    // operands reuses the earlier result.
                    if let Some(t) = op.result {
                        let key = (
                            format!("{:?}", op.kind),
                            op.args.iter().map(|a| vkey(*a)).collect::<Vec<_>>(),
                        );
                        if let Some(prior) = cse.get(&key) {
                            temp_map.insert(t.0, *prior);
                            fold.applications += 1;
                            fold.ops_removed += 1;
                            changed = true;
                            continue 'ops;
                        }
                        cse.insert(key, Value::Temp(t));
                    }
                    new_ops.push(op);
                }
                OpKind::MemRead { var, dep } => {
                    let v = var.0;
                    let guarded = dep.is_some();
                    let key = (v, idx_key(op.args[0]));
                    if let Some(held) = mem_avail.get(&key).copied() {
                        if let Some(t) = op.result {
                            temp_map.insert(t.0, held);
                        }
                        forward.applications += 1;
                        forward.ops_removed += 1;
                        if guarded {
                            guarded_forwards += 1;
                        }
                        changed = true;
                        continue 'ops;
                    }
                    // Record availability only when a later hit would be
                    // forwardable: guarded consumes (held for the window)
                    // or private register-resident banks.
                    if guarded || reg_resident(v) {
                        if let Some(t) = op.result {
                            mem_avail.insert(key, Value::Temp(t));
                        }
                    }
                    new_ops.push(op);
                }
                OpKind::MemWrite { var, .. } => {
                    let v = var.0;
                    let ik = idx_key(op.args[0]);
                    // A write invalidates every held word of this variable
                    // it could alias (distinct constant indexes cannot).
                    mem_avail.retain(|(ev, ek), _| {
                        *ev != v
                            || match (ek, &ik) {
                                (VKey::C(a), VKey::C(b)) => a != b,
                                _ => false,
                            }
                    });
                    // Store-to-load forwarding, private banks only; the
                    // bank stores the raw 32-bit word.
                    if reg_resident(v) {
                        let record = match op.args[1] {
                            Value::Const(c) => Some(Value::Const(i64::from(c as u32))),
                            t @ Value::Temp(_) => Some(t),
                            Value::Var(_) => None,
                        };
                        if let Some(d) = record {
                            mem_avail.insert((v, ik), d);
                        }
                    }
                    new_ops.push(op);
                }
                OpKind::StoreVar { var } => {
                    let v = var.0;
                    let width = widths[v as usize].min(32);
                    cse.retain(|(_, args), _| !args.contains(&VKey::V(v)));
                    mem_avail.retain(|(_, ek), _| *ek != VKey::V(v));
                    let known = match op.args[0] {
                        Value::Const(c) => Some(Value::Const(mask_to_width(c, width))),
                        t @ Value::Temp(_) if width >= 32 => Some(t),
                        _ => None,
                    };
                    // A store of the value the register already holds is a
                    // no-op.
                    if known.is_some() && var_map.get(&v) == known.as_ref() {
                        fold.applications += 1;
                        fold.ops_removed += 1;
                        changed = true;
                        continue 'ops;
                    }
                    match known {
                        Some(k) => {
                            var_map.insert(v, k);
                        }
                        None => {
                            var_map.remove(&v);
                        }
                    }
                    new_ops.push(op);
                }
                OpKind::Recv { var } => {
                    let v = var.0;
                    var_map.remove(&v);
                    cse.retain(|(_, args), _| !args.contains(&VKey::V(v)));
                    // Pacing-window boundary: nothing held survives it.
                    mem_avail.clear();
                    new_ops.push(op);
                }
                OpKind::Send => new_ops.push(op),
            }
        }
        block.ops = new_ops;

        // The terminator executes after every op; the final maps apply.
        let subst_term = |val: &mut Value| {
            let s = match *val {
                Value::Temp(t) => temp_map.get(&t.0).copied(),
                Value::Var(v) => var_map.get(&v.0).copied(),
                Value::Const(_) => None,
            };
            match s {
                Some(s) if s != *val => {
                    *val = s;
                    true
                }
                _ => false,
            }
        };
        match &mut block.term {
            Terminator::Branch { cond, .. } => changed |= subst_term(cond),
            Terminator::Switch { selector, .. } => changed |= subst_term(selector),
            _ => {}
        }
    }
    (changed, guarded_forwards)
}
