//! Dead-operation elimination.
//!
//! Removes pure ops whose results are never used, unguarded memory reads
//! with dead results, and stores to register variables no op or terminator
//! ever reads. It never touches the synchronization-visible surface:
//! guarded memory reads (each is a consume event counted by
//! [`crate::fsm::Fsm::dependencies`]), memory writes, `recv`, `send` — and
//! never division or remainder, whose rejection by codegen must stay
//! level-independent.

use super::PassStats;
use crate::ir::{DfThread, OpKind, Terminator, Value};
use memsync_hic::ast::BinaryOp;
use std::collections::BTreeSet;

/// Runs dead-op elimination to a fixpoint. Returns whether anything was
/// removed.
pub(super) fn run(df: &mut DfThread, stats: &mut PassStats) -> bool {
    let mut changed = false;
    loop {
        let mut temp_used: BTreeSet<u32> = BTreeSet::new();
        let mut var_read: BTreeSet<u32> = BTreeSet::new();
        fn mark(temp_used: &mut BTreeSet<u32>, var_read: &mut BTreeSet<u32>, v: &Value) {
            match v {
                Value::Temp(t) => {
                    temp_used.insert(t.0);
                }
                Value::Var(id) => {
                    var_read.insert(id.0);
                }
                Value::Const(_) => {}
            }
        }
        for b in &df.blocks {
            for op in &b.ops {
                for a in &op.args {
                    mark(&mut temp_used, &mut var_read, a);
                }
                // A memory read names its variable outside the args.
                if let OpKind::MemRead { var, .. } = &op.kind {
                    var_read.insert(var.0);
                }
            }
            match &b.term {
                Terminator::Branch { cond, .. } => mark(&mut temp_used, &mut var_read, cond),
                Terminator::Switch { selector, .. } => {
                    mark(&mut temp_used, &mut var_read, selector)
                }
                _ => {}
            }
        }

        let mut removed = 0usize;
        for b in &mut df.blocks {
            b.ops.retain(|op| {
                let result_dead = op.result.is_none_or(|t| !temp_used.contains(&t.0));
                let keep = match &op.kind {
                    OpKind::Binary(BinaryOp::Div | BinaryOp::Rem) => true,
                    OpKind::Copy
                    | OpKind::Unary(_)
                    | OpKind::Binary(_)
                    | OpKind::Call(_)
                    | OpKind::Select => !result_dead,
                    OpKind::MemRead { dep, .. } => dep.is_some() || !result_dead,
                    OpKind::StoreVar { var } => var_read.contains(&var.0),
                    OpKind::MemWrite { .. } | OpKind::Recv { .. } | OpKind::Send => true,
                };
                if !keep {
                    removed += 1;
                }
                keep
            });
        }
        if removed == 0 {
            break;
        }
        stats.applications += removed;
        stats.ops_removed += removed;
        changed = true;
    }
    changed
}
