//! Three-address dataflow IR used between the hic AST and the FSM.
//!
//! Each hic statement is flattened into [`DfOp`]s over [`Value`]s; basic
//! blocks carry a terminator describing control flow. Memory residency of
//! variables is decided by the caller (the allocation step of
//! `memsync-core`) and passed in as a [`MemBinding`].

use memsync_hic::ast::{BinaryOp, UnaryOp};
use std::collections::BTreeMap;
use std::fmt;

/// A virtual register holding an intermediate value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Temp(pub u32);

impl fmt::Display for Temp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// Index of a declared thread variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

/// An operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Value {
    /// An intermediate.
    Temp(Temp),
    /// A declared variable (register- or memory-resident).
    Var(VarId),
    /// An integer literal.
    Const(i64),
}

/// Operation kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpKind {
    /// Copy of a single operand.
    Copy,
    /// Unary operator.
    Unary(UnaryOp),
    /// Binary operator.
    Binary(BinaryOp),
    /// Call of a user combinational function (stand-in network; see
    /// [`crate::eval::call_function`]).
    Call(String),
    /// Conditional select (a datapath mux): args are `[cond, then_value,
    /// else_value]`; yields `then_value` when `cond` is non-zero. Produced
    /// by the optimizer's if-conversion — no hic construct lowers to it
    /// directly.
    Select,
    /// Read of a memory-resident variable; arg 0 is the element index
    /// (Const 0 for scalars). Carries the dependency id when guarded.
    MemRead {
        /// Variable being read.
        var: VarId,
        /// Guarding dependency, if this is a consumer read.
        dep: Option<String>,
    },
    /// Write of a memory-resident variable; arg 0 is the element index,
    /// arg 1 the value. Carries the dependency id when this is the
    /// producer write.
    MemWrite {
        /// Variable being written.
        var: VarId,
        /// Guarding dependency, if this is a producer write.
        dep: Option<String>,
    },
    /// Store to a register-resident variable; arg 0 is the value.
    StoreVar {
        /// Destination variable.
        var: VarId,
    },
    /// Receive one message from the network interface into a variable.
    Recv {
        /// Destination variable.
        var: VarId,
    },
    /// Transmit one message; arg 0 is the value.
    Send,
}

impl OpKind {
    /// Whether the op accesses the shared memory subsystem.
    pub fn is_memory(&self) -> bool {
        matches!(self, OpKind::MemRead { .. } | OpKind::MemWrite { .. })
    }

    /// Dependency id guarding the op, if any.
    pub fn dep(&self) -> Option<&str> {
        match self {
            OpKind::MemRead { dep, .. } | OpKind::MemWrite { dep, .. } => dep.as_deref(),
            _ => None,
        }
    }
}

/// One three-address operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DfOp {
    /// The operation.
    pub kind: OpKind,
    /// Operands.
    pub args: Vec<Value>,
    /// Result temp, for value-producing ops.
    pub result: Option<Temp>,
}

/// Basic-block terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(usize),
    /// Two-way branch on a value (non-zero = then).
    Branch {
        /// Condition value.
        cond: Value,
        /// Block when non-zero.
        then_block: usize,
        /// Block when zero.
        else_block: usize,
    },
    /// Multi-way dispatch (the `case` construct).
    Switch {
        /// Selector value.
        selector: Value,
        /// `(match value, target block)` arms.
        arms: Vec<(i64, usize)>,
        /// Default target.
        default: usize,
    },
    /// Thread iteration complete; restart at the entry block
    /// (run-to-completion per message).
    Restart,
}

impl Terminator {
    /// Successor block indices.
    pub fn successors(&self) -> Vec<usize> {
        match self {
            Terminator::Jump(t) => vec![*t],
            Terminator::Branch {
                then_block,
                else_block,
                ..
            } => vec![*then_block, *else_block],
            Terminator::Switch { arms, default, .. } => {
                let mut s: Vec<usize> = arms.iter().map(|(_, t)| *t).collect();
                s.push(*default);
                s
            }
            Terminator::Restart => vec![],
        }
    }
}

/// A basic block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Straight-line operations.
    pub ops: Vec<DfOp>,
    /// Control transfer at the end.
    pub term: Terminator,
}

/// Where a variable lives, and through which wrapper port its accesses go.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Residency {
    /// Fabric register (flip-flops inside the thread).
    Register,
    /// BRAM-resident, accessed through a wrapper port.
    Memory {
        /// Port class used for the access (see
        /// [`PortClass`]).
        port: PortClass,
        /// Base address within the allocated BRAM.
        base_addr: u32,
        /// Dependency guarding reads of this variable (consumer side).
        read_dep: Option<String>,
        /// Dependency guarding writes of this variable (producer side).
        write_dep: Option<String>,
    },
}

/// The four wrapper port classes of §3.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PortClass {
    /// Port A: single-cycle non-dependent accesses, direct to the BRAM.
    A,
    /// Port B: background accesses, lowest priority.
    B,
    /// Port C: guarded consumer reads (arbitrated).
    C,
    /// Port D: producer writes (highest priority).
    D,
}

impl fmt::Display for PortClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            PortClass::A => 'A',
            PortClass::B => 'B',
            PortClass::C => 'C',
            PortClass::D => 'D',
        };
        write!(f, "{c}")
    }
}

/// Memory residency decisions for one thread, keyed by variable name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemBinding {
    /// Residency per variable; unlisted variables default to registers.
    pub residency: BTreeMap<String, Residency>,
}

impl MemBinding {
    /// Creates an empty (all-register) binding.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks a variable memory-resident with no guarding dependency.
    pub fn place_in_memory(&mut self, var: impl Into<String>, port: PortClass, base_addr: u32) {
        self.residency.insert(
            var.into(),
            Residency::Memory {
                port,
                base_addr,
                read_dep: None,
                write_dep: None,
            },
        );
    }

    /// Marks a variable memory-resident with guarded access.
    pub fn place_guarded(
        &mut self,
        var: impl Into<String>,
        port: PortClass,
        base_addr: u32,
        read_dep: Option<String>,
        write_dep: Option<String>,
    ) {
        self.residency.insert(
            var.into(),
            Residency::Memory {
                port,
                base_addr,
                read_dep,
                write_dep,
            },
        );
    }

    /// Residency of a variable (register if unlisted).
    pub fn residency_of(&self, var: &str) -> Residency {
        self.residency
            .get(var)
            .cloned()
            .unwrap_or(Residency::Register)
    }

    /// Whether a variable is memory-resident.
    pub fn in_memory(&self, var: &str) -> bool {
        matches!(self.residency_of(var), Residency::Memory { .. })
    }
}

/// The dataflow function of one thread: declared variables plus blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DfThread {
    /// Thread name.
    pub name: String,
    /// Variable names by [`VarId`] index.
    pub vars: Vec<String>,
    /// Variable widths by [`VarId`] index.
    pub widths: Vec<u32>,
    /// Basic blocks; block 0 is the entry.
    pub blocks: Vec<Block>,
    /// Memory residency used during lowering.
    pub binding: MemBinding,
}

impl DfThread {
    /// Looks up a variable id by name.
    pub fn var_id(&self, name: &str) -> Option<VarId> {
        self.vars
            .iter()
            .position(|v| v == name)
            .map(|i| VarId(i as u32))
    }

    /// Name of a variable.
    pub fn var_name(&self, id: VarId) -> &str {
        &self.vars[id.0 as usize]
    }

    /// Total number of ops across all blocks.
    pub fn op_count(&self) -> usize {
        self.blocks.iter().map(|b| b.ops.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminator_successors() {
        assert_eq!(Terminator::Jump(3).successors(), vec![3]);
        assert_eq!(
            Terminator::Branch {
                cond: Value::Const(1),
                then_block: 1,
                else_block: 2
            }
            .successors(),
            vec![1, 2]
        );
        let sw = Terminator::Switch {
            selector: Value::Const(0),
            arms: vec![(1, 4), (2, 5)],
            default: 6,
        };
        assert_eq!(sw.successors(), vec![4, 5, 6]);
        assert!(Terminator::Restart.successors().is_empty());
    }

    #[test]
    fn binding_defaults_to_register() {
        let mut b = MemBinding::new();
        assert_eq!(b.residency_of("x"), Residency::Register);
        b.place_in_memory("x", PortClass::C, 16);
        assert!(b.in_memory("x"));
        assert_eq!(
            b.residency_of("x"),
            Residency::Memory {
                port: PortClass::C,
                base_addr: 16,
                read_dep: None,
                write_dep: None
            }
        );
    }

    #[test]
    fn memory_op_classification() {
        let read = OpKind::MemRead {
            var: VarId(0),
            dep: Some("mt1".into()),
        };
        assert!(read.is_memory());
        assert_eq!(read.dep(), Some("mt1"));
        assert!(!OpKind::Copy.is_memory());
    }
}
