//! # memsync-synth — behavioral synthesis of hic threads
//!
//! Transforms hic threads into cycle-accurate finite state machines, per §3
//! of the paper: "a series of synthesis steps are applied that transform the
//! hic threads into state machines … cycle accurate and we have knowledge of
//! the particular state where memory accesses happen".
//!
//! * [`ir`] — three-address dataflow form and the [`ir::MemBinding`] that
//!   records which variables live in BRAM behind which wrapper port;
//! * [`cdfg`] — AST lowering;
//! * [`schedule`] — ASAP/ALAP bounds and resource-constrained list
//!   scheduling;
//! * [`binding`] — left-edge register allocation and FU counting;
//! * [`fsm`] — the executable FSM the simulator runs;
//! * [`codegen`] — FSM → RTL netlist with wrapper-port interfaces;
//! * [`eval`] — operator semantics shared with the simulator.
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use memsync_synth::{fsm::Fsm, ir::MemBinding, schedule::Constraints};
//!
//! let program = memsync_hic::parser::parse(
//!     "thread t() { int a, b; a = 1; b = a + 2; }",
//! )?;
//! let fsm = Fsm::synthesize(
//!     &program,
//!     &program.threads[0],
//!     &MemBinding::new(),
//!     Constraints::default(),
//! )?;
//! let module = memsync_synth::codegen::generate(&fsm)?;
//! assert!(module.is_sequential());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod binding;
pub mod cdfg;
pub mod codegen;
pub mod eval;
pub mod fsm;
pub mod ir;
pub mod schedule;

pub use fsm::{Fsm, FsmState, StateNext};
pub use ir::{MemBinding, PortClass, Residency};
pub use schedule::Constraints;
