//! # memsync-synth — behavioral synthesis of hic threads
//!
//! Transforms hic threads into cycle-accurate finite state machines, per §3
//! of the paper: "a series of synthesis steps are applied that transform the
//! hic threads into state machines … cycle accurate and we have knowledge of
//! the particular state where memory accesses happen".
//!
//! * [`ir`] — three-address dataflow form and the [`ir::MemBinding`] that
//!   records which variables live in BRAM behind which wrapper port;
//! * [`cdfg`] — AST lowering;
//! * [`opt`] — the optimizing middle-end (folding, propagation, CSE, DCE,
//!   guarded-read forwarding, CFG simplification) behind [`opt::OptLevel`];
//! * [`schedule`] — ASAP/ALAP bounds and resource-constrained list
//!   scheduling;
//! * [`binding`] — left-edge register allocation and FU counting;
//! * [`fsm`] — the executable FSM the simulator runs;
//! * [`codegen`] — FSM → RTL netlist with wrapper-port interfaces;
//! * [`eval`] — operator semantics shared with the simulator;
//! * [`synthesis`] — the [`Synthesis`] builder tying the pipeline together.
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use memsync_synth::{OptLevel, Synthesis};
//!
//! let (program, _analysis) = memsync_hic::compile(
//!     "thread t() { int a, b; a = 1; b = a + 2; send b; }",
//! )?;
//! let result = Synthesis::of(&program).opt(OptLevel::O1).run()?;
//! let module = memsync_synth::codegen::generate(&result.fsm)?;
//! assert!(module.is_sequential());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod binding;
pub mod cdfg;
pub mod codegen;
pub mod eval;
pub mod fsm;
pub mod ir;
pub mod opt;
pub mod schedule;
pub mod synthesis;

pub use fsm::{Fsm, FsmState, StateNext};
pub use ir::{MemBinding, PortClass, Residency};
pub use opt::{OptLevel, PassReport, PassStats};
pub use schedule::Constraints;
pub use synthesis::{Synthesis, SynthesisResult};
