//! Differential validation of the forwarding backends.
//!
//! Two layers:
//!
//! * backend-level: the cycle-accurate [`SimBackend`] under **both**
//!   memory organizations and the compiled [`FastBackend`] must emit
//!   byte-identical egress frame streams for the same descriptor stream;
//! * end-to-end: a server running the [`DifferentialBackend`] (sim
//!   reference + fast candidate, cross-checked frame by frame inside
//!   every shard activation) serves 100k packets over 8 connections with
//!   verify on — zero mismatches, zero lost updates, zero shard restarts
//!   (a divergence panics the shard, so restarts staying at zero *is* the
//!   byte-equality assertion), and totals matching the FIB oracle.

use memsync_core::OrganizationKind;
use memsync_netapp::{Ipv4Packet, Workload};
use memsync_serve::backend::{FastBackend, ForwardingBackend, SimBackend};
use memsync_serve::client::BatchResult;
use memsync_serve::{BackendKind, Client, ServeConfig, Server, SubmitOptions};
use std::time::Duration;

const ROUTES: usize = 16;
const EGRESS: usize = 2;

/// Runs `descriptors` through a fresh backend in `chunk`-sized batches,
/// returning the concatenated per-egress frame streams.
fn run_backend(
    mut b: Box<dyn ForwardingBackend>,
    descriptors: &[u32],
    chunk: usize,
) -> Vec<Vec<u32>> {
    let mut out = vec![Vec::new(); EGRESS];
    for batch in descriptors.chunks(chunk) {
        b.submit_batch(batch);
        for (i, f) in b.drain_egress().iter().enumerate() {
            out[i].extend(f);
        }
    }
    assert_eq!(b.lost_updates(), 0, "{:?}: no unpaced overwrites", b.kind());
    out
}

#[test]
fn all_backends_emit_byte_identical_egress_streams() {
    let w = Workload::generate(2024, 600, ROUTES);
    let descriptors: Vec<u32> = w.packets.iter().map(Ipv4Packet::descriptor).collect();

    let arb = run_backend(
        Box::new(SimBackend::new(EGRESS, OrganizationKind::Arbitrated)),
        &descriptors,
        48,
    );
    let event = run_backend(
        Box::new(SimBackend::new(EGRESS, OrganizationKind::EventDriven)),
        &descriptors,
        48,
    );
    let fast = run_backend(Box::new(FastBackend::new(EGRESS)), &descriptors, 48);

    assert_eq!(arb, event, "organizations agree frame for frame");
    assert_eq!(
        arb, fast,
        "fast path agrees with the cycle-accurate reference"
    );
    assert_eq!(arb.len(), EGRESS);
    assert_eq!(arb[0].len(), descriptors.len(), "one frame per descriptor");
}

#[test]
fn differential_e2e_100k_packets_over_8_connections() {
    const CONNS: usize = 8;
    const PER_CONN: usize = 12_500; // 8 x 12,500 = 100k packets
    const BATCH: usize = 250;

    let config = ServeConfig {
        shards: 4,
        egress: EGRESS,
        routes: ROUTES,
        backend: BackendKind::Differential,
        batch_max: BATCH,
        job_timeout: Duration::from_secs(120),
        ..ServeConfig::default()
    };
    let server = Server::start("127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr();

    let handles: Vec<_> = (0..CONNS)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = Client::builder()
                    .retries(100_000)
                    .connect(addr)
                    .expect("connect");
                assert_eq!(client.server().backend, BackendKind::Differential);
                let w = Workload::generate(9000 + c as u64, PER_CONN, ROUTES);
                let (fwd, drop) = w.reference_forward();
                let mut totals = BatchResult::default();
                let verify = SubmitOptions::new().verify(true);
                for chunk in w.packets.chunks(BATCH) {
                    let r = client.submit(chunk, verify).expect("submit");
                    totals.forwarded += r.forwarded;
                    totals.dropped += r.dropped;
                    totals.mismatches += r.mismatches;
                }
                assert_eq!(totals.forwarded as usize, fwd, "conn {c}: oracle totals");
                assert_eq!(totals.dropped as usize, drop, "conn {c}: oracle totals");
                assert_eq!(totals.mismatches, 0, "conn {c}: zero verify mismatches");
                u64::from(totals.forwarded) + u64::from(totals.dropped)
            })
        })
        .collect();
    let served: u64 = handles
        .into_iter()
        .map(|h| h.join().expect("connection thread"))
        .sum();
    assert_eq!(
        served as usize,
        CONNS * PER_CONN,
        "every packet accounted for"
    );

    let mut client = Client::connect(addr).expect("connect for stats");
    let snap = client.stats().expect("stats");
    assert_eq!(snap.packets as usize, CONNS * PER_CONN);
    assert_eq!(snap.mismatches, 0, "model agreement across 100k packets");
    assert_eq!(snap.lost_updates, 0, "no unpaced overwrites");
    // A reference/candidate divergence panics the shard mid-activation;
    // the supervisor would restart it and this counter would rise. Zero
    // restarts over 100k packets is the frame-for-frame equality check.
    assert_eq!(snap.shard_restarts, 0, "no differential divergence");
    assert_eq!(snap.errors, 0, "no submit failed after acceptance");
    client.drain().expect("drain");
    client.shutdown().expect("shutdown");
    server.wait();
}
