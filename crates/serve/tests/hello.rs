//! Protocol-v2 version negotiation: both compatibility directions must
//! degrade into clean, typed rejections — never a frame desync.
//!
//! * old client → new server: the first frame is not a `Hello`, so the
//!   server answers with `RSP_ERROR` (a frame type that has existed since
//!   v1, so the old client decodes it) and closes at a frame boundary;
//! * new client → old server: the v1 server answers the unknown `Hello`
//!   request with its error frame, which the client maps onto a typed
//!   [`ClientError::Unsupported`].

use memsync_serve::frame::{read_frame, write_frame};
use memsync_serve::{
    Client, ClientError, Request, Response, ServeConfig, Server, SubmitOptions, PROTOCOL_VERSION,
};
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

fn test_config() -> ServeConfig {
    ServeConfig {
        shards: 2,
        egress: 2,
        routes: 16,
        ..ServeConfig::default()
    }
}

/// Raw-stream helper: one request frame out, one response frame back.
fn raw_roundtrip(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    req: &Request,
) -> Option<Response> {
    write_frame(stream, &req.encode()).expect("write");
    read_frame(reader)
        .expect("read")
        .map(|p| Response::decode(&p).expect("decode"))
}

#[test]
fn handshake_settles_version_and_exposes_capabilities() {
    let server = Server::start("127.0.0.1:0", test_config()).expect("bind");
    let client = Client::connect(server.local_addr()).expect("connect");
    let h = client.server();
    assert_eq!(h.version, PROTOCOL_VERSION);
    assert_eq!(h.shards, 2);
    assert_eq!(h.egress, 2);
    assert_eq!(h.routes, 16);
    assert_eq!(
        h.capabilities,
        memsync_serve::backend::capability_bits()
            | memsync_serve::frame::CAP_TRACING
            | memsync_serve::frame::CAP_CONTROL,
        "this build supports all three backends, request tracing, and \
         the live control plane"
    );
    assert!(
        h.capabilities & h.backend.cap_bit() != 0,
        "serving backend is a supported one"
    );
    assert!(client.supports_tracing(), "tracing capability surfaced");
    assert!(client.supports_control(), "control capability surfaced");
}

#[test]
fn span_tagged_submit_against_a_server_without_the_capability_is_refused_locally() {
    // Simulates a v2 server one build older than this client: same
    // protocol version, but no CAP_TRACING in its hello. A span-tagged
    // submit must fail client-side with a typed Unsupported — nothing is
    // sent, so the old server never sees a flag byte it cannot decode.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap();
    let old_server = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("accept");
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut served = 0usize;
        while let Some(payload) = read_frame(&mut reader).expect("read") {
            let rsp = match Request::decode(&payload).expect("decode") {
                Request::Hello { .. } => {
                    Response::Hello(memsync_serve::ServerHello {
                        version: PROTOCOL_VERSION,
                        // Backends only — no CAP_TRACING.
                        capabilities: memsync_serve::backend::capability_bits(),
                        backend: memsync_serve::BackendKind::Sim,
                        shards: 2,
                        egress: 2,
                        routes: 16,
                    })
                }
                other => panic!("nothing but hello should arrive, got {other:?}"),
            };
            write_frame(&mut stream, &rsp.encode()).expect("write");
            served += 1;
        }
        served
    });

    let mut client = Client::connect(addr).expect("hello succeeds without tracing");
    assert!(!client.supports_tracing());
    let w = memsync_netapp::Workload::generate(2, 4, 16);
    let err = client
        .submit(&w.packets, SubmitOptions::new().span(42))
        .expect_err("span-tagged submit must be refused locally");
    match err {
        ClientError::Unsupported(msg) => {
            assert!(msg.contains("tracing"), "names the capability: {msg}");
        }
        other => panic!("expected Unsupported, got {other:?}"),
    }
    drop(client);
    assert_eq!(
        old_server.join().unwrap(),
        1,
        "only the hello reached the wire"
    );
}

#[test]
fn submit_before_hello_is_refused_with_a_v1_decodable_error() {
    // Simulates a v1 client: no handshake, straight to business.
    let server = Server::start("127.0.0.1:0", test_config()).expect("bind");
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    let w = memsync_netapp::Workload::generate(1, 4, 16);
    let rsp = raw_roundtrip(
        &mut stream,
        &mut reader,
        &Request::Submit {
            packets: w.packets,
            options: SubmitOptions::new(),
        },
    )
    .expect("a response frame, not a slammed connection");
    match rsp {
        // RSP_ERROR is a v1 frame type: the old client can decode this.
        Response::Error(msg) => {
            assert!(msg.contains("hello"), "error names the fix: {msg}");
            assert!(msg.contains("submit"), "error names the offense: {msg}");
        }
        other => panic!("expected Error, got {other:?}"),
    }
    // The server closes cleanly at a frame boundary — the next read is a
    // clean EOF (Ok(None)), not a desynced byte stream or a reset.
    assert!(
        read_frame(&mut reader).expect("clean close").is_none(),
        "connection closed at a frame boundary after the rejection"
    );
}

#[test]
fn stats_and_kill_before_hello_are_also_refused() {
    let server = Server::start("127.0.0.1:0", test_config()).expect("bind");
    for req in [Request::Stats, Request::Kill(0), Request::Drain] {
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let rsp = raw_roundtrip(&mut stream, &mut reader, &req).expect("response");
        assert!(
            matches!(rsp, Response::Error(_)),
            "{req:?} before hello must be refused"
        );
    }
}

#[test]
fn version_range_outside_the_server_is_rejected_with_both_sides_named() {
    let server = Server::start("127.0.0.1:0", test_config()).expect("bind");
    for (min, max) in [(0, 1), (4, 9), (0, 0)] {
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let rsp = raw_roundtrip(
            &mut stream,
            &mut reader,
            &Request::Hello {
                min_version: min,
                max_version: max,
            },
        )
        .expect("response");
        match rsp {
            Response::Error(msg) => {
                assert!(
                    msg.contains(&format!("{min}..={max}")),
                    "names the client range: {msg}"
                );
                assert!(
                    msg.contains(&PROTOCOL_VERSION.to_string()),
                    "names the server version: {msg}"
                );
            }
            other => panic!("expected Error for {min}..={max}, got {other:?}"),
        }
        assert!(
            read_frame(&mut reader).expect("clean close").is_none(),
            "closed at a frame boundary"
        );
    }
}

#[test]
fn repeated_hello_is_idempotent() {
    let server = Server::start("127.0.0.1:0", test_config()).expect("bind");
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let hello = Request::Hello {
        min_version: PROTOCOL_VERSION,
        max_version: PROTOCOL_VERSION,
    };
    let first = raw_roundtrip(&mut stream, &mut reader, &hello).expect("first hello");
    let second = raw_roundtrip(&mut stream, &mut reader, &hello).expect("second hello");
    assert_eq!(first, second, "hello re-states the same capability block");
    // And the connection still serves.
    let rsp = raw_roundtrip(&mut stream, &mut reader, &Request::Stats).expect("stats");
    assert!(matches!(rsp, Response::Stats(_)));
}

#[test]
fn v2_client_settles_v2_and_control_frames_are_refused_on_that_connection() {
    // Backward compat: a v2 client (max_version 2) against this v3
    // server settles v2, keeps full data-plane service, and the server
    // refuses v3 control frames on the connection with a typed error —
    // never a desync, even though the capability block advertises
    // CAP_CONTROL server-wide.
    let server = Server::start("127.0.0.1:0", test_config()).expect("bind");
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let rsp = raw_roundtrip(
        &mut stream,
        &mut reader,
        &Request::Hello {
            min_version: 2,
            max_version: 2,
        },
    )
    .expect("hello response");
    match rsp {
        Response::Hello(h) => {
            assert_eq!(h.version, 2, "settles the client's maximum, not ours");
            assert!(
                h.capabilities & memsync_serve::frame::CAP_CONTROL != 0,
                "capability block still advertises the server-wide feature"
            );
        }
        other => panic!("expected Hello, got {other:?}"),
    }
    // Data plane still works on the settled-v2 connection.
    let w = memsync_netapp::Workload::generate(1, 4, 16);
    let rsp = raw_roundtrip(
        &mut stream,
        &mut reader,
        &Request::Submit {
            packets: w.packets,
            options: SubmitOptions::new(),
        },
    )
    .expect("submit response");
    assert!(matches!(rsp, Response::Batch { .. }), "got {rsp:?}");
    // Control frames do not.
    let rsp = raw_roundtrip(
        &mut stream,
        &mut reader,
        &Request::RouteAdd(vec![memsync_netapp::fib::Route {
            prefix: 0x0a00_0000,
            len: 8,
            next_hop: 9,
        }]),
    )
    .expect("control response");
    match rsp {
        Response::Error(msg) => {
            assert!(msg.contains("v3"), "names the required version: {msg}");
            assert!(msg.contains("v2"), "names the settled version: {msg}");
        }
        other => panic!("expected Error for control on v2, got {other:?}"),
    }
    // The refusal is not a close: the connection keeps serving.
    let rsp = raw_roundtrip(&mut stream, &mut reader, &Request::Stats).expect("stats");
    assert!(matches!(rsp, Response::Stats(_)));
}

#[test]
fn route_mutations_round_trip_on_a_settled_v3_connection() {
    let server = Server::start("127.0.0.1:0", test_config()).expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    assert!(client.supports_control());
    let up = client
        .route_add(&[memsync_netapp::fib::Route {
            prefix: 0x0a00_0000,
            len: 8,
            next_hop: 400,
        }])
        .expect("route add");
    assert_eq!(up.generation, 2, "first mutation publishes generation 2");
    // The synthetic boot table is a default route plus 16 entries.
    assert_eq!(up.routes, 18, "17 boot routes + 1");
    assert_eq!(up.applied, 1);
    let up = client
        .route_withdraw(&[(0x0a00_0000, 8), (0x0b00_0000, 8)])
        .expect("route withdraw");
    assert_eq!(up.routes, 17, "back to the boot table size");
    assert_eq!(up.applied, 1, "absent prefix does not count");
    let up = client.swap_default(77).expect("swap default");
    assert_eq!(up.applied, 1);
    // The stats fib section audits the swaps and the retirement barrier.
    let snap = client.stats().expect("stats");
    let fib = snap.fib.expect("fib section present");
    assert_eq!(fib.generation, 4, "three mutations after boot");
    assert_eq!(fib.swaps, 3);
    assert_eq!(
        fib.retired,
        fib.generation - 1,
        "every pre-swap generation provably drained"
    );
    assert_eq!(fib.swap_latency_us.expect("measured").count, 3);
}

#[test]
fn new_client_against_an_old_server_maps_to_a_typed_unsupported_error() {
    // Simulates a v1 server: accepts one connection, answers every frame
    // (including the Hello it has never heard of) with its v1 error.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap();
    let old_server = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("accept");
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        if read_frame(&mut reader).expect("read").is_some() {
            // v1 decode path: unknown request type 0x06.
            write_frame(
                &mut stream,
                &Response::Error("malformed frame: unknown request 0x06".into()).encode(),
            )
            .expect("write error");
        }
    });

    match Client::connect(addr) {
        Err(ClientError::Unsupported(msg)) => {
            assert!(
                msg.contains("unknown request"),
                "carries the v1 error: {msg}"
            );
        }
        Ok(_) => panic!("connect must not succeed against a v1 server"),
        Err(other) => panic!("expected Unsupported, got {other}"),
    }
    old_server.join().unwrap();
}

#[test]
fn client_side_kill_validation_uses_the_negotiated_shard_count() {
    let server = Server::start("127.0.0.1:0", test_config()).expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    assert_eq!(client.server().shards, 2);
    // In range: accepted by the server.
    client.kill_shard(1).expect("shard 1 exists");
    // Out of range: refused locally, typed, nothing sent.
    match client.kill_shard(2) {
        Err(ClientError::ShardOutOfRange {
            shard: 2,
            shards: 2,
        }) => {}
        other => panic!("expected ShardOutOfRange, got {other:?}"),
    }
}
