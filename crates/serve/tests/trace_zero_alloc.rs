//! Proves the tracing plane's hard cost constraint: with tracing disabled
//! (the default), the tracing machinery on the serve hot path performs
//! zero heap allocations. Every instrumentation site gates on one bool —
//! `ServeTracer::enabled()` — and the disabled branch must not touch the
//! heap: no `PendingSpan`, no ring locks, no registry writes, no sink.
//!
//! Lives in its own integration-test binary because the counting
//! `#[global_allocator]` is process-wide.

use memsync_serve::tracing::{PendingSpan, ServeTracer, StageTimings, TracingConfig};
use std::alloc::{GlobalAlloc, Layout, System as SystemAlloc};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { SystemAlloc.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { SystemAlloc.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { SystemAlloc.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { SystemAlloc.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn disabled_tracer_path_allocates_nothing() {
    let tracer = ServeTracer::new(TracingConfig::default(), 4).expect("build tracer");
    assert!(!tracer.enabled());
    // The connection loop's per-request state when tracing is off: an
    // empty pending span (`Vec::new` is allocation-free) that `finish`
    // early-returns on. Exercised exactly as the server does it.
    let pending = PendingSpan {
        span_id: 1,
        client_assigned: false,
        decode_ns: 0,
        timings: Vec::new(),
    };

    // Warmup (nothing should allocate even here, but keep the windows
    // honest the same way the simulator's zero-alloc test does).
    for _ in 0..1_000 {
        assert!(!tracer.enabled());
        tracer.finish(&pending, 0);
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..100_000 {
        // The two calls the hot path makes per request when disabled.
        if tracer.enabled() {
            unreachable!("tracing is off");
        }
        tracer.finish(&pending, 0);
    }
    // A disabled tracer also swallows real timings (e.g. a stale config
    // race) without touching rings or the sink.
    tracer.finish(
        &PendingSpan {
            span_id: 2,
            client_assigned: true,
            decode_ns: 10,
            timings: vec![StageTimings::default()],
        },
        5,
    );
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        // The one deliberate `vec!` above is the only allocation.
        1,
        "the disabled tracing path must not touch the heap"
    );
    assert_eq!(tracer.spans_seen(), 0);
    assert_eq!(tracer.spans_exported(), 0);
    tracer.flush();
}
