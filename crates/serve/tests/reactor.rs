//! End-to-end tests for the epoll reactor frontend: a real server on
//! 127.0.0.1 with `frontend: Reactor`, real TCP clients, the full frame
//! protocol. Everything the blocking frontend serves must behave
//! identically here — plus the reactor-only backpressure machinery
//! (egress high-water read pausing, deferred submits, conn-cap
//! rejection) that these tests pin.
#![cfg(unix)]

use memsync_netapp::Workload;
use memsync_serve::client::BatchResult;
use memsync_serve::reactor::{EGRESS_HIGH_WATER, EGRESS_LOW_WATER};
use memsync_serve::{
    frame, BackendKind, Client, FrontendKind, Request, Response, ServeConfig, Server,
    SubmitOptions, PROTOCOL_VERSION,
};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// A small, fast reactor config: 2 shards of the egress-2 app on one
/// reactor thread (single-threaded reactors exercise the same code and
/// keep CI machines with one core honest).
fn reactor_config() -> ServeConfig {
    ServeConfig {
        shards: 2,
        egress: 2,
        routes: 16,
        job_timeout: Duration::from_secs(30),
        frontend: FrontendKind::Reactor,
        reactor_threads: 1,
        ..ServeConfig::default()
    }
}

fn connect(addr: SocketAddr) -> Client {
    Client::builder()
        .retries(10_000)
        .connect(addr)
        .expect("connect")
}

/// Opens a raw stream and settles the protocol handshake, returning the
/// write half and a buffered read half — for tests that need to pipeline
/// frames or stop reading in ways `Client` won't.
fn raw_handshake(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    frame::write_frame(
        &mut writer,
        &Request::Hello {
            min_version: PROTOCOL_VERSION,
            max_version: PROTOCOL_VERSION,
        }
        .encode(),
    )
    .expect("hello");
    let rsp = frame::read_frame(&mut reader)
        .expect("read hello response")
        .expect("hello response frame");
    assert!(matches!(
        Response::decode(&rsp).expect("decode hello"),
        Response::Hello(_)
    ));
    (writer, reader)
}

#[test]
fn reactor_verify_run_matches_the_oracle_and_drains_clean() {
    let server = Server::start("127.0.0.1:0", reactor_config()).expect("bind");
    let addr = server.local_addr();

    let w = Workload::generate(42, 400, 16);
    let (fwd, drop) = w.reference_forward();
    let mut client = connect(addr);
    assert_eq!(client.server().version, PROTOCOL_VERSION);
    assert_eq!(client.server().shards, 2);

    let verify = SubmitOptions::new().verify(true);
    let mut totals = BatchResult::default();
    for chunk in w.packets.chunks(50) {
        let r = client.submit(chunk, verify).expect("submit");
        totals.forwarded += r.forwarded;
        totals.dropped += r.dropped;
        totals.mismatches += r.mismatches;
    }
    assert_eq!(totals.forwarded as usize, fwd);
    assert_eq!(totals.dropped as usize, drop);
    assert_eq!(totals.mismatches, 0, "reactor path matches the oracle");

    let snap = client.stats().expect("stats");
    assert_eq!(snap.packets, 400);
    assert_eq!(snap.lost_updates, 0);
    assert_eq!(snap.shard_restarts, 0);
    let fe = snap.frontend.expect("frontend section present");
    assert_eq!(fe.kind, "reactor");
    assert!(fe.conns_open >= 1, "this connection is counted");
    assert!(fe.conns_peak >= fe.conns_open);

    client.drain().expect("drain");
    client.shutdown().expect("shutdown");
    server.wait();
}

#[test]
fn reactor_saturated_shard_defers_submits_instead_of_busy_storms() {
    // One throttled shard behind a 2-deep queue, hammered by 8 concurrent
    // closed-loop connections. The blocking frontend answers Busy and
    // makes clients retry; the reactor instead parks the submit
    // (Work::Deferred) and retries it internally, so clients see zero
    // Busy responses and zero retries — flow control replaces the storm.
    let config = ServeConfig {
        shards: 1,
        egress: 2,
        routes: 16,
        queue_cap: 2,
        shard_throttle: Some(Duration::from_millis(10)),
        job_timeout: Duration::from_secs(30),
        frontend: FrontendKind::Reactor,
        reactor_threads: 1,
        ..ServeConfig::default()
    };
    let server = Server::start("127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr();

    let w = Workload::generate(9, 240, 16);
    let (fwd, drop) = w.reference_forward();
    let handles: Vec<_> = w
        .packets
        .chunks(30)
        .map(|chunk| {
            let chunk = chunk.to_vec();
            std::thread::spawn(move || {
                let mut c = connect(addr);
                c.submit(&chunk, SubmitOptions::new()).expect("submit")
            })
        })
        .collect();
    let mut totals = BatchResult::default();
    for h in handles {
        let r = h.join().expect("client thread");
        totals.forwarded += r.forwarded;
        totals.dropped += r.dropped;
        totals.busy_retries += r.busy_retries;
    }
    // Lossless and storm-free: every packet classified, no Busy seen.
    assert_eq!(totals.forwarded as usize, fwd);
    assert_eq!(totals.dropped as usize, drop);
    assert_eq!(
        totals.busy_retries, 0,
        "deferred submits absorb the full queue; clients never see Busy"
    );

    let mut client = connect(addr);
    let snap = client.stats().expect("stats");
    assert_eq!(snap.busy, 0, "no Busy responses server-side either");
    assert_eq!(snap.packets, 240, "no silent drops");
    let fe = snap.frontend.expect("frontend section");
    assert!(
        fe.deferred_submits > 0,
        "8 conns against a 2-deep throttled queue must defer: {fe:?}"
    );
    assert_eq!(fe.deferred_now, 0, "nothing still parked after the run");
    client.shutdown().expect("shutdown");
    server.wait();
}

#[test]
fn reactor_stops_reading_a_slow_client_at_the_egress_high_water() {
    // Satellite: bounded memory against a slow reader. Pipeline many
    // stats requests without reading a single response: the kernel
    // buffers fill, the per-connection egress queue climbs, and at
    // EGRESS_HIGH_WATER the reactor must drop read interest instead of
    // buffering the rest — pinning per-connection memory. Once we read,
    // everything drains and every response arrives in order.
    let server = Server::start("127.0.0.1:0", reactor_config()).expect("bind");
    let addr = server.local_addr();
    let (mut writer, mut reader) = raw_handshake(addr);

    // The kernel absorbs several MB on loopback (sndbuf + rcvbuf
    // autotuning) before the server-side egress queue grows at all, so
    // the burst must comfortably exceed that: ~30k one-KB stats
    // responses ≈ 30 MB against a 256 KiB queue bound.
    const REQUESTS: usize = 30_000;
    let stats_req = Request::Stats.encode();
    for _ in 0..REQUESTS {
        frame::write_frame(&mut writer, &stats_req).expect("pipelined stats request");
    }
    writer.flush().unwrap();

    // Watch from a second connection until the slow conn's egress queue
    // hits the high-water mark and the reactor pauses its reads.
    let mut monitor = connect(addr);
    let deadline = Instant::now() + Duration::from_secs(30);
    let fe = loop {
        let snap = monitor.stats().expect("stats");
        let fe = snap.frontend.expect("frontend section");
        if fe.egress_highwater_bytes >= EGRESS_HIGH_WATER as u64 && fe.read_pauses >= 1 {
            break fe;
        }
        assert!(
            Instant::now() < deadline,
            "egress never reached the high-water mark: {fe:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    // Bounded: the queue overshoots by at most one response beyond the
    // mark — it must not absorb the whole pipelined burst.
    assert!(
        fe.egress_highwater_bytes < (EGRESS_HIGH_WATER + 128 * 1024) as u64,
        "egress queue kept buffering past the high-water mark: {fe:?}"
    );
    const { assert!(EGRESS_LOW_WATER < EGRESS_HIGH_WATER) };

    // Drain as a reader again: every one of the pipelined responses must
    // arrive, in order, as a well-formed Stats frame — the pause/resume
    // cycle loses and corrupts nothing.
    for i in 0..REQUESTS {
        let payload = frame::read_frame(&mut reader)
            .unwrap_or_else(|e| panic!("response {i}: {e}"))
            .unwrap_or_else(|| panic!("server closed before response {i}"));
        match Response::decode(&payload) {
            Ok(Response::Stats(doc)) => assert!(doc.contains("\"frontend\""), "response {i}"),
            other => panic!("response {i}: expected Stats, got {other:?}"),
        }
    }
    drop(writer);
    drop(reader);

    let mut client = connect(addr);
    client.shutdown().expect("shutdown");
    server.wait();
}

#[test]
fn reactor_conn_cap_rejection_is_a_decodable_error_frame() {
    // Satellite: over-capacity connections get a protocol-level refusal
    // (a v1-decodable Error frame), not a silent RST.
    let config = ServeConfig {
        max_conns: 2,
        ..reactor_config()
    };
    let server = Server::start("127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr();

    let mut held1 = connect(addr);
    let _held2 = connect(addr);

    let third = TcpStream::connect(addr).expect("tcp connect still accepted");
    third.set_nodelay(true).unwrap();
    let mut reader = BufReader::new(third.try_clone().unwrap());
    let payload = frame::read_frame(&mut reader)
        .expect("read rejection")
        .expect("an error frame, not an instant close");
    match Response::decode(&payload).expect("rejection frame decodes") {
        Response::Error(msg) => {
            assert!(
                msg.contains("connection limit"),
                "rejection names the cap: {msg}"
            );
        }
        other => panic!("expected Error, got {other:?}"),
    }
    // After the frame, the server closes its side.
    assert_eq!(
        frame::read_frame(&mut reader).expect("clean close"),
        None,
        "rejected connection is closed after the error frame"
    );
    drop(reader);
    drop(third);

    let snap = held1.stats().expect("held connection still serves");
    let fe = snap.frontend.expect("frontend section");
    assert!(fe.conn_rejects >= 1, "rejection counted: {fe:?}");
    assert!(fe.conns_open <= 2, "cap respected: {fe:?}");

    held1.shutdown().expect("shutdown");
    server.wait();
}

#[test]
fn reactor_killed_shard_restarts_and_service_keeps_serving() {
    let server = Server::start("127.0.0.1:0", reactor_config()).expect("bind");
    let addr = server.local_addr();
    let mut client = connect(addr);

    let w = Workload::generate(3, 100, 16);
    client
        .submit(&w.packets[..50], SubmitOptions::new())
        .expect("warm");
    client.kill_shard(0).expect("kill accepted");

    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        assert!(
            Instant::now() < deadline,
            "supervisor never restarted the shard"
        );
        match client.submit(&w.packets[50..], SubmitOptions::new()) {
            Ok(_) if server.shard_restarts() >= 1 => break,
            Ok(_) => {}
            // A submit that lands on the dying shard surfaces as a typed
            // error; the connection survives and a retry succeeds.
            Err(_) => {}
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(server.shard_restarts(), 1);
    let r = client
        .submit(&w.packets, SubmitOptions::new().verify(true))
        .expect("post-restart");
    assert_eq!(r.mismatches, 0, "service is still correct after restart");
    client.shutdown().expect("shutdown");
    server.wait();
}

#[test]
fn reactor_stats_stream_pushes_and_stops_cleanly() {
    let server = Server::start("127.0.0.1:0", reactor_config()).expect("bind");
    let mut client = connect(server.local_addr());
    let mut pushes = 0;
    let last = client
        .stats_stream(Duration::from_millis(30), |snap| {
            assert_eq!(
                snap.frontend.expect("frontend section").kind,
                "reactor",
                "pushed documents carry the frontend section too"
            );
            pushes += 1;
            pushes < 3
        })
        .expect("stats stream");
    assert_eq!(pushes, 3);
    assert_eq!(last.backend, Some(BackendKind::Sim));
    client.shutdown().expect("shutdown");
    server.wait();
}
