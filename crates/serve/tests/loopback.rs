//! End-to-end loopback tests: a real server on 127.0.0.1, real TCP
//! clients, the full frame protocol (including the protocol-v2 `Hello`
//! handshake every connection now opens with).

use memsync_netapp::Workload;
use memsync_serve::client::BatchResult;
use memsync_serve::{
    BackendKind, Client, ClientError, Request, Response, ServeConfig, Server, SubmitOptions,
    PROTOCOL_VERSION,
};
use std::time::Duration;

/// A small, fast config for tests: 2 shards of the egress-2 app.
fn test_config() -> ServeConfig {
    ServeConfig {
        shards: 2,
        egress: 2,
        routes: 16,
        job_timeout: Duration::from_secs(30),
        ..ServeConfig::default()
    }
}

fn connect(addr: std::net::SocketAddr) -> Client {
    Client::builder()
        .retries(10_000)
        .connect(addr)
        .expect("connect")
}

#[test]
fn loopback_verify_run_matches_the_oracle_and_drains_clean() {
    let server = Server::start("127.0.0.1:0", test_config()).expect("bind");
    let addr = server.local_addr();

    let w = Workload::generate(42, 400, 16);
    let (fwd, drop) = w.reference_forward();
    let mut client = connect(addr);
    // The negotiated capability block mirrors the config.
    assert_eq!(client.server().version, PROTOCOL_VERSION);
    assert_eq!(client.server().backend, BackendKind::Sim);
    assert_eq!(client.server().shards, 2);
    assert_eq!(client.server().egress, 2);
    assert_eq!(client.server().routes, 16);

    let verify = SubmitOptions::new().verify(true);
    let mut totals = BatchResult::default();
    for chunk in w.packets.chunks(50) {
        let r = client.submit(chunk, verify).expect("submit");
        totals.forwarded += r.forwarded;
        totals.dropped += r.dropped;
        totals.mismatches += r.mismatches;
    }
    assert_eq!(totals.forwarded as usize, fwd);
    assert_eq!(totals.dropped as usize, drop);
    assert_eq!(totals.mismatches, 0, "simulated frames match the model");

    // The typed stats snapshot reflects the traffic.
    let snap = client.stats().expect("stats");
    assert_eq!(snap.packets, 400);
    assert_eq!(snap.mismatches, 0);
    assert_eq!(snap.shard_restarts, 0);
    assert_eq!(snap.lost_updates, 0);
    assert_eq!(snap.backend, Some(BackendKind::Sim));
    assert_eq!(snap.shards, 2);
    assert_eq!(snap.per_shard.len(), 2);
    assert_eq!(
        snap.per_shard.iter().map(|s| s.packets).sum::<u64>(),
        400,
        "per-shard packets add up to the total"
    );
    // The raw document stays available and carries the histograms the
    // typed snapshot does not model.
    let doc = client.stats_raw().expect("raw stats");
    assert!(doc.contains("\"service_latency_us\""));

    // Graceful drain, then shutdown; wait() returns (bin would exit 0).
    client.drain().expect("drain");
    client.shutdown().expect("shutdown");
    server.wait();
}

#[test]
fn per_shard_counts_are_identical_across_same_seed_runs() {
    let mut shard_counts = Vec::new();
    for _ in 0..2 {
        let server = Server::start("127.0.0.1:0", test_config()).expect("bind");
        let mut client = connect(server.local_addr());
        let w = Workload::generate(7, 300, 16);
        let verify = SubmitOptions::new().verify(true);
        for chunk in w.packets.chunks(32) {
            client.submit(chunk, verify).expect("submit");
        }
        client.drain().expect("drain");
        let snap = client.stats().expect("stats");
        // Keep the deterministic counters; timing-dependent fields
        // (latency summaries, queue depth) live outside the comparison.
        let counts: Vec<(u64, u64, u64, u64)> = snap
            .per_shard
            .iter()
            .map(|s| (s.packets, s.forwarded, s.dropped, s.mismatches))
            .collect();
        shard_counts.push(counts);
        client.shutdown().expect("shutdown");
        server.wait();
    }
    assert_eq!(
        shard_counts[0], shard_counts[1],
        "same seed => identical per-shard forwarded/dropped counts"
    );
    assert!(!shard_counts[0].is_empty());
}

#[test]
fn backpressure_is_observable_and_lossless() {
    // One slow shard with a 1-deep queue: concurrent submits must see Busy
    // (counted in stats), and every accepted packet must still be served.
    let config = ServeConfig {
        shards: 1,
        egress: 2,
        routes: 16,
        queue_cap: 1,
        shard_throttle: Some(Duration::from_millis(30)),
        ..ServeConfig::default()
    };
    let server = Server::start("127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr();

    let w = Workload::generate(9, 120, 16);
    let (fwd, drop) = w.reference_forward();
    let handles: Vec<_> = w
        .packets
        .chunks(20)
        .map(|chunk| {
            let chunk = chunk.to_vec();
            std::thread::spawn(move || {
                let mut c = connect(addr);
                c.submit(&chunk, SubmitOptions::new()).expect("submit")
            })
        })
        .collect();
    let mut totals = BatchResult::default();
    for h in handles {
        let r = h.join().expect("client thread");
        totals.forwarded += r.forwarded;
        totals.dropped += r.dropped;
        totals.busy_retries += r.busy_retries;
    }
    // Lossless: every packet classified despite the contention.
    assert_eq!(totals.forwarded as usize, fwd);
    assert_eq!(totals.dropped as usize, drop);
    assert!(
        totals.busy_retries > 0,
        "6 concurrent submits against a 1-deep throttled queue must hit Busy"
    );

    let mut client = connect(addr);
    let snap = client.stats().expect("stats");
    assert!(snap.busy > 0, "busy counted in stats");
    assert_eq!(snap.packets, 120, "no silent drops");
    client.shutdown().expect("shutdown");
    server.wait();
}

#[test]
fn killed_shard_restarts_and_service_keeps_serving() {
    let server = Server::start("127.0.0.1:0", test_config()).expect("bind");
    let addr = server.local_addr();
    let mut client = connect(addr);

    // Warm both shards, then kill shard 0.
    let w = Workload::generate(3, 100, 16);
    client
        .submit(&w.packets[..50], SubmitOptions::new())
        .expect("warm");
    client.kill_shard(0).expect("kill accepted");

    // Keep submitting until the supervisor has restarted the shard; the
    // submit that lands on the dying shard comes back as an error (the
    // crash is visible, not silent) and a retry succeeds.
    let mut saw_error = false;
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    loop {
        assert!(
            std::time::Instant::now() < deadline,
            "supervisor never restarted the shard"
        );
        match client.submit(&w.packets[50..], SubmitOptions::new()) {
            Ok(_) if server.shard_restarts() >= 1 => break,
            Ok(_) => {}
            Err(e) => {
                // shard failed mid-batch => acceptor error; reconnect is
                // not needed (the connection survives), just retry.
                saw_error = true;
                let _ = e;
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(server.shard_restarts(), 1);
    let snap = client.stats().expect("stats");
    assert_eq!(snap.shard_restarts, 1);
    // The service still serves correctly after the restart.
    let r = client
        .submit(&w.packets, SubmitOptions::new().verify(true))
        .expect("post-restart");
    assert_eq!(r.mismatches, 0);
    let _ = saw_error; // whether the kill raced a submit is timing-dependent
    client.shutdown().expect("shutdown");
    server.wait();
}

#[test]
fn slow_writer_pausing_mid_frame_does_not_desync_the_stream() {
    use std::io::Write;
    let server = Server::start("127.0.0.1:0", test_config()).expect("bind");
    let addr = server.local_addr();

    // Raw stream (no Client): open with a well-formed Hello so the
    // handshake settles, then dribble the submit frame.
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).unwrap();
    let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
    memsync_serve::frame::write_frame(
        &mut stream,
        &Request::Hello {
            min_version: PROTOCOL_VERSION,
            max_version: PROTOCOL_VERSION,
        }
        .encode(),
    )
    .expect("hello");
    let hello_rsp = memsync_serve::frame::read_frame(&mut reader)
        .expect("read hello response")
        .expect("hello response frame");
    assert!(matches!(
        Response::decode(&hello_rsp).expect("decode hello"),
        Response::Hello(_)
    ));

    let w = Workload::generate(5, 40, 16);
    let (fwd, drop) = w.reference_forward();
    let payload = Request::Submit {
        packets: w.packets.clone(),
        options: SubmitOptions::new().verify(true),
    }
    .encode();
    let mut framed = (payload.len() as u32).to_be_bytes().to_vec();
    framed.extend_from_slice(&payload);

    // Dribble the frame with pauses well past the server's 50ms read
    // poll — one cut inside the 4-byte length prefix, two inside the
    // payload. The server's read timeouts must resume the partial frame,
    // not discard it and re-enter the stream mid-frame.
    let mut pos = 0usize;
    for &n in &[2usize, 7, 300] {
        stream.write_all(&framed[pos..pos + n]).unwrap();
        stream.flush().unwrap();
        pos += n;
        std::thread::sleep(Duration::from_millis(120));
    }
    stream.write_all(&framed[pos..]).unwrap();
    stream.flush().unwrap();

    let rsp = memsync_serve::frame::read_frame(&mut reader)
        .expect("read response")
        .expect("response frame, not a close");
    match Response::decode(&rsp).expect("decode response") {
        Response::Batch {
            forwarded,
            dropped,
            mismatches,
        } => {
            assert_eq!(forwarded as usize, fwd);
            assert_eq!(dropped as usize, drop);
            assert_eq!(mismatches, 0);
        }
        other => panic!("expected Batch, got {other:?}"),
    }
    std::mem::drop(reader);
    std::mem::drop(stream);

    let mut client = connect(addr);
    client.shutdown().expect("shutdown");
    server.wait();
}

#[test]
fn protocol_rejects_garbage_without_dropping_the_connection() {
    let server = Server::start("127.0.0.1:0", test_config()).expect("bind");
    let mut client = connect(server.local_addr());

    // An out-of-range kill never leaves the client: the index is checked
    // against the negotiated shard count.
    match client.kill_shard(999) {
        Err(ClientError::ShardOutOfRange {
            shard: 999,
            shards: 2,
        }) => {}
        other => panic!("expected ShardOutOfRange, got {other:?}"),
    }
    // Forcing the raw frame through anyway still gets a server-side
    // error, and the connection keeps working afterwards.
    let rsp = client.roundtrip(&Request::Kill(999)).expect("kill oob");
    assert!(matches!(rsp, Response::Error(_)), "out-of-range shard");
    let snap = client.stats().expect("stats still works");
    assert_eq!(snap.shards, 2);

    // Draining refuses new submits with an explicit error.
    client.drain().expect("drain");
    let w = Workload::generate(1, 4, 16);
    let rsp = client
        .submit_once(&w.packets, SubmitOptions::new())
        .expect("submit while draining");
    assert!(
        matches!(rsp, Response::Error(_)),
        "draining refuses submits"
    );
    client.shutdown().expect("shutdown");
    server.wait();
}
