//! Proves the batch fast path's arena contract: once the lanes and the
//! carrier scratch have grown to the working batch size, the
//! `submit_batch` → `drain_egress` steady state performs zero heap
//! allocations. Every frame is written in place into a recycled lane;
//! nothing is boxed, cloned, or collected per batch.
//!
//! Lives in its own integration-test binary because the counting
//! `#[global_allocator]` is process-wide — and runs without the libtest
//! harness (`harness = false` in Cargo.toml): the harness's main thread
//! waits for the test result in a channel `recv` whose park path
//! occasionally allocates (thread-local context init), which this
//! allocator would count against the measured window.

use memsync_serve::backend::{FastBackend, ForwardingBackend};
use std::alloc::{GlobalAlloc, Layout, System as SystemAlloc};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { SystemAlloc.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { SystemAlloc.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { SystemAlloc.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { SystemAlloc.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn main() {
    fast_backend_steady_state_allocates_nothing();
    println!("fast_zero_alloc: ok");
}

fn fast_backend_steady_state_allocates_nothing() {
    const EGRESS: usize = 4;
    const BATCH: usize = 512;
    let mut backend = FastBackend::new(EGRESS);
    // A mixed batch: forwarded packets plus TTL-expiry drops, reused for
    // every round (the descriptors are inputs, not state).
    let descriptors: Vec<u32> = (0..BATCH as u32)
        .map(|i| {
            let dst = 0x0a00_0000 | (i << 8) | (i & 0xff);
            let ttl = if i % 7 == 0 { 1 } else { 32 + (i % 64) };
            (dst & 0xffff_ff00) | ttl
        })
        .collect();

    // Warmup: grows the lanes and the carrier scratch to the batch's
    // working size, including the accumulate-two-submits-per-drain shape
    // the steady loop below uses.
    for _ in 0..8 {
        backend.submit_batch(&descriptors);
        backend.submit_batch(&descriptors);
        let frames = backend.drain_egress();
        assert_eq!(frames.len(), EGRESS);
        assert_eq!(frames[0].len(), 2 * BATCH);
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut checksum = 0u64;
    for _ in 0..1_000 {
        backend.submit_batch(&descriptors);
        backend.submit_batch(&descriptors);
        let frames = backend.drain_egress();
        // Touch the borrowed view the way a shard does (classify +
        // verify reads) so the drain cannot be optimized away.
        checksum = checksum.wrapping_add(u64::from(frames[EGRESS - 1][2 * BATCH - 1]));
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "the warmed submit/drain steady state must not touch the heap"
    );
    assert_ne!(checksum, 0);
    assert_eq!(
        backend.metrics().descriptors,
        (8 + 1_000) * 2 * BATCH as u64
    );
    assert_eq!(backend.lost_updates(), 0);
}
