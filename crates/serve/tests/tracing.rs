//! End-to-end request tracing: a real server with tracing on, span JSONL
//! export, the stats stream, and the restart-carryover pin.
//!
//! The load-bearing assertion here is the acceptance criterion of the
//! tracing plane: per-stage percentiles recomputed offline from the
//! exported span lines must agree with the live stats-stream bucket
//! summaries to within one log2 bucket. Both sides see the exact same
//! stage samples (the shard records each job's stages into its bucket
//! histograms at the same instant it stamps the job's span timings), so
//! at matching rank definitions the agreement is exact — the one-bucket
//! tolerance only absorbs the bucket-upper-bound representation.

use memsync_netapp::Workload;
use memsync_serve::{BackendKind, Client, ServeConfig, Server, SubmitOptions, TracingConfig};
use memsync_trace::bucket::bucket_index;
use memsync_trace::SpanRecord;
use std::path::PathBuf;
use std::time::Duration;

fn connect(addr: std::net::SocketAddr) -> Client {
    Client::builder()
        .retries(10_000)
        .connect(addr)
        .expect("connect")
}

fn traced_config(spans_path: Option<String>) -> ServeConfig {
    ServeConfig {
        shards: 2,
        egress: 2,
        routes: 16,
        job_timeout: Duration::from_secs(30),
        backend: BackendKind::Fast,
        tracing: TracingConfig {
            enabled: true,
            sample_every: 4,
            spans_path,
            ..TracingConfig::default()
        },
        ..ServeConfig::default()
    }
}

fn temp_spans_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("memsync-spans-{tag}-{}.jsonl", std::process::id()))
}

/// Raw-sample percentile at the same rank the bucket histogram uses:
/// 1-based rank `round(q * (n - 1)) + 1`.
fn raw_percentile(sorted: &[u64], q: f64) -> u64 {
    let rank = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

#[test]
fn exported_spans_recompute_the_live_stage_percentiles() {
    let path = temp_spans_path("percentiles");
    let server = Server::start(
        "127.0.0.1:0",
        traced_config(Some(path.display().to_string())),
    )
    .expect("bind");
    let addr = server.local_addr();

    // Enough traffic for stable percentiles (hundreds of spans/stage).
    let mut client = connect(addr);
    let w = Workload::generate(11, 20_000, 16);
    for (i, chunk) in w.packets.chunks(64).enumerate() {
        client
            .submit(chunk, SubmitOptions::new().span(i as u64))
            .expect("submit");
    }
    // Drain flushes the span sink before quiescing.
    client.drain().expect("drain");
    let snap = client.stats().expect("stats");
    assert_eq!(snap.packets, 20_000);

    // Offline: parse every exported span line back.
    let text = std::fs::read_to_string(&path).expect("span file");
    let spans: Vec<SpanRecord> = text.lines().filter_map(SpanRecord::parse).collect();
    assert!(!spans.is_empty(), "span export produced records");
    assert_eq!(
        spans.len() as u64,
        snap.spans.expect("spans section").exported,
        "every exported line parses back"
    );
    assert_eq!(
        spans.iter().map(|s| s.packets).sum::<u64>(),
        20_000,
        "spans cover every packet"
    );
    assert!(
        spans.iter().all(|s| s.client_assigned),
        "loadgen-style client-assigned ids survive the wire"
    );

    // The acceptance pin: recomputed per-stage p50/p99 from the raw span
    // lines land within one log2 bucket of the live summaries for every
    // shard-side stage (queue-wait, coalesce, backend-execute, egress).
    // Decode/write are excluded: their live histograms count one sample
    // per request while span lines repeat them per (request, shard).
    for stage in ["queue_ns", "coalesce_ns", "execute_ns", "egress_ns"] {
        let mut raw: Vec<u64> = spans
            .iter()
            .map(|s| match stage {
                "queue_ns" => s.queue_ns,
                "coalesce_ns" => s.coalesce_ns,
                "execute_ns" => s.execute_ns,
                _ => s.egress_ns,
            })
            .collect();
        raw.sort_unstable();
        let live = snap
            .stages
            .iter()
            .find(|s| s.stage == stage)
            .unwrap_or_else(|| panic!("live summary for {stage}"));
        assert_eq!(live.count, raw.len() as u64, "{stage} sample counts");
        assert_eq!(live.min, raw[0], "{stage} exact min");
        assert_eq!(live.max, *raw.last().unwrap(), "{stage} exact max");
        for (q, live_p) in [(0.50, live.p50), (0.99, live.p99)] {
            let raw_p = raw_percentile(&raw, q);
            let (ri, li) = (bucket_index(raw_p), bucket_index(live_p));
            assert!(
                ri.abs_diff(li) <= 1,
                "{stage} p{}: raw {raw_p} (bucket {ri}) vs live {live_p} \
                 (bucket {li}) disagree by more than one bucket",
                (q * 100.0) as u32
            );
        }
    }

    let mut client = connect(addr);
    client.shutdown().expect("shutdown");
    server.wait();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn stats_stream_pushes_typed_snapshots_and_stops_cleanly() {
    let server = Server::start("127.0.0.1:0", traced_config(None)).expect("bind");
    let addr = server.local_addr();

    let mut loader = connect(addr);
    let w = Workload::generate(5, 640, 16);
    for chunk in w.packets.chunks(64) {
        loader.submit(chunk, SubmitOptions::new()).expect("submit");
    }

    let mut watcher = connect(addr);
    assert!(watcher.supports_tracing());
    let mut pushes = 0u32;
    let last = watcher
        .stats_stream(Duration::from_millis(20), |snap| {
            assert_eq!(snap.packets, 640, "pushes carry the typed snapshot");
            assert!(snap.spans.expect("spans section").enabled);
            pushes += 1;
            pushes < 3
        })
        .expect("stats stream");
    assert_eq!(pushes, 3, "callback saw exactly the requested pushes");
    assert_eq!(last.packets, 640, "final snapshot closes the stream");

    // The connection is back in plain request/response mode afterwards.
    let snap = watcher.stats().expect("stats after stream");
    assert_eq!(snap.packets, 640);
    watcher.shutdown().expect("shutdown");
    server.wait();
}

#[test]
fn zero_interval_stream_is_refused_without_dropping_the_connection() {
    let server = Server::start("127.0.0.1:0", traced_config(None)).expect("bind");
    let mut client = connect(server.local_addr());
    let rsp = client
        .roundtrip(&memsync_serve::Request::StatsStream { interval_ms: 0 })
        .expect("roundtrip");
    assert!(
        matches!(rsp, memsync_serve::Response::Error(ref m) if m.contains("nonzero")),
        "got {rsp:?}"
    );
    let snap = client.stats().expect("connection survives the refusal");
    assert_eq!(snap.shards, 2);
    client.shutdown().expect("shutdown");
    server.wait();
}

#[test]
fn restarted_shard_carries_its_pre_restart_totals() {
    // Satellite pin: a supervisor-restarted shard keeps counting on the
    // same registry, and the latched carryover proves how much of its
    // total predates the restart.
    let server = Server::start("127.0.0.1:0", traced_config(None)).expect("bind");
    let addr = server.local_addr();
    let mut client = connect(addr);

    // Warm both shards so shard 0 has pre-restart traffic to carry.
    let w = Workload::generate(3, 400, 16);
    client
        .submit(&w.packets[..200], SubmitOptions::new())
        .expect("warm");
    let pre = client.stats().expect("pre-kill stats");
    let pre_shard0 = pre.per_shard[0].packets;
    assert!(pre_shard0 > 0, "shard 0 saw warmup traffic");
    assert_eq!(pre.restart_carryover, 0, "no restart, no carryover");

    client.kill_shard(0).expect("kill accepted");
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    loop {
        assert!(
            std::time::Instant::now() < deadline,
            "supervisor never restarted the shard"
        );
        match client.submit(&w.packets[200..], SubmitOptions::new()) {
            Ok(_) if server.shard_restarts() >= 1 => break,
            Ok(_) => {}
            Err(_) => {} // the kill raced this submit; retry
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    let snap = client.stats().expect("post-restart stats");
    assert_eq!(snap.shard_restarts, 1);
    let carry = snap.per_shard[0].restart_carryover;
    assert!(
        carry >= pre_shard0,
        "carryover {carry} latched at least the warmup traffic {pre_shard0}"
    );
    assert_eq!(
        snap.restart_carryover, carry,
        "top-level carryover sums the per-shard latches"
    );
    assert!(
        snap.per_shard[0].packets >= carry,
        "the restarted shard's total includes its pre-restart packets"
    );

    // And the restarted shard still serves traced traffic correctly.
    let r = client
        .submit(&w.packets, SubmitOptions::new().verify(true).span(7))
        .expect("post-restart traced submit");
    assert_eq!(r.mismatches, 0);
    client.shutdown().expect("shutdown");
    server.wait();
}
