//! The stats frame: per-shard registries merged into one JSON document.
//!
//! Each shard records into its own [`MetricsRegistry`] (no cross-shard
//! lock traffic on the hot path); a stats request snapshots every shard,
//! merges them with [`MetricsRegistry::merge`], and renders one document:
//! service totals, throughput, backpressure counters, queue-depth
//! high-water marks, the batch-size histogram, and p50/p99 service
//! latency.

use crate::backend::BackendKind;
use crate::supervisor::PublicShard;
use memsync_trace::{Json, MetricsRegistry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::PoisonError;
use std::time::Instant;

/// Server-global counters the acceptors maintain (everything per-shard
/// lives in the shard registries).
#[derive(Debug, Default)]
pub struct ServerCounters {
    /// Submit batches accepted (enqueued on every target shard).
    pub accepted: AtomicU64,
    /// Submit batches refused with `Busy` (a shard queue was full).
    pub busy: AtomicU64,
    /// Submits that failed after acceptance (shard died mid-batch).
    pub errors: AtomicU64,
}

/// Renders the merged stats frame.
///
/// `draining` and `restarts` come from the server; `started` anchors the
/// throughput computation (forwarded+dropped packets over uptime).
pub fn stats_json(
    shards: &[PublicShard],
    counters: &ServerCounters,
    backend: BackendKind,
    restarts: u64,
    draining: bool,
    started: Instant,
) -> String {
    let mut merged = MetricsRegistry::new();
    let mut per_shard = Vec::with_capacity(shards.len());
    for (i, s) in shards.iter().enumerate() {
        let reg = s.stats.lock().unwrap_or_else(PoisonError::into_inner);
        let snapshot = reg.clone();
        drop(reg);
        merged.merge(&snapshot);
        let mut obj = Json::obj()
            .with("shard", i.into())
            .with("packets", snapshot.counter("serve.packets").into())
            .with("forwarded", snapshot.counter("serve.forwarded").into())
            .with("dropped", snapshot.counter("serve.dropped").into())
            .with("mismatches", snapshot.counter("serve.mismatches").into())
            .with(
                "lost_updates",
                snapshot.counter("serve.lost_updates").into(),
            )
            .with("batches", snapshot.counter("serve.batches").into())
            .with("sim_cycles", snapshot.counter("serve.sim_cycles").into())
            .with("queue_depth_highwater", s.queue.high_water().into())
            .with("queue_depth", s.queue.len().into());
        if let Some(h) = snapshot
            .histogram("serve.batch_size")
            .and_then(|h| h.summary())
        {
            obj.set("batch_size", h.to_json());
        }
        if let Some(h) = snapshot
            .histogram("serve.service_latency_us")
            .and_then(|h| h.summary())
        {
            obj.set("service_latency_us", h.to_json());
        }
        per_shard.push(obj);
    }

    let uptime = started.elapsed().as_secs_f64().max(1e-9);
    let packets = merged.counter("serve.packets");
    let mut doc = Json::obj()
        .with("shards", shards.len().into())
        .with("backend", Json::Str(backend.to_string()))
        .with("uptime_secs", uptime.into())
        .with("draining", draining.into())
        .with("shard_restarts", restarts.into())
        .with("accepted", counters.accepted.load(Ordering::Relaxed).into())
        .with("busy", counters.busy.load(Ordering::Relaxed).into())
        .with("errors", counters.errors.load(Ordering::Relaxed).into())
        .with("packets", packets.into())
        .with("forwarded", merged.counter("serve.forwarded").into())
        .with("dropped", merged.counter("serve.dropped").into())
        .with("mismatches", merged.counter("serve.mismatches").into())
        .with("lost_updates", merged.counter("serve.lost_updates").into())
        .with("batches", merged.counter("serve.batches").into())
        .with("sim_cycles", merged.counter("serve.sim_cycles").into())
        .with("packets_per_sec", (packets as f64 / uptime).into());
    if let Some(h) = merged
        .histogram("serve.batch_size")
        .and_then(|h| h.summary())
    {
        doc.set("batch_size", h.to_json());
    }
    if let Some(h) = merged
        .histogram("serve.service_latency_us")
        .and_then(|h| h.summary())
    {
        doc.set("service_latency_us", h.to_json());
    }
    doc.set("per_shard", Json::Arr(per_shard));
    doc.render()
}

/// Pulls an unsigned integer field out of a flat stats JSON document —
/// good enough for the loadgen/tests to read totals without a parser.
pub fn json_u64(doc: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)? + needle.len();
    let rest = doc[at..].trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::ShardQueue;
    use std::sync::atomic::AtomicBool;
    use std::sync::{Arc, Mutex};

    #[test]
    fn stats_json_merges_shards_and_is_parseable() {
        let mk = |forwarded: u64, dropped: u64| {
            let mut r = MetricsRegistry::new();
            r.add("serve.packets", forwarded + dropped);
            r.add("serve.forwarded", forwarded);
            r.add("serve.dropped", dropped);
            r.add("serve.batches", 1);
            r.record("serve.batch_size", forwarded + dropped);
            r.record("serve.service_latency_us", 100);
            PublicShard {
                queue: Arc::new(ShardQueue::new(4)),
                stats: Arc::new(Mutex::new(r)),
                die: Arc::new(AtomicBool::new(false)),
                idle: Arc::new(AtomicBool::new(true)),
            }
        };
        let shards = vec![mk(10, 2), mk(5, 3)];
        let counters = ServerCounters::default();
        counters.accepted.store(2, Ordering::Relaxed);
        counters.busy.store(1, Ordering::Relaxed);
        let doc = stats_json(
            &shards,
            &counters,
            BackendKind::Sim,
            1,
            false,
            Instant::now(),
        );
        assert!(doc.contains("\"backend\":\"sim\""), "{doc}");
        assert_eq!(json_u64(&doc, "forwarded"), Some(15));
        assert_eq!(json_u64(&doc, "dropped"), Some(5));
        assert_eq!(json_u64(&doc, "packets"), Some(20));
        assert_eq!(json_u64(&doc, "lost_updates"), Some(0));
        assert_eq!(json_u64(&doc, "busy"), Some(1));
        assert_eq!(json_u64(&doc, "shard_restarts"), Some(1));
        assert!(doc.contains("\"per_shard\""));
        assert!(doc.contains("\"p99\""), "latency percentiles present");
        assert!(doc.contains("\"queue_depth_highwater\""));
    }
}
