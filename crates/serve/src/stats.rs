//! The stats frame: per-shard registries merged into one JSON document.
//!
//! Each shard records into its own [`MetricsRegistry`] (no cross-shard
//! lock traffic on the hot path); a stats request snapshots every shard,
//! merges them with [`MetricsRegistry::merge`], and renders one document:
//! service totals, throughput, backpressure counters, queue-depth
//! high-water marks, the batch-size histogram, and p50/p99 service
//! latency.

use crate::backend::BackendKind;
use crate::supervisor::PublicShard;
use crate::tables::EpochTables;
use crate::tracing::ServeTracer;
use crate::FrontendKind;
use memsync_trace::{Json, MetricsRegistry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::PoisonError;
use std::time::Instant;

/// The traced stages rendered into a registry's `stages` object, in
/// pipeline order. The four shard stages live in the shard registries;
/// decode/write come from the tracer's frontend registry.
pub const STAGE_METRICS: [(&str, &str); 6] = [
    ("decode_ns", "serve.stage.decode_ns"),
    ("queue_ns", "serve.stage.queue_ns"),
    ("coalesce_ns", "serve.stage.coalesce_ns"),
    ("execute_ns", "serve.stage.execute_ns"),
    ("egress_ns", "serve.stage.egress_ns"),
    ("write_ns", "serve.stage.write_ns"),
];

/// Renders the non-empty stage histograms of `reg` as a `stages` object
/// (stage name → bucket summary), or `None` when nothing was traced.
fn stages_json(reg: &MetricsRegistry) -> Option<Json> {
    let mut obj = Json::obj();
    let mut any = false;
    for (stage, metric) in STAGE_METRICS {
        if let Some(s) = reg.bucket_histogram(metric).and_then(|h| h.summary()) {
            obj.set(stage, s.to_json());
            any = true;
        }
    }
    any.then_some(obj)
}

/// Server-global counters the acceptors maintain (everything per-shard
/// lives in the shard registries).
#[derive(Debug, Default)]
pub struct ServerCounters {
    /// Submit batches accepted (enqueued on every target shard).
    pub accepted: AtomicU64,
    /// Submit batches refused with `Busy` (a shard queue was full).
    pub busy: AtomicU64,
    /// Submits that failed after acceptance (shard died mid-batch).
    pub errors: AtomicU64,
}

/// Connection-plane counters, maintained by whichever frontend is
/// running; rendered as the stats document's `frontend` object.
#[derive(Debug, Default)]
pub struct FrontendStats {
    /// Connections currently open (post-cap-check).
    pub conns_open: AtomicU64,
    /// Highest concurrently-open connection count ever observed.
    pub conns_peak: AtomicU64,
    /// Connections refused over [`crate::ServeConfig::max_conns`].
    pub conn_rejects: AtomicU64,
    /// Accept-loop pauses forced by fd or thread exhaustion.
    pub accept_pauses: AtomicU64,
    /// Times a frontend stopped reading a connection for backpressure
    /// (egress high-water, an in-flight submit, or saturated shards).
    pub read_pauses: AtomicU64,
    /// Submits deferred because a target shard queue was full (reactor
    /// only; the blocking frontend answers `Busy` instead).
    pub deferred_submits: AtomicU64,
    /// Deferred submits currently parked (gauge; drain waits on it).
    pub deferred_now: AtomicU64,
    /// Largest per-connection egress queue ever observed, in bytes —
    /// the server-side memory bound the backpressure tests pin.
    pub egress_highwater: AtomicU64,
}

impl FrontendStats {
    /// Counts a connection in, updating the peak gauge.
    pub fn conn_opened(&self) {
        let now = self.conns_open.fetch_add(1, Ordering::Relaxed) + 1;
        self.conns_peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Counts a connection out.
    pub fn conn_closed(&self) {
        self.conns_open.fetch_sub(1, Ordering::Relaxed);
    }

    fn to_json(&self, kind: FrontendKind) -> Json {
        Json::obj()
            .with("kind", Json::Str(kind.to_string()))
            .with("conns_open", self.conns_open.load(Ordering::Relaxed).into())
            .with("conns_peak", self.conns_peak.load(Ordering::Relaxed).into())
            .with(
                "conn_rejects",
                self.conn_rejects.load(Ordering::Relaxed).into(),
            )
            .with(
                "accept_pauses",
                self.accept_pauses.load(Ordering::Relaxed).into(),
            )
            .with(
                "read_pauses",
                self.read_pauses.load(Ordering::Relaxed).into(),
            )
            .with(
                "deferred_submits",
                self.deferred_submits.load(Ordering::Relaxed).into(),
            )
            .with(
                "deferred_now",
                self.deferred_now.load(Ordering::Relaxed).into(),
            )
            .with(
                "egress_highwater_bytes",
                self.egress_highwater.load(Ordering::Relaxed).into(),
            )
    }
}

/// Renders the merged stats frame.
///
/// `draining` and `restarts` come from the server; `started` anchors the
/// throughput computation (forwarded+dropped packets over uptime).
/// `tracer` (when the caller has one — the server always does) adds the
/// `spans` section and folds the connection-side decode/write stage
/// histograms into the merged `stages` object. `frontend` (likewise
/// always present on a live server) adds the connection-plane `frontend`
/// object. `fib` adds the control plane's route-table section
/// (generation, route count, swap/retirement counters, swap-latency
/// percentiles) so the RCU retirement property is externally auditable.
#[allow(clippy::too_many_arguments)]
pub fn stats_json(
    shards: &[PublicShard],
    counters: &ServerCounters,
    backend: BackendKind,
    restarts: u64,
    draining: bool,
    started: Instant,
    tracer: Option<&ServeTracer>,
    frontend: Option<(FrontendKind, &FrontendStats)>,
    fib: Option<&EpochTables>,
) -> String {
    let mut merged = MetricsRegistry::new();
    let mut per_shard = Vec::with_capacity(shards.len());
    let mut carryover_total = 0u64;
    for (i, s) in shards.iter().enumerate() {
        let reg = s.stats.lock().unwrap_or_else(PoisonError::into_inner);
        let snapshot = reg.clone();
        drop(reg);
        merged.merge(&snapshot);
        let carryover = s.carryover.load(Ordering::Relaxed);
        carryover_total += carryover;
        let mut obj = Json::obj()
            .with("shard", i.into())
            .with("packets", snapshot.counter("serve.packets").into())
            .with("forwarded", snapshot.counter("serve.forwarded").into())
            .with("dropped", snapshot.counter("serve.dropped").into())
            .with("mismatches", snapshot.counter("serve.mismatches").into())
            .with(
                "lost_updates",
                snapshot.counter("serve.lost_updates").into(),
            )
            .with("batches", snapshot.counter("serve.batches").into())
            .with("sim_cycles", snapshot.counter("serve.sim_cycles").into())
            .with("queue_depth_highwater", s.queue.high_water().into())
            .with("queue_depth", s.queue.len().into())
            .with("restart_carryover", carryover.into());
        if let Some(h) = snapshot
            .histogram("serve.batch_size")
            .and_then(|h| h.summary())
        {
            obj.set("batch_size", h.to_json());
        }
        if let Some(h) = snapshot
            .histogram("serve.service_latency_us")
            .and_then(|h| h.summary())
        {
            obj.set("service_latency_us", h.to_json());
        }
        if let Some(stages) = stages_json(&snapshot) {
            obj.set("stages", stages);
        }
        per_shard.push(obj);
    }
    if let Some(t) = tracer {
        t.merge_frontend_into(&mut merged);
    }

    let uptime = started.elapsed().as_secs_f64().max(1e-9);
    let packets = merged.counter("serve.packets");
    let mut doc = Json::obj()
        .with("shards", shards.len().into())
        .with("backend", Json::Str(backend.to_string()))
        .with("uptime_secs", uptime.into())
        .with("draining", draining.into())
        .with("shard_restarts", restarts.into())
        .with("restart_carryover", carryover_total.into())
        .with("accepted", counters.accepted.load(Ordering::Relaxed).into())
        .with("busy", counters.busy.load(Ordering::Relaxed).into())
        .with("errors", counters.errors.load(Ordering::Relaxed).into())
        .with("packets", packets.into())
        .with("forwarded", merged.counter("serve.forwarded").into())
        .with("dropped", merged.counter("serve.dropped").into())
        .with("mismatches", merged.counter("serve.mismatches").into())
        .with("lost_updates", merged.counter("serve.lost_updates").into())
        .with("batches", merged.counter("serve.batches").into())
        .with("sim_cycles", merged.counter("serve.sim_cycles").into())
        .with("packets_per_sec", (packets as f64 / uptime).into());
    if let Some(h) = merged
        .histogram("serve.batch_size")
        .and_then(|h| h.summary())
    {
        doc.set("batch_size", h.to_json());
    }
    if let Some(h) = merged
        .histogram("serve.service_latency_us")
        .and_then(|h| h.summary())
    {
        doc.set("service_latency_us", h.to_json());
    }
    if let Some(stages) = stages_json(&merged) {
        doc.set("stages", stages);
    }
    if let Some(t) = tracer {
        doc.set("spans", t.to_json());
    }
    if let Some(tables) = fib {
        let mut obj = Json::obj()
            .with("generation", tables.generation().into())
            .with("routes", tables.routes().into())
            .with("swaps", tables.swaps().into())
            .with("retired", tables.retired().into());
        if let Some(s) = tables.swap_latency_summary() {
            obj.set(
                "swap_latency_us",
                Json::obj()
                    .with("count", s.count.into())
                    .with("p50", s.p50.into())
                    .with("p99", s.p99.into())
                    .with("max", s.max.into()),
            );
        }
        doc.set("fib", obj);
    }
    if let Some((kind, f)) = frontend {
        doc.set("frontend", f.to_json(kind));
    }
    doc.set("per_shard", Json::Arr(per_shard));
    doc.render()
}

/// Pulls an unsigned integer field out of a flat stats JSON document —
/// good enough for the loadgen/tests to read totals without a parser.
pub fn json_u64(doc: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)? + needle.len();
    let rest = doc[at..].trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::ShardQueue;
    use crate::tracing::{PendingSpan, StageTimings, TracingConfig};
    use std::sync::atomic::AtomicBool;
    use std::sync::{Arc, Mutex};

    fn mk_shard(forwarded: u64, dropped: u64, carryover: u64) -> PublicShard {
        let mut r = MetricsRegistry::new();
        r.add("serve.packets", forwarded + dropped);
        r.add("serve.forwarded", forwarded);
        r.add("serve.dropped", dropped);
        r.add("serve.batches", 1);
        r.record("serve.batch_size", forwarded + dropped);
        r.record("serve.service_latency_us", 100);
        PublicShard {
            queue: Arc::new(ShardQueue::new(4)),
            stats: Arc::new(Mutex::new(r)),
            die: Arc::new(AtomicBool::new(false)),
            idle: Arc::new(AtomicBool::new(true)),
            carryover: Arc::new(AtomicU64::new(carryover)),
            gen_seen: Arc::new(AtomicU64::new(1)),
        }
    }

    #[test]
    fn stats_json_merges_shards_and_is_parseable() {
        let shards = vec![mk_shard(10, 2, 4), mk_shard(5, 3, 0)];
        let counters = ServerCounters::default();
        counters.accepted.store(2, Ordering::Relaxed);
        counters.busy.store(1, Ordering::Relaxed);
        let frontend = FrontendStats::default();
        frontend.conn_opened();
        let doc = stats_json(
            &shards,
            &counters,
            BackendKind::Sim,
            1,
            false,
            Instant::now(),
            None,
            Some((FrontendKind::Threads, &frontend)),
            None,
        );
        assert!(doc.contains("\"backend\":\"sim\""), "{doc}");
        assert!(
            doc.contains("\"frontend\":{\"kind\":\"threads\""),
            "frontend object present: {doc}"
        );
        assert_eq!(json_u64(&doc, "conns_open"), Some(1));
        assert_eq!(json_u64(&doc, "conns_peak"), Some(1));
        assert_eq!(json_u64(&doc, "forwarded"), Some(15));
        assert_eq!(json_u64(&doc, "dropped"), Some(5));
        assert_eq!(json_u64(&doc, "packets"), Some(20));
        assert_eq!(json_u64(&doc, "lost_updates"), Some(0));
        assert_eq!(json_u64(&doc, "busy"), Some(1));
        assert_eq!(json_u64(&doc, "shard_restarts"), Some(1));
        assert_eq!(
            json_u64(&doc, "restart_carryover"),
            Some(4),
            "per-shard carryover sums to the top level"
        );
        assert!(doc.contains("\"per_shard\""));
        assert!(doc.contains("\"p99\""), "latency percentiles present");
        assert!(doc.contains("\"queue_depth_highwater\""));
        assert!(
            !doc.contains("\"stages\""),
            "no tracing, no stage section: {doc}"
        );
    }

    #[test]
    fn traced_stats_carry_stage_summaries_and_the_spans_section() {
        let shards = vec![mk_shard(10, 2, 0)];
        {
            let mut reg = shards[0].stats.lock().unwrap();
            for (_, metric) in STAGE_METRICS.iter().skip(1).take(4) {
                reg.record_bucket(metric, 1500);
            }
        }
        let tracer = ServeTracer::new(
            TracingConfig {
                enabled: true,
                ..TracingConfig::default()
            },
            1,
        )
        .unwrap();
        tracer.finish(
            &PendingSpan {
                span_id: 7,
                client_assigned: true,
                decode_ns: 800,
                timings: vec![StageTimings {
                    shard: 0,
                    packets: 12,
                    queue_ns: 1500,
                    coalesce_ns: 1500,
                    execute_ns: 1500,
                    egress_ns: 1500,
                    sim_cycles: 0,
                    frames: 24,
                }],
            },
            300,
        );
        let doc = stats_json(
            &shards,
            &ServerCounters::default(),
            BackendKind::Fast,
            0,
            false,
            Instant::now(),
            Some(&tracer),
            Some((FrontendKind::Reactor, &FrontendStats::default())),
            None,
        );
        for key in ["\"stages\"", "\"decode_ns\"", "\"execute_ns\"", "\"spans\""] {
            assert!(doc.contains(key), "missing {key} in {doc}");
        }
        assert_eq!(json_u64(&doc, "seen"), Some(1));
        // The merged stage summary reflects the recorded sample.
        let snap = crate::snapshot::StatsSnapshot::decode(&doc).expect("decodes");
        let stages = snap.stages;
        assert!(
            stages
                .iter()
                .any(|s| s.stage == "execute_ns" && s.count == 1),
            "{stages:?}"
        );
    }
}
