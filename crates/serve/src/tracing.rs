//! Request-scoped tracing: per-stage span records, sampled span rings,
//! and JSONL span export.
//!
//! A traced submit travels `decode → queue-wait → batch-coalesce →
//! backend-execute → egress encode → socket write`. The shard thread
//! measures the four middle stages (recorded per job into
//! [`StageTimings`], shipped back through
//! [`crate::queue::JobOutcome::timings`]); the connection thread measures
//! decode and write and finalizes one [`SpanRecord`] per (job, shard)
//! after the response hits the socket. Finished spans land three places:
//!
//! * per-shard stage [`BucketHistogram`]s (the shard records its four
//!   stages under its own stats registry; the tracer records the two
//!   connection-side stages in a server-global frontend registry) —
//!   merged into the stats frame for live p50/p99;
//! * a bounded per-shard ring of recent spans (every `sample_every`-th)
//!   plus an always-keep slow ring above [`TracingConfig::slow_ns`];
//! * the optional JSONL span sink (`serve --trace-spans FILE`), one line
//!   per span, reusing [`memsync_trace::JsonlSink`].
//!
//! **Cost when disabled** (the default): a single `bool` load gates every
//! instrumentation site — no `Instant::now`, no locks, no allocations.
//! Pinned by `tests/trace_zero_alloc.rs`.
//!
//! [`BucketHistogram`]: memsync_trace::BucketHistogram

use memsync_trace::{Json, JsonlSink, MetricsRegistry, SpanRecord};
use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, BufWriter};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

/// Spans kept in each shard's sampled recent ring.
const RECENT_CAP: usize = 256;
/// Spans kept in each shard's always-keep slow ring.
const SLOW_CAP: usize = 64;

/// Bit marking a server-assigned span id (the client did not tag the
/// batch).
pub const SERVER_SPAN_BIT: u64 = 1 << 63;

/// Request-tracing configuration (disabled by default).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TracingConfig {
    /// Master switch. Off means zero instrumentation cost.
    pub enabled: bool,
    /// Keep every N-th span in the recent ring (1 = all). Slow spans are
    /// always kept regardless.
    pub sample_every: u32,
    /// Spans whose stage total meets this threshold (nanoseconds) go to
    /// the always-keep slow ring.
    pub slow_ns: u64,
    /// JSONL span export path (`serve --trace-spans FILE`); every span
    /// is written, not just sampled ones.
    pub spans_path: Option<String>,
}

impl Default for TracingConfig {
    fn default() -> Self {
        TracingConfig {
            enabled: false,
            sample_every: 16,
            slow_ns: Duration::from_millis(5).as_nanos() as u64,
            spans_path: None,
        }
    }
}

/// The four shard-side stage durations of one job, measured by the shard
/// thread and shipped back through the job's outcome. Batch-level stages
/// (coalesce, execute, egress) are measured once per activation and
/// attributed whole to every job in the batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageTimings {
    /// Shard that executed the job.
    pub shard: u16,
    /// Packets in the job.
    pub packets: u32,
    /// Queue residency: enqueue to shard pickup.
    pub queue_ns: u64,
    /// Coalesce window: pickup to backend submit.
    pub coalesce_ns: u64,
    /// Backend execution: submit through egress drain.
    pub execute_ns: u64,
    /// Egress classification/verification after the drain.
    pub egress_ns: u64,
    /// Simulator cycles the activation consumed (backend-reported).
    pub sim_cycles: u64,
    /// Egress frames the activation emitted (backend-reported).
    pub frames: u64,
}

/// A span accumulating across `handle_submit`: the resolved id plus the
/// per-shard timings collected from job outcomes. Finalized by
/// [`ServeTracer::finish`] once the response is on the wire.
#[derive(Debug)]
pub struct PendingSpan {
    /// Resolved span id (client-assigned, or server-assigned with
    /// [`SERVER_SPAN_BIT`] set).
    pub span_id: u64,
    /// Whether the id came from the client.
    pub client_assigned: bool,
    /// Request frame decode duration (connection thread).
    pub decode_ns: u64,
    /// One entry per job the submit fanned out to.
    pub timings: Vec<StageTimings>,
}

/// One shard's bounded span retention.
#[derive(Debug, Default)]
struct SpanRings {
    /// Every `sample_every`-th finished span, newest last.
    recent: VecDeque<SpanRecord>,
    /// Spans above the slow threshold, newest last, kept unconditionally.
    slow: VecDeque<SpanRecord>,
    /// Spans finished against this shard (sampled or not).
    seen: u64,
}

fn push_capped(ring: &mut VecDeque<SpanRecord>, cap: usize, rec: SpanRecord) {
    if ring.len() == cap {
        ring.pop_front();
    }
    ring.push_back(rec);
}

/// The server-global tracing state: span-id assignment, per-shard rings,
/// the frontend (connection-side) stage registry, and the JSONL sink.
#[derive(Debug)]
pub struct ServeTracer {
    config: TracingConfig,
    next_span: AtomicU64,
    rings: Vec<Mutex<SpanRings>>,
    /// Decode/write stage histograms (connection-thread stages; the four
    /// shard stages live in the per-shard stats registries).
    frontend: Mutex<MetricsRegistry>,
    sink: Option<Mutex<JsonlSink<BufWriter<File>>>>,
    exported: AtomicU64,
}

impl ServeTracer {
    /// Builds the tracer for `shards` shards, opening the span export
    /// file when configured.
    ///
    /// # Errors
    ///
    /// Propagates span-file creation failures.
    pub fn new(config: TracingConfig, shards: usize) -> io::Result<ServeTracer> {
        let sink = match (&config.spans_path, config.enabled) {
            (Some(path), true) => Some(Mutex::new(JsonlSink::new(BufWriter::new(File::create(
                path,
            )?)))),
            _ => None,
        };
        Ok(ServeTracer {
            config,
            next_span: AtomicU64::new(1),
            rings: (0..shards)
                .map(|_| Mutex::new(SpanRings::default()))
                .collect(),
            frontend: Mutex::new(MetricsRegistry::new()),
            sink,
            exported: AtomicU64::new(0),
        })
    }

    /// Whether tracing is on. Every instrumentation site gates on this
    /// single load; when it answers `false`, nothing else in this module
    /// runs.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.config.enabled
    }

    /// The active configuration.
    pub fn config(&self) -> &TracingConfig {
        &self.config
    }

    /// Resolves a span id: the client's, or a fresh server-assigned id
    /// with [`SERVER_SPAN_BIT`] set. Returns `(id, client_assigned)`.
    pub fn assign(&self, client: Option<u64>) -> (u64, bool) {
        match client {
            Some(id) => (id, true),
            None => (
                self.next_span.fetch_add(1, Ordering::Relaxed) | SERVER_SPAN_BIT,
                false,
            ),
        }
    }

    /// Finalizes a span once the response left the socket: builds one
    /// [`SpanRecord`] per (job, shard), feeds the rings, records the
    /// connection-side stage histograms, and exports JSONL lines.
    pub fn finish(&self, pending: &PendingSpan, write_ns: u64) {
        if !self.enabled() || pending.timings.is_empty() {
            return;
        }
        {
            let mut reg = self.frontend.lock().unwrap_or_else(PoisonError::into_inner);
            reg.record_bucket("serve.stage.decode_ns", pending.decode_ns);
            reg.record_bucket("serve.stage.write_ns", write_ns);
        }
        for t in &pending.timings {
            let rec = SpanRecord {
                span: pending.span_id,
                client_assigned: pending.client_assigned,
                shard: t.shard,
                packets: u64::from(t.packets),
                decode_ns: pending.decode_ns,
                queue_ns: t.queue_ns,
                coalesce_ns: t.coalesce_ns,
                execute_ns: t.execute_ns,
                egress_ns: t.egress_ns,
                write_ns,
                sim_cycles: t.sim_cycles,
                frames: t.frames,
            };
            if let Some(ring) = self.rings.get(t.shard as usize) {
                let mut r = ring.lock().unwrap_or_else(PoisonError::into_inner);
                r.seen += 1;
                if rec.total_ns() >= self.config.slow_ns {
                    push_capped(&mut r.slow, SLOW_CAP, rec);
                } else if self.config.sample_every <= 1
                    || r.seen % u64::from(self.config.sample_every) == 0
                {
                    push_capped(&mut r.recent, RECENT_CAP, rec);
                }
            }
            if let Some(sink) = &self.sink {
                sink.lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .write_meta(&rec.to_jsonl());
                self.exported.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Flushes the span sink (drain/shutdown and test checkpoints), so
    /// readers of the JSONL file see every finished span.
    pub fn flush(&self) {
        if let Some(sink) = &self.sink {
            use memsync_trace::TraceSink as _;
            sink.lock().unwrap_or_else(PoisonError::into_inner).flush();
        }
    }

    /// Spans finished so far, summed over shards.
    pub fn spans_seen(&self) -> u64 {
        self.rings
            .iter()
            .map(|r| r.lock().unwrap_or_else(PoisonError::into_inner).seen)
            .sum()
    }

    /// JSONL lines exported so far.
    pub fn spans_exported(&self) -> u64 {
        self.exported.load(Ordering::Relaxed)
    }

    /// Snapshot of one shard's sampled recent spans, oldest first.
    pub fn recent_spans(&self, shard: usize) -> Vec<SpanRecord> {
        self.rings.get(shard).map_or_else(Vec::new, |r| {
            r.lock()
                .unwrap_or_else(PoisonError::into_inner)
                .recent
                .iter()
                .copied()
                .collect()
        })
    }

    /// Snapshot of one shard's slow spans, oldest first.
    pub fn slow_spans(&self, shard: usize) -> Vec<SpanRecord> {
        self.rings.get(shard).map_or_else(Vec::new, |r| {
            r.lock()
                .unwrap_or_else(PoisonError::into_inner)
                .slow
                .iter()
                .copied()
                .collect()
        })
    }

    /// Folds the connection-side stage histograms (decode/write) into a
    /// registry being assembled for a stats frame.
    pub fn merge_frontend_into(&self, reg: &mut MetricsRegistry) {
        reg.merge(&self.frontend.lock().unwrap_or_else(PoisonError::into_inner));
    }

    /// The tracing section of the stats document: totals plus per-shard
    /// ring occupancy.
    pub fn to_json(&self) -> Json {
        let mut per_shard = Vec::new();
        for (i, ring) in self.rings.iter().enumerate() {
            let r = ring.lock().unwrap_or_else(PoisonError::into_inner);
            per_shard.push(
                Json::obj()
                    .with("shard", i.into())
                    .with("seen", r.seen.into())
                    .with("recent", r.recent.len().into())
                    .with("slow", r.slow.len().into()),
            );
        }
        Json::obj()
            .with("enabled", self.config.enabled.into())
            .with("sample_every", u64::from(self.config.sample_every).into())
            .with("slow_ns", self.config.slow_ns.into())
            .with("seen", self.spans_seen().into())
            .with("exported", self.spans_exported().into())
            .with("rings", Json::Arr(per_shard))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timings(shard: u16, total_each: u64) -> StageTimings {
        StageTimings {
            shard,
            packets: 10,
            queue_ns: total_each,
            coalesce_ns: total_each,
            execute_ns: total_each,
            egress_ns: total_each,
            sim_cycles: 3,
            frames: 20,
        }
    }

    fn enabled_config() -> TracingConfig {
        TracingConfig {
            enabled: true,
            sample_every: 2,
            slow_ns: 1_000_000,
            spans_path: None,
        }
    }

    #[test]
    fn assign_marks_server_ids_with_the_high_bit() {
        let t = ServeTracer::new(enabled_config(), 2).unwrap();
        assert_eq!(t.assign(Some(7)), (7, true));
        let (id, client) = t.assign(None);
        assert!(!client);
        assert_ne!(id & SERVER_SPAN_BIT, 0);
        let (id2, _) = t.assign(None);
        assert_ne!(id, id2, "fresh id per span");
    }

    #[test]
    fn finish_samples_recent_and_always_keeps_slow() {
        let t = ServeTracer::new(enabled_config(), 1).unwrap();
        // 4 fast spans at sample_every=2 -> 2 sampled.
        for i in 0..4 {
            t.finish(
                &PendingSpan {
                    span_id: i,
                    client_assigned: true,
                    decode_ns: 10,
                    timings: vec![timings(0, 100)],
                },
                5,
            );
        }
        // 1 slow span (stage total over the 1ms threshold).
        t.finish(
            &PendingSpan {
                span_id: 99,
                client_assigned: true,
                decode_ns: 10,
                timings: vec![timings(0, 300_000)],
            },
            5,
        );
        assert_eq!(t.spans_seen(), 5);
        assert_eq!(t.recent_spans(0).len(), 2);
        let slow = t.slow_spans(0);
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].span, 99);
        assert!(slow[0].total_ns() >= 1_000_000);
    }

    #[test]
    fn finish_records_frontend_stage_histograms() {
        let t = ServeTracer::new(enabled_config(), 1).unwrap();
        t.finish(
            &PendingSpan {
                span_id: 1,
                client_assigned: false,
                decode_ns: 1000,
                timings: vec![timings(0, 10)],
            },
            2000,
        );
        let mut reg = MetricsRegistry::new();
        t.merge_frontend_into(&mut reg);
        let d = reg.bucket_histogram("serve.stage.decode_ns").unwrap();
        assert_eq!((d.count(), d.min()), (1, Some(1000)));
        let w = reg.bucket_histogram("serve.stage.write_ns").unwrap();
        assert_eq!(w.max(), Some(2000));
    }

    #[test]
    fn disabled_tracer_ignores_everything() {
        let t = ServeTracer::new(TracingConfig::default(), 2).unwrap();
        assert!(!t.enabled());
        t.finish(
            &PendingSpan {
                span_id: 1,
                client_assigned: true,
                decode_ns: 10,
                timings: vec![timings(0, 10)],
            },
            5,
        );
        assert_eq!(t.spans_seen(), 0);
        assert!(t.recent_spans(0).is_empty());
    }

    #[test]
    fn out_of_range_shard_is_dropped_not_panicking() {
        let t = ServeTracer::new(enabled_config(), 1).unwrap();
        t.finish(
            &PendingSpan {
                span_id: 1,
                client_assigned: true,
                decode_ns: 10,
                timings: vec![timings(9, 10)],
            },
            5,
        );
        assert_eq!(t.spans_seen(), 0);
    }

    #[test]
    fn json_section_reports_rings() {
        let t = ServeTracer::new(enabled_config(), 2).unwrap();
        let s = t.to_json().render();
        for key in [
            "enabled",
            "sample_every",
            "slow_ns",
            "seen",
            "exported",
            "rings",
        ] {
            assert!(s.contains(key), "missing {key} in {s}");
        }
    }
}
