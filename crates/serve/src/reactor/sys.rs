//! Raw syscall shim for the reactor: epoll on Linux, `poll(2)` on other
//! unix platforms, plus `RLIMIT_NOFILE` raising.
//!
//! This module is the crate's single `unsafe` island (the crate root is
//! `#![deny(unsafe_code)]`; this file opts back in). It declares the
//! handful of libc symbols the reactor needs directly — the workspace
//! builds offline with no `libc` crate — and wraps each call in a safe
//! function that owns the error handling, so nothing outside this file
//! touches a raw return code.
#![allow(unsafe_code)]

/// Closes a raw file descriptor (poller fds are not owned by any Rust
/// I/O object, so `Drop` impls call this directly).
pub(crate) fn close_fd(fd: i32) {
    extern "C" {
        fn close(fd: i32) -> i32;
    }
    // Best-effort: on close failure the fd is gone (or never was) either
    // way, and the poller is being dropped.
    let _ = unsafe { close(fd) };
}

#[cfg(target_os = "linux")]
pub(crate) mod epoll {
    //! Minimal epoll bindings (level-triggered; the reactor re-computes
    //! interest after every I/O step, so edge-triggering buys nothing).

    use std::io;

    pub(crate) const EPOLLIN: u32 = 0x001;
    pub(crate) const EPOLLOUT: u32 = 0x004;
    pub(crate) const EPOLLERR: u32 = 0x008;
    pub(crate) const EPOLLHUP: u32 = 0x010;
    pub(crate) const EPOLLRDHUP: u32 = 0x2000;
    pub(crate) const EPOLL_CTL_ADD: i32 = 1;
    pub(crate) const EPOLL_CTL_DEL: i32 = 2;
    pub(crate) const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0o2000000;

    /// `struct epoll_event`. The kernel ABI packs this on x86-64 (the
    /// 12-byte layout is part of the syscall contract); other targets
    /// use natural alignment, matching their libc headers.
    #[derive(Clone, Copy, Debug)]
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    pub(crate) struct EpollEvent {
        pub(crate) events: u32,
        pub(crate) data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    }

    pub(crate) fn create() -> io::Result<i32> {
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(fd)
        }
    }

    pub(crate) fn ctl(epfd: i32, op: i32, fd: i32, events: u32, data: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events, data };
        // DEL ignores the event argument (passing one keeps pre-2.6.9
        // kernel semantics happy and costs nothing).
        let rc = unsafe { epoll_ctl(epfd, op, fd, &mut ev) };
        if rc < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(())
        }
    }

    /// Waits for events into `buf`; `Ok(0)` on timeout or `EINTR`.
    pub(crate) fn wait(epfd: i32, buf: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        let rc = unsafe { epoll_wait(epfd, buf.as_mut_ptr(), buf.len() as i32, timeout_ms) };
        if rc < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                Ok(0)
            } else {
                Err(e)
            }
        } else {
            Ok(rc as usize)
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
pub(crate) mod pollsys {
    //! `poll(2)` fallback for unix platforms without epoll. O(n) per
    //! wait, which is fine for the fallback's scale; Linux (the measured
    //! platform) always uses epoll.

    use std::io;

    pub(crate) const POLLIN: i16 = 0x001;
    pub(crate) const POLLOUT: i16 = 0x004;
    pub(crate) const POLLERR: i16 = 0x008;
    pub(crate) const POLLHUP: i16 = 0x010;

    #[derive(Clone, Copy)]
    #[repr(C)]
    pub(crate) struct PollFd {
        pub(crate) fd: i32,
        pub(crate) events: i16,
        pub(crate) revents: i16,
    }

    extern "C" {
        // `nfds_t` is platform-varying (u32 on macOS, u64 on most BSDs);
        // usize matches the register-width convention either way for the
        // fd counts involved here.
        fn poll(fds: *mut PollFd, nfds: usize, timeout_ms: i32) -> i32;
    }

    /// Polls `fds` in place; `Ok(0)` on timeout or `EINTR`, otherwise
    /// the number of entries with non-zero `revents`.
    pub(crate) fn wait(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len(), timeout_ms) };
        if rc < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                Ok(0)
            } else {
                Err(e)
            }
        } else {
            Ok(rc as usize)
        }
    }
}

/// `struct rlimit` — `rlim_t` is 64-bit on every supported unix.
#[repr(C)]
struct RLimit {
    cur: u64,
    max: u64,
}

#[cfg(target_os = "linux")]
const RLIMIT_NOFILE: i32 = 7;
#[cfg(all(unix, not(target_os = "linux")))]
const RLIMIT_NOFILE: i32 = 8;

/// Raises the soft `RLIMIT_NOFILE` to the hard limit; returns the
/// resulting soft limit (0 if the limit could not be read at all).
pub(crate) fn raise_nofile_limit() -> u64 {
    extern "C" {
        fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
        fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
    }
    let mut lim = RLimit { cur: 0, max: 0 };
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
        return 0;
    }
    if lim.cur < lim.max {
        let want = RLimit {
            cur: lim.max,
            max: lim.max,
        };
        if unsafe { setrlimit(RLIMIT_NOFILE, &want) } == 0 {
            return lim.max;
        }
    }
    lim.cur
}

#[cfg(test)]
mod tests {
    #[test]
    fn nofile_limit_is_readable_and_monotone() {
        let got = super::raise_nofile_limit();
        assert!(got > 0, "soft nofile limit reads back non-zero");
        // Raising twice is idempotent.
        assert_eq!(super::raise_nofile_limit(), got);
    }
}
